"""E3 -- Estimate-n accuracy (Section 2, Lemma 3).

Paper claim: the estimate is a ``(2/7 - eps, 6 + eps)`` approximation of
``n`` with probability at least ``1 - 2/n``.  We sweep ``n`` and the
tightness parameter ``c1``, reporting the ratio band observed over many
vantage peers and the fraction inside Lemma 3's band.  Ablation: larger
``c1`` buys a tighter estimate with linearly more ``next`` calls.
"""

from __future__ import annotations

import random

from repro import IdealDHT, estimate_n
from repro.bench.harness import Table
from repro.core.sampler import GAMMA1, GAMMA2

SIZES = [256, 1024, 4096]
C1S = [1.0, 4.0, 16.0]
TRIALS = 30


def estimate_rows():
    rows = []
    for n in SIZES:
        for c1 in C1S:
            ratios = []
            hops = []
            for seed in range(TRIALS):
                dht = IdealDHT.random(n, random.Random(seed))
                result = estimate_n(dht, c1=c1)
                ratios.append(result.n_hat / n)
                hops.append(result.hops)
            inside = sum(1 for r in ratios if GAMMA1 <= r <= GAMMA2) / len(ratios)
            rows.append(
                (
                    n,
                    c1,
                    min(ratios),
                    max(ratios),
                    inside,
                    sum(hops) / len(hops),
                )
            )
    return rows


def test_e3_estimate_n(benchmark, show):
    rows = estimate_rows()
    table = Table(
        "E3: Estimate-n accuracy (n_hat / n over vantage peers)",
        ["n", "c1", "min ratio", "max ratio", "in (2/7, 6) band", "mean next-calls"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("paper (Lemma 3): constant-factor approx w.p. >= 1 - 2/n")
    show(table)

    # With the default c1 the overwhelming majority must sit in the band.
    for n, c1, lo, hi, inside, hops in rows:
        if c1 >= 4.0:
            assert inside >= 0.9
        # Cost is Theta(c1 log n) next calls.
        assert hops <= 4.0 * c1 * 18 + 2  # 18 > ln(4096) * 1.5

    # Ablation: c1 = 16 spread narrower than c1 = 1 at the largest n.
    spread = {c1: hi / lo for n, c1, lo, hi, _, _ in rows if n == SIZES[-1]}
    assert spread[16.0] <= spread[1.0]

    dht = IdealDHT.random(4096, random.Random(7))
    benchmark(lambda: estimate_n(dht))
