"""E4 -- exact uniformity of Choose-Random-Peer (Theorem 6).

Two complementary reproductions:

1. *Exact*: the closed-form assignment analysis shows every peer is
   mapped measure exactly ``lambda`` (max deviation at float precision).
2. *Empirical*: sampled frequencies pass a chi-square uniformity test
   and sit near the Monte-Carlo noise floor in TV distance, while the
   naive baseline fails catastrophically on the same rings.
"""

from __future__ import annotations

import random
from collections import Counter

from repro import IdealDHT, RandomPeerSampler, compute_assignment
from repro.analysis.stats import chi_square_uniform, total_variation_from_uniform
from repro.baselines.naive import NaiveSampler
from repro.bench.harness import Table

SIZES = [64, 256, 1024, 4096]


def exact_rows():
    rows = []
    for n in SIZES:
        dht = IdealDHT.random(n, random.Random(n))
        sampler = RandomPeerSampler(dht, n_hat=float(n))
        report = compute_assignment(
            dht.circle, sampler.params.lam, sampler.params.walk_budget
        )
        rows.append((n, report.lam, report.max_abs_error, report.success_probability))
    return rows


def empirical_rows(draws_per_peer: int = 40):
    rows = []
    for n in (64, 256):
        draws = n * draws_per_peer
        dht = IdealDHT.random(n, random.Random(n + 1))
        uniform = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(n + 2))
        naive = NaiveSampler(dht, random.Random(n + 3))
        u_counts = Counter(uniform.sample().peer_id for _ in range(draws))
        n_counts = Counter(naive.sample().peer_id for _ in range(draws))
        u_dist = {i: u_counts.get(i, 0) / draws for i in range(n)}
        n_dist = {i: n_counts.get(i, 0) / draws for i in range(n)}
        u_chi = chi_square_uniform([u_counts.get(i, 0) for i in range(n)])
        n_chi = chi_square_uniform([n_counts.get(i, 0) for i in range(n)])
        rows.append(
            (
                n,
                draws,
                total_variation_from_uniform(u_dist),
                u_chi.p_value,
                total_variation_from_uniform(n_dist),
                n_chi.p_value,
            )
        )
    return rows


def test_e4_exact_uniformity(benchmark, show):
    rows = exact_rows()
    table = Table(
        "E4a: exact per-peer measure vs lambda (closed form, Theorem 6)",
        ["n", "lambda", "max |measure - lambda|", "per-trial success prob"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("paper: every peer chosen w.p. exactly 1/n; deviation ~ float eps")
    show(table)
    for n, lam, err, _ in rows:
        assert err < 1e-15

    dht = IdealDHT.random(1024, random.Random(5))
    sampler = RandomPeerSampler(dht, n_hat=1024.0)
    benchmark(
        lambda: compute_assignment(
            dht.circle, sampler.params.lam, sampler.params.walk_budget
        )
    )


def test_e4_empirical_uniformity(benchmark, show):
    rows = empirical_rows()
    table = Table(
        "E4b: empirical uniformity -- King-Saia vs naive (same rings)",
        ["n", "draws", "KS TV", "KS chi2 p", "naive TV", "naive chi2 p"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("uniform sampler passes chi-square; naive is rejected outright")
    show(table)
    for n, draws, u_tv, u_p, n_tv, n_p in rows:
        assert u_p > 1e-3
        assert n_p < 1e-6
        assert u_tv < n_tv

    dht = IdealDHT.random(256, random.Random(9))
    sampler = RandomPeerSampler(dht, n_hat=256.0, rng=random.Random(10))
    benchmark(sampler.sample)
