"""E14 -- sampling in semi-structured networks (open problem 2).

Section 4 asks whether efficient random-peer selection exists for
Gnutella-like networks.  Without ``h``/``next``, random walks are the
tool -- and their quality depends on the topology.  We measure the walk
length needed to come within TV 0.02 of uniform on three plausible
overlay families, against each family's spectral gap.  The DHT solution
is topology-independent; the gap between the two is the open problem's
substance.
"""

from __future__ import annotations

import math
import random

from repro.analysis.spectra import spectral_report
from repro.analysis.stats import total_variation_from_uniform
from repro.baselines.random_walk import walk_distribution
from repro.baselines.unstructured import OVERLAY_KINDS, make_overlay
from repro.bench.harness import Table

N = 200
TARGET_TV = 0.02
MAX_STEPS = 4096


def steps_to_mix(graph, start) -> int:
    steps = 1
    while steps <= MAX_STEPS:
        dist = walk_distribution(graph, "metropolis", steps, start)
        if total_variation_from_uniform(dist) <= TARGET_TV:
            return steps
        steps *= 2
    return -1


def unstructured_rows():
    rows = []
    for kind in OVERLAY_KINDS:
        graph = make_overlay(kind, N, random.Random(150))
        start = min(graph.nodes)
        spec = spectral_report(graph, "metropolis")
        mix = steps_to_mix(graph, start)
        rows.append((kind, spec.spectral_gap, mix))
    return rows


def test_e14_unstructured(benchmark, show):
    rows = unstructured_rows()
    table = Table(
        f"E14: metropolis walk steps to TV <= {TARGET_TV} (n={N})",
        ["overlay", "spectral gap", "steps to mix"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("king-saia on a DHT: exact at ~log n messages, topology-free;")
    table.note("walks on unstructured overlays pay 1/gap -- open problem 2")
    show(table)

    by_kind = {kind: (gap, mix) for kind, gap, mix in rows}
    # All families eventually mix...
    assert all(mix > 0 for _, (gap, mix) in by_kind.items())
    # ...but the narrow lattice needs far longer than the expander,
    # tracking the spectral-gap ordering.
    assert by_kind["ring-lattice"][1] > 4 * by_kind["random-regular"][1]
    assert by_kind["random-regular"][0] > by_kind["ring-lattice"][0]
    # Even the best case needs more steps than the DHT's ~log2 n budget.
    assert min(mix for _, (_, mix) in by_kind.items()) > math.log2(N)

    graph = make_overlay("random-regular", N, random.Random(151))
    benchmark(lambda: walk_distribution(graph, "metropolis", 32, min(graph.nodes)))
