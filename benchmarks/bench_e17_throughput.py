"""E17 -- bulk sampling throughput: scalar loop vs. the batch engine.

Not a paper claim but an engineering baseline: the same Choose-Random-
Peer algorithm, drawn one sample at a time through the per-call path
versus in bulk through :class:`repro.core.engine.BatchSampler`.  The
table reports samples/second on the ideal DHT at several ring sizes and
the speedup ratio; results are also written to ``BENCH_throughput.json``
at the repo root so the perf trajectory is tracked across PRs.

Run standalone (``PYTHONPATH=src python benchmarks/bench_e17_throughput.py``,
add ``--quick`` for the CI smoke configuration) or under pytest, which
executes the quick configuration and asserts a minimum speedup.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

from repro import IdealDHT, RandomPeerSampler
from repro.bench.harness import Table, time_call, write_bench_json
from repro.core.engine import BatchSampler

FULL_SIZES = [1_000, 10_000, 100_000]
FULL_K = 10_000
QUICK_SIZES = [1_000, 10_000]
QUICK_K = 500

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_throughput.json"


def measure(n: int, k: int, repeat: int = 2) -> dict:
    """Samples/second for the scalar loop and the batch engine at size ``n``."""
    dht = IdealDHT.random(n, random.Random(n))

    scalar_sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(n + 1))
    scalar_s = time_call(lambda: [scalar_sampler.sample() for _ in range(k)], repeat=repeat)

    batch = BatchSampler(dht, n_hat=float(n), rng=random.Random(n + 2))
    batch_s = time_call(lambda: batch.sample_many(k), repeat=repeat)

    scalar_sps = k / scalar_s
    batch_sps = k / batch_s
    return {
        "n": n,
        "k": k,
        "scalar_seconds": scalar_s,
        "batch_seconds": batch_s,
        "scalar_samples_per_sec": scalar_sps,
        "batch_samples_per_sec": batch_sps,
        "speedup": batch_sps / scalar_sps,
    }


def run(sizes, k, repeat: int = 2) -> tuple[Table, list[dict]]:
    table = Table(
        "E17: bulk sampling throughput on the ideal DHT (samples/sec)",
        ["n", "k", "scalar sps", "batch sps", "speedup"],
    )
    results = []
    for n in sizes:
        row = measure(n, k, repeat=repeat)
        results.append(row)
        table.add_row(
            n, k, row["scalar_samples_per_sec"], row["batch_samples_per_sec"], row["speedup"]
        )
    table.note("scalar = per-sample RandomPeerSampler.sample() loop (seed path)")
    table.note("batch = BatchSampler.sample_many(k): vectorized classify + lockstep walks")
    return table, results


def emit(results: list[dict], out: Path, quick: bool) -> Path:
    record = {
        "benchmark": "e17_throughput",
        "substrate": "IdealDHT",
        "quick": quick,
        "unit": "samples/sec",
        "generated_unix": time.time(),
        "results": results,
    }
    return write_bench_json(out, record)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    args = parser.parse_args(argv)

    if args.quick:
        table, results = run(QUICK_SIZES, QUICK_K, repeat=1)
    else:
        table, results = run(FULL_SIZES, FULL_K, repeat=2)
    table.show()
    path = emit(results, args.out, quick=args.quick)
    print(f"wrote {path}")

    worst = min(r["speedup"] for r in results)
    floor = 3.0 if args.quick else 10.0
    if worst < floor:
        print(f"FAIL: worst speedup {worst:.1f}x below the {floor:.0f}x floor", file=sys.stderr)
        return 1
    print(f"worst speedup {worst:.1f}x (floor {floor:.0f}x)")
    return 0


def test_e17_throughput_quick(show, tmp_path):
    """Smoke configuration: the batch engine must beat the scalar loop."""
    table, results = run([4096], 400, repeat=1)
    show(table)
    emit(results, tmp_path / "BENCH_throughput.json", quick=True)
    assert all(r["speedup"] > 2.0 for r in results)


if __name__ == "__main__":
    raise SystemExit(main())
