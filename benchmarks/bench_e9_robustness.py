"""E9 -- random links and adversarial robustness (motivation 3, [11]).

Paper motivation: links to uniformly random peers keep the network
connected under massive adversarial deletion; maintaining them needs a
uniform sampler.  We build r-link overlays with the exact sampler and
with the naive biased sampler, delete up to half the nodes (targeted at
high degree), and compare the surviving giant component.
"""

from __future__ import annotations

import random

from repro import IdealDHT, RandomPeerSampler
from repro.apps.randlinks import build_random_link_overlay, deletion_robustness
from repro.baselines.naive import NaiveSampler
from repro.bench.harness import Table

N = 300
LINKS = 4
FRACTIONS = [0.1, 0.3, 0.5]


def robustness_rows():
    dht = IdealDHT.random(N, random.Random(90))
    uniform = RandomPeerSampler(dht, n_hat=float(N), rng=random.Random(91))
    naive = NaiveSampler(dht, random.Random(92))
    g_uniform = build_random_link_overlay(uniform, N, LINKS)
    g_naive = build_random_link_overlay(naive, N, LINKS)
    rows = []
    for frac, u_point, n_point in zip(
        FRACTIONS,
        deletion_robustness(g_uniform, FRACTIONS, targeted=True),
        deletion_robustness(g_naive, FRACTIONS, targeted=True),
    ):
        rows.append(
            (
                frac,
                u_point.largest_component_fraction,
                n_point.largest_component_fraction,
            )
        )
    degree_spread = (
        max(d for _, d in g_uniform.degree()),
        max(d for _, d in g_naive.degree()),
    )
    return rows, degree_spread


def test_e9_robustness(benchmark, show):
    rows, (u_max_deg, n_max_deg) = robustness_rows()
    table = Table(
        f"E9: giant component after targeted deletion ({LINKS} links/node, n={N})",
        ["deleted fraction", "uniform links", "naive links"],
    )
    for row in rows:
        table.add_row(*row)
    table.note(f"max degree: uniform {u_max_deg}, naive {n_max_deg} (hub formation)")
    table.note("paper/[11]: random-link graphs stay connected under deletion")
    show(table)

    for frac, uniform_lcc, naive_lcc in rows:
        assert uniform_lcc >= naive_lcc - 0.02
        assert uniform_lcc > 0.85
    # The naive overlay concentrates links on long-arc peers (hubs).
    assert n_max_deg > u_max_deg

    dht = IdealDHT.random(N, random.Random(93))
    sampler = RandomPeerSampler(dht, n_hat=float(N), rng=random.Random(94))
    benchmark(lambda: build_random_link_overlay(sampler, N, 2))
