"""Adversarial scenario benchmark: committee capture vs Byzantine fraction.

Sweeps backend (chord, kademlia) x adversarial fraction (0-30%) x lie
strategy (lookup, census, eclipse) through the scenario runner and
records, per cell: the fraction of completed draws captured by Byzantine
peers, sampling-bias amplification (capture vs Byzantine head-count),
uniformity over the *honest* population, and committee capture
probability -- empirical over the run's own draws against the analytic
binomial tail a uniform sampler would give the same head-count
(``repro.apps.committee``).

Two in-run gates keep the artifact honest:

- **zero-overhead-off** (the PR-7 bare-twin discipline): the fraction-0
  run of each backend is repeated against a *bare twin* of the transport
  hot path -- the pre-adversary bodies of ``rpc_from``/``oneway_from``,
  monkeypatched in so the comparison never goes stale -- and every
  statistic must be deep-equal.  An honest run provably pays nothing
  for the adversary hook beyond one attribute read.
- **harness self-test** (the planted bug): before any verdict is
  recorded, the statistical harness (``repro.adversary.verify``) must
  *reject* a deliberately biased sampler (one peer drawn with double
  weight) and *accept* the honest uniform one, under fixed seeds.  A
  harness that cannot find a planted bug has no business blessing the
  sweep.

Results go to ``BENCH_adversary.json`` at the repo root (schema in
docs/BENCHMARKS.md).  Run standalone
(``PYTHONPATH=src python benchmarks/bench_adversary.py``, add
``--quick`` for the CI smoke configuration) or under pytest.
"""

from __future__ import annotations

import argparse
import sys
import time
from contextlib import contextmanager
from pathlib import Path

from repro.adversary.verify import verify_capture, verify_uniformity
from repro.bench.harness import Table, write_bench_json
from repro.scenarios import adversary_table, preset, run_scenario
from repro.sim.network import RpcTimeout, RpcTransport

SEED = 0
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_adversary.json"

BACKENDS = ("chord", "kademlia")
STRATEGIES = ("lookup", "census", "eclipse")
FRACTIONS = (0.0, 0.05, 0.10, 0.20, 0.30)
QUICK_STRATEGIES = ("lookup",)
QUICK_FRACTIONS = (0.0, 0.20)


# -- the bare twin ------------------------------------------------------
#
# Verbatim pre-adversary bodies of the two transport methods the
# adversary hook touched (the PR-7 instrumented versions, minus the
# ``adversary.active`` guard).  Monkeypatched in for the fraction-0
# baseline so the zero-overhead comparison is against real removed code,
# not a remembered diff.


def _bare_rpc_from(self, source_id, target_id, method, *args, **kwargs):
    self._count_call()
    target, factor = self._admit(source_id, target_id, method, "rpc")
    self._count_msgs(2)
    mm = self._method_messages
    try:
        mm[method] += 2
    except KeyError:
        mm[method] = 2
    delta = factor * (
        self._latency.sample(self._rng) + self._latency.sample(self._rng)
    )
    tracer = self.tracer
    if tracer.active:
        start = self.elapsed
        self.elapsed = start + delta
        tracer.on_rpc(source_id, target_id, method, "rpc", start, self.elapsed, "ok")
    else:
        self.elapsed += delta
    result = getattr(target, method)(*args, **kwargs)
    if self.faults.blocked(target_id, source_id):
        self._count_timeout()
        tracer = self.tracer
        if tracer.active:
            start = self.elapsed
            self.elapsed = start + self._timeout
            tracer.on_rpc(
                source_id, target_id, method, "rpc",
                start, self.elapsed, "reply-partitioned",
            )
        else:
            self.elapsed += self._timeout
        raise RpcTimeout(f"rpc {method} to node {target_id}: reply partitioned")
    return result


def _bare_oneway_from(self, source_id, target_id, method, *args, **kwargs):
    self._count_call()
    target, factor = self._admit(source_id, target_id, method, "oneway")
    self._count_msgs(1)
    mm = self._method_messages
    try:
        mm[method] += 1
    except KeyError:
        mm[method] = 1
    delta = factor * self._latency.sample(self._rng)
    tracer = self.tracer
    if tracer.active:
        start = self.elapsed
        self.elapsed = start + delta
        tracer.on_rpc(
            source_id, target_id, method, "oneway", start, self.elapsed, "ok"
        )
    else:
        self.elapsed += delta
    return getattr(target, method)(*args, **kwargs)


@contextmanager
def bare_transport():
    """Swap the transport hot path for its pre-adversary twin."""
    saved = (RpcTransport.rpc_from, RpcTransport.oneway_from)
    RpcTransport.rpc_from = _bare_rpc_from
    RpcTransport.oneway_from = _bare_oneway_from
    try:
        yield
    finally:
        RpcTransport.rpc_from, RpcTransport.oneway_from = saved


# -- the planted-bug self-test ------------------------------------------


def harness_self_test() -> dict:
    """The statistical harness must catch a planted bias and pass honesty.

    Population of 64 peers; the biased sampler gives peer 0 double
    weight (a 1/64 absolute bias -- small, the kind a subtle bug would
    plant).  Fixed seeds end to end, so this verdict never flakes.
    """
    population = range(64)

    def honest(rng):
        return rng.randrange(64)

    def biased(rng):
        # Peer 0 wins twice as often: draw over 65 slots, fold the
        # extra slot onto 0.
        pick = rng.randrange(65)
        return 0 if pick == 64 else pick

    honest_report = verify_uniformity(
        honest, population, trials=8, draws=4000, alpha=0.01, seed=SEED
    )
    biased_report = verify_uniformity(
        biased, population, trials=8, draws=4000, alpha=0.01, seed=SEED
    )
    return {
        "honest_accepted": honest_report.accepted,
        "biased_rejected": not biased_report.accepted,
        "honest": honest_report.to_record(),
        "biased": biased_report.to_record(),
    }


# -- running one configuration ------------------------------------------


def bench_spec(backend: str, fraction: float, strategy: str, quick: bool):
    scale = dict(n=24, requests=60) if quick else dict(n=32, requests=150)
    return preset(
        "byzantine",
        backend=backend,
        seed=SEED,
        adv_fraction=fraction,
        adv_strategy=strategy,
        **scale,
    )


def fingerprint(result) -> dict:
    """The run's full record minus wall-clock (the only honest diff)."""
    record = result.to_record()
    record.pop("wall_seconds", None)
    return record


def cell_record(result) -> dict:
    """The per-cell summary entering the sweep table."""
    spec = result.spec
    adv = result.adversary
    amps = [
        s.bias_amplification for s in result.shards if s.bias_amplification is not None
    ]
    honest_ps = [s.honest_chi2_p for s in result.shards if s.honest_chi2_p is not None]
    honest_tvs = [s.honest_tv for s in result.shards if s.honest_tv is not None]
    committee = adv["committee"] if adv else None
    capture_band = None
    if committee and committee["elections"] and committee["analytic_capture"] is not None:
        # Where the observed committee-capture rate falls relative to
        # the uniform-sampler binomial band -- outside it means the
        # substrate's bias amplification is statistically visible even
        # at this election count (context, not a gate: leaving the band
        # is the attack succeeding, not the benchmark failing).
        capture_band = verify_capture(
            committee["empirical_capture"],
            committee["analytic_capture"],
            committee["elections"],
            alpha=1e-6,
        )
    return {
        "fraction": spec.adv_fraction,
        "strategy": spec.adv_strategy if spec.adversarial else None,
        "completed": result.completed,
        "failed": result.failed,
        "ring_recovered": result.ring_recovered,
        "messages_per_sample": result.messages_per_sample,
        "capture_rate": adv["capture_rate"] if adv else None,
        "bias_amplification": max(amps) if amps else None,
        "honest_chi2_p": min(honest_ps) if honest_ps else None,
        "honest_tv": max(honest_tvs) if honest_tvs else None,
        "lies_told": sum(s["lies_told"] for s in adv["shards"]) if adv else 0,
        "committee": committee,
        "capture_band": capture_band,
    }


def measure_backend(backend: str, quick: bool) -> dict:
    fractions = QUICK_FRACTIONS if quick else FRACTIONS
    strategies = QUICK_STRATEGIES if quick else STRATEGIES

    # Fraction 0 first, twice: live hot path vs the pre-adversary twin.
    # Bit-identity here IS the zero-overhead-off guarantee -- an honest
    # run's every statistic is unchanged by the adversary hook existing.
    spec0 = bench_spec(backend, 0.0, "lookup", quick)
    cpu0 = time.process_time()
    live0 = run_scenario(spec0)
    live_cpu = time.process_time() - cpu0
    with bare_transport():
        cpu0 = time.process_time()
        bare0 = run_scenario(spec0)
        bare_cpu = time.process_time() - cpu0
    identical = fingerprint(live0) == fingerprint(bare0)

    results = [live0]
    cells = [cell_record(live0)]
    for fraction in fractions:
        if fraction == 0.0:
            continue
        for strategy in strategies:
            result = run_scenario(bench_spec(backend, fraction, strategy, quick))
            results.append(result)
            cells.append(cell_record(result))
    return {
        "backend": backend,
        "spec": {"n": spec0.n, "requests": spec0.requests, "seed": spec0.seed},
        "zero_overhead": {
            "identical": identical,
            "cpu_ratio": live_cpu / bare_cpu if bare_cpu > 0 else None,
        },
        "sweep": cells,
        "_results": results,  # stripped before emit (tables only)
    }


# -- reporting ----------------------------------------------------------


def sweep_table(runs) -> Table:
    table = Table(
        title="committee capture vs adversarial fraction",
        headers=["backend", "fraction", "lie", "captured", "amp",
                 "honest chi2 p", "committee emp", "committee unif", "ring ok"],
    )
    for run in runs:
        for cell in run["sweep"]:
            committee = cell["committee"] or {}
            table.add_row(
                run["backend"],
                cell["fraction"],
                cell["strategy"] or "-",
                cell["capture_rate"] if cell["capture_rate"] is not None else 0.0,
                cell["bias_amplification"]
                if cell["bias_amplification"] is not None
                else float("nan"),
                cell["honest_chi2_p"]
                if cell["honest_chi2_p"] is not None
                else float("nan"),
                committee.get("empirical_capture")
                if committee.get("empirical_capture") is not None
                else float("nan"),
                committee.get("analytic_capture")
                if committee.get("analytic_capture") is not None
                else float("nan"),
                cell["ring_recovered"],
            )
    table.note("captured: fraction of completed draws landing on a Byzantine peer")
    table.note("amp: capture rate / live Byzantine fraction (1.0 = no amplification)")
    table.note("committee emp vs unif: observed capture rate vs the binomial tail "
               "under uniform sampling with the same Byzantine head-count")
    return table


def check_results(runs, self_test) -> list[str]:
    problems = []
    if not self_test["honest_accepted"]:
        problems.append("harness self-test: honest uniform sampler was rejected")
    if not self_test["biased_rejected"]:
        problems.append("harness self-test: planted biased sampler was accepted")
    for run in runs:
        backend = run["backend"]
        if not run["zero_overhead"]["identical"]:
            problems.append(
                f"{backend}: fraction-0 run diverged from the pre-adversary twin"
            )
        for cell in run["sweep"]:
            if cell["failed"] and cell["failed"] > cell["completed"]:
                problems.append(
                    f"{backend} f={cell['fraction']:g} {cell['strategy']}: "
                    f"more failures than completions"
                )
    return problems


def emit(runs, self_test, out: Path, quick: bool) -> Path:
    record = {
        "seed": SEED,
        "quick": quick,
        "harness_self_test": self_test,
        "backends": {
            run["backend"]: {k: v for k, v in run.items() if not k.startswith("_")}
            for run in runs
        },
        "generated_unix": time.time(),
    }
    return write_bench_json(out, record)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    args = parser.parse_args(argv)

    self_test = harness_self_test()
    runs = [measure_backend(backend, args.quick) for backend in BACKENDS]
    sweep_table(runs).show()
    adversarial = [r for run in runs for r in run["_results"] if r.adversary]
    if adversarial:
        adversary_table(adversarial).show()
    print(
        f"harness self-test: honest accepted={self_test['honest_accepted']} "
        f"(min p {self_test['honest']['min_p_value']:.3f}), "
        f"biased rejected={self_test['biased_rejected']} "
        f"(min p {self_test['biased']['min_p_value']:.2e})"
    )

    path = emit(runs, self_test, args.out, quick=args.quick)
    print(f"wrote {path}")

    problems = check_results(runs, self_test)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


def test_adversary_bench_quick(show, tmp_path):
    """CI-scale gate: zero-overhead bit-identity at fraction 0, a working
    planted-bug self-test, and nonzero capture under lookup lies."""
    self_test = harness_self_test()
    assert self_test["honest_accepted"]
    assert self_test["biased_rejected"]
    runs = [measure_backend(backend, quick=True) for backend in BACKENDS]
    show(sweep_table(runs))
    emit(runs, self_test, tmp_path / "BENCH_adversary.json", quick=True)
    for run in runs:
        assert run["zero_overhead"]["identical"], run["backend"]
        adversarial = [c for c in run["sweep"] if c["fraction"] > 0]
        assert adversarial, run["backend"]
        for cell in adversarial:
            assert cell["capture_rate"] is not None
            assert cell["capture_rate"] > 0, (run["backend"], cell["fraction"])


if __name__ == "__main__":
    raise SystemExit(main())
