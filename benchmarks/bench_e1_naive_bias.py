"""E1 -- the naive heuristic's bias (introduction + Theorem 8).

Paper claim: ``h(U(0,1])`` picks the peer with the longest arc
``Theta(n log n)`` times more often than the peer with the shortest arc.
We compute the *exact* selection distribution (the arcs) per ring and
report the max/min ratio normalized by ``n ln n``, which should be flat
across sizes; the King--Saia sampler's ratio is identically 1.
"""

from __future__ import annotations

import math
import random
import statistics

from repro import SortedCircle
from repro.analysis.stats import max_min_ratio
from repro.baselines.naive import naive_selection_probabilities
from repro.bench.harness import Table

SIZES = [256, 1024, 4096, 16384]
RINGS = 12


def bias_rows():
    rows = []
    for n in SIZES:
        ratios = [
            max_min_ratio(
                naive_selection_probabilities(SortedCircle.random(n, random.Random(seed)))
            )
            for seed in range(RINGS)
        ]
        med = statistics.median(ratios)
        rows.append((n, med, med / (n * math.log(n))))
    return rows


def test_e1_naive_bias(benchmark, show):
    rows = bias_rows()
    table = Table(
        "E1: naive h(U) bias -- max/min selection ratio (median over rings)",
        ["n", "naive max/min", "ratio / (n ln n)", "king-saia max/min"],
    )
    for n, ratio, normalized in rows:
        table.add_row(n, ratio, normalized, 1.0)
    table.note("paper: naive bias grows as Theta(n log n); exact sampler is 1")
    show(table)

    # Normalized bias must be flat (same order) across a 64x size range.
    normalized = [r[2] for r in rows]
    assert max(normalized) / min(normalized) < 25.0

    circle = SortedCircle.random(4096, random.Random(0))
    benchmark(lambda: max_min_ratio(naive_selection_probabilities(circle)))
