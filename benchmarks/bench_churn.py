"""Churn benchmark: what dynamic membership costs the sampling service.

Drives the scenario lab (:mod:`repro.scenarios`) through the named
regimes -- ``static`` (the churn-free control), ``moderate``,
``crash-heavy``, and the pathological ``no-repair`` (periodic
stabilization disabled; only reactive, lookup-triggered repair fights
the churn) -- plus, in the full configuration, a churn-rate x
crash-fraction x stabilization-cadence sweep.  Reported per regime:

- *survival*: completed / FAILED / rejected requests and churn-killed
  dispatch retries (the run must end with zero unhandled exceptions --
  any leak fails the benchmark itself);
- *uniformity against the live population*: chi-square p-value and
  total-variation distance of the draws over peers that stayed alive
  the whole run (worst shard);
- *cost inflation*: measured messages per served sample, absolute and
  as a multiple of the static control;
- *latency*: p50/p95/p99 total latency in simulated time units;
- *recovery*: whether every ring stabilized back to correctness after
  churn stopped (King-Saia's dynamic-network premise).

Results go to ``BENCH_churn.json`` at the repo root (schema in
docs/BENCHMARKS.md).  Run standalone
(``PYTHONPATH=src python benchmarks/bench_churn.py``, add ``--quick``
for the CI smoke configuration) or under pytest.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.harness import write_bench_json
from repro.scenarios import (
    find_baseline,
    preset,
    results_record,
    results_table,
    run_specs,
    sweep,
)

SEED = 0
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_churn.json"


def full_regimes():
    """static / moderate / crash-heavy / no-repair at the default scale."""
    return [
        preset("static", seed=SEED),
        preset("moderate", seed=SEED),
        preset("crash-heavy", seed=SEED),
        # Reactive repair only; fewer requests keep the (deliberately
        # pathological) regime from dominating the benchmark's runtime.
        preset(
            "crash-heavy",
            seed=SEED,
            requests=200,
        ).with_(name="no-repair", stabilize_interval=0.0),
    ]


def quick_regimes():
    """The same three-axis story at CI scale (seconds, not minutes)."""
    smoke = preset("smoke", seed=SEED)
    return [
        smoke.with_(name="static", churn_rate=0.0),
        smoke.with_(name="moderate"),
        smoke.with_(name="crash-heavy", churn_rate=0.15, crash_fraction=0.9,
                    stabilize_interval=6.0),
    ]


def full_sweep():
    """Churn-rate x crash-fraction x cadence grid around the moderate point.

    Cadence 0 keeps the reactive-only axis in the grid: with no periodic
    repair, crashes (stale pointers, routing holes) and graceful leaves
    (clean splices) genuinely diverge, which is where the crash-fraction
    axis earns its place.
    """
    base = preset("moderate", seed=SEED).with_(name="sweep", requests=300)
    return sweep(
        base,
        churn_rates=(0.05, 0.2),
        crash_fractions=(0.2, 0.9),
        stabilize_intervals=(2.0, 0.0),
    )


def check_regimes(results) -> list[str]:
    """The benchmark's gates; returns human-readable violations."""
    problems = []
    by_name = {r.spec.name: r for r in results}
    for name, r in by_name.items():
        offered = r.spec.requests
        accounted = r.completed + r.failed + r.rejected
        if accounted != offered:
            problems.append(
                f"{name}: {accounted} of {offered} requests accounted for"
            )
        if r.truncated:
            problems.append(f"{name}: max_sim_time tripped before the load drained")
    moderate = by_name.get("moderate")
    if moderate is not None and moderate.failed > 0:
        problems.append(
            f"moderate: {moderate.failed} FAILED requests; the service must "
            "sustain moderate churn without shedding load"
        )
    for name in ("static", "moderate", "crash-heavy"):
        r = by_name.get(name)
        if r is not None and not r.ring_recovered:
            problems.append(f"{name}: ring did not re-stabilize after churn stopped")
    return problems


def emit(regime_results, sweep_results, out: Path, quick: bool) -> Path:
    record = results_record(regime_results, seed=SEED, quick=quick)
    if sweep_results:
        baseline = find_baseline(regime_results)
        record["sweep"] = results_record(
            sweep_results, seed=SEED, baseline=baseline
        )["scenarios"]
    record["generated_unix"] = time.time()
    return write_bench_json(out, record)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument("--no-sweep", action="store_true",
                        help="skip the churn-rate x crash x cadence grid")
    args = parser.parse_args(argv)

    regimes = quick_regimes() if args.quick else full_regimes()
    regime_results = run_specs(regimes)
    results_table(regime_results, "churn regimes: serving under dynamic membership").show()

    sweep_results = []
    if not args.quick and not args.no_sweep:
        sweep_results = run_specs(full_sweep())
        results_table(
            sweep_results,
            "churn sweep: rate x crash fraction x cadence",
            baseline=find_baseline(regime_results),
        ).show()

    path = emit(regime_results, sweep_results, args.out, quick=args.quick)
    print(f"wrote {path}")

    problems = check_regimes(regime_results)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


def test_churn_bench_quick(show, tmp_path):
    """CI-scale regimes: full accounting, no failures under moderate churn,
    rings recover -- and the whole thing runs without an unhandled exception."""
    results = run_specs(quick_regimes())
    show(results_table(results, "churn regimes (quick)"))
    emit(results, [], tmp_path / "BENCH_churn.json", quick=True)
    assert check_regimes(results) == []
    # churn must actually have happened in the churning regimes
    assert all(r.churn_events > 0 for r in results if r.spec.churning)


if __name__ == "__main__":
    raise SystemExit(main())
