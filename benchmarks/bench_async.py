"""Async-transport mass failure: the acceptance outage at message level.

Thin entry point around :mod:`repro.bench.async_net` (also reachable as
``python -m repro bench async``), kept in ``benchmarks/`` so the
artifact-producing scripts stay discoverable in one place.  See the
module docstring there for what is measured; results land in
``BENCH_async.json`` at the repo root.
"""

from __future__ import annotations

from repro.bench.async_net import (
    bench_specs,
    check_results,
    emit,
    main,
    results_table,
    run_all,
)


def test_async_bench_quick(show, tmp_path):
    """CI-scale async outage: both substrates recover on the message-level
    transport and report the async-only observables."""
    results = run_all(bench_specs(quick=True))
    show(results_table(results, "mass failure on the async transport (quick)"))
    emit(results, tmp_path / "BENCH_async.json", quick=True, seed=0)
    assert check_results(results) == []
    for r in results:
        # the async-only observables must actually materialize
        assert r.recovery_sim_time is not None and r.recovery_sim_time > 0
        assert r.hop_latency["count"] > 0
        assert 1.0 <= r.hop_latency["p50"] <= r.hop_latency["p99"] <= 3.0
    # the outage must wound lookups before repair runs on at least one
    # substrate, or the scenario is not measuring anything
    assert any(r.outage.error_rate > 0.0 for r in results)


if __name__ == "__main__":
    raise SystemExit(main())
