"""E6 -- trial counts and the lambda-slack ablation (Theorem 7).

Paper claim: the number of rejection-sampling trials is geometric with
success probability ``n * lambda >= gamma1/(7 gamma2) = Omega(1)``, so
``E[trials] = O(1)`` (independent of ``n``).  Ablation (DESIGN.md): the
``7`` in ``lambda = 1/(7 n')`` trades per-trial success probability
against walk length and the exactness margin -- smaller slack means
fewer retries, but pushing it to ~1 breaks Theorem 6's supplementation
slack and uniformity with it.
"""

from __future__ import annotations

import random
import statistics

from repro import IdealDHT, RandomPeerSampler, compute_assignment
from repro.bench.harness import Table

SIZES = [256, 1024, 4096, 16384]
SLACKS = [2.0, 4.0, 7.0, 14.0]
SAMPLES = 150


def trial_rows():
    rows = []
    for n in SIZES:
        dht = IdealDHT.random(n, random.Random(n))
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(n + 5))
        trials = [sampler.sample_with_stats().trials for _ in range(SAMPLES)]
        success = n * sampler.params.lam
        rows.append(
            (n, success, 1.0 / success, statistics.mean(trials), max(trials))
        )
    return rows


def slack_rows():
    n = 2048
    dht = IdealDHT.random(n, random.Random(42))
    rows = []
    for slack in SLACKS:
        sampler = RandomPeerSampler(
            dht, n_hat=float(n), lambda_slack=slack, rng=random.Random(43)
        )
        report = compute_assignment(
            dht.circle, sampler.params.lam, sampler.params.walk_budget
        )
        trials = [sampler.sample_with_stats().trials for _ in range(100)]
        rows.append(
            (
                slack,
                n * sampler.params.lam,
                statistics.mean(trials),
                report.max_abs_error,
                report.is_exactly_uniform(1e-12),
            )
        )
    return rows


def test_e6_trials_geometric(benchmark, show):
    rows = trial_rows()
    table = Table(
        "E6a: rejection trials are O(1), independent of n",
        ["n", "success prob n*lam", "1/(n*lam)", "mean trials", "max trials"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("paper (Thm 7): E[trials] <= 1/(n lambda) = O(1)")
    show(table)
    for n, success, bound, mean_trials, _ in rows:
        assert mean_trials <= 1.5 * bound
    # Flat across n: largest and smallest mean within 2x.
    means = [r[3] for r in rows]
    assert max(means) / min(means) < 2.0

    dht = IdealDHT.random(1024, random.Random(6))
    sampler = RandomPeerSampler(dht, n_hat=1024.0, rng=random.Random(7))
    benchmark(lambda: sampler.sample_with_stats().trials)


def test_e6_lambda_slack_ablation(benchmark, show):
    rows = slack_rows()
    table = Table(
        "E6b: ablation of the slack constant in lambda = 1/(slack * n')",
        ["slack", "success prob", "mean trials", "max assign error", "exactly uniform"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("smaller slack = fewer retries; uniformity holds while slack > 1")
    show(table)
    # Fewer trials with smaller slack...
    assert rows[0][2] < rows[-1][2]
    # ...and the paper's operating point stays exactly uniform.
    assert all(uniform for *_, uniform in rows)

    n = 2048
    dht = IdealDHT.random(n, random.Random(44))
    sampler = RandomPeerSampler(dht, n_hat=float(n), lambda_slack=2.0,
                                rng=random.Random(45))
    benchmark(sampler.sample)
