"""Backend comparison: the sampling workload on Chord vs Kademlia.

Thin entry point around :mod:`repro.bench.backends` (also reachable as
``python -m repro bench backends``), kept in ``benchmarks/`` so the
artifact-producing scripts stay discoverable in one place.  See the
module docstring there for what is measured; results land in
``BENCH_backends.json`` at the repo root.
"""

from __future__ import annotations

from repro.bench.backends import emit, main, run


def test_backends_quick(show, tmp_path):
    """Smoke configuration: both substrates serve the identical contract."""
    table, results = run([256], samples=60, probes=30, seed=0)
    show(table)
    emit(results, tmp_path / "BENCH_backends.json", quick=True, seed=0)
    backends = {r["backend"] for r in results}
    assert backends == {"chord", "kademlia"}
    static = [r for r in results if r["phase"] == "static"]
    assert all(r["all_sampled_live"] for r in static)
    assert all(r["msgs_per_sample"] > 0 for r in results)
    # both substrates must stay in the same cost order of magnitude
    pair = {r["backend"]: r["msgs_per_sample"] for r in static}
    assert pair["kademlia"] < 20 * pair["chord"]


if __name__ == "__main__":
    raise SystemExit(main())
