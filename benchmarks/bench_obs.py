"""Observability benchmark: the zero-overhead-off guarantee, measured.

Tracing must be free when it is off.  This benchmark proves both halves
of that claim in-run, against a *bare twin* of the transport hot path --
the pre-instrumentation bodies of ``RpcTransport._admit`` /
``rpc_from`` / ``oneway_from`` (no tracer guard, no per-method counter),
monkeypatched in for the baseline runs so the comparison never goes
stale against deleted code:

- **bit-identity**: a seeded scenario run with tracing disabled produces
  a record deep-equal to the bare twin's (and to every *traced* run:
  instrumentation consumes no RNG and charges nothing);
- **runtime**: tracing-off stays within the bound of the bare twin
  (<=2% in full mode; the quick CI configuration uses a looser bound
  because sub-second runs are scheduler noise).  The enforced ratio is
  measured on single-threaded process CPU time -- the workload is pure
  CPU, so on an idle machine CPU time *is* wall time, but CPU time
  stays measurable on shared/noisy runners where wall-clock is a
  lottery.  Wall-clock ratios are recorded alongside.  Timed regions
  run interleaved best-of-N with GC fenced (collect before, disabled
  during) and nothing bulky retained between reps.

It then measures what each head-sampling policy actually costs
(``all``, ``1-in-8``, ``slowest:64`` vs off) and gates the critical-path
analyzer: on every traced backend the per-request decomposition must
reconstruct >= 99% of each request's measured latency.

Results go to ``BENCH_obs.json`` at the repo root (schema in
docs/BENCHMARKS.md).  Run standalone
(``PYTHONPATH=src python benchmarks/bench_obs.py``, add ``--quick``
for the CI smoke configuration) or under pytest.
"""

from __future__ import annotations

import argparse
import gc
import math
import sys
import time
from contextlib import contextmanager
from pathlib import Path

from repro.bench.harness import Table, write_bench_json
from repro.obs import Tracer, analyze
from repro.scenarios import critical_path_table, hop_table, preset, run_scenario
from repro.sim.network import RpcTimeout, RpcTransport

SEED = 0
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_obs.json"

BACKENDS = ("chord", "kademlia")
SAMPLING_MODES = ("all", "1-in-8", "slowest:64")
MODES = ("bare", "off", *SAMPLING_MODES)

#: Tracing-off CPU-time bound vs the bare twin (full / quick mode).
OFF_BOUND_FULL = 1.02
OFF_BOUND_QUICK = 1.25

#: Per-request latency coverage the critical-path analyzer must reach.
RECONSTRUCTION_FLOOR = 0.99


# -- the bare twin ------------------------------------------------------
#
# Verbatim pre-instrumentation bodies of the three transport methods the
# tracer touched.  ``self.elapsed += x`` and the instrumented
# ``start = self.elapsed; self.elapsed = start + x`` are the same float
# operation, so the twin is bit-identical by construction; what it lacks
# is the per-delivery tracer guard and per-method counter update -- the
# entire disabled-mode overhead.


def _bare_admit(self, source_id, target_id, method, kind):
    target = self._nodes.get(target_id)
    faults = self.faults
    if target is not None and not faults.blocked(source_id, target_id):
        p = self._loss_rate
        if faults.active:
            extra = faults.extra_drop(source_id, target_id)
            if extra > 0.0:
                p = 1.0 - (1.0 - p) * (1.0 - extra)
        if not (p > 0.0 and self._loss_rng.random() < p):
            factor = (
                faults.latency_factor(source_id, target_id) if faults.active else 1.0
            )
            return target, factor
        reason = "lost"
    elif target is None:
        reason = "dead or unknown"
    else:
        reason = "partitioned"
    self.metrics.counter("rpc.timeouts").increment()
    self.metrics.counter("messages").increment()
    self.elapsed += self._timeout
    raise RpcTimeout(f"{kind} {method} to node {target_id}: target {reason}")


def _bare_rpc_from(self, source_id, target_id, method, *args, **kwargs):
    self.metrics.counter("rpc.calls").increment()
    target, factor = self._admit(source_id, target_id, method, "rpc")
    self.metrics.counter("messages").increment(2)
    self.elapsed += factor * (
        self._latency.sample(self._rng) + self._latency.sample(self._rng)
    )
    result = getattr(target, method)(*args, **kwargs)
    if self.faults.blocked(target_id, source_id):
        self.metrics.counter("rpc.timeouts").increment()
        self.elapsed += self._timeout
        raise RpcTimeout(f"rpc {method} to node {target_id}: reply partitioned")
    return result


def _bare_oneway_from(self, source_id, target_id, method, *args, **kwargs):
    self.metrics.counter("rpc.calls").increment()
    target, factor = self._admit(source_id, target_id, method, "oneway")
    self.metrics.counter("messages").increment(1)
    self.elapsed += factor * self._latency.sample(self._rng)
    return getattr(target, method)(*args, **kwargs)


@contextmanager
def bare_transport():
    """Swap the transport hot path for its pre-instrumentation twin."""
    saved = (RpcTransport._admit, RpcTransport.rpc_from, RpcTransport.oneway_from)
    RpcTransport._admit = _bare_admit
    RpcTransport.rpc_from = _bare_rpc_from
    RpcTransport.oneway_from = _bare_oneway_from
    try:
        yield
    finally:
        RpcTransport._admit, RpcTransport.rpc_from, RpcTransport.oneway_from = saved


# -- running one configuration ------------------------------------------


def bench_spec(backend: str, quick: bool):
    scale = dict(n=24, requests=60) if quick else dict(n=48, requests=240)
    return preset("smoke", backend=backend, seed=SEED, **scale)


def run_mode(spec, mode: str):
    """One scenario run in the given mode; returns (result, tracer|None)."""
    if mode == "bare":
        with bare_transport():
            return run_scenario(spec), None
    if mode == "off":
        return run_scenario(spec), None
    tracer = Tracer(mode)
    return run_scenario(spec, tracer=tracer), tracer


def fingerprint(result) -> dict:
    """The run's full record minus wall-clock (the only honest diff)."""
    record = result.to_record()
    record.pop("wall_seconds", None)
    return record


def measure_backend(backend: str, quick: bool, repeats: int) -> dict:
    """Interleaved best-of-``repeats`` timing plus identity/coverage gates."""
    spec = bench_spec(backend, quick)
    best_cpu = {mode: math.inf for mode in MODES}
    best_wall = {mode: math.inf for mode in MODES}
    prints: dict = {}
    for rep in range(repeats):
        for mode in MODES:
            # GC fencing: collect outside the timed region, hold
            # collections off inside it, and keep fingerprints (small
            # dicts) as the only thing retained between reps, so no
            # mode's timing pays for another mode's garbage.
            gc.collect()
            gc.disable()
            try:
                wall0 = time.perf_counter()
                cpu0 = time.process_time()
                result, _tracer = run_mode(spec, mode)
                cpu = time.process_time() - cpu0
                wall = time.perf_counter() - wall0
            finally:
                gc.enable()
            best_cpu[mode] = min(best_cpu[mode], cpu)
            best_wall[mode] = min(best_wall[mode], wall)
            if rep == 0:
                prints[mode] = fingerprint(result)

    identical = all(prints[mode] == prints["bare"] for mode in MODES)
    # The critical-path analysis run is untimed: its tracer holds one
    # span per hop and would distort any timing loop it lived inside.
    _result, tracer_all = run_mode(spec, "all")
    report = analyze(tracer_all)
    summary = tracer_all.summary()
    return {
        "backend": backend,
        "spec": {"n": spec.n, "requests": spec.requests, "seed": spec.seed},
        "seconds": dict(best_wall),
        "cpu_seconds": dict(best_cpu),
        "overhead_off": best_cpu["off"] / best_cpu["bare"],
        "overhead_off_wall": best_wall["off"] / best_wall["bare"],
        "overhead_vs_off": {
            mode: best_cpu[mode] / best_cpu["off"] for mode in SAMPLING_MODES
        },
        "identical": identical,
        "critical_path": {
            "min_reconstructed": report.min_reconstructed,
            "requests_traced": summary["requests_traced"],
            "spans": summary["spans"],
            "segment_fractions": report.segment_fractions,
        },
        "hop_profiles": {
            name: profile.to_record()
            for name, profile in sorted(report.hop_profiles.items())
        },
        "_report": report,  # stripped before emit (tables only)
    }


# -- reporting ----------------------------------------------------------


def results_table(runs, off_bound: float) -> Table:
    table = Table(
        title="tracing overhead: bare twin vs off vs sampling policies",
        headers=["backend", "bare s", "off s", "off/bare", "off/bare wall",
                 "all/off", "1-in-8/off", "slowest/off", "identical",
                 "min reconstr"],
    )
    for run in runs:
        table.add_row(
            run["backend"],
            run["cpu_seconds"]["bare"],
            run["cpu_seconds"]["off"],
            run["overhead_off"],
            run["overhead_off_wall"],
            run["overhead_vs_off"]["all"],
            run["overhead_vs_off"]["1-in-8"],
            run["overhead_vs_off"]["slowest:64"],
            run["identical"],
            run["critical_path"]["min_reconstructed"],
        )
    table.note(f"off/bare must stay <= {off_bound:g} (the zero-overhead-off bound; "
               "process CPU time, best-of-N interleaved)")
    table.note("identical: every mode's run record deep-equal to the bare twin's")
    table.note(f"min reconstr: worst per-request critical-path coverage "
               f"(floor {RECONSTRUCTION_FLOOR:g})")
    return table


def check_results(runs, off_bound: float) -> list[str]:
    problems = []
    for run in runs:
        backend = run["backend"]
        if not run["identical"]:
            problems.append(f"{backend}: traced/untraced records diverged from the bare twin")
        if run["overhead_off"] > off_bound:
            problems.append(
                f"{backend}: tracing-off overhead {run['overhead_off']:.4f} "
                f"exceeds the {off_bound:g} bound"
            )
        floor = run["critical_path"]["min_reconstructed"]
        if floor < RECONSTRUCTION_FLOOR:
            problems.append(
                f"{backend}: critical path reconstructs only {floor:.4f} "
                f"of the worst request (floor {RECONSTRUCTION_FLOOR:g})"
            )
    return problems


def emit(runs, off_bound: float, out: Path, quick: bool) -> Path:
    record = {
        "seed": SEED,
        "quick": quick,
        "off_bound": off_bound,
        "reconstruction_floor": RECONSTRUCTION_FLOOR,
        "backends": {
            run["backend"]: {k: v for k, v in run.items() if not k.startswith("_")}
            for run in runs
        },
        "generated_unix": time.time(),
    }
    return write_bench_json(out, record)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument("--repeats", type=int, default=None,
                        help="interleaved timing repeats per mode")
    args = parser.parse_args(argv)

    off_bound = OFF_BOUND_QUICK if args.quick else OFF_BOUND_FULL
    repeats = args.repeats if args.repeats is not None else (3 if args.quick else 7)

    runs = [measure_backend(backend, args.quick, repeats) for backend in BACKENDS]
    results_table(runs, off_bound).show()
    for run in runs:
        critical_path_table(
            run["_report"], title=f"critical path ({run['backend']})"
        ).show()
        hop_table(run["_report"], title=f"lookup hops ({run['backend']})").show()

    path = emit(runs, off_bound, args.out, quick=args.quick)
    print(f"wrote {path}")

    problems = check_results(runs, off_bound)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


def test_obs_bench_quick(show, tmp_path):
    """CI-scale gate: bit-identity across every mode, bounded off-mode
    overhead, and full critical-path coverage on both backends."""
    runs = [measure_backend(backend, quick=True, repeats=2) for backend in BACKENDS]
    show(results_table(runs, OFF_BOUND_QUICK))
    emit(runs, OFF_BOUND_QUICK, tmp_path / "BENCH_obs.json", quick=True)
    for run in runs:
        assert run["identical"], run["backend"]
        assert run["critical_path"]["min_reconstructed"] >= RECONSTRUCTION_FLOOR
        # hop traces exist and attribute every lookup to a backend
        assert run["hop_profiles"], run["backend"]
        # Timing is asserted loosely here (shared CI runners): the
        # committed full-mode artifact enforces the real 2% bound via
        # check_regression --strict in the nightly.
        assert run["overhead_off"] < 2.0


if __name__ == "__main__":
    raise SystemExit(main())
