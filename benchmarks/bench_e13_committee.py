"""E13 -- committee sampling for Byzantine agreement (motivation 2, [8]).

Paper motivation: scalable Byzantine agreement elects committees of
random peers and needs them uniform.  We sweep the global Byzantine
fraction, comparing exact binomial failure probabilities with empirical
committees drawn by the uniform sampler, and show the blow-up when the
adversary parks its peers after the longest arcs and committees are
drawn with the naive sampler.
"""

from __future__ import annotations

import random

from repro import IdealDHT, RandomPeerSampler
from repro.apps.committee import (
    CommitteeSpec,
    committee_failure_probability,
    empirical_committee_failure,
)
from repro.baselines.naive import NaiveSampler
from repro.bench.harness import Table

N = 300
SPEC = CommitteeSpec(size=21, threshold=1.0 / 3.0)
FRACTIONS = [0.05, 0.15, 0.25]
ELECTIONS = 1200


def committee_rows():
    dht = IdealDHT.random(N, random.Random(140))
    arcs = dht.circle.arcs()
    by_arc = sorted(range(N), key=lambda i: arcs[i], reverse=True)
    rows = []
    for frac in FRACTIONS:
        byz = int(frac * N)
        exact = committee_failure_probability(N, byz, SPEC)
        uniform = RandomPeerSampler(dht, n_hat=float(N), rng=random.Random(141))
        byz_random = set(random.Random(142).sample(range(N), byz))
        empirical_uniform = empirical_committee_failure(
            uniform, lambda p: p.peer_id in byz_random, SPEC, ELECTIONS
        )
        naive = NaiveSampler(dht, random.Random(143))
        byz_adversarial = set(by_arc[:byz])  # adversary takes longest arcs
        empirical_naive = empirical_committee_failure(
            naive, lambda p: p.peer_id in byz_adversarial, SPEC, ELECTIONS
        )
        rows.append((frac, exact, empirical_uniform, empirical_naive))
    return rows


def test_e13_committee(benchmark, show):
    rows = committee_rows()
    table = Table(
        f"E13: committee failure probability (size {SPEC.size}, threshold 1/3)",
        ["byz fraction", "exact (uniform)", "empirical uniform", "naive + adversary"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("uniform committees match the binomial analysis; the naive")
    table.note("sampler lets an arc-squatting adversary break the 1/3 bound")
    show(table)

    for frac, exact, emp_uniform, emp_naive in rows:
        assert abs(emp_uniform - exact) < 0.06
        assert emp_naive >= emp_uniform
    # At the smallest fraction -- where uniform sampling is essentially
    # safe -- the arc-squatting adversary blows the failure rate up by
    # orders of magnitude under naive sampling.
    assert rows[0][3] > 20.0 * max(rows[0][1], 1e-4)

    dht = IdealDHT.random(N, random.Random(144))
    sampler = RandomPeerSampler(dht, n_hat=float(N), rng=random.Random(145))
    benchmark(
        lambda: empirical_committee_failure(
            sampler, lambda p: p.peer_id < 60, SPEC, elections=5
        )
    )
