"""Fault benchmark: what structured outages cost, and what recovery buys.

Drives the fault-scenario lab (:mod:`repro.scenarios.faults`) two ways:

- *headline*: the ``mass-failure`` and ``partition-heal`` presets at
  their full scale on both substrates -- the acceptance runs (a 40%
  regional kill of a 10k overlay must come back to 100% oracle-correct
  lookups, on Chord and Kademlia alike);
- *grid*: a kill-fraction x retry-policy sweep of the mass-kill
  scenario on both backends, quantifying how much of the outage window
  a retry discipline papers over (error rate under damage) and what it
  charges for the privilege (messages per lookup, all attempts metered).

Reported per run: recovery (rounds to all-correct within budget),
outage and post-recovery error rates, and message-per-lookup inflation
against the pre-fault baseline.

Results go to ``BENCH_faults.json`` at the repo root (schema in
docs/BENCHMARKS.md).  Run standalone
(``PYTHONPATH=src python benchmarks/bench_faults.py``, add ``--quick``
for the CI smoke configuration) or under pytest.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.harness import Table, write_bench_json
from repro.scenarios import FaultScenarioSpec, fault_preset, run_fault_scenario

SEED = 0
DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_faults.json"

BACKENDS = ("chord", "kademlia")

#: The retry-policy axis: no retries at all, the legacy back-to-back
#: discipline, and bounded exponential backoff with seeded jitter.
POLICIES = {
    "none": dict(retry_attempts=1, retry_base_delay=0.0, retry_factor=1.0,
                 retry_jitter=0.0),
    "flat3": dict(retry_attempts=3, retry_base_delay=0.0, retry_factor=1.0,
                  retry_jitter=0.0),
    "expo3": dict(retry_attempts=3, retry_base_delay=0.5, retry_factor=2.0,
                  retry_jitter=0.1),
}


def headline_specs(quick: bool) -> list[FaultScenarioSpec]:
    """The two scenario presets on both substrates."""
    shrink = dict(n=256, m=12, probes=32, recovery_round_budget=60) if quick else {}
    specs = []
    for preset_name in ("mass-failure", "partition-heal"):
        for backend in BACKENDS:
            spec = fault_preset(preset_name, backend=backend, seed=SEED, **shrink)
            specs.append(spec.with_(name=f"{preset_name}-{backend}"))
    return specs


def grid_specs(quick: bool) -> list[FaultScenarioSpec]:
    """Mass-kill sweep: backend x kill fraction x retry policy."""
    fractions = (0.4,) if quick else (0.3, 0.4, 0.5)
    policies = ("none", "expo3") if quick else tuple(POLICIES)
    scale = dict(n=256, m=12, probes=32) if quick else dict(n=2048, m=16, probes=64)
    base = fault_preset("mass-failure", seed=SEED, recovery_round_budget=80, **scale)
    specs = []
    for backend in BACKENDS:
        for fraction in fractions:
            for policy in policies:
                specs.append(
                    base.with_(
                        name=f"kill{int(fraction * 100)}-{policy}-{backend}",
                        backend=backend,
                        kill_fraction=fraction,
                        **POLICIES[policy],
                    )
                )
    return specs


def _policy_label(spec: FaultScenarioSpec) -> str:
    for label, fields in POLICIES.items():
        if all(getattr(spec, key) == value for key, value in fields.items()):
            return label
    return f"attempts={spec.retry_attempts}"


def run_all(specs) -> list:
    results = []
    for spec in specs:
        results.append(run_fault_scenario(spec))
    return results


def results_table(results, title: str) -> Table:
    table = Table(
        title=title,
        headers=["scenario", "backend", "fault", "policy", "recovered",
                 "rounds", "outage err", "post err", "msgs x outage",
                 "msgs x post", "wall s"],
    )
    for r in results:
        table.add_row(
            r.spec.name,
            r.spec.backend,
            r.spec.fault,
            _policy_label(r.spec),
            r.recovered,
            r.recovery_rounds if r.recovery_rounds is not None else "-",
            r.outage.error_rate,
            r.post.error_rate,
            r.msgs_inflation_outage or 0.0,
            r.msgs_inflation_post or 0.0,
            r.wall_seconds,
        )
    table.note("msgs x = messages per lookup relative to the pre-fault baseline")
    return table


def check_results(headline, grid) -> list[str]:
    """The benchmark's gates; returns human-readable violations."""
    problems = []
    for r in headline:
        if not r.recovered:
            problems.append(
                f"{r.spec.name}: did not recover "
                f"(rounds={r.recovery_rounds}, post_err={r.post.error_rate:.3f})"
            )
        if r.post.error_rate != 0.0:
            problems.append(
                f"{r.spec.name}: post-recovery lookups not oracle-perfect "
                f"({r.post.error_rate:.3f})"
            )
    for r in grid:
        # The sweep tolerates slower recovery under weak retry policies,
        # but blowing the (generous) round budget is a repair failure.
        if not r.recovered:
            problems.append(f"grid {r.spec.name}: did not recover in budget")
    return problems


def emit(headline, grid, out: Path, quick: bool) -> Path:
    def rows(results):
        out_rows = []
        for r in results:
            record = r.to_record()
            record["policy"] = _policy_label(r.spec)
            out_rows.append(record)
        return out_rows

    record = {
        "seed": SEED,
        "quick": quick,
        "headline": rows(headline),
        "grid": rows(grid),
        "generated_unix": time.time(),
    }
    return write_bench_json(out, record)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument("--no-grid", action="store_true",
                        help="skip the kill-fraction x retry-policy sweep")
    args = parser.parse_args(argv)

    headline = run_all(headline_specs(args.quick))
    results_table(headline, "fault presets: structured outages end to end").show()

    grid = []
    if not args.no_grid:
        grid = run_all(grid_specs(args.quick))
        results_table(grid, "mass-kill sweep: kill fraction x retry policy").show()

    path = emit(headline, grid, args.out, quick=args.quick)
    print(f"wrote {path}")

    problems = check_results(headline, grid)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


def test_faults_bench_quick(show, tmp_path):
    """CI-scale outages: both presets recover on both backends and the
    sweep stays within its repair budget, without unhandled exceptions."""
    headline = run_all(headline_specs(quick=True))
    show(results_table(headline, "fault presets (quick)"))
    grid = run_all(grid_specs(quick=True))
    show(results_table(grid, "mass-kill sweep (quick)"))
    emit(headline, grid, tmp_path / "BENCH_faults.json", quick=True)
    assert check_results(headline, grid) == []
    # the outage must wound lookups before repair runs, or the scenario
    # is not measuring anything
    assert any(r.outage.error_rate > 0.0 for r in headline)


if __name__ == "__main__":
    raise SystemExit(main())
