"""Chord-path lookup throughput: scalar h() loop vs the lockstep engine.

Thin entry point around :mod:`repro.bench.chord_batch` (also reachable
as ``python -m repro bench chord-batch``), kept in ``benchmarks/`` so
the artifact-producing scripts stay discoverable in one place.  See the
module docstring there for what is measured and verified; results land
in ``BENCH_chord_batch.json`` at the repo root.
"""

from __future__ import annotations

from repro.bench.chord_batch import emit, main, run


def test_chord_batch_quick(show, tmp_path):
    """Smoke configuration: lockstep must beat scalar *and* stay identical."""
    table, results = run([512], 300, seed=0, repeat=1)
    show(table)
    emit(results, tmp_path / "BENCH_chord_batch.json", quick=True, seed=0)
    for row in results:
        assert row["identical_peers"], row
        assert row["identical_messages"], row
        assert row["identical_hops"], row
    static = [r for r in results if r["phase"] == "static"]
    assert all(r["speedup"] > 1.2 for r in static)


if __name__ == "__main__":
    raise SystemExit(main())
