"""E5 -- latency and message scaling (Theorem 7).

Paper claim: one sample costs ``O(t_h + log n)`` latency and
``O(m_h + log n)`` messages in expectation.  We sweep ``n`` on the ideal
oracle (synthetic ``t_h = m_h = log2 n``) and on simulated Chord
(measured hop counts), reporting per-sample means.  Columns divided by
``log2 n`` must stay near-constant across a wide size range.
"""

from __future__ import annotations

import math
import random

from repro import ChordNetwork, IdealDHT, RandomPeerSampler
from repro.bench.harness import Table

IDEAL_SIZES = [256, 1024, 4096, 16384]
CHORD_SIZES = [64, 128, 256]
SAMPLES = 120


def ideal_rows():
    rows = []
    for n in IDEAL_SIZES:
        dht = IdealDHT.random(n, random.Random(n))
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(n + 1))
        stats = [sampler.sample_with_stats() for _ in range(SAMPLES)]
        msgs = sum(s.cost.messages for s in stats) / SAMPLES
        latency = sum(s.cost.latency for s in stats) / SAMPLES
        trials = sum(s.trials for s in stats) / SAMPLES
        rows.append((n, trials, msgs, latency, msgs / math.log2(n)))
    return rows


def chord_rows():
    rows = []
    for n in CHORD_SIZES:
        net = ChordNetwork.build(n, m=20, rng=random.Random(n))
        dht = net.dht()
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(n + 1))
        stats = [sampler.sample_with_stats() for _ in range(40)]
        msgs = sum(s.cost.messages for s in stats) / len(stats)
        rows.append((n, msgs, msgs / math.log2(n)))
    return rows


def test_e5_ideal_scaling(benchmark, show):
    rows = ideal_rows()
    table = Table(
        "E5a: per-sample cost on the ideal DHT (t_h = m_h = log2 n)",
        ["n", "mean trials", "mean messages", "mean latency", "messages / log2 n"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("paper (Thm 7): O(m_h + log n) messages; normalized column ~flat")
    show(table)

    normalized = [r[4] for r in rows]
    # Across a 64x size sweep the normalized cost varies by < 2.5x while
    # raw n varies 64x: that is logarithmic scaling.
    assert max(normalized) / min(normalized) < 2.5

    dht = IdealDHT.random(4096, random.Random(3))
    sampler = RandomPeerSampler(dht, n_hat=4096.0, rng=random.Random(4))
    benchmark(sampler.sample)


def test_e5_chord_scaling(benchmark, show):
    rows = chord_rows()
    table = Table(
        "E5b: per-sample cost on simulated Chord (measured hops)",
        ["n", "mean messages", "messages / log2 n"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("same O(log n) shape with Chord's real iterative lookups")
    show(table)
    normalized = [r[2] for r in rows]
    assert max(normalized) / min(normalized) < 3.0

    net = ChordNetwork.build(128, m=20, rng=random.Random(8))
    dht = net.dht()
    sampler = RandomPeerSampler(dht, n_hat=128.0, rng=random.Random(9))
    benchmark(sampler.sample)
