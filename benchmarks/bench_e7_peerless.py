"""E7 -- consecutive maximally peerless intervals (Lemma 4 / property 3).

Paper claim: w.h.p. every ``6 ln n`` consecutive maximally peerless
intervals (= predecessor arcs) together span at least ``(ln n)/n``.
This is the supplementation slack that makes the walk of Figure 1
terminate within budget.  We report the minimum window sum over sliding
windows, normalized by the bound, across sizes and rings.
"""

from __future__ import annotations

import random
import statistics

from repro import SortedCircle, check_lemma4
from repro.bench.harness import Table

SIZES = [512, 2048, 8192]
RINGS = 15


def lemma4_rows():
    rows = []
    for n in SIZES:
        margins = []
        failures = 0
        window = bound = None
        for seed in range(RINGS):
            report = check_lemma4(SortedCircle.random(n, random.Random(seed)))
            margins.append(report.min_window_sum / report.bound)
            failures += 0 if report.holds else 1
            window, bound = report.window, report.bound
        rows.append(
            (n, window, bound, min(margins), statistics.median(margins), failures)
        )
    return rows


def test_e7_peerless_windows(benchmark, show):
    rows = lemma4_rows()
    table = Table(
        "E7: min sum of 6 ln n consecutive peerless intervals / bound",
        ["n", "window", "bound (ln n)/n", "min margin", "median margin", "violations"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("paper (Lemma 4): margin >= 1 w.p. >= 1 - 1/n")
    show(table)
    for n, w, b, min_margin, med_margin, failures in rows:
        assert failures == 0
        assert min_margin >= 1.0
        # Expected window mass is ~6 ln n / n = 6x the bound, so the
        # median margin should sit comfortably above 2.
        assert med_margin > 2.0

    circle = SortedCircle.random(8192, random.Random(0))
    benchmark(lambda: check_lemma4(circle))
