"""E10 -- load balancing via random peer choice (motivation 2, [7]).

Paper motivation: randomized load-balancing algorithms need a uniform
peer sampler.  We allocate ``m`` tasks to ``n`` peers with one and two
uniform choices versus the naive biased sampler, and compare maximum
loads against balls-in-bins theory.
"""

from __future__ import annotations

import random

from repro import IdealDHT, RandomPeerSampler
from repro.apps.loadbalance import (
    assign_tasks,
    one_choice_max_load_theory,
    two_choice_max_load_theory,
)
from repro.baselines.naive import NaiveSampler
from repro.bench.harness import Table

N = 512
MULTIPLIERS = [1, 4, 16]


def load_rows():
    dht = IdealDHT.random(N, random.Random(100))
    rows = []
    for mult in MULTIPLIERS:
        tasks = mult * N
        uniform1 = assign_tasks(
            RandomPeerSampler(dht, n_hat=float(N), rng=random.Random(101 + mult)),
            N, tasks, choices=1,
        )
        uniform2 = assign_tasks(
            RandomPeerSampler(dht, n_hat=float(N), rng=random.Random(201 + mult)),
            N, tasks, choices=2,
        )
        naive1 = assign_tasks(
            NaiveSampler(dht, random.Random(301 + mult)), N, tasks, choices=1
        )
        rows.append(
            (
                tasks,
                uniform1.max_load,
                one_choice_max_load_theory(N, tasks),
                uniform2.max_load,
                two_choice_max_load_theory(N, tasks),
                naive1.max_load,
            )
        )
    return rows


def test_e10_loadbalance(benchmark, show):
    rows = load_rows()
    table = Table(
        f"E10: max load, {N} peers (uniform 1-choice/2-choice vs naive)",
        ["tasks", "uniform-1", "theory-1", "uniform-2", "theory-2", "naive-1"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("theory: ln n/ln ln n at m=n; m/n + O(sqrt) beyond; 2-choice log log n")
    show(table)

    for tasks, u1, t1, u2, t2, n1 in rows:
        assert n1 > u1  # biased choice always loses
        assert u2 <= u1  # power of two choices
        assert u1 <= 4.0 * t1  # right order vs balls-in-bins
        mean = tasks / N
        assert u1 >= mean  # sanity

    dht = IdealDHT.random(N, random.Random(110))
    sampler = RandomPeerSampler(dht, n_hat=float(N), rng=random.Random(111))
    benchmark(lambda: assign_tasks(sampler, N, N // 2, choices=2))
