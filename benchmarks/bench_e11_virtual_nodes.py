"""E11 -- virtual nodes: balance vs maintenance bandwidth (related work).

Paper position: virtual nodes ([16]) smooth the arc distribution but
"increase the bandwidth required for basic network maintenance", which
is why the paper targets the plain DHT.  We sweep the virtual-node count
``v``, reporting the naive-sampling bias that remains and the
stabilization message cost per round.
"""

from __future__ import annotations

import math
import random
import statistics

from repro.analysis.stats import max_min_ratio
from repro.baselines.virtual_nodes import (
    VirtualNodeRing,
    maintenance_messages_per_round,
)
from repro.bench.harness import Table

N = 512
VS = [1, 2, 4, 8, 16]
RINGS = 10


def virtual_rows():
    rows = []
    for v in VS:
        ratios = []
        shares = []
        for seed in range(RINGS):
            ring = VirtualNodeRing.random(N, v, random.Random(seed))
            probs = ring.selection_probabilities()
            ratios.append(max_min_ratio(probs))
            shares.append(max(probs) * N)  # max share / fair share
        rows.append(
            (
                v,
                statistics.median(ratios),
                statistics.median(shares),
                maintenance_messages_per_round(N, v),
            )
        )
    return rows


def test_e11_virtual_nodes(benchmark, show):
    rows = virtual_rows()
    table = Table(
        f"E11: virtual nodes -- residual bias vs maintenance cost (n={N})",
        ["v", "naive max/min (median)", "max share x n", "maintenance msgs/round"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("balance improves with v, but maintenance grows ~linearly in v")
    table.note(f"v = log2 n = {int(math.log2(N))} is the Chord recommendation")
    show(table)

    ratios = [r[1] for r in rows]
    costs = [r[3] for r in rows]
    # Monotone trends in opposite directions: that's the trade-off.
    assert ratios[-1] < ratios[0] / 4.0
    assert all(costs[i] < costs[i + 1] for i in range(len(costs) - 1))
    assert costs[-1] > 10 * costs[0]
    # Even v=16 never reaches the exact sampler's ratio of 1.
    assert ratios[-1] > 1.5

    benchmark(lambda: VirtualNodeRing.random(N, 8, random.Random(0))
              .selection_probabilities())
