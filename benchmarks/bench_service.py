"""Service load benchmark: micro-batch vs. per-request dispatch.

Open-loop Poisson traffic drives the sampling service
(:mod:`repro.service`) at several shard counts, comparing micro-batch
dispatch (coalesce up to ``max_batch`` requests, execute through the
PR-1 vectorized engine) against per-request dispatch (batch size 1
through the scalar sampler).  Reported per configuration:

- *sustained req/s* -- completed requests per wall-clock second of
  simulation, the end-to-end serving throughput of this process;
- *sim throughput* -- completed requests per simulated time unit, the
  queueing-model capacity under the service-time model;
- queue/service/total latency tails (p50/p99, simulated units) and the
  rejection count (admission-control backpressure).

A second sweep varies the batch window ``max_wait`` to expose the
batching latency/throughput trade-off.  Results go to
``BENCH_service.json`` at the repo root; the full configuration serves
n=100k-peer shards and asserts micro-batch beats per-request dispatch
on sustained req/s at every shard count.

Run standalone (``PYTHONPATH=src python benchmarks/bench_service.py``,
add ``--quick`` for the CI smoke configuration) or under pytest.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from repro.bench.harness import Table, write_bench_json
from repro.service import build_load, build_service

FULL_N = 100_000
FULL_REQUESTS = 3_000
FULL_SHARDS = [1, 4]
FULL_WINDOWS = [0.25, 1.0, 4.0, 16.0]
QUICK_N = 2_000
QUICK_REQUESTS = 500
QUICK_SHARDS = [1, 2]
QUICK_WINDOWS = [0.5, 2.0]

#: Offered load per shard (requests per simulated time unit) -- chosen
#: above the scalar path's sim-time capacity so per-request dispatch
#: saturates (exercising admission control) while micro-batch keeps up.
RATE_PER_SHARD = 0.5

MAX_BATCH = 32
SEED = 0

DEFAULT_OUT = Path(__file__).resolve().parent.parent / "BENCH_service.json"


def measure(
    n: int,
    shards: int,
    dispatch: str,
    requests: int,
    *,
    max_wait: float = 2.0,
    rate_per_shard: float = RATE_PER_SHARD,
) -> dict:
    """Drive one configuration to completion; return its scorecard."""
    service = build_service(
        n=n,
        shards=shards,
        seed=SEED,
        dispatch=dispatch,  # scalar mode forces per-request (batch size 1)
        max_batch=MAX_BATCH,
        max_wait=max_wait,
    )
    generator = build_load(
        service, rate=rate_per_shard * shards, total=requests, seed=SEED
    )
    generator.start()
    start = time.perf_counter()
    service.run()
    wall = time.perf_counter() - start
    summary = service.summary()
    lat = summary["latency"]
    return {
        "n": n,
        "shards": shards,
        "dispatch": dispatch,
        "max_wait": max_wait,
        "offered": requests,
        "completed": summary["completed"],
        "rejected": summary["rejected"],
        "wall_seconds": wall,
        "sustained_rps": summary["completed"] / wall if wall > 0 else 0.0,
        "sim_elapsed": summary["elapsed"],
        "sim_throughput": summary["throughput"],
        "mean_batch": summary["batch_size"]["mean"],
        "queue_p50": lat["queue_latency"]["p50"],
        "queue_p99": lat["queue_latency"]["p99"],
        "service_p99": lat["service_latency"]["p99"],
        "total_p99": lat["total_latency"]["p99"],
    }


def run_dispatch_comparison(n: int, shard_counts, requests: int):
    table = Table(
        f"service throughput: micro-batch vs per-request dispatch (n={n}/shard)",
        ["shards", "dispatch", "completed", "rejected", "sustained req/s",
         "sim thr", "q p99", "total p99"],
    )
    results = []
    for shards in shard_counts:
        for dispatch in ("batch", "scalar"):
            row = measure(n, shards, dispatch, requests)
            results.append(row)
            table.add_row(
                shards, dispatch, row["completed"], row["rejected"],
                row["sustained_rps"], row["sim_throughput"],
                row["queue_p99"], row["total_p99"],
            )
    table.note("batch = coalesced sample_many on the bulk engine (max_batch=32)")
    table.note("scalar = one dispatch per request through the per-call sampler")
    table.note("latency in simulated time units; req/s in wall-clock seconds")
    return table, results


def run_window_sweep(n: int, windows, requests: int):
    table = Table(
        f"batch window sweep (n={n}, 1 shard, micro-batch)",
        ["max_wait", "mean batch", "sustained req/s", "q p50", "q p99", "total p99"],
    )
    results = []
    for window in windows:
        row = measure(n, 1, "batch", requests, max_wait=window, rate_per_shard=0.3)
        results.append(row)
        table.add_row(
            window, row["mean_batch"], row["sustained_rps"],
            row["queue_p50"], row["queue_p99"], row["total_p99"],
        )
    table.note("longer windows grow batches (amortization) at queue-latency cost")
    return table, results


def emit(dispatch_results, window_results, out: Path, quick: bool) -> Path:
    record = {
        "benchmark": "service_load",
        "substrate": "IdealDHT",
        "quick": quick,
        "seed": SEED,
        "rate_per_shard": RATE_PER_SHARD,
        "max_batch": MAX_BATCH,
        "generated_unix": time.time(),
        "dispatch_comparison": dispatch_results,
        "window_sweep": window_results,
    }
    return write_bench_json(out, record)


def check_batch_wins(dispatch_results) -> float:
    """Worst micro-batch/per-request sustained-req/s ratio across shard counts."""
    worst = float("inf")
    by_key = {(r["shards"], r["dispatch"]): r for r in dispatch_results}
    for shards in {r["shards"] for r in dispatch_results}:
        ratio = (
            by_key[(shards, "batch")]["sustained_rps"]
            / by_key[(shards, "scalar")]["sustained_rps"]
        )
        worst = min(worst, ratio)
    return worst


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    args = parser.parse_args(argv)

    if args.quick:
        n, requests, shard_counts, windows = QUICK_N, QUICK_REQUESTS, QUICK_SHARDS, QUICK_WINDOWS
    else:
        n, requests, shard_counts, windows = FULL_N, FULL_REQUESTS, FULL_SHARDS, FULL_WINDOWS

    d_table, d_results = run_dispatch_comparison(n, shard_counts, requests)
    d_table.show()
    w_table, w_results = run_window_sweep(n, windows, requests)
    w_table.show()
    path = emit(d_results, w_results, args.out, quick=args.quick)
    print(f"wrote {path}")

    worst = check_batch_wins(d_results)
    floor = 1.5
    if worst < floor:
        print(f"FAIL: micro-batch/per-request sustained ratio {worst:.2f}x "
              f"below the {floor:.1f}x floor", file=sys.stderr)
        return 1
    print(f"micro-batch beats per-request dispatch {worst:.1f}x (floor {floor:.1f}x)")
    return 0


def test_service_bench_quick(show, tmp_path):
    """Smoke configuration: micro-batch must beat per-request dispatch."""
    d_table, d_results = run_dispatch_comparison(QUICK_N, [1, 2], 300)
    show(d_table)
    w_table, w_results = run_window_sweep(QUICK_N, [0.5, 2.0], 300)
    show(w_table)
    emit(d_results, w_results, tmp_path / "BENCH_service.json", quick=True)
    assert check_batch_wins(d_results) > 1.2
    # the window sweep must show amortization: batches grow with the window
    assert w_results[-1]["mean_batch"] >= w_results[0]["mean_batch"]


if __name__ == "__main__":
    raise SystemExit(main())
