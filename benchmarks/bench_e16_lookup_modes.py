"""E16 -- ablation: iterative vs recursive Chord lookups.

The paper charges ``t_h``/``m_h`` per ``h`` call without fixing the
DHT's routing style.  Chord supports both: *iterative* (the client
drives every hop -- twice the messages, but it can route around dead
hops) and *recursive* (the query is forwarded and only the owner
replies -- cheaper, but a casualty anywhere silently kills the query).
This ablation quantifies both sides: cost per ``h`` on a healthy ring,
and success rate with a fraction of the ring freshly crashed.
"""

from __future__ import annotations

import random

from repro.bench.harness import Table
from repro.dht.chord import ChordNetwork
from repro.dht.chord.node import LookupError_

SIZES = [64, 128, 256]
CRASH_FRACTION = 0.15
PROBES = 60


def healthy_rows():
    rows = []
    for n in SIZES:
        net = ChordNetwork.build(n, m=20, rng=random.Random(n + 7))
        for mode in ("iterative", "recursive"):
            dht = net.dht(lookup_mode=mode)
            rng = random.Random(1)
            before = dht.cost.snapshot()
            for _ in range(PROBES):
                dht.h(1.0 - rng.random())
            delta = dht.cost.snapshot() - before
            rows.append((n, mode, delta.messages / PROBES, delta.latency / PROBES))
    return rows


def crash_rows():
    rows = []
    for mode in ("iterative", "recursive"):
        net = ChordNetwork.build(128, m=20, rng=random.Random(99))
        victims = list(net.nodes)[:: int(1 / CRASH_FRACTION)]
        for v in victims:
            net.crash_node(v)
        # Probe immediately, before any stabilization: stale pointers
        # everywhere.  Raw node-level lookups (no adapter retries).
        entry = net.nodes[min(net.nodes)]
        rng = random.Random(2)
        ok = 0
        for _ in range(PROBES):
            from repro.dht.chord.idspace import point_to_target_id

            target = point_to_target_id(1.0 - rng.random(), 20)
            try:
                if mode == "recursive":
                    result = entry.lookup_recursive(target)
                else:
                    result = entry.lookup(target)
                if result.node_id in net.nodes:
                    ok += 1
            except LookupError_:
                pass
        rows.append((mode, len(victims), ok / PROBES))
    return rows


def test_e16_lookup_modes(benchmark, show):
    rows = healthy_rows()
    table = Table(
        "E16a: h() cost by lookup mode (healthy ring)",
        ["n", "mode", "messages / h", "latency / h"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("recursive: no per-hop replies, no owner ping -> ~half the cost")
    show(table)

    by_key = {(n, mode): (m, lat) for n, mode, m, lat in rows}
    for n in SIZES:
        it_m, it_l = by_key[(n, "iterative")]
        rec_m, rec_l = by_key[(n, "recursive")]
        assert rec_m < it_m
        assert rec_l < it_l

    crash = crash_rows()
    table2 = Table(
        f"E16b: lookup success with {CRASH_FRACTION:.0%} fresh crashes, no repair",
        ["mode", "crashed nodes", "success rate"],
    )
    for row in crash:
        table2.add_row(*row)
    table2.note("iterative clients reroute around casualties; recursive queries die")
    show(table2)
    success = {mode: rate for mode, _, rate in crash}
    assert success["iterative"] > success["recursive"]
    assert success["iterative"] >= 0.9

    net = ChordNetwork.build(128, m=20, rng=random.Random(3))
    dht = net.dht(lookup_mode="recursive")
    rng = random.Random(4)
    benchmark(lambda: dht.h(1.0 - rng.random()))
