"""Regression guard: compare fresh bench output against committed baselines.

Every benchmark writes a ``BENCH_*.json`` artifact at the repo root; CI
regenerates them in ``--quick`` mode on every push.  This script diffs
the fresh records against the committed baselines (``git show
<ref>:BENCH_*.json`` by default) and flags perf metrics that fell beyond
a tolerance, plus any exact invariant (scalar/batch identity flags, ring
recovery) that flipped from healthy to broken.

Quick-mode output is compared against full-mode baselines, so metrics
are keyed only by configuration axes both modes share (ring size,
dispatch mode, scenario name -- never batch counts or request totals)
and the default tolerance is deliberately loose: the guard exists to
catch a 3x cliff from a bad refactor, not 10% noise.  It is wired into
PR CI as a *non-blocking* step (``continue-on-error``): a red run is a
prompt to look at the numbers, not a merge gate.  The nightly workflow
runs it *blocking* with ``--strict``.

A fresh artifact with **no committed baseline always fails** (exit 1):
an uncommitted ``BENCH_*.json`` is a hole in the safety net, not a
pass.  ``--strict`` additionally fails on missing fresh artifacts and
on empty comparisons, so silent coverage loss cannot slip through the
nightly.

Usage::

    PYTHONPATH=src python benchmarks/check_regression.py            # worktree vs HEAD
    PYTHONPATH=src python benchmarks/check_regression.py --run      # regenerate quick first
    PYTHONPATH=src python benchmarks/check_regression.py --baseline-dir /path/to/baselines
    PYTHONPATH=src python benchmarks/check_regression.py --strict   # the nightly's mode
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent

#: How each fresh quick benchmark is regenerated under ``--run``.
QUICK_COMMANDS = {
    "BENCH_throughput.json": ["benchmarks/bench_e17_throughput.py", "--quick"],
    "BENCH_chord_batch.json": ["benchmarks/bench_chord_batch.py", "--quick"],
    "BENCH_service.json": ["benchmarks/bench_service.py", "--quick"],
    "BENCH_churn.json": ["benchmarks/bench_churn.py", "--quick"],
    "BENCH_backends.json": ["benchmarks/bench_backends.py", "--quick"],
    "BENCH_faults.json": ["benchmarks/bench_faults.py", "--quick"],
    "BENCH_obs.json": ["benchmarks/bench_obs.py", "--quick"],
    "BENCH_adversary.json": ["benchmarks/bench_adversary.py", "--quick"],
    "BENCH_async.json": ["benchmarks/bench_async.py", "--quick"],
    "BENCH_scale.json": ["benchmarks/bench_scale.py", "--quick"],
}

#: Metric direction markers.
HIGHER, LOWER, EXACT = "higher-is-better", "lower-is-better", "exact"

#: Per-artifact tolerance overrides (ratio floor for perf metrics).
#: The scale curves are the scaling contract itself: memory/node is
#: deterministic and lookups/sec is measured on dedicated full-mode
#: decades, so the gate holds both to within 10% instead of the loose
#: quick-vs-full default.
TOLERANCES = {
    "BENCH_scale.json": 0.9,
}

#: Peak-RSS ceilings per artifact, in KiB, enforced under ``--strict``
#: (the nightly).  Benches have stamped ``peak_rss_kb`` into their
#: records since the observability PR; a fresh record over its ceiling
#: fails the nightly even if every relative metric held, so a structure
#: that suddenly holds the whole workload resident cannot ride in under
#: the ratio gates.  Records without the stamp (pre-stamp baselines,
#: non-POSIX hosts) are skipped.  Ceilings are sized ~3x the observed
#: full-mode footprint to absorb allocator noise, except scale, whose
#: 1e7 build-only decade legitimately peaks above 5 GiB.
RSS_CEILINGS_KB = {
    "BENCH_throughput.json": 2_000_000,
    "BENCH_chord_batch.json": 2_000_000,
    "BENCH_service.json": 2_000_000,
    "BENCH_churn.json": 2_000_000,
    "BENCH_backends.json": 4_000_000,
    "BENCH_faults.json": 2_000_000,
    "BENCH_obs.json": 2_000_000,
    "BENCH_adversary.json": 2_000_000,
    "BENCH_async.json": 2_000_000,
    "BENCH_scale.json": 16_000_000,
}


def _metrics_throughput(record: dict) -> dict:
    out = {}
    for row in record.get("results", []):
        out[f"n={row['n']}/speedup"] = (row["speedup"], HIGHER)
    return out


def _metrics_chord_batch(record: dict) -> dict:
    out = {}
    for row in record.get("results", []):
        key = f"n={row['n']}/{row['phase']}"
        out[f"{key}/speedup"] = (row["speedup"], HIGHER)
        for flag in ("identical_peers", "identical_messages", "identical_hops"):
            out[f"{key}/{flag}"] = (bool(row.get(flag)), EXACT)
    return out


def _metrics_service(record: dict) -> dict:
    out = {}
    for row in record.get("dispatch_comparison", []):
        key = f"n={row['n']}/shards={row['shards']}/{row['dispatch']}"
        out[f"{key}/sustained_rps"] = (row["sustained_rps"], HIGHER)
    return out


def _metrics_churn(record: dict) -> dict:
    out = {}
    for scenario in record.get("scenarios", []):
        name = scenario.get("spec", {}).get("name", "?")
        out[f"{name}/ring_recovered"] = (bool(scenario.get("ring_recovered")), EXACT)
        inflation = (scenario.get("inflation") or {}).get("messages_per_sample")
        if inflation is not None:
            out[f"{name}/msgs_per_sample_inflation"] = (inflation, LOWER)
    return out


def _metrics_backends(record: dict) -> dict:
    out = {}
    for row in record.get("results", []):
        key = f"{row['backend']}/n={row['n']}/{row['phase']}"
        out[f"{key}/sustained_rps"] = (row["sustained_rps"], HIGHER)
        out[f"{key}/msgs_per_sample"] = (row["msgs_per_sample"], LOWER)
        if row["phase"] == "static":
            # Dead draws are an invariant violation only on a static
            # overlay; the churn phase tolerates them by design (that is
            # what its stale_trials column records).
            out[f"{key}/all_sampled_live"] = (bool(row.get("all_sampled_live")), EXACT)
    return out


def _metrics_faults(record: dict) -> dict:
    # Keyed by fault/backend and by kill-fraction/policy/backend -- the
    # axes quick and full mode share (never by n or probe count, which
    # differ between modes; recovery rounds are budget-normalized
    # enough at both scales for the loose tolerance to hold).
    out = {}
    for row in record.get("headline", []):
        spec = row.get("spec", {})
        key = f"{spec.get('fault', '?')}/{spec.get('backend', '?')}"
        out[f"{key}/recovered"] = (bool(row.get("recovered")), EXACT)
        out[f"{key}/post_error_rate"] = (row.get("phases", {})
                                         .get("post", {})
                                         .get("error_rate", 1.0), LOWER)
    for row in record.get("grid", []):
        spec = row.get("spec", {})
        key = (f"kill={spec.get('kill_fraction', '?')}"
               f"/{row.get('policy', '?')}/{spec.get('backend', '?')}")
        out[f"{key}/recovered"] = (bool(row.get("recovered")), EXACT)
        inflation = row.get("msgs_inflation_outage")
        if inflation is not None:
            out[f"{key}/msgs_inflation_outage"] = (inflation, LOWER)
    return out


def _metrics_obs(record: dict) -> dict:
    # Keyed by backend and sampling mode only (shared across quick and
    # full).  The invariant flags are the teeth: bit-identity of the
    # traced/untraced/bare records, the tracing-off wall-clock bound
    # (asserted in-run against the record's own off_bound, so quick's
    # looser bound never masks a full-mode violation), and critical-path
    # coverage.  The raw ratios ride along as loosely-guarded perf
    # metrics.
    out = {}
    floor = record.get("reconstruction_floor", 0.99)
    bound = record.get("off_bound")
    for backend, run in sorted(record.get("backends", {}).items()):
        out[f"{backend}/identical"] = (bool(run.get("identical")), EXACT)
        overhead_off = run.get("overhead_off")
        if overhead_off is not None and bound is not None:
            out[f"{backend}/off_within_bound"] = (overhead_off <= bound, EXACT)
            out[f"{backend}/overhead_off"] = (overhead_off, LOWER)
        reconstructed = (run.get("critical_path") or {}).get("min_reconstructed")
        if reconstructed is not None:
            out[f"{backend}/critical_path_ok"] = (reconstructed >= floor, EXACT)
        for mode, ratio in sorted((run.get("overhead_vs_off") or {}).items()):
            out[f"{backend}/{mode}/overhead_vs_off"] = (ratio, LOWER)
    return out


def _metrics_adversary(record: dict) -> dict:
    # Keyed by backend and by (fraction, strategy) sweep cell -- the axes
    # quick and full mode share (quick runs a subset, so only overlapping
    # cells compare).  The invariants are the teeth: the fraction-0 run
    # must stay bit-identical to the bare pre-adversary transport, the
    # statistical harness must keep rejecting its planted-bug sampler and
    # accepting the honest one, and adversarial runs must keep draining.
    out = {}
    self_test = record.get("harness_self_test", {})
    if self_test:
        out["self_test/honest_accepted"] = (
            bool(self_test.get("honest_accepted")), EXACT)
        out["self_test/biased_rejected"] = (
            bool(self_test.get("biased_rejected")), EXACT)
    for backend, run in sorted(record.get("backends", {}).items()):
        zero = run.get("zero_overhead", {})
        out[f"{backend}/zero_overhead_identical"] = (
            bool(zero.get("identical")), EXACT)
        for cell in run.get("sweep", []):
            key = f"{backend}/f={cell['fraction']:g}/{cell['strategy']}"
            out[f"{key}/drained"] = (
                cell.get("failed", 1) <= cell.get("completed", 0), EXACT)
            rate = cell.get("capture_rate")
            if rate is not None and cell["fraction"] > 0:
                # adversarial capture collapsing to zero means the lie
                # surface came unwired, not that the repo got better
                out[f"{key}/capture_rate"] = (rate, HIGHER)
    return out


def _metrics_async(record: dict) -> dict:
    # Keyed by backend for the scale-insensitive invariants (recovery to
    # oracle-perfect lookups, hop-RTT ceiling -- the latency model is the
    # same at every n, so quick vs full compares fairly); the sim-clock
    # recovery time grows with overlay size, so it is additionally keyed
    # by n and only compares between runs of the same scale.
    out = {}
    for row in record.get("results", []):
        spec = row.get("spec", {})
        backend = spec.get("backend", "?")
        out[f"{backend}/recovered"] = (bool(row.get("recovered")), EXACT)
        out[f"{backend}/post_error_rate"] = (row.get("phases", {})
                                             .get("post", {})
                                             .get("error_rate", 1.0), LOWER)
        hop = row.get("hop_latency") or {}
        if hop.get("p99") is not None:
            out[f"{backend}/hop_p99"] = (hop["p99"], LOWER)
        if row.get("recovery_sim_time") is not None:
            out[f"{backend}/n={spec.get('n', '?')}/recovery_sim_time"] = (
                row["recovery_sim_time"], LOWER)
    return out


def _metrics_scale(record: dict) -> dict:
    # Keyed by backend and decade -- quick mode runs the n=1e5 decade
    # only, so the PR guard compares that shared row while the nightly
    # full run covers every decade.  bytes/node and lookups/sec are the
    # scaling contract (both gated at the tight scale tolerance); the
    # structural/oracle flags and the zero-full-rebuild churn invariant
    # are the teeth.
    out = {}
    for row in record.get("results", []):
        key = f"{row['backend']}/n={row['n']}"
        if row["phase"] == "build":
            out[f"{key}/bytes_per_node"] = (row["bytes_per_node"], LOWER)
            out[f"{key}/spot_check_ok"] = (bool(row.get("spot_check_ok")), EXACT)
        else:
            out[f"{key}/lookups_per_sec"] = (row["lookups_per_sec"], HIGHER)
            out[f"{key}/oracle_ok"] = (bool(row.get("oracle_ok")), EXACT)
    churn = record.get("churn") or {}
    if churn:
        out["churn/zero_full_rebuilds"] = (churn.get("full_rebuilds") == 0, EXACT)
        out["churn/incremental_equals_rebuild"] = (
            bool(churn.get("incremental_equals_rebuild")), EXACT)
        out["churn/soa_splice_equals_rebuild"] = (
            bool(churn.get("soa_splice_equals_rebuild")), EXACT)
    return out


EXTRACTORS = {
    "BENCH_throughput.json": _metrics_throughput,
    "BENCH_chord_batch.json": _metrics_chord_batch,
    "BENCH_service.json": _metrics_service,
    "BENCH_churn.json": _metrics_churn,
    "BENCH_backends.json": _metrics_backends,
    "BENCH_faults.json": _metrics_faults,
    "BENCH_obs.json": _metrics_obs,
    "BENCH_adversary.json": _metrics_adversary,
    "BENCH_async.json": _metrics_async,
    "BENCH_scale.json": _metrics_scale,
}


def _load_committed(name: str, ref: str, baseline_dir: Path | None) -> dict | None:
    if baseline_dir is not None:
        path = baseline_dir / name
        if not path.exists():
            return None
        return json.loads(path.read_text())
    proc = subprocess.run(
        ["git", "show", f"{ref}:{name}"],
        cwd=ROOT,
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:  # not committed yet (first run of a new bench)
        return None
    return json.loads(proc.stdout)


def compare(fresh: dict, committed: dict, extractor, tolerance: float) -> list[dict]:
    """Shared-key comparison: one verdict row per comparable metric."""
    fresh_metrics = extractor(fresh)
    committed_metrics = extractor(committed)
    rows = []
    for key in sorted(set(fresh_metrics) & set(committed_metrics)):
        new, kind = fresh_metrics[key]
        old, _ = committed_metrics[key]
        if kind == EXACT:
            # only a healthy->broken flip is a regression
            regressed = bool(old) and not bool(new)
        elif kind == HIGHER:
            regressed = old > 0 and new < old * tolerance
        else:  # LOWER
            regressed = old > 0 and new > old / tolerance
        rows.append(
            {"metric": key, "kind": kind, "committed": old, "fresh": new,
             "regressed": regressed}
        )
    return rows


def _fmt(value) -> str:
    return f"{value:.3g}" if isinstance(value, float) else str(value)


def _write_markdown(path: Path, summary, rss_lines, errors) -> None:
    """The comparison as one markdown document (the per-PR artifact)."""
    lines = ["# Benchmark regression summary", ""]
    for name, tolerance, rows in summary:
        regressed = sum(1 for r in rows if r["regressed"])
        verdict = f"**{regressed} regressed**" if regressed else "all ok"
        lines.append(f"## {name} — tolerance {tolerance:g}, {verdict}")
        lines.append("")
        lines.append("| metric | kind | committed | fresh | verdict |")
        lines.append("|---|---|---:|---:|---|")
        for row in rows:
            mark = "REGRESSED" if row["regressed"] else "ok"
            lines.append(
                f"| `{row['metric']}` | {row['kind']} | {_fmt(row['committed'])} "
                f"| {_fmt(row['fresh'])} | {mark} |"
            )
        lines.append("")
    if rss_lines:
        lines.append("## Peak RSS budgets")
        lines.append("")
        lines.extend(f"- {line}" for line in rss_lines)
        lines.append("")
    if errors:
        lines.append("## Errors")
        lines.append("")
        lines.extend(f"- {message}" for message in errors)
        lines.append("")
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text("\n".join(lines) + "\n")


def _run_quick(out_dir: Path, names) -> None:
    for name in names:
        cmd = QUICK_COMMANDS.get(name)
        if cmd is None:
            continue
        script, *flags = cmd
        print(f"-- regenerating {name} ({script} --quick)")
        subprocess.run(
            [sys.executable, str(ROOT / script), *flags, "--out", str(out_dir / name)],
            cwd=ROOT,
            check=True,
        )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--bench", action="append", choices=sorted(EXTRACTORS),
        help="restrict to these artifacts (default: all known)",
    )
    parser.add_argument(
        "--fresh-dir", type=Path, default=ROOT,
        help="directory holding the freshly generated BENCH_*.json (default: repo root)",
    )
    parser.add_argument(
        "--baseline-ref", default="HEAD",
        help="git ref to read committed baselines from (default: HEAD)",
    )
    parser.add_argument(
        "--baseline-dir", type=Path, default=None,
        help="read baselines from this directory instead of git",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.4,
        help="allowed fresh/committed ratio floor for perf metrics "
             "(default 0.4: quick-vs-full configs are only loosely comparable)",
    )
    parser.add_argument(
        "--run", action="store_true",
        help="regenerate the quick-mode artifacts into a temp dir first",
    )
    parser.add_argument(
        "--strict", action="store_true",
        help="missing fresh artifacts and empty comparisons fail too, and "
             "per-bench peak-RSS ceilings are enforced "
             "(the nightly's blocking mode); the default only skips them",
    )
    parser.add_argument(
        "--markdown-out", type=Path, default=None,
        help="also write the comparison as a markdown summary table "
             "(uploaded as a per-PR workflow artifact)",
    )
    args = parser.parse_args(argv)
    names = args.bench if args.bench else sorted(EXTRACTORS)

    fresh_dir = args.fresh_dir
    tmp = None
    if args.run:
        tmp = tempfile.TemporaryDirectory(prefix="bench-fresh-")
        fresh_dir = Path(tmp.name)
        _run_quick(fresh_dir, names)

    any_regressed = False
    compared = 0
    errors: list[str] = []
    summary: list[tuple[str, float, list[dict]]] = []
    rss_lines: list[str] = []
    for name in names:
        fresh_path = fresh_dir / name
        if not fresh_path.exists():
            if args.strict:
                errors.append(f"{name}: no fresh output at {fresh_path}")
            else:
                print(f"{name}: no fresh output at {fresh_path}, skipping")
            continue
        committed = _load_committed(name, args.baseline_ref, args.baseline_dir)
        if committed is None:
            # Fresh output exists but nothing is committed to guard it:
            # that is a hole in the safety net, not a pass.  Commit the
            # artifact (or --bench-restrict away from it) to go green.
            errors.append(
                f"{name}: fresh output present but no committed baseline "
                f"at {args.baseline_dir or args.baseline_ref}"
            )
            continue
        fresh = json.loads(fresh_path.read_text())

        # -- peak-RSS budget: an absolute ceiling, not a ratio ------------
        peak = fresh.get("peak_rss_kb")
        ceiling = RSS_CEILINGS_KB.get(name)
        if peak is not None and ceiling is not None:
            verdict = "over budget" if peak > ceiling else "ok"
            rss_lines.append(
                f"{name}: peak_rss={peak} KiB, ceiling={ceiling} KiB ({verdict})"
            )
            if peak > ceiling and args.strict:
                errors.append(
                    f"{name}: peak RSS {peak} KiB exceeds the "
                    f"{ceiling} KiB budget"
                )
        elif peak is None:
            rss_lines.append(f"{name}: no peak_rss_kb stamp (skipped)")

        # Per-bench tolerance overrides only ever tighten the gate.
        tolerance = max(args.tolerance, TOLERANCES.get(name, 0.0))
        rows = compare(fresh, committed, EXTRACTORS[name], tolerance)
        if not rows:
            if args.strict:
                errors.append(f"{name}: no comparable metrics (configurations disjoint)")
            else:
                print(f"{name}: no comparable metrics (configurations disjoint)")
            continue
        summary.append((name, tolerance, rows))
        print(f"== {name} (tolerance {tolerance:g}, baseline "
              f"{args.baseline_dir or args.baseline_ref})")
        for row in rows:
            compared += 1
            mark = "REGRESSED" if row["regressed"] else "ok"
            old, new = row["committed"], row["fresh"]
            print(f"  {mark:>9}  {row['metric']:<50} "
                  f"committed={_fmt(old):>8}  fresh={_fmt(new):>8}")
            any_regressed |= row["regressed"]
    if tmp is not None:
        tmp.cleanup()
    for line in rss_lines:
        print(f"rss: {line}")
    if args.markdown_out is not None:
        _write_markdown(args.markdown_out, summary, rss_lines, errors)
        print(f"wrote markdown summary to {args.markdown_out}")
    for message in errors:
        print(f"ERROR: {message}", file=sys.stderr)
    if compared == 0 and not errors:
        if args.strict:
            print("nothing compared (no overlapping artifacts): FAILED in "
                  "--strict mode", file=sys.stderr)
            return 1
        print("nothing compared (no overlapping artifacts); treating as pass")
        return 0
    if any_regressed or errors:
        print("regression check FAILED (inspect the rows and errors above)",
              file=sys.stderr)
        return 1
    print(f"regression check passed ({compared} metrics)")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
