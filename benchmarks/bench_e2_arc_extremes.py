"""E2 -- extreme arc lengths (Theorem 8 and Lemma 1).

Paper claims: w.h.p. the shortest predecessor arc is ``Theta(1/n^2)``
and the longest is ``Theta(log n / n)``.  The normalized columns
(shortest * n^2 and longest * n / ln n) should stay order-one across the
sweep, and every ring should satisfy Lemma 1's ``ln(1/arc)`` band.
"""

from __future__ import annotations

import random

from repro import SortedCircle, check_lemma1
from repro.analysis.arcs import sweep_arc_extremes
from repro.bench.harness import Table

SIZES = [256, 1024, 4096, 16384]
RINGS = 10


def test_e2_arc_extremes(benchmark, show):
    rng = random.Random(2024)
    rows = sweep_arc_extremes(SIZES, RINGS, rng)
    table = Table(
        "E2: extreme arcs vs theory scales (mean over rings)",
        ["n", "shortest", "shortest*n^2", "longest", "longest*n/ln n"],
    )
    for row in rows:
        table.add_row(
            row.n,
            row.mean_shortest,
            row.mean_shortest_ratio,
            row.mean_longest,
            row.mean_longest_ratio,
        )
    table.note("paper: shortest = Theta(1/n^2), longest = Theta(log n / n)")
    show(table)

    for row in rows:
        assert 0.05 < row.mean_shortest_ratio < 20.0
        assert 0.3 < row.mean_longest_ratio < 3.0

    # Lemma 1 property check across rings.
    lemma1_ok = sum(
        1
        for seed in range(20)
        if check_lemma1(SortedCircle.random(4096, random.Random(seed))).holds
    )
    assert lemma1_ok >= 19

    benchmark(lambda: sweep_arc_extremes([1024], 3, random.Random(1)))
