"""E8 -- random-walk sampling vs exact sampling (related work, [5]).

Paper position: random walks (Gkantsidis et al.) only *approximate*
uniformity, at a rate governed by the overlay's second eigenvalue, which
is unknown in practice.  We compute exact endpoint distributions on a
simulated Chord overlay for increasing walk lengths and compare their TV
distance from uniform with (a) the walk's spectral mixing bound and
(b) the King--Saia sampler, which is exactly uniform at comparable
per-sample message cost.
"""

from __future__ import annotations

import math
import random

from repro import ChordNetwork
from repro.analysis.spectra import mixing_time_bound, spectral_report
from repro.analysis.stats import total_variation_from_uniform
from repro.baselines.random_walk import walk_distribution
from repro.bench.harness import Table

N = 256
WALK_LENGTHS = [2, 4, 8, 16, 32, 64]


def build_overlay():
    net = ChordNetwork.build(N, m=20, rng=random.Random(88))
    return net, net.overlay_graph()


def walk_rows(graph, start):
    rows = []
    for steps in WALK_LENGTHS:
        for kind in ("simple", "metropolis"):
            dist = walk_distribution(graph, kind, steps, start)
            rows.append((steps, kind, total_variation_from_uniform(dist)))
    return rows


def test_e8_walk_vs_exact(benchmark, show):
    net, graph = build_overlay()
    start = min(net.nodes)
    rows = walk_rows(graph, start)
    spec = spectral_report(graph, "metropolis")
    bound = mixing_time_bound(spec, epsilon=0.01)

    table = Table(
        f"E8: TV distance from uniform vs walk length (Chord overlay, n={N})",
        ["steps", "kind", "TV from uniform"],
    )
    for row in rows:
        table.add_row(*row)
    table.note(f"metropolis spectral gap {spec.spectral_gap:.3f}; "
               f"t_mix(0.01) bound ~{bound:.0f} steps")
    table.note("king-saia: TV = 0 by construction at O(log n) messages/sample")
    show(table)

    mh = {steps: tv for steps, kind, tv in rows if kind == "metropolis"}
    simple = {steps: tv for steps, kind, tv in rows if kind == "simple"}
    # MH TV decays monotonically toward 0 but never reaches it.
    assert mh[64] < mh[8] < mh[2]
    assert mh[64] > 0.0
    # The uncorrected walk stalls at its degree bias.
    assert simple[64] > 0.01
    # Short walks (comparable to the exact sampler's O(log n) budget) are
    # still visibly non-uniform: the paper's core criticism.
    assert mh[math.ceil(math.log2(N))] > 0.05

    benchmark(lambda: walk_distribution(graph, "metropolis", 16, start))
