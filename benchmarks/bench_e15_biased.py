"""E15 -- biased peer sampling (open problem 3).

Section 4 asks for peers chosen "with specifically biased probabilities",
e.g. inversely proportional to ring distance.  Our answer (see
``repro.core.biased``) is rejection over the exact uniform sampler.  We
validate the achieved distribution against the target in TV distance and
report the rejection overhead as a function of how peaked the bias is.
"""

from __future__ import annotations

import random
from collections import Counter

from repro import IdealDHT
from repro.analysis.stats import total_variation
from repro.bench.harness import Table
from repro.core.biased import BiasedPeerSampler, inverse_distance_weight

N = 128
DRAWS = 12_000
FLOORS = [0.2, 0.05, 0.02]


def biased_rows():
    dht = IdealDHT.random(N, random.Random(160))
    origin = dht.any_peer().point
    rows = []
    for floor in FLOORS:
        weight, bound = inverse_distance_weight(origin, floor=floor)
        sampler = BiasedPeerSampler(
            dht, weight, bound, n_hat=float(N), rng=random.Random(161)
        )
        target_raw = {p.peer_id: weight(p) for p in dht.peers}
        total = sum(target_raw.values())
        target = {i: w / total for i, w in target_raw.items()}
        counts: Counter = Counter()
        draws_used = 0
        for _ in range(DRAWS):
            stats = sampler.sample_with_stats()
            counts[stats.peer.peer_id] += 1
            draws_used += stats.uniform_draws
        empirical = {i: counts.get(i, 0) / DRAWS for i in range(N)}
        rows.append(
            (
                floor,
                bound,
                total_variation(empirical, target),
                draws_used / DRAWS,
            )
        )
    return rows


def test_e15_biased_sampling(benchmark, show):
    rows = biased_rows()
    table = Table(
        f"E15: inverse-distance bias via rejection (n={N}, {DRAWS} draws)",
        ["distance floor", "weight bound", "TV(empirical, target)", "uniform draws/sample"],
    )
    for row in rows:
        table.add_row(*row)
    table.note("overhead = bound * n / sum(weights); sharper bias costs more draws")
    table.note("answers open problem 3 by reduction to the exact uniform sampler")
    show(table)

    for floor, bound, tv, overhead in rows:
        assert tv < 0.06  # matches the target distribution
        assert overhead >= 1.0
    # Sharper bias (smaller floor) costs strictly more rejections.
    overheads = [r[3] for r in rows]
    assert overheads[0] < overheads[-1]

    dht = IdealDHT.random(N, random.Random(162))
    weight, bound = inverse_distance_weight(dht.any_peer().point, floor=0.1)
    sampler = BiasedPeerSampler(dht, weight, bound, n_hat=float(N),
                                rng=random.Random(163))
    benchmark(sampler.sample)
