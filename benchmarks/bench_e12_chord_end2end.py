"""E12 -- end-to-end on simulated Chord, including churn.

The theorem statements assume a standard DHT; this experiment validates
the whole stack on the message-level Chord substrate: estimate from a
live vantage node, sample during Poisson churn with periodic
stabilization, and confirm (a) samples land on live members, (b) the
empirical distribution over survivors passes a uniformity test, and
(c) measured per-sample messages stay logarithmic.
"""

from __future__ import annotations

import math
import random
from collections import Counter

from repro import ChordNetwork, RandomPeerSampler, estimate_n
from repro.analysis.stats import chi_square_uniform
from repro.bench.harness import Table
from repro.sim.churn import ChurnProcess
from repro.sim.kernel import Simulator


def run_static(n=128, draws=2500):
    net = ChordNetwork.build(n, m=20, rng=random.Random(120))
    dht = net.dht()
    est = estimate_n(dht)
    sampler = RandomPeerSampler(dht, n_hat=est.n_hat, rng=random.Random(121))
    counts = Counter()
    msgs = []
    for _ in range(draws):
        stats = sampler.sample_with_stats()
        counts[stats.peer.peer_id] += 1
        msgs.append(stats.cost.messages)
    chi = chi_square_uniform([counts.get(i, 0) for i in net.nodes])
    return est.n_hat / n, chi.p_value, sum(msgs) / len(msgs)


def run_churny(n=80, rounds=25):
    sim = Simulator()
    net = ChordNetwork.build(n, m=20, rng=random.Random(122), sim=sim)
    net.start_periodic_maintenance(interval=1.0)
    churn = ChurnProcess(net, sim, rate=0.05, rng=random.Random(123), target_size=n)
    churn.start()
    live_hits = 0
    total = 0
    for round_ in range(rounds):
        sim.run_for(4.0)
        net.run_stabilization(3)
        dht = net.dht()
        sampler = RandomPeerSampler(dht, rng=random.Random(124 + round_))
        for _ in range(4):
            peer = sampler.sample()
            total += 1
            live_hits += 1 if peer.peer_id in net.nodes else 0
    return live_hits, total, len(churn.events)


def test_e12_chord_end2end(benchmark, show):
    ratio, p_value, mean_msgs = run_static()
    live, total, events = run_churny()

    table = Table(
        "E12: full pipeline on simulated Chord",
        ["scenario", "estimate/n", "chi2 p", "msgs/sample", "live-sample rate"],
    )
    table.add_row("static n=128", ratio, p_value, mean_msgs, 1.0)
    table.add_row(f"churn ({events} events)", "-", "-", "-", live / total)
    table.note("samples drawn between stabilization rounds land on live peers")
    show(table)

    assert 2.0 / 7.0 <= ratio <= 6.0
    assert p_value > 1e-3
    assert mean_msgs < 400 * math.log2(128)
    assert live / total >= 0.9

    net = ChordNetwork.build(64, m=20, rng=random.Random(130))
    dht = net.dht()
    sampler = RandomPeerSampler(dht, n_hat=64.0, rng=random.Random(131))
    benchmark(sampler.sample)
