"""Decade scaling of the struct-of-arrays substrates.

Thin entry point around :mod:`repro.bench.scale` (also reachable as
``python -m repro bench scale``), kept in ``benchmarks/`` so the
artifact-producing scripts stay discoverable in one place.  See the
module docstring there for what is measured; results land in
``BENCH_scale.json`` at the repo root.
"""

from __future__ import annotations

from repro.bench.scale import emit, main, run


def test_scale_quick(show, tmp_path):
    """Smoke configuration: one small decade plus the churn invariant."""
    table, results, churn = run([4096], build_only=[], lookups=512, seed=0)
    show(table)
    emit(results, churn, tmp_path / "BENCH_scale.json", quick=True, seed=0)
    assert {r["backend"] for r in results} == {"chord-soa", "kademlia-soa"}
    builds = [r for r in results if r["phase"] == "build"]
    serves = [r for r in results if r["phase"] == "serve"]
    assert all(r["spot_check_ok"] for r in builds)
    assert all(r["oracle_ok"] for r in serves)
    assert all(r["lookups_per_sec"] > 0 for r in serves)
    # the tentpole invariant: churn is absorbed without full rebuilds
    assert churn["full_rebuilds"] == 0
    assert churn["incremental_equals_rebuild"]
    assert churn["soa_splice_equals_rebuild"]


if __name__ == "__main__":
    raise SystemExit(main())
