"""Shared configuration for the benchmark suite.

Each ``bench_eNN_*.py`` regenerates one experiment from DESIGN.md's
per-experiment index.  The printed tables are the reproduction artifacts
(recorded in EXPERIMENTS.md); the pytest-benchmark timings additionally
track the cost of the underlying operations.
"""

from __future__ import annotations

import pytest


@pytest.fixture
def show(capsys):
    """Print a harness Table even under pytest's output capture."""

    def _show(table) -> None:
        with capsys.disabled():
            table.show()

    return _show
