"""Declarative dynamic-membership scenarios: what to run, not how.

A :class:`ScenarioSpec` pins every knob of one churn experiment -- the
substrate shape (peers per shard, shard count, identifier bits), the
membership dynamics (churn rate, crash fraction, stabilization cadence),
the offered load, and the serving configuration -- as one frozen,
JSON-able record.  The runner (:mod:`repro.scenarios.runner`) turns a
spec into a live system; nothing about the experiment lives anywhere
else, so a spec plus the repo version *is* the experiment.

:data:`PRESETS` names the canonical regimes (``static``, ``smoke``,
``moderate``, ``crash-heavy``) used by the CLI, the churn benchmark and
CI; :func:`sweep` expands a base spec over the churn-rate x
crash-fraction x stabilization-cadence grid for degradation studies.

All randomness in a scenario derives from ``spec.seed`` through named
:class:`~repro.sim.rng.RngRegistry` substreams (ring construction,
churn interarrivals, trial points, request arrivals), so two runs of
the same spec are bit-for-bit identical.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.adversary.state import LIE_STRATEGIES
from repro.service.shapes import LOAD_SHAPES

__all__ = ["BACKENDS", "ScenarioSpec", "PRESETS", "TRANSPORTS", "preset", "sweep"]

#: Message-level substrates the runner can drive.  ``chord`` stabilizes
#: a successor ring; ``kademlia`` refreshes k-buckets -- same churn
#: process, same serving stack, different liveness model.
BACKENDS = ("chord", "kademlia")

#: How shard rings move messages.  ``sync`` is the historical
#: call-and-return transport (bit-identical defaults everywhere);
#: ``async`` schedules each request/reply as its own delivery event
#: with real timeout events (see :mod:`repro.sim.async_net`).
TRANSPORTS = ("sync", "async")


@dataclass(frozen=True, slots=True)
class ScenarioSpec:
    """One dynamic-membership serving experiment, fully pinned.

    Time is the simulation clock shared by arrivals, micro-batching,
    stabilization and churn; ``churn_rate`` is *per shard* (each shard
    owns an independent ring with its own churn process), while ``rate``
    is the offered request load on the whole service.
    ``stabilize_interval=0`` disables periodic maintenance -- the
    pathological regime where only lookup-time repair fights churn.
    For the ``kademlia`` backend, ``stabilize_interval`` paces bucket
    refresh (its stabilization analogue) and ``chord_m`` is read as the
    generic identifier width of the shard overlays.
    """

    name: str
    # -- substrate shape --
    backend: str = "chord"  # which message-level overlay each shard runs
    transport: str = "sync"  # sync (call-and-return) | async (message-level)
    n: int = 64  # initial peers per shard ring
    shards: int = 2
    chord_m: int = 16  # identifier bits per ring (either backend)
    kad_k: int = 8  # Kademlia bucket size (scenario-sized)
    kad_alpha: int = 3  # Kademlia lookup concurrency
    # -- membership dynamics --
    churn_rate: float = 0.0  # Poisson membership events / time unit / shard
    crash_fraction: float = 0.5  # P(departure is a crash, not a leave)
    stabilize_interval: float = 4.0  # periodic maintenance cadence; 0 = off
    min_size: int = 8  # churn never shrinks a ring below this
    # -- offered load --
    rate: float = 1.0  # Poisson request arrivals / time unit (service-wide)
    requests: int = 500
    # -- workload shape (see repro.service.shapes; defaults = legacy load) --
    load_shape: str = "constant"  # constant | diurnal | flash
    shape_amplitude: float = 1.0  # swing (diurnal) / burst scale (flash)
    shape_period: float = 200.0  # diurnal period / flash timing base
    key_skew: float = 0.0  # Zipf exponent for request keys; 0 = unkeyed
    # -- adversary (see repro.adversary; fraction 0 = every peer honest) --
    adv_fraction: float = 0.0  # Byzantine fraction of each shard's ring
    adv_strategy: str = "lookup"  # lookup | census | eclipse
    committee_size: int = 16  # committee draws per capture election
    # -- serving configuration --
    dispatch: str = "batch"
    policy: str = "least-loaded"
    max_batch: int = 16
    max_wait: float = 2.0
    max_queue: int = 256
    max_retries: int = 3
    retry_backoff: float = 2.0
    # Shard retry escalation (see repro.faults.retry.RetryPolicy): the
    # defaults -- flat backoff, no jitter -- reproduce the historical
    # worker behaviour bit for bit, so presets are unchanged.
    retry_factor: float = 1.0
    retry_jitter: float = 0.0
    # -- run control --
    seed: int = 0
    max_sim_time: float = 50_000.0  # hard stop against pathological stalls
    recovery_rounds: int = 80  # stabilization-round budget after churn stops

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; choose from {BACKENDS}"
            )
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; choose from {TRANSPORTS}"
            )
        if self.n < 1 or self.shards < 1 or self.requests < 1:
            raise ValueError("n, shards and requests must be positive")
        if self.kad_k < 1 or self.kad_alpha < 1:
            raise ValueError("kad_k and kad_alpha must be positive")
        if self.n > (1 << self.chord_m):
            raise ValueError(
                f"identifier space 2^{self.chord_m} too small for n={self.n}"
            )
        if self.churn_rate < 0:
            raise ValueError("churn_rate must be non-negative")
        if not 0.0 <= self.crash_fraction <= 1.0:
            raise ValueError("crash_fraction must be in [0, 1]")
        if self.stabilize_interval < 0:
            raise ValueError("stabilize_interval must be non-negative")
        if self.retry_factor < 1.0:
            raise ValueError("retry_factor must be >= 1")
        if not 0.0 <= self.retry_jitter < 1.0:
            raise ValueError("retry_jitter must be in [0, 1)")
        if self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.load_shape not in LOAD_SHAPES:
            raise ValueError(
                f"unknown load shape {self.load_shape!r}; choose from {LOAD_SHAPES}"
            )
        if self.shape_amplitude < 0:
            raise ValueError("shape_amplitude must be non-negative")
        if self.shape_period <= 0:
            raise ValueError("shape_period must be positive")
        if self.key_skew < 0:
            raise ValueError("key_skew must be non-negative")
        if not 0.0 <= self.adv_fraction < 1.0:
            raise ValueError("adv_fraction must be in [0, 1)")
        if self.adv_strategy not in LIE_STRATEGIES:
            raise ValueError(
                f"unknown lie strategy {self.adv_strategy!r}; "
                f"choose from {LIE_STRATEGIES}"
            )
        if self.committee_size < 1:
            raise ValueError("committee_size must be positive")
        if self.max_sim_time <= 0:
            raise ValueError("max_sim_time must be positive")

    @property
    def churning(self) -> bool:
        return self.churn_rate > 0

    @property
    def adversarial(self) -> bool:
        return self.adv_fraction > 0

    def with_(self, **overrides) -> "ScenarioSpec":
        """A copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **overrides)

    def to_record(self) -> dict:
        """The spec as a JSON-ready dict (keys in declaration order)."""
        return dataclasses.asdict(self)


def _base(**kw) -> ScenarioSpec:
    return ScenarioSpec(**kw)


#: The canonical regimes.  ``static`` is the churn-free control every
#: sweep compares against; ``smoke`` is the CI-sized moderate-churn run;
#: ``moderate`` sees ~25% membership turnover over the run; in
#: ``crash-heavy`` departures are almost always fail-stop crashes and
#: stabilization is slowed, so lookups keep hitting unrepaired holes.
PRESETS: dict[str, ScenarioSpec] = {
    "static": _base(name="static", churn_rate=0.0),
    "smoke": _base(
        name="smoke",
        n=32,
        shards=2,
        chord_m=12,
        churn_rate=0.05,
        crash_fraction=0.5,
        stabilize_interval=2.0,
        rate=1.0,
        requests=150,
        max_batch=8,
    ),
    "moderate": _base(
        name="moderate",
        churn_rate=0.05,
        crash_fraction=0.5,
        stabilize_interval=2.0,
    ),
    "crash-heavy": _base(
        name="crash-heavy",
        churn_rate=0.15,
        crash_fraction=0.9,
        stabilize_interval=6.0,
    ),
    # Adversarial & heterogeneous regimes (the PR-8 scenario lab).
    # ``byzantine`` is the smoke-sized deflection regime: one peer in
    # five lies in lookups, membership is otherwise static so every
    # degradation is attributable to the lies.  ``eclipse`` poisons
    # Kademlia routing tables wholesale -- the substrate where observed
    # contacts persist.  ``flash-crowd`` leaves every peer honest but
    # slams an 8x arrival burst of Zipf-skewed keys through rendezvous
    # routing, the heterogeneous-load half of the lab.
    "byzantine": _base(
        name="byzantine",
        n=32,
        shards=2,
        chord_m=12,
        stabilize_interval=2.0,
        rate=1.0,
        requests=150,
        max_batch=8,
        adv_fraction=0.2,
        adv_strategy="lookup",
    ),
    "eclipse": _base(
        name="eclipse",
        backend="kademlia",
        n=32,
        shards=2,
        chord_m=12,
        stabilize_interval=2.0,
        rate=1.0,
        requests=150,
        max_batch=8,
        adv_fraction=0.2,
        adv_strategy="eclipse",
    ),
    "flash-crowd": _base(
        name="flash-crowd",
        n=32,
        shards=2,
        chord_m=12,
        stabilize_interval=2.0,
        rate=1.0,
        requests=200,
        max_batch=8,
        policy="rendezvous",
        load_shape="flash",
        shape_amplitude=7.0,
        shape_period=200.0,
        key_skew=1.1,
    ),
}


def preset(name: str, **overrides) -> ScenarioSpec:
    """A named preset, optionally customised (``preset("smoke", seed=3)``)."""
    if name not in PRESETS:
        raise KeyError(
            f"unknown preset {name!r}; choose from {sorted(PRESETS)}"
        )
    spec = PRESETS[name]
    return spec.with_(**overrides) if overrides else spec


def sweep(
    base: ScenarioSpec,
    churn_rates,
    crash_fractions=(0.5,),
    stabilize_intervals=(None,),
) -> list[ScenarioSpec]:
    """The full churn-rate x crash-fraction x cadence grid over ``base``.

    ``None`` in ``stabilize_intervals`` keeps the base cadence.  Specs
    are named ``{base.name}/churn{r}-crash{c}-stab{s}`` so sweep output
    stays self-describing; grid order is row-major (rate outermost).
    """
    out = []
    for rate in churn_rates:
        for crash in crash_fractions:
            for interval in stabilize_intervals:
                cadence = base.stabilize_interval if interval is None else interval
                out.append(
                    base.with_(
                        name=f"{base.name}/churn{rate:g}-crash{crash:g}-stab{cadence:g}",
                        churn_rate=rate,
                        crash_fraction=crash,
                        stabilize_interval=cadence,
                    )
                )
    return out
