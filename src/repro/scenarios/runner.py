"""Run a :class:`~repro.scenarios.spec.ScenarioSpec` as a live system.

The runner wires the full dynamic-membership stack on **one**
discrete-event clock:

- per shard, a message-level overlay -- a
  :class:`~repro.dht.chord.network.ChordNetwork` ring or a
  :class:`~repro.dht.kademlia.network.KademliaNetwork` (per
  ``spec.backend``) -- with periodic maintenance (stabilization or
  bucket refresh) scheduled on the shared simulator;
- per shard, a :class:`~repro.sim.churn.ChurnProcess` issuing Poisson
  joins, graceful leaves and fail-stop crashes *while requests are in
  flight*;
- the sampling service (:mod:`repro.service`) over the rings' DHT
  adapters -- micro-batching, health-aware routing, retry-with-backoff
  and explicit failure on churn-killed dispatches;
- an open-loop Poisson :class:`~repro.service.loadgen.LoadGenerator`.

The run finishes when the offered load is served (or the spec's
``max_sim_time`` safety stop trips), churn and maintenance are halted,
in-flight work drains, and a recovery phase checks the paper-level
invariant that stabilization restores a correct ring once churn stops.
The :class:`ScenarioResult` packages uniformity (chi-square and total
variation against the *live* population), per-sample cost, service
latency tails, churn/failure accounting and the recovery verdict as one
JSON-ready record.

Everything is deterministic from ``spec.seed``: rings, churn timing,
trial points and arrivals each draw from their own named RNG substream.
"""

from __future__ import annotations

import dataclasses
import random
import time
from collections import Counter
from dataclasses import dataclass, field

from ..adversary.state import AdversaryState
from ..analysis.stats import chi_square_uniform, total_variation_from_uniform
from ..apps.committee import (
    CommitteeSpec,
    committee_failure_probability,
    empirical_committee_failure,
)
from ..dht.chord.network import ChordNetwork
from ..dht.kademlia.network import KademliaNetwork
from ..faults.retry import RetryPolicy
from ..service.core import SamplingService
from ..service.loadgen import LoadGenerator
from ..service.shapes import ZipfKeys, make_shape
from ..sim.churn import ChurnProcess
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from .spec import ScenarioSpec

__all__ = ["ShardReport", "ScenarioResult", "run_scenario", "run_specs"]

#: Simulation-time slice per drive iteration.  Slicing exists only so the
#: stop condition (load served, queues empty) is re-checked while
#: periodic maintenance keeps the event queue eternally non-empty.
_SLICE = 25.0


@dataclass(frozen=True, slots=True)
class ShardReport:
    """Per-shard verdict: population change, sampling quality, cost."""

    shard_id: int
    population_start: int
    population_end: int
    churn_events: dict[str, int]
    draws: int  # completed samples served by this shard
    survivors: int  # peers alive from first to last membership change
    chi2_p: float | None  # uniformity over survivors; None if untestable
    tv_survivors: float | None  # TV from uniform over survivor draws
    live_fraction: float | None  # draws whose peer is alive at the end
    messages: int
    messages_per_sample: float | None
    latency_per_sample: float | None
    stale_trials: int  # engine trials lost to unreachable peers
    lockstep_lookups: int  # lookups resolved by the snapshot engine
    delegated_lookups: int  # engine-flagged failures replayed live
    snapshot_builds: int  # ring snapshots (re)built under churn epochs
    ring_correct_after_recovery: bool
    # -- adversarial accounting (defaults = honest run; see docs/ADVERSARY.md)
    byzantine: int = 0  # peers marked Byzantine in this shard
    captured_draws: int = 0  # completed draws that landed on a Byzantine peer
    capture_rate: float | None = None  # captured_draws / draws
    bias_amplification: float | None = None  # capture_rate / live Byz fraction
    honest_chi2_p: float | None = None  # uniformity over *honest* survivors
    honest_tv: float | None = None  # TV from uniform over honest survivors
    snapshot_patches: int = 0  # incremental row patches absorbed by the snapshot

    def to_record(self) -> dict:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ScenarioResult:
    """Everything one scenario run produced, JSON-ready via :meth:`to_record`."""

    spec: ScenarioSpec
    summary: dict  # ServiceMetrics.summary() at drain time
    shards: list[ShardReport] = field(default_factory=list)
    sim_time: float = 0.0
    wall_seconds: float = 0.0
    truncated: bool = False  # max_sim_time tripped before the load drained
    adversary: dict | None = None  # committee capture & lie accounting

    # -- aggregate views ---------------------------------------------------

    @property
    def completed(self) -> int:
        return self.summary["completed"]

    @property
    def failed(self) -> int:
        return self.summary["failed"]

    @property
    def rejected(self) -> int:
        return self.summary["rejected"]

    @property
    def dispatch_failures(self) -> int:
        return self.summary["dispatch_failures"]

    @property
    def churn_events(self) -> int:
        return sum(sum(s.churn_events.values()) for s in self.shards)

    @property
    def min_chi2_p(self) -> float | None:
        """The least-uniform shard's p-value (the honest headline)."""
        ps = [s.chi2_p for s in self.shards if s.chi2_p is not None]
        return min(ps) if ps else None

    @property
    def max_tv(self) -> float | None:
        tvs = [s.tv_survivors for s in self.shards if s.tv_survivors is not None]
        return max(tvs) if tvs else None

    @property
    def messages_per_sample(self) -> float | None:
        draws = sum(s.draws for s in self.shards)
        if draws == 0:
            return None
        return sum(s.messages for s in self.shards) / draws

    @property
    def ring_recovered(self) -> bool:
        """Did every shard's ring stabilize back to correctness?"""
        return all(s.ring_correct_after_recovery for s in self.shards)

    def to_record(self) -> dict:
        lat = self.summary["latency"]["total_latency"]
        return {
            "spec": self.spec.to_record(),
            "sim_time": self.sim_time,
            "wall_seconds": self.wall_seconds,
            "truncated": self.truncated,
            "completed": self.completed,
            "failed": self.failed,
            "rejected": self.rejected,
            "dispatch_failures": self.dispatch_failures,
            "churn_events": self.churn_events,
            "uniformity": {
                "min_chi2_p": self.min_chi2_p,
                "max_tv": self.max_tv,
            },
            "cost": {"messages_per_sample": self.messages_per_sample},
            "latency": {
                "p50": lat["p50"],
                "p95": lat["p95"],
                "p99": lat["p99"],
                "mean": lat["mean"],
            },
            "ring_recovered": self.ring_recovered,
            "adversary": self.adversary,
            "shards": [s.to_record() for s in self.shards],
            "summary": self.summary,
        }


def _build_ring(spec: ScenarioSpec, shard_id: int, sim, rngs):
    """One shard overlay of the spec's backend, seeded from its own stream.

    Both classes expose the same membership/maintenance vocabulary
    (``join_node``/``crash_node``/``leave_node``,
    ``start_periodic_maintenance``, ``run_stabilization``,
    ``ring_is_correct``), so everything downstream of construction is
    backend-agnostic.
    """
    ring_rng = random.Random(rngs.fresh(f"shard{shard_id}.ring").getrandbits(64))
    # The kwarg is only passed when the spec opts in, so sync-transport
    # specs build rings through the exact historical code path.
    extra = {"async_transport": True} if spec.transport == "async" else {}
    if spec.backend == "kademlia":
        return KademliaNetwork.build(
            spec.n,
            m=spec.chord_m,
            k=spec.kad_k,
            alpha=spec.kad_alpha,
            rng=ring_rng,
            sim=sim,
            **extra,
        )
    return ChordNetwork.build(spec.n, m=spec.chord_m, rng=ring_rng, sim=sim, **extra)


def run_scenario(spec: ScenarioSpec, tracer=None) -> ScenarioResult:
    """Drive one scenario to completion and report on it.

    Raises nothing churn-related by construction: membership failures
    are absorbed by the substrate's liveness retries, the engine's
    stale-trial redraws and the shard workers' retry/FAILED path -- a
    leaked exception here is a bug, and the scenario tests assert on it.

    ``tracer`` (a :class:`repro.obs.tracer.Tracer`) turns on end-to-end
    span collection: the service threads it through admission, batching,
    the engine and each shard's transport, and the runner attaches every
    metrics registry for exposition.  Leave it None for the untraced
    (bit-identical, zero-overhead) default.
    """
    rngs = RngRegistry(spec.seed)
    sim = Simulator()

    networks = [_build_ring(spec, i, sim, rngs) for i in range(spec.shards)]
    substrates = [net.dht() for net in networks]
    start_populations = [set(net.nodes) for net in networks]

    # Byzantine marking happens before any load: placement draws from a
    # per-shard named stream so honest runs (adv_fraction == 0) skip
    # this block entirely and consume not a single extra random bit --
    # that is what keeps fraction-0 runs bit-identical to pre-adversary
    # releases (enforced by benchmarks/bench_adversary.py's twin check).
    adversaries: list[AdversaryState] = []
    if spec.adversarial:
        for shard_id, net in enumerate(networks):
            adv_rng = random.Random(
                rngs.fresh(f"shard{shard_id}.adversary").getrandbits(64)
            )
            # The service's entry vantage stays honest: the threat model
            # is lying *participants*, not a compromised client.
            candidates = sorted(set(net.nodes) - {substrates[shard_id].entry_id})
            count = min(
                len(candidates), max(1, round(spec.adv_fraction * len(net.nodes)))
            )
            state = AdversaryState(m=spec.chord_m)
            for node_id in adv_rng.sample(candidates, count):
                state.mark(node_id, spec.adv_strategy)
            net.transport.install_adversary(state)
            adversaries.append(state)

    # The shard retry discipline as a first-class policy.  With the
    # default flat shape (factor 1, no jitter) this is bit-identical to
    # the legacy max_retries/retry_backoff knobs; specs can escalate or
    # jitter the cooldowns without touching the worker state machine.
    retry_policy = RetryPolicy(
        attempts=spec.max_retries + 1,
        base_delay=spec.retry_backoff,
        factor=spec.retry_factor,
        jitter=spec.retry_jitter,
    )
    service = SamplingService(
        substrates,
        sim=sim,
        rngs=rngs,
        policy=spec.policy,
        dispatch=spec.dispatch,
        max_batch=spec.max_batch,
        max_wait=spec.max_wait,
        max_queue=spec.max_queue,
        max_retries=spec.max_retries,
        retry_backoff=spec.retry_backoff,
        retry_policy=retry_policy,
        tracer=tracer,
    )

    maintenance = []
    if spec.stabilize_interval > 0:
        maintenance = [
            net.start_periodic_maintenance(spec.stabilize_interval)
            for net in networks
        ]
    churns = []
    if spec.churning:
        churns = [
            ChurnProcess(
                net,
                sim,
                rate=spec.churn_rate,
                rng=rngs,
                stream=f"shard{shard_id}.churn",
                target_size=spec.n,
                min_size=spec.min_size,
                crash_fraction=spec.crash_fraction,
            )
            for shard_id, net in enumerate(networks)
        ]

    # Workload heterogeneity: a rate modulator and/or Zipf-skewed keys
    # (both default off, leaving the constant unkeyed path untouched).
    shape = make_shape(
        spec.load_shape,
        spec.rate,
        amplitude=spec.shape_amplitude,
        period=spec.shape_period,
    )
    keys = (
        ZipfKeys(1024, spec.key_skew, rngs.stream("keys"))
        if spec.key_skew > 0
        else None
    )
    generator = LoadGenerator(
        sim,
        service.submit,
        rate=spec.rate,
        total=spec.requests,
        rng=rngs.stream("arrivals"),
        shape=shape,
        keys=keys,
    )

    start_wall = time.perf_counter()
    generator.start()
    for churn in churns:
        churn.start()

    # Drive in slices: periodic maintenance keeps the queue non-empty
    # forever, so completion is a condition, not queue exhaustion.
    truncated = False
    while not (generator.done and service.pending == 0):
        if sim.now >= spec.max_sim_time:
            truncated = True
            break
        sim.run_for(_SLICE)

    # Churn stops; cancel the periodic tasks and drain remaining work
    # (retries in backoff, the final batches).  A truncated run also
    # stops the generator, so max_sim_time really does bound the run
    # instead of serving the leftover load churn-free.
    if truncated:
        generator.stop()
    for churn in churns:
        churn.stop()
    for task in maintenance:
        task.cancel()
    sim.run()
    wall = time.perf_counter() - start_wall

    summary = service.summary()
    if tracer is not None and tracer.enabled:
        # Attach registries *after* the run: the transport materializes
        # its per-method counters on read, so attaching here hands the
        # exporter finished numbers.
        tracer.attach_registry("service", service.metrics.registry)
        for shard_id, net in enumerate(networks):
            tracer.attach_registry(
                f"shard{shard_id}.transport", net.transport.method_message_counters()
            )

    # Recovery phase: with churn halted, bounded stabilization must
    # restore every ring to correctness (the paper's dynamic-network
    # premise).  Runs in chunks with an oracle check between them so a
    # barely-damaged ring exits early; does not advance the sim clock.
    ring_ok = []
    for net in networks:
        remaining = spec.recovery_rounds
        while remaining > 0 and not net.ring_is_correct():
            chunk = min(5, remaining)
            net.run_stabilization(chunk)
            remaining -= chunk
        ring_ok.append(net.ring_is_correct())

    shard_reports = _shard_reports(
        service, substrates, networks, churns, start_populations, ring_ok, adversaries
    )
    adversary_block = (
        _adversary_report(spec, service, networks, adversaries)
        if adversaries
        else None
    )
    return ScenarioResult(
        spec=spec,
        summary=summary,
        shards=shard_reports,
        sim_time=sim.now,
        wall_seconds=wall,
        truncated=truncated,
        adversary=adversary_block,
    )


def _shard_reports(
    service, substrates, networks, churns, start_populations, ring_ok,
    adversaries=(),
) -> list[ShardReport]:
    by_shard_counts: list[Counter] = [Counter() for _ in networks]
    for response in service.completed:
        by_shard_counts[response.shard_id][response.peer.peer_id] += 1

    reports = []
    for shard_id, net in enumerate(networks):
        counts = by_shard_counts[shard_id]
        draws = sum(counts.values())
        end_population = set(net.nodes)
        survivors = sorted(start_populations[shard_id] & end_population)
        chi2_p, tv = _uniformity_over(survivors, counts)
        byz_ids = adversaries[shard_id].byzantine_ids if adversaries else frozenset()
        captured = sum(c for p, c in counts.items() if p in byz_ids) if byz_ids else 0
        capture_rate = captured / draws if byz_ids and draws else None
        byz_live = len(byz_ids & end_population)
        live_byz_fraction = byz_live / len(end_population) if end_population else 0.0
        bias_amplification = (
            capture_rate / live_byz_fraction
            if capture_rate is not None and live_byz_fraction > 0
            else None
        )
        honest_chi2_p, honest_tv = (
            _uniformity_over([p for p in survivors if p not in byz_ids], counts)
            if byz_ids
            else (None, None)
        )
        live = (
            sum(c for p, c in counts.items() if p in end_population) / draws
            if draws
            else None
        )
        cost = substrates[shard_id].cost.snapshot()
        sampler = service.shards[shard_id].dispatch.sampler
        batch_stats = getattr(substrates[shard_id], "batch_stats", None)
        reports.append(
            ShardReport(
                shard_id=shard_id,
                population_start=len(start_populations[shard_id]),
                population_end=len(end_population),
                churn_events=(
                    churns[shard_id].event_counts()
                    if churns
                    else {"join": 0, "leave": 0, "crash": 0}
                ),
                draws=draws,
                survivors=len(survivors),
                chi2_p=chi2_p,
                tv_survivors=tv,
                live_fraction=live,
                messages=cost.messages,
                messages_per_sample=cost.messages / draws if draws else None,
                latency_per_sample=cost.latency / draws if draws else None,
                stale_trials=getattr(sampler, "stale_trials", 0),
                lockstep_lookups=batch_stats.lockstep if batch_stats else 0,
                delegated_lookups=batch_stats.delegated if batch_stats else 0,
                snapshot_builds=getattr(net, "snapshot_builds", 0),
                ring_correct_after_recovery=ring_ok[shard_id],
                byzantine=len(byz_ids),
                captured_draws=captured,
                capture_rate=capture_rate,
                bias_amplification=bias_amplification,
                honest_chi2_p=honest_chi2_p,
                honest_tv=honest_tv,
                snapshot_patches=getattr(net, "snapshot_patches", 0),
            )
        )
    return reports


class _SequenceSampler:
    """Replays the run's completed draws as committee members, in order.

    Capture is measured on the draws the service *actually served* --
    no fresh randomness, so the verdict is as deterministic as the run.
    Members are ``(shard_id, peer_id)`` pairs because shard-scoped peer
    ids may collide across shards.
    """

    __slots__ = ("_it",)

    def __init__(self, draws):
        self._it = iter(draws)

    def sample(self):
        return next(self._it)


def _adversary_report(spec, service, networks, adversaries) -> dict:
    """Committee capture and lie accounting for an adversarial run.

    Committees of ``spec.committee_size`` are chunked from the completed
    draws in completion order; a committee is *captured* when its
    Byzantine share exceeds the 1/3-threshold tolerance
    (:class:`~repro.apps.committee.CommitteeSpec`).  The analytic twin
    is the binomial tail under uniform sampling over the end-of-run
    live population -- the number the empirical rate is banded against
    in the adversary test suite (see docs/ADVERSARY.md).
    """
    byz_sets = [adv.byzantine_ids for adv in adversaries]

    def is_byzantine(member) -> bool:
        shard_id, peer_id = member
        return peer_id in byz_sets[shard_id]

    draws = [(r.shard_id, r.peer.peer_id) for r in service.completed]
    cspec = CommitteeSpec(spec.committee_size)
    elections = len(draws) // cspec.size
    empirical = (
        empirical_committee_failure(
            _SequenceSampler(draws), is_byzantine, cspec, elections
        )
        if elections
        else None
    )
    live_total = sum(len(net.nodes) for net in networks)
    byz_live = sum(
        len(byz_sets[i] & set(net.nodes)) for i, net in enumerate(networks)
    )
    analytic = (
        committee_failure_probability(live_total, byz_live, cspec)
        if live_total
        else None
    )
    captured = sum(1 for member in draws if is_byzantine(member))
    return {
        "fraction": spec.adv_fraction,
        "strategy": spec.adv_strategy,
        "byzantine_total": sum(len(s) for s in byz_sets),
        "byzantine_live": byz_live,
        "live_total": live_total,
        "draws": len(draws),
        "captured_draws": captured,
        "capture_rate": captured / len(draws) if draws else None,
        "committee": {
            "size": cspec.size,
            "max_byzantine": cspec.max_byzantine,
            "elections": elections,
            "empirical_capture": empirical,
            "analytic_capture": analytic,
        },
        "shards": [adv.describe() for adv in adversaries],
    }


def _uniformity_over(survivors, counts) -> tuple[float | None, float | None]:
    """Uniformity of the draws restricted to all-run-long survivors.

    Survivors are alive for the whole run, so a sampler that is uniform
    over the live population at every instant hits each with identical
    probability -- equal expected counts, the exact null hypothesis of
    the chi-square test.  Peers that joined or departed mid-run have
    time-varying inclusion and are excluded (their draws simply don't
    enter the restricted counts).  Returns ``(None, None)`` when the
    test is undefined (under two survivors, or no survivor draws).
    """
    survivor_counts = [counts.get(p, 0) for p in survivors]
    total = sum(survivor_counts)
    if len(survivors) < 2 or total == 0:
        return None, None
    chi2_p = chi_square_uniform(survivor_counts).p_value
    empirical = {p: counts.get(p, 0) / total for p in survivors}
    return chi2_p, total_variation_from_uniform(empirical)


def run_specs(specs) -> list[ScenarioResult]:
    """Run several scenarios back to back (each fully independent)."""
    return [run_scenario(spec) for spec in specs]
