"""Dynamic-membership scenario lab: serve load while the ring churns.

Everything below the service layer was built for a *dynamic* peer-to-
peer network -- that is the King-Saia premise -- yet static benchmarks
never exercise it.  This package closes the loop: a declarative
:class:`~repro.scenarios.spec.ScenarioSpec` pins a regime (churn rate,
crash fraction, stabilization cadence, offered load), the runner
executes it with joins, leaves and crashes landing *between and during*
request batches, and the report quantifies what churn actually costs:
sampling bias against the live population, per-sample message
inflation, latency tails, and whether stabilization restores ring
correctness once churn stops.

Typical use::

    from repro.scenarios import preset, run_scenario

    result = run_scenario(preset("moderate"))
    print(result.min_chi2_p, result.messages_per_sample, result.ring_recovered)

or from the shell: ``python -m repro scenario run --preset smoke``.
The churn benchmark (``benchmarks/bench_churn.py``) sweeps the named
regimes into ``BENCH_churn.json``.

Structured outages -- correlated mass-kill and partition healing --
live in the sibling fault lab (:mod:`repro.scenarios.faults`): the
``mass-failure`` and ``partition-heal`` presets measure time-to-
recovery, outage-window error rate and cost inflation on either
backend (``benchmarks/bench_faults.py`` sweeps them into
``BENCH_faults.json``).

Adversarial regimes (:mod:`repro.adversary`) compose with all of the
above: the ``byzantine``/``eclipse`` presets mark a fraction of each
ring as lying peers, ``flash-crowd`` slams Zipf-skewed bursty load, and
the result's ``adversary`` block reports committee capture against the
analytic binomial tail (``benchmarks/bench_adversary.py`` sweeps
backend x fraction x lie strategy into ``BENCH_adversary.json``).
"""

from .faults import (
    FAULT_PRESETS,
    FaultScenarioResult,
    FaultScenarioSpec,
    fault_preset,
    run_fault_scenario,
)
from .report import (
    adversary_table,
    critical_path_table,
    find_baseline,
    hop_table,
    results_record,
    results_table,
    slowest_table,
)
from .runner import ScenarioResult, ShardReport, run_scenario, run_specs
from .spec import BACKENDS, PRESETS, TRANSPORTS, ScenarioSpec, preset, sweep

__all__ = [
    "BACKENDS",
    "TRANSPORTS",
    "FAULT_PRESETS",
    "FaultScenarioResult",
    "FaultScenarioSpec",
    "PRESETS",
    "ScenarioResult",
    "ScenarioSpec",
    "ShardReport",
    "adversary_table",
    "critical_path_table",
    "fault_preset",
    "find_baseline",
    "hop_table",
    "preset",
    "results_record",
    "results_table",
    "slowest_table",
    "run_fault_scenario",
    "run_scenario",
    "run_specs",
    "sweep",
]
