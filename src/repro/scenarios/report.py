"""Render scenario results: comparison tables and JSON records.

One scenario run answers "did the service survive?"; a *set* of runs
answers the interesting question -- how much uniformity, cost and tail
latency degrade as churn intensifies.  This module turns a list of
:class:`~repro.scenarios.runner.ScenarioResult` into the bench harness's
aligned :class:`~repro.bench.harness.Table` and into the JSON record
written to ``BENCH_churn.json``, including *inflation* columns relative
to a named churn-free baseline (messages per sample and p99 latency as
multiples of the static regime's).
"""

from __future__ import annotations

from ..bench.harness import Table
from ..obs.critical_path import SEGMENTS, CriticalPathReport
from .runner import ScenarioResult

__all__ = [
    "adversary_table",
    "results_table",
    "results_record",
    "find_baseline",
    "critical_path_table",
    "hop_table",
    "slowest_table",
]


def find_baseline(results) -> ScenarioResult | None:
    """The churn-free control to normalize against (first non-churning)."""
    for result in results:
        if not result.spec.churning:
            return result
    return None


def _ratio(value, base) -> float | None:
    if value is None or base is None or base == 0:
        return None
    return value / base


def results_table(
    results,
    title: str = "dynamic-membership scenarios",
    baseline: ScenarioResult | None = None,
) -> Table:
    """One row per scenario: survival counts, uniformity, cost, tails.

    ``baseline`` overrides the in-list churn-free control as the
    normalizer for the inflation column (useful for sweeps that are all
    churning, benchmarked against a separately-run static control).
    """
    if baseline is None:
        baseline = find_baseline(results)
    base_msgs = baseline.messages_per_sample if baseline else None
    table = Table(
        title,
        [
            "scenario", "events", "completed", "failed", "rejected", "retries",
            "chi2 p", "TV", "msgs/sample", "infl", "p50", "p95", "p99", "ring ok",
        ],
    )
    for r in results:
        lat = r.summary["latency"]["total_latency"]
        retries = sum(w["dispatch_failures"] for w in r.summary["shards"].values())
        inflation = _ratio(r.messages_per_sample, base_msgs)
        table.add_row(
            r.spec.name,
            r.churn_events,
            r.completed,
            r.failed,
            r.rejected,
            retries,
            r.min_chi2_p if r.min_chi2_p is not None else float("nan"),
            r.max_tv if r.max_tv is not None else float("nan"),
            r.messages_per_sample if r.messages_per_sample is not None else float("nan"),
            inflation if inflation is not None else float("nan"),
            lat["p50"], lat["p95"], lat["p99"],
            r.ring_recovered,
        )
    table.note("chi2 p / TV: uniformity over peers alive the whole run (worst shard)")
    table.note("infl: messages/sample as a multiple of the churn-free baseline")
    table.note("retries: churn-killed dispatches (retried or failed); latency in sim units")
    table.note("ring ok: ring re-stabilized within the spec's recovery-round budget")
    return table


def adversary_table(results, title: str = "adversarial capture") -> Table:
    """One row per adversarial run: lies told, draw capture, committee capture.

    ``amp`` is sampling-bias amplification -- the factor by which the
    Byzantine share of completed draws exceeds the Byzantine share of
    the live population (1.0 = no advantage beyond head-count).
    """
    table = Table(
        title,
        [
            "scenario", "backend", "byz", "lie", "lies told",
            "captured", "amp", "committee emp", "committee unif",
        ],
    )
    for r in results:
        adv = r.adversary
        if adv is None:
            continue
        committee = adv["committee"]
        amps = [
            s.bias_amplification for s in r.shards if s.bias_amplification is not None
        ]
        table.add_row(
            r.spec.name,
            r.spec.backend,
            f"{adv['byzantine_total']} ({adv['fraction']:.0%})",
            adv["strategy"],
            sum(s["lies_told"] for s in adv["shards"]),
            adv["capture_rate"] if adv["capture_rate"] is not None else float("nan"),
            max(amps) if amps else float("nan"),
            committee["empirical_capture"]
            if committee["empirical_capture"] is not None
            else float("nan"),
            committee["analytic_capture"]
            if committee["analytic_capture"] is not None
            else float("nan"),
        )
    table.note("captured: fraction of completed draws landing on a Byzantine peer")
    table.note("committee emp/unif: observed capture rate vs the binomial tail a "
               "uniform sampler would give the same Byzantine head-count")
    return table


def results_record(
    results,
    *,
    seed: int | None = None,
    quick: bool | None = None,
    baseline: ScenarioResult | None = None,
) -> dict:
    """The JSON-ready sweep record (schema documented in docs/BENCHMARKS.md)."""
    if baseline is None:
        baseline = find_baseline(results)
    base_msgs = baseline.messages_per_sample if baseline else None
    base_p99 = (
        baseline.summary["latency"]["total_latency"]["p99"] if baseline else None
    )
    scenarios = []
    for r in results:
        record = r.to_record()
        record["inflation"] = {
            "messages_per_sample": _ratio(r.messages_per_sample, base_msgs),
            "total_p99": _ratio(
                r.summary["latency"]["total_latency"]["p99"], base_p99
            ),
        }
        scenarios.append(record)
    out: dict = {
        "benchmark": "churn_scenarios",
        "substrate": "ChordNetwork",
        "baseline": baseline.spec.name if baseline else None,
        "scenarios": scenarios,
    }
    if seed is not None:
        out["seed"] = seed
    if quick is not None:
        out["quick"] = quick
    return out


# -- trace views (repro trace / bench_obs) -------------------------------


def critical_path_table(
    report: CriticalPathReport, title: str = "critical path: where latency went"
) -> Table:
    """Run-level segment decomposition of traced request latency."""
    table = Table(title, ["segment", "sim-time", "fraction"])
    totals = report.segment_totals
    fractions = report.segment_fractions
    for name in SEGMENTS:
        table.add_row(name, totals[name], fractions[name])
    table.add_row("total", sum(totals.values()), 1.0 if any(totals.values()) else 0.0)
    table.note(
        f"{len(report.requests)} traced requests; "
        f"min reconstructed fraction {report.min_reconstructed:.4f}"
    )
    table.note("queue excludes retry cooldowns (broken out as backoff)")
    return table


def hop_table(
    report: CriticalPathReport, title: str = "lookup hops x latency"
) -> Table:
    """Per-backend hop-count distribution with mean latency per bucket."""
    table = Table(title, ["backend", "hops", "lookups", "mean latency"])
    for backend in sorted(report.hop_profiles):
        profile = report.hop_profiles[backend]
        for hops, (count, latency) in sorted(profile.by_hops.items()):
            table.add_row(backend, hops, count, latency / count)
        table.add_row(backend, "all", profile.lookups, profile.mean_latency)
    table.note("hops = routing RPCs per h/successor resolution; latency on the transport clock")
    return table


def slowest_table(
    report: CriticalPathReport, count: int = 10, title: str = "slowest traced requests"
) -> Table:
    """The tail: per-request breakdowns, slowest first."""
    table = Table(
        title,
        ["request", "status", "shard", "total", "queue", "backoff", "overhead", "routing"],
    )
    for r in report.slowest(count):
        table.add_row(
            r.request_id, r.status, r.shard_id, r.total,
            r.queue, r.backoff, r.overhead, r.routing,
        )
    return table
