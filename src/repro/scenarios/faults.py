"""Fault scenarios: mass failure and partition healing, measured.

Where :mod:`repro.scenarios.runner` studies *gradual* membership churn
under serving load, this lab studies *structured outages*: a correlated
mass-kill that crashes a large fraction of the overlay in one instant,
or a network partition that splits reachability while every node stays
up.  The questions are the recovery ones:

- **time to recovery** -- how many maintenance rounds until lookups are
  all-correct again (the first stabilization round after which every
  probe of a fixed random set resolves to the oracle owner);
- **outage-window error rate** -- what fraction of lookups issued while
  the fault is live fail or return the wrong owner;
- **cost inflation** -- messages per lookup during the outage and after
  recovery, relative to the pre-fault baseline (retries, timeout
  probes and repair traffic all flow through the same meters).

A :class:`FaultScenarioSpec` pins one experiment; the fault itself is a
declarative :class:`~repro.faults.plan.FaultPlan` scheduled on the sim
clock, and lookups run through the substrate's DHT adapter under a
first-class :class:`~repro.faults.retry.RetryPolicy`.  Everything
derives from ``spec.seed`` through named RNG substreams, so two runs of
the same spec are bit-for-bit identical -- the equivalence test in
``tests/scenarios/test_fault_scenarios.py`` pins that.

Recovery is verified against the oracle membership: the owner of point
``x`` is the clockwise-nearest live id to ``target(x)``, which both
substrates promise to resolve.  Chord heals through successor-list
failover plus the network-level ring merge; Kademlia purges dead
contacts (oracle-assisted anti-entropy, modelling gossiped obituaries)
and rebuilds bucket coverage through refresh rounds.
"""

from __future__ import annotations

import bisect
import dataclasses
import random
import time
from dataclasses import dataclass, field

from ..dht.api import PeerUnreachableError
from ..dht.chord.async_lookup import lookup_async
from ..dht.chord.network import ChordNetwork
from ..dht.idspace import point_to_target_id
from ..dht.kademlia.async_lookup import find_successor_async
from ..dht.kademlia.network import KademliaNetwork
from ..faults.plan import REGIONS, FaultPlan, MassKill, Partition
from ..faults.retry import RetryPolicy
from ..faults.state import PARTITION_MODES, FaultState
from ..sim.async_net import drive
from ..sim.kernel import Simulator
from ..sim.network import UniformLatency
from ..sim.rng import RngRegistry
from .spec import BACKENDS, TRANSPORTS

__all__ = [
    "FAULT_PRESETS",
    "FaultScenarioSpec",
    "FaultScenarioResult",
    "PhaseReport",
    "fault_preset",
    "run_fault_scenario",
]

#: The kinds of structured outage this lab drives end to end.
FAULTS = ("mass-kill", "partition")


@dataclass(frozen=True, slots=True)
class FaultScenarioSpec:
    """One structured-outage experiment, fully pinned and JSON-able."""

    name: str
    backend: str = "chord"  # which message-level overlay to wound
    fault: str = "mass-kill"
    #: ``sync`` replays the historical call-and-return experiment bit
    #: for bit; ``async`` reruns it on the message-level transport
    #: (scheduled request/reply deliveries, real timeout events, jittered
    #: per-hop latency) and additionally reports wall-of-sim-clock
    #: recovery time plus per-hop RTT quantiles from actual deliveries.
    transport: str = "sync"
    #: Total-latency budget per logical probe on the async transport
    #: (see :attr:`~repro.faults.retry.RetryPolicy.deadline`); ``None``
    #: leaves retries bounded by attempts alone.
    retry_deadline: float | None = None
    # -- substrate shape --
    n: int = 10_000
    m: int = 20  # identifier bits
    kad_k: int = 20
    kad_alpha: int = 3
    successor_list_size: int = 16  # Chord failover depth (mass-kill armour)
    # -- the fault --
    inject_at: float = 10.0  # sim time the fault fires
    kill_fraction: float = 0.4  # mass-kill: fraction crashed in one instant
    region: str = "arc"  # victim placement: contiguous id arc or random
    partition_groups: int = 2
    partition_mode: str = "full"  # or "oneway" (requests cross, replies lost)
    partition_duration: float = 40.0  # sim time until the partition heals
    outage_rounds: int = 2  # maintenance rounds run while the fault is live
    # -- the retry discipline lookups run under --
    retry_attempts: int = 3
    retry_base_delay: float = 0.5
    retry_factor: float = 2.0
    retry_jitter: float = 0.1
    # -- measurement --
    probes: int = 64  # lookups per phase
    recovery_round_budget: int = 120  # maintenance rounds before giving up
    recovery_chunk: int = 4  # rounds between recovery probe sweeps
    seed: int = 0

    def __post_init__(self):
        if self.backend not in BACKENDS:
            raise ValueError(f"unknown backend {self.backend!r}; choose from {BACKENDS}")
        if self.fault not in FAULTS:
            raise ValueError(f"unknown fault {self.fault!r}; choose from {FAULTS}")
        if self.transport not in TRANSPORTS:
            raise ValueError(
                f"unknown transport {self.transport!r}; choose from {TRANSPORTS}"
            )
        if self.region not in REGIONS:
            raise ValueError(f"unknown region {self.region!r}; choose from {REGIONS}")
        if self.partition_mode not in PARTITION_MODES:
            raise ValueError(
                f"unknown partition mode {self.partition_mode!r}; "
                f"choose from {PARTITION_MODES}"
            )
        if self.n < 4:
            raise ValueError("fault scenarios need at least 4 nodes")
        if self.n > (1 << self.m):
            raise ValueError(f"identifier space 2^{self.m} too small for n={self.n}")
        if not 0.0 < self.kill_fraction < 1.0:
            raise ValueError("kill_fraction must be in (0, 1)")
        if self.partition_groups < 2:
            raise ValueError("a partition needs at least 2 groups")
        if self.probes < 1:
            raise ValueError("probes must be positive")
        if self.recovery_round_budget < 1 or self.recovery_chunk < 1:
            raise ValueError("recovery budget and chunk must be positive")
        if self.inject_at < 0 or self.partition_duration <= 0:
            raise ValueError("inject_at must be >= 0 and partition_duration > 0")

    def with_(self, **overrides) -> "FaultScenarioSpec":
        """A copy with the given fields replaced (validation re-runs)."""
        return dataclasses.replace(self, **overrides)

    def retry_policy(self) -> RetryPolicy:
        """The lookup retry discipline this spec pins."""
        return RetryPolicy(
            attempts=self.retry_attempts,
            base_delay=self.retry_base_delay,
            factor=self.retry_factor,
            jitter=self.retry_jitter,
            deadline=self.retry_deadline,
        )

    def to_record(self) -> dict:
        return dataclasses.asdict(self)


#: The canonical outage regimes.  ``mass-failure`` is the acceptance
#: experiment -- kill 40% of a 10,000-node overlay in one instant and
#: demand full recovery; CI smokes it at a small ``n`` override.
#: ``partition-heal`` splits a live overlay in half long enough for
#: maintenance to wound the cross-group pointers, then heals the
#: partition and measures the merge back to one correct ring.
FAULT_PRESETS: dict[str, FaultScenarioSpec] = {
    "mass-failure": FaultScenarioSpec(
        name="mass-failure",
        fault="mass-kill",
        n=10_000,
        m=20,
        kill_fraction=0.4,
        region="arc",
    ),
    "partition-heal": FaultScenarioSpec(
        name="partition-heal",
        fault="partition",
        n=1_024,
        m=16,
        partition_groups=2,
        partition_mode="full",
        partition_duration=40.0,
        outage_rounds=3,
    ),
}


def fault_preset(name: str, **overrides) -> FaultScenarioSpec:
    """A named fault preset, optionally customised."""
    if name not in FAULT_PRESETS:
        raise KeyError(f"unknown fault preset {name!r}; choose from {sorted(FAULT_PRESETS)}")
    spec = FAULT_PRESETS[name]
    return spec.with_(**overrides) if overrides else spec


@dataclass(frozen=True, slots=True)
class PhaseReport:
    """One probe sweep: correctness and metered cost."""

    phase: str
    probes: int
    correct: int
    wrong: int  # resolved, but not to the oracle owner
    failed: int  # raised after exhausting the retry budget
    messages: int
    latency: float

    @property
    def error_rate(self) -> float:
        return (self.wrong + self.failed) / self.probes if self.probes else 0.0

    @property
    def messages_per_probe(self) -> float:
        return self.messages / self.probes if self.probes else 0.0

    def to_record(self) -> dict:
        rec = dataclasses.asdict(self)
        rec["error_rate"] = self.error_rate
        rec["messages_per_probe"] = self.messages_per_probe
        return rec


@dataclass(frozen=True)
class FaultScenarioResult:
    """Everything one fault scenario produced, JSON-ready."""

    spec: FaultScenarioSpec
    baseline: PhaseReport
    outage: PhaseReport
    post: PhaseReport
    recovery_rounds: int | None  # rounds until all-correct; None = budget blown
    recovery_messages: int  # repair traffic (maintenance + recovery probes)
    population_start: int
    population_after_fault: int
    fault_log: list = field(default_factory=list)
    counters: dict = field(default_factory=dict)
    wall_seconds: float = 0.0
    #: Async-transport extras (sync runs leave the defaults): sim-clock
    #: time from fault injection to the first all-correct sweep, and
    #: per-hop RTT quantiles computed from actual delivery instants.
    recovery_sim_time: float | None = None
    hop_latency: dict = field(default_factory=dict)

    @property
    def recovered(self) -> bool:
        """Did the overlay return to all-lookups-correct within budget?"""
        return self.recovery_rounds is not None and self.post.error_rate == 0.0

    @property
    def outage_error_rate(self) -> float:
        return self.outage.error_rate

    @property
    def msgs_inflation_outage(self) -> float | None:
        """Messages per lookup during the outage vs the baseline."""
        base = self.baseline.messages_per_probe
        return self.outage.messages_per_probe / base if base else None

    @property
    def msgs_inflation_post(self) -> float | None:
        base = self.baseline.messages_per_probe
        return self.post.messages_per_probe / base if base else None

    def to_record(self) -> dict:
        return {
            "spec": self.spec.to_record(),
            "recovered": self.recovered,
            "recovery_rounds": self.recovery_rounds,
            "recovery_messages": self.recovery_messages,
            "outage_error_rate": self.outage_error_rate,
            "msgs_inflation_outage": self.msgs_inflation_outage,
            "msgs_inflation_post": self.msgs_inflation_post,
            "population_start": self.population_start,
            "population_after_fault": self.population_after_fault,
            "phases": {
                "baseline": self.baseline.to_record(),
                "outage": self.outage.to_record(),
                "post": self.post.to_record(),
            },
            "fault_log": list(self.fault_log),
            "counters": dict(self.counters),
            "wall_seconds": self.wall_seconds,
            "recovery_sim_time": self.recovery_sim_time,
            "hop_latency": dict(self.hop_latency),
        }


# -- the runner -------------------------------------------------------------


def _build_network(spec: FaultScenarioSpec, sim: Simulator, rngs: RngRegistry):
    ring_rng = random.Random(rngs.fresh("ring").getrandbits(64))
    loss_rng = rngs.stream("transport.loss")
    extra: dict = {}
    if spec.transport == "async":
        # The async experiment wants per-hop quantiles worth reporting:
        # jittered one-way latency (mean 1.0, like the sync default's
        # constant) so delivery order genuinely races timeouts.  Only
        # async runs take this branch; sync builds stay bit-identical.
        extra = {"async_transport": True, "latency": UniformLatency(0.5, 1.5)}
    if spec.backend == "kademlia":
        return KademliaNetwork.build(
            spec.n,
            m=spec.m,
            k=spec.kad_k,
            alpha=spec.kad_alpha,
            rng=ring_rng,
            sim=sim,
            loss_rng=loss_rng,
            **extra,
        )
    return ChordNetwork.build(
        spec.n,
        m=spec.m,
        rng=ring_rng,
        sim=sim,
        successor_list_size=spec.successor_list_size,
        loss_rng=loss_rng,
        **extra,
    )


def _build_plan(spec: FaultScenarioSpec, base: float = 0.0) -> FaultPlan:
    """The spec's fault timeline, offset by ``base`` sim-clock units.

    The async runner's baseline probes advance the clock (deliveries are
    real events), so its plan is armed relative to *now*; the sync
    runner keeps ``base=0`` and absolute injection times.
    """
    if spec.fault == "mass-kill":
        event = MassKill(
            at=base + spec.inject_at, fraction=spec.kill_fraction, region=spec.region
        )
    else:
        event = Partition(
            at=base + spec.inject_at,
            duration=spec.partition_duration,
            groups=spec.partition_groups,
            mode=spec.partition_mode,
            region=spec.region,
        )
    return FaultPlan(events=(event,))


def _oracle_owner(sorted_ids: list[int], target: int) -> int:
    """The clockwise-nearest live id at or after ``target`` (wrapping)."""
    i = bisect.bisect_left(sorted_ids, target)
    return sorted_ids[i % len(sorted_ids)]


def _probe_sweep(phase: str, dht, network, points, m: int) -> PhaseReport:
    """Resolve every probe point and grade it against the live oracle.

    The oracle view is re-read per probe: a sweep interleaved with
    maintenance (the recovery loop) must grade each lookup against the
    membership *at that instant*, and the epoch-memoized ``sorted_ids``
    makes the steady-state read O(1).
    """
    transport = network.transport
    before_msgs = transport.messages_sent
    before_time = transport.elapsed
    correct = wrong = failed = 0
    for x in points:
        target = point_to_target_id(x, m)
        expected = _oracle_owner(network.sorted_ids(), target)
        try:
            got = dht.h(x).peer_id
        except PeerUnreachableError:
            failed += 1
            continue
        if got == expected:
            correct += 1
        else:
            wrong += 1
    return PhaseReport(
        phase=phase,
        probes=len(points),
        correct=correct,
        wrong=wrong,
        failed=failed,
        messages=transport.messages_sent - before_msgs,
        latency=transport.elapsed - before_time,
    )


def _live_entry(network, entry_box: dict) -> int:
    """The async sweeps' entry vantage: fail over clockwise when killed."""
    entry = entry_box["id"]
    if entry in network.nodes:
        return entry
    ids = network.sorted_ids()
    i = bisect.bisect_left(ids, entry)
    entry_box["id"] = ids[i % len(ids)]
    return entry_box["id"]


def _hop_quantiles(rtts) -> dict:
    """Per-hop RTT quantiles from the transport's delivery log."""
    if not rtts:
        return {}
    ordered = sorted(rtts)
    last = len(ordered) - 1

    def q(p: float) -> float:
        return ordered[min(last, int(p * len(ordered)))]

    return {
        "count": len(ordered),
        "p50": q(0.50),
        "p95": q(0.95),
        "p99": q(0.99),
        "mean": sum(ordered) / len(ordered),
    }


def _probe_sweep_async(
    phase: str,
    network,
    spec: FaultScenarioSpec,
    points,
    entry_box: dict,
    policy: RetryPolicy,
    retry_rng,
) -> PhaseReport:
    """The async twin of :func:`_probe_sweep`: probes ride the event clock.

    Each probe runs the backend's continuation-driven lookup
    (:func:`~repro.dht.chord.async_lookup.lookup_async` /
    :func:`~repro.dht.kademlia.async_lookup.find_successor_async`) to
    completion via :func:`~repro.sim.async_net.drive` -- scheduled fault
    events (the kill, a partition heal) fire *during* probes when their
    time comes.  Retries follow the spec's policy with backoff elapsing
    as real sim time and the policy's ``deadline`` budget counted
    against actual clock spend, not a synthetic charge model.
    """
    transport = network.transport
    sim = network.sim
    before_msgs = transport.messages_sent
    before_time = transport.elapsed
    correct = wrong = failed = 0
    for x in points:
        target = point_to_target_id(x, spec.m)
        got = None
        spent = 0.0
        for failure in range(1, policy.attempts + 1):
            entry = _live_entry(network, entry_box)
            node = network.nodes[entry]
            if spec.backend == "kademlia":
                future = find_successor_async(node, target)
            else:
                future = lookup_async(node, target)
            started = sim.now
            try:
                got = drive(sim, future).node_id
                break
            except PeerUnreachableError:
                spent += sim.now - started
                if not policy.should_retry(failure) or not policy.within_deadline(
                    spent
                ):
                    break
                delay = policy.delay(failure, retry_rng)
                if policy.deadline is not None and spent + delay >= policy.deadline:
                    break
                transport.metrics.counter("rpc.retries").increment()
                if delay > 0:
                    # The backoff elapses on the clock (in-flight events
                    # proceed underneath) and is charged like the sync
                    # discipline charges its waits.
                    transport.charge_delay(delay)
                    sim.run(until=sim.now + delay)
                spent += delay
        # Grade against the oracle *after* the lookup: fault events that
        # fired mid-probe have already mutated the membership.
        expected = _oracle_owner(network.sorted_ids(), target)
        if got is None:
            failed += 1
        elif got == expected:
            correct += 1
        else:
            wrong += 1
    return PhaseReport(
        phase=phase,
        probes=len(points),
        correct=correct,
        wrong=wrong,
        failed=failed,
        messages=transport.messages_sent - before_msgs,
        latency=transport.elapsed - before_time,
    )


def run_fault_scenario(spec: FaultScenarioSpec) -> FaultScenarioResult:
    """Drive one structured outage end to end and report on it.

    Five acts: (1) baseline probes on the healthy overlay; (2) the fault
    plan fires on the sim clock; (3) outage probes -- plus a few
    maintenance rounds, modelling repair that runs *while* the fault is
    live -- measure the damage; (4) the fault clears (a partition heals;
    a mass-kill is permanent) and maintenance rounds run in chunks until
    a full probe sweep is all-correct, which defines time-to-recovery;
    (5) a fresh probe sweep on the recovered overlay pins the
    post-recovery contract: 100% oracle-correct lookups.

    ``spec.transport == "async"`` runs the same five acts on the
    message-level transport (see :func:`_run_fault_scenario_async`); the
    sync path below is untouched and bit-identical to its history.
    """
    if spec.transport == "async":
        return _run_fault_scenario_async(spec)
    start_wall = time.perf_counter()
    rngs = RngRegistry(spec.seed)
    sim = Simulator()
    network = _build_network(spec, sim, rngs)
    faults = FaultState()
    network.transport.install_faults(faults)
    dht = network.dht(
        retry_policy=spec.retry_policy(), retry_rng=rngs.stream("lookup.retry")
    )

    population_start = len(network.nodes)
    plan = _build_plan(spec)
    fault_log = plan.schedule(sim, network, rngs.stream("fault.plan"))

    def draw_points(stream: str) -> list[float]:
        rng = rngs.stream(stream)
        return [rng.random() for _ in range(spec.probes)]

    # Act 1: the healthy overlay.
    baseline = _probe_sweep(
        "baseline", dht, network, draw_points("probes.baseline"), spec.m
    )

    # Act 2: the fault fires on the sim clock.
    sim.run(until=spec.inject_at)
    population_after_fault = len(network.nodes)
    if not dht.entry_is_alive:
        dht.refresh_entry()

    # Act 3: life during the outage.  Probes run against the raw damage
    # first; then a few maintenance rounds run while the fault is still
    # live -- real deployments do not pause repair during an outage, and
    # for partitions this is what wounds the cross-group pointers.
    outage = _probe_sweep("outage", dht, network, draw_points("probes.outage"), spec.m)
    for _ in range(spec.outage_rounds):
        network.stabilize_round()

    # Act 4: the fault clears; the overlay heals.  Kademlia needs a leg
    # up in both directions: after a mass-kill the oracle-assisted
    # obituary purge lets refresh rebuild coverage from live contacts
    # instead of discovering thousands of casualties one timeout at a
    # time, and after a partition long enough for both sides to evict
    # each other the tables share no cross-group entries at all, so
    # every node re-joins through a bootstrap peer (charged traffic;
    # see :meth:`KademliaNetwork.rebootstrap`).  Chord's analogue of
    # both is the ring-merge pass inside its stabilization rounds.
    if spec.fault == "partition":
        sim.run(until=spec.inject_at + spec.partition_duration)
    if spec.backend == "kademlia":
        if spec.fault == "mass-kill":
            network.purge_dead_contacts()
        elif spec.fault == "partition":
            network.rebootstrap()

    recovery_points = draw_points("probes.recovery")
    before_recovery_msgs = network.transport.messages_sent
    recovery_rounds: int | None = None
    rounds_used = 0
    while rounds_used < spec.recovery_round_budget:
        chunk = min(spec.recovery_chunk, spec.recovery_round_budget - rounds_used)
        network.run_stabilization(chunk)
        rounds_used += chunk
        if not dht.entry_is_alive:
            dht.refresh_entry()
        sweep = _probe_sweep("recovery", dht, network, recovery_points, spec.m)
        if sweep.error_rate == 0.0:
            recovery_rounds = rounds_used
            break
    recovery_messages = network.transport.messages_sent - before_recovery_msgs

    # Act 5: the recovered overlay, probed fresh.
    post = _probe_sweep("post", dht, network, draw_points("probes.post"), spec.m)

    return FaultScenarioResult(
        spec=spec,
        baseline=baseline,
        outage=outage,
        post=post,
        recovery_rounds=recovery_rounds,
        recovery_messages=recovery_messages,
        population_start=population_start,
        population_after_fault=population_after_fault,
        fault_log=list(fault_log),
        counters=network.transport.metrics.counters(),
        wall_seconds=time.perf_counter() - start_wall,
    )


def _run_fault_scenario_async(spec: FaultScenarioSpec) -> FaultScenarioResult:
    """The five acts on the message-level transport.

    Structure mirrors the sync runner act for act, with three deliberate
    differences.  First, probes themselves advance the clock (every
    request and reply is a scheduled delivery), so the fault plan is
    armed relative to the clock position *after* the baseline sweep --
    ``inject_at`` keeps its meaning of "this long after the healthy
    measurement".  Second, maintenance (``stabilize_round`` /
    ``run_stabilization``) runs on the inherited call-and-return plane,
    off the event clock: repair cost still lands on the same meters, but
    recovery *time* is defined by probe traffic, which is the thing the
    experiment measures.  Third, the result carries two async-only
    observables -- ``recovery_sim_time`` (sim-clock span from injection
    to the first all-correct sweep) and ``hop_latency`` (RTT quantiles
    over every successful delivery's actual send-to-reply span).
    """
    start_wall = time.perf_counter()
    rngs = RngRegistry(spec.seed)
    sim = Simulator()
    network = _build_network(spec, sim, rngs)
    faults = FaultState()
    network.transport.install_faults(faults)
    network.transport.rtt_log = []
    policy = spec.retry_policy()
    retry_rng = rngs.stream("lookup.retry")
    entry_box = {"id": min(network.nodes)}

    population_start = len(network.nodes)

    def draw_points(stream: str) -> list[float]:
        rng = rngs.stream(stream)
        return [rng.random() for _ in range(spec.probes)]

    # Act 1: the healthy overlay, measured with real deliveries.
    baseline = _probe_sweep_async(
        "baseline",
        network,
        spec,
        draw_points("probes.baseline"),
        entry_box,
        policy,
        retry_rng,
    )

    # Act 2: arm the plan relative to now, then let the fault fire.
    base = sim.now
    plan = _build_plan(spec, base=base)
    fault_log = plan.schedule(sim, network, rngs.stream("fault.plan"))
    sim.run(until=base + spec.inject_at)
    population_after_fault = len(network.nodes)

    # Act 3: life during the outage.
    outage = _probe_sweep_async(
        "outage",
        network,
        spec,
        draw_points("probes.outage"),
        entry_box,
        policy,
        retry_rng,
    )
    for _ in range(spec.outage_rounds):
        network.stabilize_round()

    # Act 4: the fault clears; the overlay heals.  Same leg-ups as the
    # sync runner (obituary purge / rebootstrap for Kademlia); for a
    # partition the heal event is already scheduled, so running the
    # clock forward to its instant is what clears it.
    heal_at = base + spec.inject_at + spec.partition_duration
    if spec.fault == "partition" and sim.now < heal_at:
        sim.run(until=heal_at)
    if spec.backend == "kademlia":
        if spec.fault == "mass-kill":
            network.purge_dead_contacts()
        elif spec.fault == "partition":
            network.rebootstrap()

    recovery_points = draw_points("probes.recovery")
    before_recovery_msgs = network.transport.messages_sent
    recovery_rounds: int | None = None
    recovery_sim_time: float | None = None
    rounds_used = 0
    while rounds_used < spec.recovery_round_budget:
        chunk = min(spec.recovery_chunk, spec.recovery_round_budget - rounds_used)
        network.run_stabilization(chunk)
        rounds_used += chunk
        sweep = _probe_sweep_async(
            "recovery", network, spec, recovery_points, entry_box, policy, retry_rng
        )
        if sweep.error_rate == 0.0:
            recovery_rounds = rounds_used
            recovery_sim_time = sim.now - (base + spec.inject_at)
            break
    recovery_messages = network.transport.messages_sent - before_recovery_msgs

    # Act 5: the recovered overlay, probed fresh.
    post = _probe_sweep_async(
        "post", network, spec, draw_points("probes.post"), entry_box, policy, retry_rng
    )

    return FaultScenarioResult(
        spec=spec,
        baseline=baseline,
        outage=outage,
        post=post,
        recovery_rounds=recovery_rounds,
        recovery_messages=recovery_messages,
        population_start=population_start,
        population_after_fault=population_after_fault,
        fault_log=list(fault_log),
        counters=network.transport.metrics.counters(),
        wall_seconds=time.perf_counter() - start_wall,
        recovery_sim_time=recovery_sim_time,
        hop_latency=_hop_quantiles(network.transport.rtt_log),
    )
