"""Comparison samplers: the biased naive heuristic, random walks, and
virtual-node load balancing."""

from .naive import NaiveSampler, naive_selection_probabilities
from .random_walk import (
    RandomWalkSampler,
    stationary_distribution,
    walk_distribution,
)
from .unstructured import OVERLAY_KINDS, make_overlay
from .virtual_nodes import VirtualNodeRing, maintenance_messages_per_round

__all__ = [
    "OVERLAY_KINDS",
    "make_overlay",
    "NaiveSampler",
    "naive_selection_probabilities",
    "RandomWalkSampler",
    "stationary_distribution",
    "walk_distribution",
    "VirtualNodeRing",
    "maintenance_messages_per_round",
]
