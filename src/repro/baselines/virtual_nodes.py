"""Virtual nodes: the classical load-balancing extension (related work).

Each peer owns ``v`` points on the circle instead of one (Chord [16]
suggests ``v = Theta(log n)``).  Balance improves -- a peer's total arc
share concentrates around ``1/n`` -- which also shrinks (but does not
eliminate) the naive heuristic's bias.  The paper notes the drawback:
ring-maintenance bandwidth scales with ``v``, since every virtual point
needs its own successor/finger upkeep.

This module provides the ownership model and the exact induced
selection distribution, plus a simple maintenance-cost model used by
benchmark E11.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.intervals import SortedCircle

__all__ = ["VirtualNodeRing", "maintenance_messages_per_round"]


@dataclass(frozen=True)
class VirtualNodeRing:
    """A ring where peer ``i`` owns ``v`` virtual points.

    ``circle`` holds all ``n * v`` points; ``owner[j]`` is the peer that
    owns the ``j``-th sorted point.
    """

    circle: SortedCircle
    owner: tuple[int, ...]
    n_peers: int
    v: int

    @classmethod
    def random(cls, n_peers: int, v: int, rng: random.Random) -> "VirtualNodeRing":
        """Each of ``n_peers`` peers gets ``v`` i.i.d. uniform points."""
        if n_peers < 1 or v < 1:
            raise ValueError("need at least one peer and one virtual point each")
        tagged = sorted(
            (1.0 - rng.random(), peer) for peer in range(n_peers) for _ in range(v)
        )
        return cls(
            circle=SortedCircle(point for point, _ in tagged),
            owner=tuple(peer for _, peer in tagged),
            n_peers=n_peers,
            v=v,
        )

    def selection_probabilities(self) -> list[float]:
        """Exact naive-heuristic distribution over *peers*.

        ``h(U)`` lands on virtual point ``j`` with probability equal to
        its predecessor arc; the owning peer aggregates its points' arcs.
        """
        probs = [0.0] * self.n_peers
        for j, arc in enumerate(self.circle.arcs()):
            probs[self.owner[j]] += arc
        return probs

    def max_share(self) -> float:
        """The largest per-peer arc share (load-balance figure of merit)."""
        return max(self.selection_probabilities())


def maintenance_messages_per_round(n_peers: int, v: int, successor_list_size: int = 8) -> int:
    """Stabilization messages one round costs with ``v`` virtual points/peer.

    Per virtual point and round: one ``get_predecessor`` + one ``notify``
    + one ``get_successor_list`` round trip (2 messages each), plus one
    finger-fix lookup of ``~log2(n v)`` hops (2 messages per hop).  This
    mirrors what :class:`~repro.dht.chord.ChordNetwork` actually sends and
    is the bandwidth overhead the paper cites when declining to assume
    virtual nodes.
    """
    if n_peers < 1 or v < 1:
        raise ValueError("need at least one peer and one virtual point each")
    points = n_peers * v
    per_point = 3 * 2 + 2 * max(1, math.ceil(math.log2(max(2, points))))
    return points * per_point
