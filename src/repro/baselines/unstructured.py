"""Semi-structured / unstructured overlays -- the paper's second open problem.

Section 4 asks: "Many peer-to-peer networks like Gnutella have much less
structure than a DHT.  Are there efficient algorithms to choose random
peers in semi-structured peer-to-peer networks?"

Without the ring structure there is no ``h``/``next`` to exploit, so the
state of the art remains random walks -- whose quality depends on the
topology's spectral gap.  This module generates the overlay families a
Gnutella-like network plausibly forms (random regular, supernode/star-
heavy power-law, and narrow ring-like graphs) so benchmark E14 can show
how walk-sampling quality varies across them while the DHT algorithm's
guarantee is topology-independent.
"""

from __future__ import annotations

import random

import networkx as nx

__all__ = ["make_overlay", "OVERLAY_KINDS"]

OVERLAY_KINDS = ("random-regular", "power-law", "ring-lattice")


def make_overlay(kind: str, n: int, rng: random.Random) -> nx.Graph:
    """An unstructured overlay of ``n`` peers of the requested family.

    - ``random-regular``: 6-regular random graph -- the expander-like
      best case for walks;
    - ``power-law``: Barabasi-Albert preferential attachment -- the
      supernode-heavy topology measurement studies report for Gnutella;
    - ``ring-lattice``: a Watts-Strogatz ring with few shortcuts -- the
      slow-mixing worst case.

    All families are returned connected and without isolated nodes.
    """
    if kind not in OVERLAY_KINDS:
        raise ValueError(f"kind must be one of {OVERLAY_KINDS}, got {kind!r}")
    if n < 10:
        raise ValueError("need at least 10 peers for a meaningful overlay")
    seed = rng.randrange(2**31)
    if kind == "random-regular":
        graph = nx.random_regular_graph(6, n if n % 2 == 0 else n + 1, seed=seed)
        if n % 2 == 1:  # random_regular_graph needs even n*d; trim one node
            victim = max(graph.nodes)
            neighbors = list(graph.neighbors(victim))
            graph.remove_node(victim)
            # Reconnect any neighbour left isolated.
            for u in neighbors:
                if graph.degree(u) == 0:
                    graph.add_edge(u, (u + 1) % n)
    elif kind == "power-law":
        graph = nx.barabasi_albert_graph(n, 3, seed=seed)
    else:  # ring-lattice
        graph = nx.watts_strogatz_graph(n, 4, 0.05, seed=seed)
    if not nx.is_connected(graph):
        components = [sorted(c) for c in nx.connected_components(graph)]
        for a, b in zip(components, components[1:]):
            graph.add_edge(a[0], b[0])
    return graph
