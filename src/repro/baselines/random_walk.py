"""Random-walk peer sampling (Gkantsidis, Mihail & Saberi [5]).

The only prior approach the paper compares against: walk the overlay
graph for ``t`` steps and return the endpoint.  A *simple* random walk
converges to the degree-biased stationary distribution, not uniform; the
*Metropolis-Hastings* and *max-degree* corrections converge to uniform,
but only asymptotically in ``t`` and at a rate governed by the graph's
spectral gap -- which is exactly the paper's criticism.  Benchmark E8
measures total-variation distance versus walk length against the
King--Saia sampler's exact uniformity.
"""

from __future__ import annotations

import random
from collections.abc import Hashable, Sequence

import networkx as nx
import numpy as np

__all__ = [
    "WalkKind",
    "RandomWalkSampler",
    "walk_distribution",
    "stationary_distribution",
]

WalkKind = str  # "simple" | "metropolis" | "max-degree"
_KINDS = ("simple", "metropolis", "max-degree")


class RandomWalkSampler:
    """Sample peers by walking ``steps`` hops over the overlay graph.

    ``kind``:

    - ``"simple"``: uniform over neighbours; stationary distribution is
      proportional to degree (biased);
    - ``"metropolis"``: Metropolis-Hastings with a uniform target --
      move to a proposed neighbour ``v`` with probability
      ``min(1, deg(u)/deg(v))``, else stay;
    - ``"max-degree"``: pad every node to degree ``d_max`` with
      self-loops; uniform stationary distribution.
    """

    def __init__(
        self,
        graph: nx.Graph,
        steps: int,
        kind: WalkKind = "metropolis",
        rng: random.Random | None = None,
    ):
        if kind not in _KINDS:
            raise ValueError(f"kind must be one of {_KINDS}, got {kind!r}")
        if steps < 0:
            raise ValueError("steps must be non-negative")
        if graph.number_of_nodes() == 0:
            raise ValueError("graph has no nodes")
        if any(d == 0 for _, d in graph.degree()):
            raise ValueError("graph has isolated nodes; walks would strand")
        self._graph = graph
        self._steps = steps
        self._kind = kind
        self._rng = rng if rng is not None else random.Random()
        self._max_degree = max(d for _, d in graph.degree())
        self._neighbors = {u: list(graph.neighbors(u)) for u in graph.nodes}

    def step(self, node: Hashable) -> Hashable:
        """One transition of the chosen walk from ``node``."""
        neighbors = self._neighbors[node]
        if self._kind == "simple":
            return self._rng.choice(neighbors)
        if self._kind == "metropolis":
            proposal = self._rng.choice(neighbors)
            accept = min(1.0, len(neighbors) / len(self._neighbors[proposal]))
            return proposal if self._rng.random() < accept else node
        # max-degree: with prob deg/d_max move, else self-loop
        if self._rng.random() < len(neighbors) / self._max_degree:
            return self._rng.choice(neighbors)
        return node

    def sample(self, start: Hashable) -> Hashable:
        """Walk ``steps`` hops from ``start`` and return the endpoint."""
        node = start
        for _ in range(self._steps):
            node = self.step(node)
        return node

    def sample_many(self, start: Hashable, k: int) -> list[Hashable]:
        return [self.sample(start) for _ in range(k)]


def _transition_matrix(graph: nx.Graph, kind: WalkKind, order: Sequence) -> np.ndarray:
    """Row-stochastic transition matrix of the chosen walk."""
    index = {u: i for i, u in enumerate(order)}
    n = len(order)
    p = np.zeros((n, n))
    degrees = dict(graph.degree())
    d_max = max(degrees.values())
    for u in order:
        i = index[u]
        du = degrees[u]
        for v in graph.neighbors(u):
            j = index[v]
            if kind == "simple":
                p[i, j] = 1.0 / du
            elif kind == "metropolis":
                p[i, j] = (1.0 / du) * min(1.0, du / degrees[v])
            else:  # max-degree
                p[i, j] = 1.0 / d_max
        p[i, i] = 1.0 - p[i].sum() + p[i, i]
    return p


def walk_distribution(
    graph: nx.Graph, kind: WalkKind, steps: int, start: Hashable
) -> dict[Hashable, float]:
    """Exact endpoint distribution of a ``steps``-hop walk from ``start``.

    Computed by repeated vector-matrix products, so it is exact (no
    Monte-Carlo noise); practical for graphs up to a few thousand nodes.
    """
    order = list(graph.nodes)
    p = _transition_matrix(graph, kind, order)
    dist = np.zeros(len(order))
    dist[order.index(start)] = 1.0
    for _ in range(steps):
        dist = dist @ p
    return {u: float(dist[i]) for i, u in enumerate(order)}


def stationary_distribution(graph: nx.Graph, kind: WalkKind) -> dict[Hashable, float]:
    """The walk's limiting distribution (degree-biased or uniform)."""
    if kind == "simple":
        total = 2.0 * graph.number_of_edges()
        return {u: d / total for u, d in graph.degree()}
    n = graph.number_of_nodes()
    return {u: 1.0 / n for u in graph.nodes}
