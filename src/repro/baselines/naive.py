"""The naive sampling heuristic the paper opens with -- and its bias.

"Choose a random point ``x`` on the unit circle and return ``h(x)``."
The probability a peer is chosen equals the length of its predecessor
arc, which varies between ``Theta(1/n^2)`` and ``Theta(log n / n)``
(Theorem 8), so the luckiest peer is picked ``Theta(n log n)`` times
more often than the unluckiest.  We implement it both as a live sampler
(for head-to-head experiments) and as an exact distribution (the arc
lengths themselves) for analysis.
"""

from __future__ import annotations

import random

from ..core.intervals import SortedCircle
from ..dht.api import DHT, PeerRef

__all__ = ["NaiveSampler", "naive_selection_probabilities"]


class NaiveSampler:
    """``h(U(0, 1])``: one ``h`` call per sample, biased by arc length."""

    def __init__(self, dht: DHT, rng: random.Random | None = None):
        self._dht = dht
        self._rng = rng if rng is not None else random.Random()

    def sample(self) -> PeerRef:
        """Draw one peer with probability proportional to its arc."""
        return self._dht.h(1.0 - self._rng.random())

    def sample_many(self, k: int) -> list[PeerRef]:
        if k < 0:
            raise ValueError("k must be non-negative")
        return [self.sample() for _ in range(k)]


def naive_selection_probabilities(circle: SortedCircle) -> list[float]:
    """Exact selection distribution of the naive heuristic.

    Peer ``i`` is returned by ``h(U)`` iff ``U`` falls in its predecessor
    arc, so its selection probability is exactly ``circle.arc(i)``.
    """
    return circle.arcs()
