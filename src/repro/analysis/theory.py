"""Closed-form theory for uniform spacings and the sampler's costs.

For ``n`` i.i.d. uniform points on the circle the ``n`` arcs are uniform
spacings, for which classical exact results exist:

- ``E[min arc] = 1/n^2`` (exactly), matching Theorem 8's lower scale;
- ``E[max arc] = H_n / n`` (harmonic number), matching the
  ``Theta(log n / n)`` longest-arc scale the paper cites from [16];
- the naive heuristic's expected extreme-bias ratio is therefore on the
  order of ``n * H_n`` -- the ``Theta(n log n)`` of the introduction.

For the sampler, the per-trial success probability is ``n * lambda``
and trials are geometric, giving the closed-form expected trial and
message counts asserted by Theorem 7.
"""

from __future__ import annotations

import math

from ..core.sampler import SamplerParams

__all__ = [
    "harmonic",
    "expected_min_arc",
    "expected_max_arc",
    "expected_naive_bias",
    "expected_trials",
    "expected_messages_per_sample",
]


def harmonic(n: int) -> float:
    """The ``n``-th harmonic number ``H_n`` (exact sum for small ``n``,
    asymptotic expansion beyond)."""
    if n < 1:
        raise ValueError("n must be positive")
    if n <= 10_000:
        return math.fsum(1.0 / k for k in range(1, n + 1))
    # Euler-Maclaurin: H_n = ln n + gamma + 1/(2n) - 1/(12n^2) + ...
    gamma = 0.5772156649015329
    return math.log(n) + gamma + 1.0 / (2 * n) - 1.0 / (12 * n * n)


def expected_min_arc(n: int) -> float:
    """``E[min arc] = 1/n^2`` exactly for uniform spacings."""
    if n < 1:
        raise ValueError("n must be positive")
    return 1.0 / (n * n)


def expected_max_arc(n: int) -> float:
    """``E[max arc] = H_n / n`` exactly for uniform spacings."""
    if n < 1:
        raise ValueError("n must be positive")
    return harmonic(n) / n


def expected_naive_bias(n: int) -> float:
    """First-order expected extreme-bias ratio ``E[max]/E[min] = n H_n``.

    (The expectation of the *ratio* is larger -- the reciprocal of the
    minimum is heavy-tailed -- so treat this as the scale, not the mean.)
    """
    return n * harmonic(n)


def expected_trials(n: int, params: SamplerParams) -> float:
    """``E[trials] = 1/(n lambda)`` when the assignment is exact (Thm 7)."""
    if n < 1:
        raise ValueError("n must be positive")
    return 1.0 / (n * params.lam)


def expected_messages_per_sample(
    n: int, params: SamplerParams, m_h: float | None = None
) -> float:
    """First-order expected messages per successful sample.

    Each trial pays one ``h`` (``m_h`` messages, default ``log2 n``) plus
    the expected walk length; failed trials walk the full budget, while a
    successful trial's walk is bounded by the budget too, so using the
    budget for every trial gives a sound first-order upper estimate.
    """
    if m_h is None:
        m_h = math.log2(max(2, n))
    return expected_trials(n, params) * (m_h + params.walk_budget)
