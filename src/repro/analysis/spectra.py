"""Spectral analysis of overlay graphs.

Gkantsidis et al. tie random-walk sampling quality to the second
eigenvalue of the walk's transition matrix; the paper's criticism is
that this eigenvalue is unknown in practice.  These utilities compute it
for simulated overlays so benchmark E8 can relate measured mixing to the
spectral gap.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..baselines.random_walk import WalkKind, _transition_matrix

__all__ = ["SpectralReport", "spectral_report", "mixing_time_bound"]


@dataclass(frozen=True)
class SpectralReport:
    """Second-eigenvalue summary of one walk chain on one graph."""

    n: int
    kind: str
    second_eigenvalue: float  # lambda_2 = max non-principal |eigenvalue|
    spectral_gap: float  # 1 - lambda_2

    @property
    def relaxation_time(self) -> float:
        return math.inf if self.spectral_gap <= 0 else 1.0 / self.spectral_gap


def spectral_report(graph: nx.Graph, kind: WalkKind = "metropolis") -> SpectralReport:
    """Eigen-decompose the walk's transition matrix (dense; n <= ~3000)."""
    order = list(graph.nodes)
    p = _transition_matrix(graph, kind, order)
    eigenvalues = np.linalg.eigvals(p)
    magnitudes = np.sort(np.abs(eigenvalues))[::-1]
    lam2 = float(magnitudes[1]) if len(magnitudes) > 1 else 0.0
    return SpectralReport(
        n=len(order), kind=kind, second_eigenvalue=lam2, spectral_gap=1.0 - lam2
    )


def mixing_time_bound(report: SpectralReport, epsilon: float = 0.01) -> float:
    """Standard upper bound ``t_mix(eps) <= ln(n/eps) / gap`` on steps to
    come within ``eps`` TV of stationary."""
    if report.spectral_gap <= 0:
        return math.inf
    return math.log(report.n / epsilon) / report.spectral_gap
