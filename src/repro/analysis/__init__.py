"""Statistics, arc analytics, and spectral tools for the experiments."""

from .arcs import ArcSweepRow, sweep_arc_extremes
from .spectra import SpectralReport, mixing_time_bound, spectral_report
from .stats import (
    ChiSquareResult,
    chi_square_uniform,
    empirical_distribution,
    kl_divergence,
    max_min_ratio,
    mean_confidence_interval,
    total_variation,
    total_variation_from_uniform,
    wilson_interval,
)

__all__ = [
    "ArcSweepRow",
    "sweep_arc_extremes",
    "SpectralReport",
    "mixing_time_bound",
    "spectral_report",
    "ChiSquareResult",
    "chi_square_uniform",
    "empirical_distribution",
    "kl_divergence",
    "max_min_ratio",
    "mean_confidence_interval",
    "total_variation",
    "total_variation_from_uniform",
    "wilson_interval",
]
