"""Arc-length analytics: the empirical side of Theorem 8 and Lemma 1.

Aggregates extreme-arc statistics over many random rings so benchmarks
can show ``shortest = Theta(1/n^2)`` and ``longest = Theta(log n / n)``
as flat normalized ratios across a sweep of ``n``.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from ..core.intervals import SortedCircle
from ..core.properties import ArcExtremes, arc_extremes

__all__ = ["ArcSweepRow", "sweep_arc_extremes"]


@dataclass(frozen=True)
class ArcSweepRow:
    """Extreme-arc statistics for one ring size, averaged over rings."""

    n: int
    rings: int
    mean_shortest: float
    mean_longest: float
    mean_shortest_ratio: float  # shortest / (1/n^2), Theta(1) by Thm 8
    mean_longest_ratio: float  # longest / (ln n / n), Theta(1) by [16]
    mean_bias_ratio: float  # longest / shortest, Theta(n log n)

    @property
    def bias_scale(self) -> float:
        """``mean_bias_ratio / (n ln n)`` -- flat when Theorem 8 holds."""
        return self.mean_bias_ratio / (self.n * math.log(self.n))


def sweep_arc_extremes(
    sizes: list[int], rings_per_size: int, rng: random.Random
) -> list[ArcSweepRow]:
    """Average :func:`arc_extremes` over ``rings_per_size`` rings per size."""
    rows = []
    for n in sizes:
        extremes: list[ArcExtremes] = [
            arc_extremes(SortedCircle.random(n, rng)) for _ in range(rings_per_size)
        ]
        k = len(extremes)
        rows.append(
            ArcSweepRow(
                n=n,
                rings=k,
                mean_shortest=math.fsum(e.shortest for e in extremes) / k,
                mean_longest=math.fsum(e.longest for e in extremes) / k,
                mean_shortest_ratio=math.fsum(e.shortest_ratio for e in extremes) / k,
                mean_longest_ratio=math.fsum(e.longest_ratio for e in extremes) / k,
                mean_bias_ratio=math.fsum(e.naive_bias_ratio for e in extremes) / k,
            )
        )
    return rows
