"""Statistical machinery for evaluating samplers.

Uniformity is judged three ways: total-variation distance to uniform,
chi-square goodness of fit, and the max/min selection ratio the paper
uses to quantify the naive heuristic's bias.  Estimation helpers
(Wilson and normal confidence intervals) back the data-collection
application.
"""

from __future__ import annotations

import math
from collections import Counter
from collections.abc import Iterable, Mapping, Sequence
from dataclasses import dataclass

import numpy as np
from scipy import stats as sps

__all__ = [
    "empirical_distribution",
    "total_variation",
    "total_variation_from_uniform",
    "kl_divergence",
    "ChiSquareResult",
    "chi_square_uniform",
    "max_min_ratio",
    "wilson_interval",
    "mean_confidence_interval",
]


def empirical_distribution(samples: Iterable, support: Sequence) -> dict:
    """Relative frequencies of ``samples`` over an explicit ``support``.

    Unseen support elements get probability 0; samples outside the
    support raise, because that always indicates an experiment bug.
    """
    support_set = set(support)
    counts: Counter = Counter()
    total = 0
    for s in samples:
        if s not in support_set:
            raise ValueError(f"sample {s!r} outside the declared support")
        counts[s] += 1
        total += 1
    if total == 0:
        raise ValueError("no samples given")
    return {x: counts.get(x, 0) / total for x in support}


def total_variation(p: Mapping, q: Mapping) -> float:
    """``TV(p, q) = (1/2) sum |p(x) - q(x)|`` over the union support."""
    keys = set(p) | set(q)
    return 0.5 * math.fsum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)


def total_variation_from_uniform(p: Mapping) -> float:
    """TV distance between ``p`` and uniform over ``p``'s support."""
    n = len(p)
    if n == 0:
        raise ValueError("empty distribution")
    u = 1.0 / n
    return 0.5 * math.fsum(abs(v - u) for v in p.values())


def kl_divergence(p: Mapping, q: Mapping) -> float:
    """``KL(p || q)`` in nats; infinite when ``p`` has mass where ``q`` has none."""
    out = 0.0
    for k, pv in p.items():
        if pv == 0.0:
            continue
        qv = q.get(k, 0.0)
        if qv == 0.0:
            return math.inf
        out += pv * math.log(pv / qv)
    return out


@dataclass(frozen=True)
class ChiSquareResult:
    """Chi-square goodness-of-fit against the uniform distribution."""

    statistic: float
    p_value: float
    dof: int

    def rejects_uniformity(self, alpha: float = 0.01) -> bool:
        """Whether uniformity is rejected at significance ``alpha``."""
        return self.p_value < alpha


def chi_square_uniform(counts: Sequence[int]) -> ChiSquareResult:
    """Chi-square test of observed counts against equal expectation."""
    counts = list(counts)
    if len(counts) < 2:
        raise ValueError("need at least two categories")
    if min(counts) < 0:
        raise ValueError("counts must be non-negative")
    if sum(counts) == 0:
        raise ValueError("need at least one observation")
    statistic, p_value = sps.chisquare(counts)
    return ChiSquareResult(
        statistic=float(statistic), p_value=float(p_value), dof=len(counts) - 1
    )


def max_min_ratio(probabilities: Sequence[float]) -> float:
    """``max(p) / min(p)`` -- the paper's bias measure (Theta(n log n) naive)."""
    lo = min(probabilities)
    hi = max(probabilities)
    if lo <= 0.0:
        return math.inf
    return hi / lo


def wilson_interval(successes: int, trials: int, confidence: float = 0.95) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion."""
    if trials <= 0:
        raise ValueError("trials must be positive")
    if not 0 <= successes <= trials:
        raise ValueError("successes must lie in [0, trials]")
    z = sps.norm.ppf(0.5 + confidence / 2.0)
    phat = successes / trials
    denom = 1.0 + z * z / trials
    centre = (phat + z * z / (2 * trials)) / denom
    half = (z / denom) * math.sqrt(phat * (1 - phat) / trials + z * z / (4 * trials * trials))
    return (max(0.0, centre - half), min(1.0, centre + half))


def mean_confidence_interval(
    values: Sequence[float], confidence: float = 0.95
) -> tuple[float, float, float]:
    """``(mean, low, high)`` using the t distribution."""
    arr = np.asarray(values, dtype=float)
    if arr.size < 2:
        raise ValueError("need at least two observations")
    mean = float(arr.mean())
    sem = float(sps.sem(arr))
    if sem == 0.0:
        return (mean, mean, mean)
    low, high = sps.t.interval(confidence, arr.size - 1, loc=mean, scale=sem)
    return (mean, float(low), float(high))
