"""Observability: sim-clock tracing, exporters, critical-path analysis.

The paper's cost story is aggregate (messages and latency per sample);
this package makes it *per request and per hop*.  A
:class:`~repro.obs.tracer.Tracer` threads through the serving stack --
admission, micro-batch queueing, retry backoff, the batch engine's
rejection rounds, and every transport delivery -- recording
:class:`~repro.obs.spans.Span` trees on the simulation and latency
clocks.  Exporters (:mod:`repro.obs.export`) write JSONL, Chrome
trace-event JSON and Prometheus text; the critical-path analyzer
(:mod:`repro.obs.critical_path`) decomposes request latency into
queue/backoff/overhead/routing segments and per-backend hop profiles.

The default everywhere is :data:`~repro.obs.tracer.NULL_TRACER`: a
no-op whose disabled cost is one attribute read per instrumentation
site, with seeded runs bit-identical traced-off vs pre-instrumentation
(``benchmarks/bench_obs.py`` proves both).  See docs/OBSERVABILITY.md.
"""

from .critical_path import CriticalPathReport, HopProfile, RequestBreakdown, analyze
from .export import (
    chrome_trace,
    prometheus_text,
    span_records,
    write_chrome_trace,
    write_jsonl,
)
from .spans import CLOCK_LATENCY, CLOCK_SIM, Span
from .tracer import (
    NULL_TRACER,
    NullTracer,
    SampleAll,
    SampleOneInK,
    SamplingPolicy,
    SlowestReservoir,
    Tracer,
    parse_policy,
)

__all__ = [
    "Span",
    "CLOCK_SIM",
    "CLOCK_LATENCY",
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
    "SamplingPolicy",
    "SampleAll",
    "SampleOneInK",
    "SlowestReservoir",
    "parse_policy",
    "span_records",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
    "analyze",
    "CriticalPathReport",
    "RequestBreakdown",
    "HopProfile",
]
