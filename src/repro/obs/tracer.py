"""Span collection with head sampling and a zero-overhead null default.

Two implementations share one surface:

- :class:`NullTracer` (the module-level :data:`NULL_TRACER`) is the
  default everywhere.  Every hook is a no-op; its ``enabled`` and
  ``active`` class attributes are ``False`` so instrumented code guards
  on one attribute read and the disabled cost of tracing is a branch --
  the bit-identical / <=2%-overhead guarantee ``bench_obs`` enforces.
- :class:`Tracer` records spans for head-sampled requests.  The
  sampling decision is made once, at request admission, by a
  :class:`SamplingPolicy`; a request that loses the coin never
  allocates anything again.

Layer contract
--------------

The service layer drives the request lifecycle
(:meth:`Tracer.begin_request` / :meth:`record_admission` /
:meth:`finish_requests`), the shard worker brackets each dispatch in a
batch context (:meth:`begin_batch` / :meth:`end_batch` /
:meth:`fail_batch`, plus :meth:`record_backoff` for retry cooldowns),
and the engine and transport only ever *append into the active batch
context* (:meth:`on_round`, :meth:`on_rpc`, :meth:`on_lookup`), guarded
by :attr:`active` -- true exactly while a sampled batch is dispatching.
The transport therefore needs no knowledge of requests or sampling, and
the sim layer keeps its no-upward-imports rule: ``RpcTransport`` ships
its own null sink and this class merely satisfies the same duck type.

Determinism: nothing here consumes an RNG.  ``all`` traces everything,
``1-in-k`` is a modular counter over admission order, and
``slowest:N`` keeps the N slowest completed requests by deterministic
comparison (duration, then trace id).  Traced and untraced runs of the
same seed are bit-identical in every output except the trace itself.
"""

from __future__ import annotations

from .spans import CLOCK_LATENCY, CLOCK_SIM, Span

__all__ = [
    "NullTracer",
    "NULL_TRACER",
    "Tracer",
    "SamplingPolicy",
    "SampleAll",
    "SampleOneInK",
    "SlowestReservoir",
    "parse_policy",
]


class NullTracer:
    """The do-nothing tracer: every hook a no-op, every guard False."""

    enabled = False
    active = False

    # -- request lifecycle (service layer) --
    def begin_request(self, request_id: int, now: float) -> None:
        return None

    def record_admission(self, request_id, shard_id, admitted, now, **attrs) -> None:
        return None

    def finish_requests(self, responses, ctx=None) -> None:
        return None

    # -- batch lifecycle (shard worker) --
    def begin_batch(self, requests, shard_id, now):
        return None

    def end_batch(self, ctx, now, execution, service_time, overhead, routing) -> None:
        return None

    def fail_batch(self, ctx, now, error: str = "") -> None:
        return None

    def record_backoff(self, request_ids, start, cooldown, attempt) -> None:
        return None

    # -- in-dispatch hooks (engine / transport sink surface) --
    def on_round(self, index, trials, successes, cost=None) -> None:
        return None

    def on_rpc(self, source, target, method, kind, start, end, outcome) -> None:
        return None

    def on_lookup(self, backend, hops, messages, latency, ok) -> None:
        return None

    # -- telemetry hub --
    def attach_registry(self, name, registry) -> None:
        return None


#: The shared default instance (stateless, safe to share everywhere).
NULL_TRACER = NullTracer()


# -- head-sampling policies ---------------------------------------------


class SamplingPolicy:
    """Decides, at admission, whether a request is traced.

    ``capacity`` bounds how many *finished* request traces are retained
    (None = unbounded); :class:`Tracer` applies it on completion with
    deterministic slowest-first retention.
    """

    capacity: int | None = None

    def admit(self, request_id: int) -> bool:
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError


class SampleAll(SamplingPolicy):
    """Trace every request (the debugging default for short runs)."""

    def admit(self, request_id: int) -> bool:
        return True

    def describe(self) -> str:
        return "all"


class SampleOneInK(SamplingPolicy):
    """Trace every k-th admitted request (modular counter, no RNG)."""

    def __init__(self, k: int):
        if k < 1:
            raise ValueError("k must be at least 1")
        self.k = k
        self._seen = 0

    def admit(self, request_id: int) -> bool:
        chosen = self._seen % self.k == 0
        self._seen += 1
        return chosen

    def describe(self) -> str:
        return f"1-in-{self.k}"


class SlowestReservoir(SamplingPolicy):
    """Trace every request but retain only the N slowest finished ones.

    Recording cost is that of ``all``; *memory* is bounded: whenever
    more than ``capacity`` finished request traces are held, the
    fastest is evicted (ties broken by trace id, so retention is
    deterministic).  This is the policy for hunting tail latency: the
    p99 offenders are exactly what survives.
    """

    def __init__(self, capacity: int):
        if capacity < 1:
            raise ValueError("capacity must be at least 1")
        self.capacity = capacity

    def admit(self, request_id: int) -> bool:
        return True

    def describe(self) -> str:
        return f"slowest:{self.capacity}"


def parse_policy(text: str) -> SamplingPolicy:
    """Parse a policy spec: ``all``, ``1-in-<k>`` or ``slowest:<n>``."""
    text = text.strip().lower()
    if text == "all":
        return SampleAll()
    if text.startswith("1-in-"):
        return SampleOneInK(int(text[len("1-in-"):]))
    if text.startswith("slowest:"):
        return SlowestReservoir(int(text[len("slowest:"):]))
    raise ValueError(
        f"unknown sampling policy {text!r}; use 'all', '1-in-<k>' or 'slowest:<n>'"
    )


# -- trace storage ------------------------------------------------------


class _Trace:
    """One trace: a root span plus its children, with bookkeeping."""

    __slots__ = ("trace_id", "kind", "spans", "root", "request_id")

    def __init__(self, trace_id: int, kind: str, request_id: int | None = None):
        self.trace_id = trace_id
        self.kind = kind  # "request" | "batch"
        self.spans: list[Span] = []
        self.root: Span | None = None
        self.request_id = request_id


class _BatchCtx:
    """The active-dispatch context handed back by :meth:`Tracer.begin_batch`."""

    __slots__ = ("trace", "shard_id", "member_ids", "started")

    def __init__(self, trace: _Trace, shard_id: int, member_ids: list[int], started: float):
        self.trace = trace
        self.shard_id = shard_id
        self.member_ids = member_ids  # sampled request ids in this batch
        self.started = started

    @property
    def trace_id(self) -> int:
        return self.trace.trace_id


class Tracer:
    """Records spans for head-sampled requests (see module docstring)."""

    enabled = True

    def __init__(self, policy: SamplingPolicy | str = "all"):
        self.policy = parse_policy(policy) if isinstance(policy, str) else policy
        self._next_trace = 0
        self._next_span = 0
        #: Open request traces by trace id.
        self._open: dict[int, _Trace] = {}
        #: request_id -> open trace id (how workers find a request's trace).
        self._by_request: dict[int, int] = {}
        #: Finished request traces retained under the policy's capacity.
        self.finished: list[_Trace] = []
        #: Batch-dispatch traces (referenced by request service spans).
        self.batches: dict[int, _Trace] = {}
        #: The in-flight batch context; non-None makes :attr:`active` true.
        self._ctx: _BatchCtx | None = None
        #: Metric registries attached for exposition (name -> registry).
        self.registries: dict = {}
        #: Requests the policy declined (for sampling-rate accounting).
        self.unsampled = 0

    # -- internal helpers ------------------------------------------------

    def _new_trace(self, kind: str, request_id: int | None = None) -> _Trace:
        trace = _Trace(self._next_trace, kind, request_id)
        self._next_trace += 1
        return trace

    def _span(
        self,
        trace: _Trace,
        name: str,
        kind: str,
        start: float,
        end: float,
        parent_id: int | None = None,
        clock: str = CLOCK_SIM,
        **attrs,
    ) -> Span:
        span = Span(
            span_id=self._next_span,
            trace_id=trace.trace_id,
            parent_id=parent_id,
            name=name,
            kind=kind,
            start=start,
            end=end,
            clock=clock,
            attrs=attrs,
        )
        self._next_span += 1
        trace.spans.append(span)
        return span

    def trace_of(self, request_id: int) -> int | None:
        """The open trace id for a request, or None if unsampled/finished."""
        return self._by_request.get(request_id)

    # -- request lifecycle (service layer) -------------------------------

    def begin_request(self, request_id: int, now: float) -> int | None:
        """Head-sample one arriving request; returns its trace id or None."""
        if not self.policy.admit(request_id):
            self.unsampled += 1
            return None
        trace = self._new_trace("request", request_id)
        trace.root = self._span(
            trace, "request", "request", now, now, request_id=request_id
        )
        self._open[trace.trace_id] = trace
        self._by_request[request_id] = trace.trace_id
        return trace.trace_id

    def record_admission(
        self, request_id: int, shard_id: int, admitted: bool, now: float, **attrs
    ) -> None:
        trace = self._open_trace(request_id)
        if trace is None:
            return
        self._span(
            trace,
            "admission",
            "admission",
            now,
            now,
            parent_id=trace.root.span_id,
            shard=shard_id,
            admitted=admitted,
            **attrs,
        )
        if not admitted:
            self._finish(trace, now, "rejected", shard_id=shard_id)

    def _open_trace(self, request_id: int) -> _Trace | None:
        trace_id = self._by_request.get(request_id)
        return self._open.get(trace_id) if trace_id is not None else None

    def finish_requests(self, responses, ctx: _BatchCtx | None = None) -> None:
        """Close the traces of a completed (or failed) batch's requests.

        Each sampled request gets its ``queue.wait`` span (arrival to
        dispatch) and -- for served requests -- a ``service`` span
        (dispatch to completion) pointing at the shared batch trace.
        """
        batch_id = ctx.trace_id if ctx is not None else None
        for r in responses:
            trace = self._open_trace(r.request_id)
            if trace is None:
                continue
            root = trace.root
            arrival = r.completion_time - r.service_latency - r.queue_latency
            dispatched = arrival + r.queue_latency
            self._span(
                trace,
                "queue.wait",
                "queue",
                arrival,
                dispatched,
                parent_id=root.span_id,
                shard=r.shard_id,
            )
            status = r.status.name.lower()
            if status == "ok":
                self._span(
                    trace,
                    "service",
                    "service",
                    dispatched,
                    r.completion_time,
                    parent_id=root.span_id,
                    shard=r.shard_id,
                    batch=batch_id,
                    batch_size=r.batch_size,
                    peer=r.peer.peer_id if r.peer is not None else None,
                )
            self._finish(trace, r.completion_time, status, shard_id=r.shard_id)

    def _finish(self, trace: _Trace, now: float, status: str, **attrs) -> None:
        root = trace.root
        root.end = now
        root.attrs["status"] = status
        root.attrs.update(attrs)
        del self._open[trace.trace_id]
        del self._by_request[trace.request_id]
        self.finished.append(trace)
        cap = self.policy.capacity
        if cap is not None and len(self.finished) > cap:
            # Deterministic slowest-first retention: evict the fastest
            # finished trace (ties by trace id, oldest first).
            fastest = min(
                self.finished, key=lambda t: (t.root.duration, -t.trace_id)
            )
            self.finished.remove(fastest)

    # -- batch lifecycle (shard worker) ----------------------------------

    def begin_batch(self, requests, shard_id: int, now: float) -> _BatchCtx | None:
        """Open a batch context if any member request is sampled.

        While the context is open, :attr:`active` is true and the
        engine/transport hooks append into the batch trace.  A batch
        with no sampled members returns None: tracing then costs the
        per-hop guards nothing beyond the attribute read.
        """
        member_ids = [
            r.request_id for r in requests if r.request_id in self._by_request
        ]
        if not member_ids:
            return None
        trace = self._new_trace("batch")
        trace.root = self._span(
            trace,
            "batch.dispatch",
            "batch",
            now,
            now,
            shard=shard_id,
            size=len(requests),
            sampled=len(member_ids),
        )
        self.batches[trace.trace_id] = trace
        ctx = _BatchCtx(trace, shard_id, member_ids, now)
        self._ctx = ctx
        return ctx

    def end_batch(
        self,
        ctx: _BatchCtx,
        now: float,
        execution,
        service_time: float,
        overhead: float,
        routing: float,
    ) -> None:
        """Close a successful dispatch: decompose its service time.

        ``overhead + routing == service_time`` exactly (the
        :class:`~repro.service.dispatch.ServiceTimeModel` identity), so
        the two child spans partition the batch's sim-clock service
        window and the critical-path analyzer reconstructs request
        latency without residuals.
        """
        trace = ctx.trace
        root = trace.root
        root.end = now + service_time
        cost = execution.cost
        root.attrs.update(
            trials=execution.trials,
            dispatches=execution.dispatches,
            h_calls=cost.h_calls,
            next_calls=cost.next_calls,
            messages=cost.messages,
            latency=cost.latency,
            service_time=service_time,
        )
        self._span(
            trace,
            "dispatch.overhead",
            "overhead",
            now,
            now + overhead,
            parent_id=root.span_id,
        )
        self._span(
            trace,
            "routing",
            "routing",
            now + overhead,
            now + overhead + routing,
            parent_id=root.span_id,
            latency=cost.latency,
        )
        self._ctx = None

    def fail_batch(self, ctx: _BatchCtx, now: float, error: str = "") -> None:
        """Close a dispatch that died (DispatchError): keep its hop spans."""
        trace = ctx.trace
        trace.root.end = now
        trace.root.attrs["error"] = error or "dispatch-failed"
        self._ctx = None

    def record_backoff(
        self, request_ids, start: float, cooldown: float, attempt: int
    ) -> None:
        """A retry cooldown every queued request of the batch sits through."""
        for request_id in request_ids:
            trace = self._open_trace(request_id)
            if trace is None:
                continue
            self._span(
                trace,
                "retry.backoff",
                "backoff",
                start,
                start + cooldown,
                parent_id=trace.root.span_id,
                attempt=attempt,
            )

    # -- in-dispatch hooks (engine / transport sink surface) --------------

    @property
    def active(self) -> bool:
        """True exactly while a sampled batch is dispatching."""
        return self._ctx is not None

    def on_round(self, index: int, trials: int, successes: int, cost=None) -> None:
        """One engine rejection round (round 0 is the initial classify)."""
        ctx = self._ctx
        if ctx is None:
            return
        trace = ctx.trace
        attrs = {"trials": trials, "successes": successes}
        if cost is not None:
            attrs["messages"] = cost.messages
            attrs["latency"] = cost.latency
        start = ctx.started
        self._span(
            trace,
            f"round[{index}]",
            "round",
            start,
            start,
            parent_id=trace.root.span_id,
            index=index,
            **attrs,
        )

    def on_rpc(
        self,
        source: int | None,
        target: int,
        method: str,
        kind: str,
        start: float,
        end: float,
        outcome: str,
    ) -> None:
        """One transport delivery (latency clock; ``outcome`` attributes
        drops/timeouts/partitions from the fault surface)."""
        ctx = self._ctx
        if ctx is None:
            return
        trace = ctx.trace
        self._span(
            trace,
            f"rpc.{method}",
            "rpc",
            start,
            end,
            parent_id=trace.root.span_id,
            clock=CLOCK_LATENCY,
            source=source,
            target=target,
            method=method,
            rpc_kind=kind,
            outcome=outcome,
        )

    def on_lookup(
        self, backend: str, hops: int, messages: int, latency: float, ok: bool
    ) -> None:
        """One whole DHT lookup (h/successor resolution), hop-attributed.

        Recorded by the substrate adapters around each lookup -- live
        ones bracketing the transport's per-hop rpc spans, lockstep ones
        synthesized from the batch engine's
        :class:`~repro.dht.chord.batch.LookupTrace` replay (which never
        touches the transport).  ``hops`` counts routing RPCs.
        """
        ctx = self._ctx
        if ctx is None:
            return
        trace = ctx.trace
        self._span(
            trace,
            f"lookup.{backend}",
            "lookup",
            0.0,
            latency,
            parent_id=trace.root.span_id,
            clock=CLOCK_LATENCY,
            backend=backend,
            hops=hops,
            messages=messages,
            latency=latency,
            ok=ok,
        )

    # -- telemetry hub / views --------------------------------------------

    def attach_registry(self, name: str, registry) -> None:
        """Register a :class:`~repro.sim.metrics.MetricsRegistry` for
        exposition (the runner attaches the service's and every shard
        transport's)."""
        self.registries[name] = registry

    def traces(self) -> list[_Trace]:
        """All retained traces: finished requests, batches, then open ones."""
        return [*self.finished, *self.batches.values(), *self._open.values()]

    def spans(self) -> list[Span]:
        """Every retained span, grouped by trace."""
        return [span for trace in self.traces() for span in trace.spans]

    def batch_trace(self, trace_id: int) -> _Trace | None:
        return self.batches.get(trace_id)

    def summary(self) -> dict:
        """Counts for reports: traces kept, spans, sampling rate."""
        finished = len(self.finished)
        total = finished + self.unsampled + len(self._open)
        return {
            "policy": self.policy.describe(),
            "requests_seen": total,
            "requests_traced": finished,
            "requests_unsampled": self.unsampled,
            "batches": len(self.batches),
            "spans": len(self.spans()),
        }
