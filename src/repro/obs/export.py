"""Exporters: JSONL spans, Chrome trace events, Prometheus text metrics.

Three ways out of the process, all plain text and dependency-free:

- :func:`write_jsonl` -- one JSON object per span (the
  :meth:`~repro.obs.spans.Span.to_record` schema), the grep-able
  archival format;
- :func:`write_chrome_trace` / :func:`chrome_trace` -- the Chrome
  trace-event JSON format, loadable in ``chrome://tracing`` or Perfetto
  for a visual timeline.  Sim-clock and latency-clock spans land in two
  separate "processes" so the viewer never overlays incomparable time
  axes; each trace becomes a thread;
- :func:`prometheus_text` -- text exposition (``# TYPE`` comments,
  ``name{label="..."} value`` samples) of any collection of
  :class:`~repro.sim.metrics.MetricsRegistry` instances: counters as
  ``counter``, histograms as ``summary`` with quantile labels.

Spans carry abstract simulation time; the Chrome exporter scales by
:data:`CHROME_TICK_US` (one sim unit = 1000 "microseconds") purely so
durations are comfortably readable in the viewer's zoom range.
"""

from __future__ import annotations

import json
from pathlib import Path

__all__ = [
    "span_records",
    "write_jsonl",
    "chrome_trace",
    "write_chrome_trace",
    "prometheus_text",
]

#: Viewer microseconds per simulation time unit (display scaling only).
CHROME_TICK_US = 1000.0

#: Chrome trace-event "process ids" for the two span clocks.
_PID_BY_CLOCK = {"sim": 1, "latency": 2}


def span_records(tracer) -> list[dict]:
    """Every retained span as a flat JSON-ready record, in trace order."""
    return [span.to_record() for span in tracer.spans()]


def write_jsonl(tracer, path) -> Path:
    """One span per line; returns the written path."""
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    with out.open("w") as fh:
        for record in span_records(tracer):
            fh.write(json.dumps(record, sort_keys=True) + "\n")
    return out


def chrome_trace(tracer) -> dict:
    """The tracer's spans as a Chrome trace-event JSON object."""
    events = [
        {
            "name": "process_name",
            "ph": "M",
            "pid": 1,
            "tid": 0,
            "args": {"name": "sim clock"},
        },
        {
            "name": "process_name",
            "ph": "M",
            "pid": 2,
            "tid": 0,
            "args": {"name": "latency clock"},
        },
    ]
    for span in tracer.spans():
        args = {k: v for k, v in span.attrs.items() if v is not None}
        events.append(
            {
                "name": span.name,
                "cat": span.kind,
                "ph": "X",
                "ts": span.start * CHROME_TICK_US,
                "dur": span.duration * CHROME_TICK_US,
                "pid": _PID_BY_CLOCK.get(span.clock, 1),
                "tid": span.trace_id,
                "args": args,
            }
        )
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(tracer, path) -> Path:
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(json.dumps(chrome_trace(tracer), indent=1) + "\n")
    return out


# -- Prometheus text exposition -----------------------------------------

#: Quantiles exposed per histogram (matches Histogram.summary's tail).
_QUANTILES = (0.5, 0.95, 0.99, 0.999)


def _sanitize(name: str) -> str:
    """A valid Prometheus metric name: [a-zA-Z_:][a-zA-Z0-9_:]*."""
    cleaned = "".join(
        ch if ch.isalnum() or ch in "_:" else "_" for ch in name
    )
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] in "_:"):
        cleaned = "_" + cleaned
    return cleaned


def _labels(pairs: dict) -> str:
    if not pairs:
        return ""
    inner = ",".join(f'{k}="{v}"' for k, v in sorted(pairs.items()))
    return "{" + inner + "}"


def _fmt_value(value: float) -> str:
    if isinstance(value, float) and value != value:  # NaN
        return "NaN"
    return repr(value) if isinstance(value, float) else str(value)


def prometheus_text(registries, namespace: str = "repro") -> str:
    """Text exposition of one registry or a ``{label: registry}`` dict.

    With a dict, each registry's samples carry an ``origin`` label so a
    service registry and several shard-transport registries coexist in
    one scrape without name collisions.
    """
    if not isinstance(registries, dict):
        registries = {"": registries}
    lines: list[str] = []
    typed: set[str] = set()

    def emit(name: str, kind: str, labels: dict, value) -> None:
        metric = f"{namespace}_{_sanitize(name)}" if namespace else _sanitize(name)
        if metric not in typed:
            lines.append(f"# TYPE {metric} {kind}")
            typed.add(metric)
        lines.append(f"{metric}{_labels(labels)} {_fmt_value(value)}")

    for origin, registry in sorted(registries.items()):
        base = {"origin": origin} if origin else {}
        for name, value in sorted(registry.counters().items()):
            emit(name, "counter", base, value)
        for name, hist in sorted(registry.histograms().items()):
            summary = hist.summary()
            for q in _QUANTILES:
                emit(
                    name,
                    "summary",
                    {**base, "quantile": f"{q:g}"},
                    hist.quantile(q),
                )
            emit(f"{name}_sum", "counter", base, summary["mean"] * summary["count"])
            emit(f"{name}_count", "counter", base, summary["count"])
    return "\n".join(lines) + "\n"
