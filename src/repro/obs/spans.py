"""The span model: timed, attributed segments of one traced request.

A :class:`Span` is a half-open interval ``[start, end)`` on one of two
clocks, belonging to one *trace* (a request's end-to-end story, or one
batch dispatch shared by the requests it coalesced):

- the **sim** clock (:attr:`CLOCK_SIM`) is the discrete-event
  simulator's time -- arrivals, queue waits, batch windows, service
  completions all live here;
- the **latency** clock (:attr:`CLOCK_LATENCY`) is the transport's
  additive latency account (``RpcTransport.elapsed``, the quantity
  Theorem 7 prices) -- per-hop RPC deliveries and per-lookup routing
  segments live here, because within one synchronous batch dispatch the
  sim clock does not advance while routing charges accrue.

The two clocks meet through :class:`~repro.service.dispatch.ServiceTimeModel`:
a batch's routing charge times ``time_per_latency`` is exactly the
routing share of its sim-clock service span, which is what lets the
critical-path analyzer (:mod:`repro.obs.critical_path`) reconstruct a
request's total latency from its span tree without residuals.

Spans carry no randomness and consume no RNG: recording them must never
perturb a seeded run (the tracer determinism tests pin this).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CLOCK_SIM", "CLOCK_LATENCY", "Span"]

CLOCK_SIM = "sim"
CLOCK_LATENCY = "latency"


@dataclass(slots=True)
class Span:
    """One timed segment of a trace (see module docstring for clocks)."""

    span_id: int
    trace_id: int
    parent_id: int | None
    name: str
    kind: str
    start: float
    end: float
    clock: str = CLOCK_SIM
    attrs: dict = field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start

    def to_record(self) -> dict:
        """JSON-ready flat record (the JSONL exporter's row)."""
        return {
            "span_id": self.span_id,
            "trace_id": self.trace_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "kind": self.kind,
            "start": self.start,
            "end": self.end,
            "duration": self.duration,
            "clock": self.clock,
            "attrs": dict(self.attrs),
        }
