"""Critical-path analysis: where did each traced request's latency go?

For every finished request trace, the analyzer decomposes the measured
total latency (the root span's duration: arrival to terminal response)
into additive segments:

- **queue** -- time waiting for dispatch, *minus* retry cooldowns;
- **backoff** -- retry cooldowns sat through while queued
  (:class:`~repro.faults.retry.RetryPolicy` waits, surfaced by the
  shard worker);
- **overhead** -- the batch's fixed dispatch overhead share
  (``dispatches * dispatch_overhead`` of the
  :class:`~repro.service.dispatch.ServiceTimeModel`);
- **routing** -- the batch's substrate-latency share
  (``cost.latency * time_per_latency``), i.e. the DHT hops.

Because the service-time model is exactly ``overhead + routing`` and
queue/service spans partition the root by construction, the
reconstruction is exact up to float rounding -- the acceptance bar
(>=99% of each request's total reconstructed from its span tree) holds
with margin on both message-level backends, and
:attr:`RequestBreakdown.reconstructed_fraction` makes it checkable per
request.

Hop attribution: per-lookup spans (``kind="lookup"``) recorded by the
substrate adapters carry routing-RPC counts and latency per individual
``h``/successor resolution, whether executed live on the transport or
replayed by the Chord lockstep engine.  :func:`analyze` aggregates them
into per-backend hop-count x latency distributions -- the per-lookup
view Chord's and Kademlia's own evaluations report, now measured
per-request instead of assumed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["RequestBreakdown", "HopProfile", "CriticalPathReport", "analyze"]

#: The additive latency segments, in presentation order.
SEGMENTS = ("queue", "backoff", "overhead", "routing")


@dataclass(frozen=True, slots=True)
class RequestBreakdown:
    """One request's latency, decomposed (all on the sim clock)."""

    request_id: int
    status: str
    shard_id: int | None
    total: float
    queue: float
    backoff: float
    overhead: float
    routing: float
    batch_size: int | None

    @property
    def covered(self) -> float:
        return self.queue + self.backoff + self.overhead + self.routing

    @property
    def reconstructed_fraction(self) -> float:
        """Covered share of the measured total (1.0 = fully explained)."""
        if self.total <= 0.0:
            return 1.0
        return self.covered / self.total

    def to_record(self) -> dict:
        return {
            "request_id": self.request_id,
            "status": self.status,
            "shard_id": self.shard_id,
            "total": self.total,
            "queue": self.queue,
            "backoff": self.backoff,
            "overhead": self.overhead,
            "routing": self.routing,
            "reconstructed_fraction": self.reconstructed_fraction,
            "batch_size": self.batch_size,
        }


@dataclass
class HopProfile:
    """Hop-count x latency distribution of one backend's lookups."""

    backend: str
    lookups: int = 0
    total_hops: int = 0
    total_latency: float = 0.0
    failed: int = 0
    #: hops -> [lookup count, summed latency]
    by_hops: dict = field(default_factory=dict)

    def observe(self, hops: int, latency: float, ok: bool) -> None:
        self.lookups += 1
        self.total_hops += hops
        self.total_latency += latency
        if not ok:
            self.failed += 1
        bucket = self.by_hops.setdefault(hops, [0, 0.0])
        bucket[0] += 1
        bucket[1] += latency

    @property
    def mean_hops(self) -> float:
        return self.total_hops / self.lookups if self.lookups else 0.0

    @property
    def mean_latency(self) -> float:
        return self.total_latency / self.lookups if self.lookups else 0.0

    def to_record(self) -> dict:
        return {
            "backend": self.backend,
            "lookups": self.lookups,
            "failed": self.failed,
            "mean_hops": self.mean_hops,
            "mean_latency": self.mean_latency,
            "by_hops": {
                str(h): {"count": c, "latency": lat, "mean_latency": lat / c}
                for h, (c, lat) in sorted(self.by_hops.items())
            },
        }


@dataclass
class CriticalPathReport:
    """Per-request breakdowns plus run-level aggregates."""

    requests: list[RequestBreakdown]
    hop_profiles: dict  # backend -> HopProfile

    @property
    def segment_totals(self) -> dict:
        totals = {name: 0.0 for name in SEGMENTS}
        for r in self.requests:
            totals["queue"] += r.queue
            totals["backoff"] += r.backoff
            totals["overhead"] += r.overhead
            totals["routing"] += r.routing
        return totals

    @property
    def segment_fractions(self) -> dict:
        totals = self.segment_totals
        grand = sum(totals.values())
        if grand <= 0.0:
            return {name: 0.0 for name in SEGMENTS}
        return {name: value / grand for name, value in totals.items()}

    @property
    def min_reconstructed(self) -> float:
        """The worst per-request coverage (the acceptance headline)."""
        if not self.requests:
            return 1.0
        return min(r.reconstructed_fraction for r in self.requests)

    @property
    def mean_total(self) -> float:
        served = [r for r in self.requests if r.total > 0.0]
        if not served:
            return 0.0
        return sum(r.total for r in served) / len(served)

    def slowest(self, count: int = 10) -> list[RequestBreakdown]:
        return sorted(self.requests, key=lambda r: -r.total)[:count]

    def to_record(self) -> dict:
        return {
            "requests": len(self.requests),
            "mean_total": self.mean_total,
            "min_reconstructed": self.min_reconstructed,
            "segment_totals": self.segment_totals,
            "segment_fractions": self.segment_fractions,
            "hop_profiles": {
                backend: profile.to_record()
                for backend, profile in sorted(self.hop_profiles.items())
            },
            "slowest": [r.to_record() for r in self.slowest(5)],
        }


def _spans_by_kind(trace) -> dict:
    out: dict = {}
    for span in trace.spans:
        out.setdefault(span.kind, []).append(span)
    return out


def analyze(tracer) -> CriticalPathReport:
    """Decompose every finished request trace the tracer retained."""
    hop_profiles: dict = {}
    # Hop profiles come from batch traces (the engine dispatches where
    # lookups actually run); collect once, independent of retention of
    # the member request traces.
    for trace in tracer.batches.values():
        for span in trace.spans:
            if span.kind != "lookup":
                continue
            backend = span.attrs.get("backend", "?")
            profile = hop_profiles.get(backend)
            if profile is None:
                profile = hop_profiles[backend] = HopProfile(backend)
            profile.observe(
                int(span.attrs.get("hops") or 0),
                float(span.attrs.get("latency") or 0.0),
                bool(span.attrs.get("ok", True)),
            )

    requests = []
    for trace in tracer.finished:
        root = trace.root
        by_kind = _spans_by_kind(trace)
        status = root.attrs.get("status", "?")
        total = root.duration
        queue_span = sum(s.duration for s in by_kind.get("queue", ()))
        backoff = sum(s.duration for s in by_kind.get("backoff", ()))
        # Cooldowns elapse while the request is queued: they are part of
        # the queue span's wall time, broken out as their own segment.
        queue = max(0.0, queue_span - backoff)
        overhead = routing = 0.0
        batch_size = None
        shard_id = root.attrs.get("shard_id")
        for span in by_kind.get("service", ()):
            batch_size = span.attrs.get("batch_size")
            batch = tracer.batch_trace(span.attrs.get("batch"))
            if batch is None:
                # Batch trace missing (should not happen for served
                # requests); attribute the whole service span to routing
                # so coverage stays honest rather than silently zero.
                routing += span.duration
                continue
            service_time = span.duration
            batch_overhead = sum(
                s.duration for s in batch.spans if s.kind == "overhead"
            )
            batch_routing = sum(
                s.duration for s in batch.spans if s.kind == "routing"
            )
            decomposed = batch_overhead + batch_routing
            if decomposed > 0.0:
                # Scale the batch decomposition onto this request's
                # service span (they are equal by construction; the
                # scale guards float drift).
                scale = service_time / decomposed
                overhead += batch_overhead * scale
                routing += batch_routing * scale
            else:
                routing += service_time
        requests.append(
            RequestBreakdown(
                request_id=trace.request_id,
                status=status,
                shard_id=shard_id,
                total=total,
                queue=queue,
                backoff=backoff,
                overhead=overhead,
                routing=routing,
                batch_size=batch_size,
            )
        )
    return CriticalPathReport(requests=requests, hop_profiles=hop_profiles)
