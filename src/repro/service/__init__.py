"""Sampling-as-a-service: a deterministic serving layer over the engine.

PR 1's :class:`~repro.core.engine.BatchSampler` made bulk draws fast;
this package makes them *servable*.  Single-sample requests enter
through :meth:`SamplingService.submit`, coalesce in per-shard
micro-batching queues (dispatch on ``max_batch`` or ``max_wait``,
whichever first), execute on the engine's bulk fast path, and come back
as per-request responses stamped with queue and service latency.
Routing policies spread traffic across independent substrate shards,
admission control turns overload into explicit rejections, and an
open-loop Poisson :class:`LoadGenerator` drives the whole thing on the
simulation clock -- deterministically, from a single seed.

The layer is churn-aware: a dispatch killed by membership change
(:class:`DispatchError`) marks its shard unhealthy, the router sheds
traffic to healthy shards, the worker re-estimates the population and
retries with backoff, and exhausted retries terminate the batch with
explicit ``FAILED`` responses -- never a silent drop.  The scenario lab
(:mod:`repro.scenarios`) exercises all of this against actively
churning Chord rings.

Layering (see docs/ARCHITECTURE.md)::

    loadgen -> SamplingService.submit -> ShardRouter (health-aware)
            -> AdmissionController -> ShardWorker (micro-batch queue,
               retry/backoff/FAILED) -> dispatch strategy
            -> BatchSampler / RandomPeerSampler -> DHT substrate
"""

from .admission import AdmissionController
from .batching import ShardWorker
from .core import (
    DISPATCH_MODES,
    SUBSTRATES,
    SamplingService,
    build_load,
    build_service,
    build_substrates,
)
from .dispatch import (
    BatchDispatch,
    DispatchError,
    Execution,
    ScalarDispatch,
    ServiceTimeModel,
)
from .loadgen import LoadGenerator
from .metrics import DEFAULT_RESERVOIR, ServiceMetrics
from .request import RequestStatus, SampleRequest, SampleResponse
from .router import POLICIES, ShardRouter, rendezvous_weight

__all__ = [
    "AdmissionController",
    "BatchDispatch",
    "DEFAULT_RESERVOIR",
    "DISPATCH_MODES",
    "DispatchError",
    "Execution",
    "LoadGenerator",
    "POLICIES",
    "RequestStatus",
    "SUBSTRATES",
    "SampleRequest",
    "SampleResponse",
    "SamplingService",
    "ScalarDispatch",
    "ServiceMetrics",
    "ServiceTimeModel",
    "ShardRouter",
    "ShardWorker",
    "build_load",
    "build_service",
    "build_substrates",
    "rendezvous_weight",
]
