"""Dispatch strategies: how a flushed batch reaches the sampling core.

Two strategies serve the same contract -- ``execute(k)`` returns ``k``
uniform draws plus the substrate cost attributable to the call:

- :class:`BatchDispatch` routes the whole batch through
  :meth:`repro.core.engine.BatchSampler.sample_many_attributed`, PR 1's
  vectorized fast path (or its per-call fallback on non-bulk substrates
  such as live Chord);
- :class:`ScalarDispatch` issues ``k`` independent
  :meth:`repro.core.sampler.RandomPeerSampler.sample` calls, the
  per-request baseline a naive frontend would use.

Both strategies are deterministic given their sampler's RNG; simulated
service time is derived from the returned cost by
:class:`ServiceTimeModel`, so the benchmark's sim-time and wall-time
comparisons come from the same executions.

Churn boundary
--------------

On a live substrate a dispatch can die: routing holes raise
:class:`~repro.dht.api.PeerUnreachableError`, stale size estimates raise
:class:`~repro.core.errors.SamplingError`.  Both strategies convert
those -- and only those -- into :class:`DispatchError`, the single
retryable failure type the shard worker handles (retry with backoff,
then fail the batch explicitly).  Programming errors keep propagating.
:meth:`refresh` is the recovery hook: re-estimate the substrate size so
the next attempt runs with fresh parameters.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.engine import BatchSampler
from ..core.errors import SamplingError
from ..core.sampler import RandomPeerSampler
from ..dht.api import CostSnapshot, PeerRef, PeerUnreachableError

__all__ = [
    "DispatchError",
    "Execution",
    "BatchDispatch",
    "ScalarDispatch",
    "ServiceTimeModel",
]

#: Substrate failures a dispatch may surface under churn -- the complete
#: set of exception types :class:`DispatchError` wraps.
_RETRYABLE = (SamplingError, PeerUnreachableError)


class DispatchError(RuntimeError):
    """A dispatch attempt failed for churn-related, retryable reasons."""


@dataclass(frozen=True, slots=True)
class Execution:
    """Result of serving one dispatched batch of ``k`` requests.

    ``dispatches`` is how many dispatch overheads the execution incurred:
    1 for a coalesced micro-batch, ``k`` for per-request scalar serving.
    :class:`ServiceTimeModel` charges overhead per dispatch, so timing
    stays honest for any strategy/batch-size composition.
    """

    peers: tuple[PeerRef, ...]
    cost: CostSnapshot
    trials: int
    dispatches: int = 1


class _SamplerDispatch:
    """Shared churn boundary: execute with wrapping, refresh with a net.

    Subclasses implement :meth:`_run`; this base converts the substrate's
    retryable failures into :class:`DispatchError` and provides the
    common :meth:`refresh` recovery hook.
    """

    def __init__(self, sampler):
        self.sampler = sampler

    def execute(self, k: int) -> Execution:
        try:
            return self._run(k)
        except _RETRYABLE as exc:
            raise DispatchError(f"{self.name} dispatch of {k} died: {exc}") from exc

    def _run(self, k: int) -> Execution:
        raise NotImplementedError

    def refresh(self) -> bool:
        """Re-estimate the substrate size; False if even that failed."""
        try:
            self.sampler.refresh()
        except _RETRYABLE:
            return False
        return True

    def warm(self) -> bool:
        """Pre-build the sampler's substrate routing caches (best effort).

        After a churn recovery the Chord substrate's lockstep snapshot is
        stale; rebuilding it here -- off the dispatch path, right after
        :meth:`refresh` -- keeps the re-admitted shard's first batch from
        paying the rebuild inside its service time.  Free of charges and
        randomness; False when the sampler has no caches to warm.
        """
        warm = getattr(self.sampler, "warm", None)
        return bool(warm()) if warm is not None else False


class BatchDispatch(_SamplerDispatch):
    """Micro-batch execution through a :class:`BatchSampler`."""

    name = "batch"
    sampler: BatchSampler

    def _run(self, k: int) -> Execution:
        result = self.sampler.sample_many_attributed(k)
        return Execution(
            peers=result.peers, cost=result.cost, trials=result.trials, dispatches=1
        )


class ScalarDispatch(_SamplerDispatch):
    """Per-request execution through a :class:`RandomPeerSampler`."""

    name = "scalar"
    sampler: RandomPeerSampler

    def _run(self, k: int) -> Execution:
        peers = []
        cost = CostSnapshot()
        trials = 0
        for _ in range(k):
            stats = self.sampler.sample_with_stats()
            peers.append(stats.peer)
            cost = cost + stats.cost
            trials += stats.trials
        return Execution(peers=tuple(peers), cost=cost, trials=trials, dispatches=k)


@dataclass(frozen=True, slots=True)
class ServiceTimeModel:
    """Converts an execution's cost into simulated service time.

    ``service_time = dispatches * dispatch_overhead
    + cost.latency * time_per_latency``.

    ``dispatch_overhead`` is the fixed per-dispatch cost (connection
    setup, scheduling, one RPC round-trip's framing) that micro-batching
    exists to amortize: a coalesced batch of 32 pays it once
    (``dispatches=1``), per-request scalar serving of the same 32
    requests pays it 32 times (``dispatches=32``) -- the
    :class:`Execution` carries the count, so timing stays honest however
    strategies and batch sizes are composed.  ``time_per_latency``
    scales the substrate's abstract latency units (one ``next`` = 1)
    into service-clock units; the default puts one request's sampling
    work (tens of trials, each an ``h`` plus a walk) at roughly the
    same scale as one dispatch overhead, so batch-window effects are
    visible at default settings.
    """

    dispatch_overhead: float = 1.0
    time_per_latency: float = 0.001

    def service_time(self, execution: Execution) -> float:
        return (
            execution.dispatches * self.dispatch_overhead
            + execution.cost.latency * self.time_per_latency
        )
