"""Shard routing policies: spread single-sample traffic across substrates.

Each shard is an independent DHT substrate behind its own micro-batching
worker; the router decides which shard a request joins.  Policies:

``round-robin``
    Rotate through shards in order -- stateless per-request fairness.
``least-loaded``
    Pick the shard with the fewest queued + in-flight requests (ties go
    to the lowest shard id), the power-of-all-choices join rule.
``rendezvous``
    Highest-random-weight hashing of ``(shard_id, routing_key)`` --
    stable key affinity that survives shard-set changes with minimal
    reshuffling.  Weights come from SHA-256, not Python's ``hash``, so
    routing is identical across processes and ``PYTHONHASHSEED`` values.

Every policy is *health-aware*: shards whose last dispatch died under
churn report ``healthy=False`` while they retry, and the router confines
routing to the healthy subset (for rendezvous this is exactly HRW's
failover: the key moves to its next-highest-weight shard and returns
when the shard recovers).  If no shard is healthy the full set is used
-- the service degrades to retries rather than rejecting everything.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

from .batching import ShardWorker
from .request import SampleRequest

__all__ = ["ShardRouter", "POLICIES", "rendezvous_weight"]

POLICIES = ("round-robin", "least-loaded", "rendezvous")


def rendezvous_weight(shard_id: int, key: int) -> int:
    """Deterministic 64-bit highest-random-weight score for a pair."""
    digest = hashlib.sha256(f"{shard_id}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRouter:
    """Chooses a :class:`~repro.service.batching.ShardWorker` per request."""

    def __init__(self, shards: Sequence[ShardWorker], policy: str = "round-robin"):
        if not shards:
            raise ValueError("need at least one shard")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        self.shards = list(shards)
        self.policy = policy
        self._next = 0  # round-robin cursor

    def route(self, request: SampleRequest) -> ShardWorker:
        pool = [w for w in self.shards if getattr(w, "healthy", True)] or self.shards
        if self.policy == "round-robin":
            shard = pool[self._next % len(pool)]
            self._next += 1
            return shard
        if self.policy == "least-loaded":
            return min(pool, key=lambda w: (w.load, w.shard_id))
        key = request.routing_key
        return max(
            pool, key=lambda w: (rendezvous_weight(w.shard_id, key), -w.shard_id)
        )
