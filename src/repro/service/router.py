"""Shard routing policies: spread single-sample traffic across substrates.

Each shard is an independent DHT substrate behind its own micro-batching
worker; the router decides which shard a request joins.  Policies:

``round-robin``
    Rotate through shards in order -- stateless per-request fairness.
``least-loaded``
    Pick the shard with the fewest queued + in-flight requests (ties go
    to the lowest shard id), the power-of-all-choices join rule.
``rendezvous``
    Highest-random-weight hashing of ``(shard_id, routing_key)`` --
    stable key affinity that survives shard-set changes with minimal
    reshuffling.  Weights come from SHA-256, not Python's ``hash``, so
    routing is identical across processes and ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import hashlib
from collections.abc import Sequence

from .batching import ShardWorker
from .request import SampleRequest

__all__ = ["ShardRouter", "POLICIES", "rendezvous_weight"]

POLICIES = ("round-robin", "least-loaded", "rendezvous")


def rendezvous_weight(shard_id: int, key: int) -> int:
    """Deterministic 64-bit highest-random-weight score for a pair."""
    digest = hashlib.sha256(f"{shard_id}:{key}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class ShardRouter:
    """Chooses a :class:`~repro.service.batching.ShardWorker` per request."""

    def __init__(self, shards: Sequence[ShardWorker], policy: str = "round-robin"):
        if not shards:
            raise ValueError("need at least one shard")
        if policy not in POLICIES:
            raise ValueError(f"unknown policy {policy!r}; choose from {POLICIES}")
        self.shards = list(shards)
        self.policy = policy
        self._next = 0  # round-robin cursor

    def route(self, request: SampleRequest) -> ShardWorker:
        if self.policy == "round-robin":
            shard = self.shards[self._next % len(self.shards)]
            self._next += 1
            return shard
        if self.policy == "least-loaded":
            return min(self.shards, key=lambda w: (w.load, w.shard_id))
        key = request.routing_key
        return max(
            self.shards, key=lambda w: (rendezvous_weight(w.shard_id, key), -w.shard_id)
        )
