"""Service-level metric view: latency tails, throughput, backpressure.

Built on :mod:`repro.sim.metrics` primitives.  Latency histograms use
bounded reservoirs by default so an open-loop run of millions of
requests holds memory constant; counts, means and extremes stay exact
(see :class:`~repro.sim.metrics.Histogram`).
"""

from __future__ import annotations

from ..sim.metrics import Histogram, MetricsRegistry
from .request import RequestStatus, SampleResponse

__all__ = ["ServiceMetrics", "DEFAULT_RESERVOIR"]

#: Default latency-reservoir bound: large enough that nearest-rank p99
#: is stable, small enough to keep long service runs at constant memory.
DEFAULT_RESERVOIR = 8192


class ServiceMetrics:
    """Aggregated queue/service latency and per-shard throughput.

    One instance is shared by every shard worker of a service; methods
    are called on the simulator thread only (the kernel is
    single-threaded), so no locking is needed.
    """

    def __init__(
        self, num_shards: int, reservoir_size: int | None = DEFAULT_RESERVOIR
    ) -> None:
        self.registry = MetricsRegistry()
        self._num_shards = num_shards
        self._reservoir = reservoir_size
        # Created eagerly so summaries list every series even when empty.
        for name in ("queue_latency", "service_latency", "total_latency",
                     "failed_wait"):
            self._hist(name)
        self._hist("batch_size")
        self.registry.counter("accepted")
        self.registry.counter("rejected")
        self.registry.counter("completed")
        self.registry.counter("failed")
        self.registry.counter("dispatch_failures")
        for shard_id in range(num_shards):
            self.registry.counter(f"shard{shard_id}.completed")
            self.registry.counter(f"shard{shard_id}.rejected")
            self.registry.counter(f"shard{shard_id}.batches")
            self.registry.counter(f"shard{shard_id}.failed")
            self.registry.counter(f"shard{shard_id}.dispatch_failures")

    def _hist(self, name: str) -> Histogram:
        return self.registry.histogram(name, reservoir_size=self._reservoir)

    # -- recording hooks (called by the service / shard workers) ---------

    def record_admitted(self) -> None:
        self.registry.counter("accepted").increment()

    def record_rejected(self, shard_id: int) -> None:
        self.registry.counter("rejected").increment()
        self.registry.counter(f"shard{shard_id}.rejected").increment()

    def record_dispatch_failure(self, shard_id: int) -> None:
        """One dispatch died under churn (it may still be retried)."""
        self.registry.counter("dispatch_failures").increment()
        self.registry.counter(f"shard{shard_id}.dispatch_failures").increment()

    def record_failed(self, responses: list[SampleResponse]) -> None:
        """Record one batch terminated with FAILED (retries exhausted).

        The wait each request burned before failing goes into its own
        ``failed_wait`` histogram: the OK-latency percentiles stay
        success-only (the convention load reports expect), while the
        worst-outcome waits -- typically ``max_retries x retry_backoff``
        under churn -- remain measured instead of vanishing.
        """
        if not responses:
            return
        self.registry.counter("failed").increment(len(responses))
        self.registry.counter(f"shard{responses[0].shard_id}.failed").increment(
            len(responses)
        )
        wait = self._hist("failed_wait")
        for r in responses:
            wait.observe(r.queue_latency)

    def record_batch(self, responses: list[SampleResponse]) -> None:
        """Record one completed dispatch (all responses share a shard)."""
        if not responses:
            return
        self.registry.counter(f"shard{responses[0].shard_id}.batches").increment()
        self._hist("batch_size").observe(float(len(responses)))
        q, s, t = (
            self._hist("queue_latency"),
            self._hist("service_latency"),
            self._hist("total_latency"),
        )
        completed = self.registry.counter("completed")
        by_shard = self.registry.counter(f"shard{responses[0].shard_id}.completed")
        for r in responses:
            if r.status is not RequestStatus.OK:
                continue
            completed.increment()
            by_shard.increment()
            q.observe(r.queue_latency)
            s.observe(r.service_latency)
            t.observe(r.total_latency)

    # -- views ------------------------------------------------------------

    @property
    def accepted(self) -> int:
        return self.registry.counter("accepted").value

    @property
    def rejected(self) -> int:
        return self.registry.counter("rejected").value

    @property
    def completed(self) -> int:
        return self.registry.counter("completed").value

    @property
    def failed(self) -> int:
        return self.registry.counter("failed").value

    @property
    def dispatch_failures(self) -> int:
        return self.registry.counter("dispatch_failures").value

    def shard_completed(self, shard_id: int) -> int:
        return self.registry.counter(f"shard{shard_id}.completed").value

    def summary(self, elapsed: float | None = None) -> dict:
        """One JSON-ready dict: counts, latency tails, shard throughput.

        ``elapsed`` (simulated time units) adds throughput figures:
        overall and per-shard completed requests per time unit.
        """
        out: dict = {
            "accepted": self.accepted,
            "rejected": self.rejected,
            "completed": self.completed,
            "failed": self.failed,
            "dispatch_failures": self.dispatch_failures,
            "latency": {
                name: self.registry.histogram(name).summary()
                for name in ("queue_latency", "service_latency", "total_latency",
                             "failed_wait")
            },
            "batch_size": self.registry.histogram("batch_size").summary(),
            "shards": {},
        }
        for shard_id in range(self._num_shards):
            shard: dict = {
                "completed": self.shard_completed(shard_id),
                "rejected": self.registry.counter(f"shard{shard_id}.rejected").value,
                "batches": self.registry.counter(f"shard{shard_id}.batches").value,
                "failed": self.registry.counter(f"shard{shard_id}.failed").value,
                "dispatch_failures": self.registry.counter(
                    f"shard{shard_id}.dispatch_failures"
                ).value,
            }
            if elapsed and elapsed > 0:
                shard["throughput"] = shard["completed"] / elapsed
            out["shards"][shard_id] = shard
        if elapsed and elapsed > 0:
            out["elapsed"] = elapsed
            out["throughput"] = self.completed / elapsed
        return out
