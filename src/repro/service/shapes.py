"""Heterogeneous workload shapes: arrival-rate modulators and key skew.

The scenario matrix so far offered load exactly one way: a constant-rate
Poisson process over unkeyed requests.  Real request streams are neither
flat nor uniform, and both departures matter to a sampling service --
rate modulation stresses admission and queueing at the worst moment, and
key skew concentrates rendezvous routing onto a few shards.  This module
supplies both as small deterministic objects the
:class:`~repro.service.loadgen.LoadGenerator` consults on its own clock
and RNG streams:

- :class:`DiurnalShape` -- a sinusoidal day/night swing around the base
  rate.  Amplitude > 1 deliberately drives the trough *negative*, which
  the generator must clamp to an idle (rate-0) interval rather than
  divide by zero or schedule backwards in time (the satellite-5 bug
  class; regression-tested in ``tests/service/test_loadgen.py``).
- :class:`FlashCrowdShape` -- a rectangular burst: ``base`` rate
  everywhere except ``[start, start + duration)``, where it multiplies
  by ``multiplier``.
- :class:`ZipfKeys` -- Zipf-distributed request keys over a bounded key
  space via inverse-CDF draws on a dedicated RNG stream, so keyed and
  unkeyed runs consume identical arrival draws.

Shapes are pure functions of simulated time (frozen dataclasses, no RNG,
no state), so a fixed-seed run is bit-identical whatever the shape.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from dataclasses import dataclass

__all__ = [
    "DiurnalShape",
    "FlashCrowdShape",
    "ZipfKeys",
    "LOAD_SHAPES",
    "make_shape",
]

#: Shape names accepted by :func:`make_shape` / ``ScenarioSpec.load_shape``.
LOAD_SHAPES = ("constant", "diurnal", "flash")


@dataclass(frozen=True, slots=True)
class DiurnalShape:
    """``base * (1 + amplitude * sin(2*pi*t / period))``, clamped at zero.

    ``amplitude`` may exceed 1: the trough then spends part of each
    period at rate zero (a dead interval), which is precisely the edge
    the load generator must survive without ``expovariate(0)``.
    """

    base: float
    amplitude: float = 0.5
    period: float = 200.0

    def __post_init__(self):
        if self.base <= 0:
            raise ValueError("base rate must be positive")
        if self.amplitude < 0:
            raise ValueError("amplitude must be non-negative")
        if self.period <= 0:
            raise ValueError("period must be positive")

    def rate_at(self, t: float) -> float:
        return max(
            0.0,
            self.base * (1.0 + self.amplitude * math.sin(2.0 * math.pi * t / self.period)),
        )


@dataclass(frozen=True, slots=True)
class FlashCrowdShape:
    """``base`` everywhere, ``base * multiplier`` on ``[start, start+duration)``."""

    base: float
    multiplier: float = 8.0
    start: float = 50.0
    duration: float = 30.0

    def __post_init__(self):
        if self.base <= 0:
            raise ValueError("base rate must be positive")
        if self.multiplier < 0:
            raise ValueError("multiplier must be non-negative")
        if self.duration <= 0:
            raise ValueError("duration must be positive")

    def rate_at(self, t: float) -> float:
        if self.start <= t < self.start + self.duration:
            return self.base * self.multiplier
        return self.base


def make_shape(
    name: str,
    base: float,
    *,
    amplitude: float = 1.0,
    period: float = 200.0,
):
    """Build the named arrival shape, or ``None`` for ``"constant"``.

    ``None`` (not a constant-rate object) is deliberate: the load
    generator's unshaped path is its original code path, so constant
    runs stay draw-for-draw identical to every pre-shape release.
    ``amplitude`` doubles as the flash-crowd multiplier's scale
    (``multiplier = 1 + amplitude``) so one spec knob covers both.
    """
    if name == "constant":
        return None
    if name == "diurnal":
        return DiurnalShape(base=base, amplitude=amplitude, period=period)
    if name == "flash":
        return FlashCrowdShape(
            base=base,
            multiplier=1.0 + amplitude,
            start=period / 4.0,
            duration=period / 4.0,
        )
    raise ValueError(f"unknown load shape {name!r}; choose from {LOAD_SHAPES}")


class ZipfKeys:
    """Zipf-distributed keys on ``[0, space)`` via inverse-CDF draws.

    Rank ``r`` (1-based) has probability proportional to ``r**-exponent``.
    The CDF is precomputed once; each call does one ``rng.random()`` and
    a bisect, so draws are O(log space) and fully determined by the
    supplied RNG stream.  ``exponent=0`` degenerates to uniform keys.
    """

    __slots__ = ("space", "exponent", "_rng", "_cdf")

    def __init__(self, space: int, exponent: float, rng: random.Random):
        if space < 1:
            raise ValueError("key space must be positive")
        if exponent < 0:
            raise ValueError("exponent must be non-negative")
        self.space = space
        self.exponent = exponent
        self._rng = rng
        weights = [(r + 1) ** -exponent for r in range(space)]
        total = sum(weights)
        cdf = []
        acc = 0.0
        for w in weights:
            acc += w
            cdf.append(acc / total)
        cdf[-1] = 1.0  # guard float drift at the top of the CDF
        self._cdf = cdf

    def __call__(self) -> int:
        return bisect_left(self._cdf, self._rng.random())
