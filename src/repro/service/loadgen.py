"""Open-loop Poisson load generation on the simulation clock.

The generator schedules request arrivals as a Poisson process of the
given rate: interarrival gaps are i.i.d. exponential draws from its own
RNG stream, independent of how the service is keeping up.  That
open-loop discipline is what makes overload visible -- a closed loop
(wait for the response, then send the next request) self-throttles and
hides saturation; an open loop keeps arriving and forces queues and
admission control to absorb the difference (see PAPERS.md on
coordinated omission in load testing).

Heterogeneous workloads ride on two optional hooks (both default off,
leaving the constant-rate path draw-for-draw identical to earlier
releases):

- ``shape`` -- an arrival-rate modulator (``rate_at(t)``; see
  :mod:`repro.service.shapes`).  The process becomes non-homogeneous
  Poisson, approximated by re-sampling the instantaneous rate at each
  arrival.  A modulated rate of zero is an *idle interval*, not an
  error: the generator polls forward ``idle_poll`` time units until the
  shape wakes up, instead of feeding ``expovariate`` a zero (division
  by zero) or a negative rate (negative "gaps" that would schedule
  arrivals into the past).
- ``keys`` -- a nullary key source (e.g.
  :class:`~repro.service.shapes.ZipfKeys`); when set, each arrival
  submits ``submit(keys())`` so skewed keys exercise rendezvous
  routing.
"""

from __future__ import annotations

import random
from typing import Callable

from ..sim.kernel import Simulator

__all__ = ["LoadGenerator"]


class LoadGenerator:
    """Drives ``submit()`` with Poisson arrivals until ``total`` requests."""

    def __init__(
        self,
        sim: Simulator,
        submit: Callable[..., object],
        *,
        rate: float,
        total: int,
        rng: random.Random | None = None,
        shape=None,
        keys: Callable[[], int] | None = None,
        idle_poll: float = 1.0,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if total < 0:
            raise ValueError("total must be non-negative")
        if idle_poll <= 0:
            raise ValueError("idle_poll must be positive")
        self._sim = sim
        self._submit = submit
        self.rate = rate
        self.total = total
        self._rng = rng if rng is not None else random.Random()
        self._shape = shape
        self._keys = keys
        self._idle_poll = idle_poll
        self.submitted = 0
        self._started = False
        self._stopped = False

    def start(self) -> None:
        """Schedule the first arrival; call once before running the sim."""
        if self._started:
            raise RuntimeError("load generator already started")
        self._started = True
        if self.total > 0:
            self._schedule_next()

    def stop(self) -> None:
        """Stop offering load: no further arrivals are submitted.

        Lets a driver enforce a time budget on an open-loop run (the
        scenario runner's ``max_sim_time``); already-submitted requests
        still drain normally.
        """
        self._stopped = True

    def _schedule_next(self) -> None:
        shape = self._shape
        if shape is None:
            # The original constant-rate path, bit-for-bit: one
            # expovariate draw per arrival and nothing else.
            self._sim.schedule(self._rng.expovariate(self.rate), self._arrive)
            return
        r = shape.rate_at(self._sim.now)
        if r <= 0.0:
            # Idle interval (diurnal trough, pre-burst dead zone):
            # expovariate(0) raises and a negative rate yields negative
            # gaps, so poll forward instead until the shape wakes up.
            self._sim.schedule(self._idle_poll, self._poll)
            return
        # Clamp defends against shapes whose float edges dip epsilon
        # negative; expovariate itself is non-negative for positive r.
        self._sim.schedule(max(0.0, self._rng.expovariate(r)), self._arrive)

    def _poll(self) -> None:
        if not self._stopped:
            self._schedule_next()

    def _arrive(self) -> None:
        if self._stopped:
            return
        self.submitted += 1
        if self._keys is not None:
            self._submit(self._keys())
        else:
            self._submit()
        if self.submitted < self.total:
            self._schedule_next()

    @property
    def done(self) -> bool:
        """No more arrivals will come (total reached, or stopped early)."""
        return self._stopped or self.submitted >= self.total
