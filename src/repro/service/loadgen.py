"""Open-loop Poisson load generation on the simulation clock.

The generator schedules request arrivals as a Poisson process of the
given rate: interarrival gaps are i.i.d. exponential draws from its own
RNG stream, independent of how the service is keeping up.  That
open-loop discipline is what makes overload visible -- a closed loop
(wait for the response, then send the next request) self-throttles and
hides saturation; an open loop keeps arriving and forces queues and
admission control to absorb the difference (see PAPERS.md on
coordinated omission in load testing).
"""

from __future__ import annotations

import random
from typing import Callable

from ..sim.kernel import Simulator

__all__ = ["LoadGenerator"]


class LoadGenerator:
    """Drives ``submit()`` with Poisson arrivals until ``total`` requests."""

    def __init__(
        self,
        sim: Simulator,
        submit: Callable[[], object],
        *,
        rate: float,
        total: int,
        rng: random.Random | None = None,
    ):
        if rate <= 0:
            raise ValueError("rate must be positive")
        if total < 0:
            raise ValueError("total must be non-negative")
        self._sim = sim
        self._submit = submit
        self.rate = rate
        self.total = total
        self._rng = rng if rng is not None else random.Random()
        self.submitted = 0
        self._started = False
        self._stopped = False

    def start(self) -> None:
        """Schedule the first arrival; call once before running the sim."""
        if self._started:
            raise RuntimeError("load generator already started")
        self._started = True
        if self.total > 0:
            self._sim.schedule(self._rng.expovariate(self.rate), self._arrive)

    def stop(self) -> None:
        """Stop offering load: no further arrivals are submitted.

        Lets a driver enforce a time budget on an open-loop run (the
        scenario runner's ``max_sim_time``); already-submitted requests
        still drain normally.
        """
        self._stopped = True

    def _arrive(self) -> None:
        if self._stopped:
            return
        self.submitted += 1
        self._submit()
        if self.submitted < self.total:
            self._sim.schedule(self._rng.expovariate(self.rate), self._arrive)

    @property
    def done(self) -> bool:
        """No more arrivals will come (total reached, or stopped early)."""
        return self._stopped or self.submitted >= self.total
