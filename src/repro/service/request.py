"""Request/response records for the sampling service.

A :class:`SampleRequest` asks for one uniform peer draw; the service
answers with a :class:`SampleResponse` stamped with where the time went
(queued vs. in service) and which shard served it.  Both are plain
slotted dataclasses: the serving path creates one of each per request,
so allocation cost matters at load-test scales.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..dht.api import PeerRef

__all__ = ["RequestStatus", "SampleRequest", "SampleResponse"]


class RequestStatus(enum.Enum):
    """Terminal state of a request."""

    OK = "ok"
    REJECTED = "rejected"  # admission control refused it (queue bound hit)
    FAILED = "failed"  # dispatch kept dying under churn; retries exhausted


@dataclass(frozen=True, slots=True)
class SampleRequest:
    """One single-sample request entering the service.

    ``key`` is the routing key consulted by hash-affinity policies
    (rendezvous); it defaults to the request id, which spreads an
    open-loop workload evenly.
    """

    request_id: int
    arrival_time: float
    key: int = -1

    @property
    def routing_key(self) -> int:
        return self.key if self.key >= 0 else self.request_id


@dataclass(frozen=True, slots=True)
class SampleResponse:
    """The service's answer, with latency attribution.

    ``queue_latency`` is time from arrival to batch dispatch;
    ``service_latency`` from dispatch to completion -- both in simulated
    time units.  ``batch_size`` records how many requests shared the
    dispatch that served this one (1 under scalar dispatch).  Rejected
    requests carry ``peer=None``, zero service latency, and the shard
    that refused them; failed requests (churn-induced, retries
    exhausted) carry ``peer=None`` and the time they burned waiting.
    """

    request_id: int
    status: RequestStatus
    shard_id: int
    peer: PeerRef | None
    queue_latency: float
    service_latency: float
    completion_time: float
    batch_size: int

    @property
    def total_latency(self) -> float:
        return self.queue_latency + self.service_latency
