"""Admission control: bounded queues with explicit, counted rejection.

An open-loop workload does not slow down when the service falls behind,
so without admission the shard queues -- and queue latency -- grow
without bound.  The controller caps each shard's *load* (queued plus
in-flight requests); a request routed to a saturated shard is rejected
immediately with a :class:`~repro.service.request.RequestStatus.REJECTED`
response.  Rejection is a first-class outcome: the service stamps and
counts it (see :class:`~repro.service.metrics.ServiceMetrics`), never a
silent drop, so load-test results always account for every request.
"""

from __future__ import annotations

from .batching import ShardWorker

__all__ = ["AdmissionController"]


class AdmissionController:
    """Per-shard load bound shared by all shards of a service."""

    def __init__(self, max_queue_depth: int = 256):
        if max_queue_depth < 1:
            raise ValueError("max_queue_depth must be at least 1")
        self.max_queue_depth = max_queue_depth

    def admit(self, shard: ShardWorker) -> bool:
        """Whether ``shard`` may accept one more request right now."""
        return shard.load < self.max_queue_depth

    def headroom(self, shard: ShardWorker) -> int:
        """How many more requests ``shard`` can take before rejecting."""
        return max(0, self.max_queue_depth - shard.load)

    def explain(self, shard: ShardWorker) -> dict:
        """The load signals behind an admit/reject decision, for spans."""
        return {
            "queue_depth": shard.queue_depth,
            "load": shard.load,
            "max_queue_depth": self.max_queue_depth,
            "headroom": self.headroom(shard),
        }
