"""The sampling service: substrates + routing + batching + admission.

:class:`SamplingService` is the assembly: each substrate becomes a
shard (a :class:`~repro.service.batching.ShardWorker` over a dispatch
strategy), a :class:`~repro.service.router.ShardRouter` spreads
requests, an :class:`~repro.service.admission.AdmissionController`
bounds queues, and one :class:`~repro.service.metrics.ServiceMetrics`
aggregates the run.  Everything advances on one deterministic
:class:`~repro.sim.kernel.Simulator` clock, and all randomness (trial
points, ring construction, arrivals) comes from named
:class:`~repro.sim.rng.RngRegistry` streams -- two runs with the same
seed produce the same request-to-peer assignments and metric counts.

Shards are independent *replicas* of the sampling capability: each owns
a full substrate (its own ring) and serves uniform draws from it, so
adding shards multiplies serving capacity without coordination.  The
:func:`build_service` convenience constructs homogeneous or mixed
(ideal + Chord) shard sets from a seed.
"""

from __future__ import annotations

import random

from ..core.engine import BatchSampler
from ..core.sampler import RandomPeerSampler
from ..dht.chord.network import ChordNetwork
from ..dht.ideal import IdealDHT
from ..dht.kademlia.network import KademliaNetwork
from ..obs.tracer import NULL_TRACER
from ..sim.kernel import Simulator
from ..sim.rng import RngRegistry
from .admission import AdmissionController
from .batching import ShardWorker
from .dispatch import BatchDispatch, ScalarDispatch, ServiceTimeModel
from .loadgen import LoadGenerator
from .metrics import DEFAULT_RESERVOIR, ServiceMetrics
from .request import RequestStatus, SampleRequest, SampleResponse
from .router import ShardRouter

__all__ = [
    "SamplingService",
    "build_load",
    "build_service",
    "build_substrates",
    "DISPATCH_MODES",
    "SUBSTRATES",
]

DISPATCH_MODES = ("batch", "scalar")
SUBSTRATES = ("ideal", "chord", "kademlia", "mixed")


class SamplingService:
    """A micro-batching single-sample frontend over sharded substrates."""

    def __init__(
        self,
        substrates,
        *,
        sim: Simulator | None = None,
        rngs: RngRegistry | None = None,
        seed: int = 0,
        policy: str = "round-robin",
        dispatch: str = "batch",
        max_batch: int = 32,
        max_wait: float = 2.0,
        max_queue: int = 256,
        max_retries: int = 2,
        retry_backoff: float = 1.0,
        retry_policy=None,
        time_model: ServiceTimeModel | None = None,
        reservoir_size: int | None = DEFAULT_RESERVOIR,
        keep_responses: bool = True,
        tracer=None,
    ):
        if dispatch not in DISPATCH_MODES:
            raise ValueError(f"unknown dispatch {dispatch!r}; choose from {DISPATCH_MODES}")
        if not substrates:
            raise ValueError("need at least one substrate")
        self.sim = sim if sim is not None else Simulator()
        rngs = rngs if rngs is not None else RngRegistry(seed)
        self.dispatch_mode = dispatch
        #: End-to-end span sink (:class:`repro.obs.tracer.Tracer`); the
        #: shared no-op default means an untraced service never pays
        #: more than one ``enabled`` attribute read per request.
        self.tracer = tracer if tracer is not None else NULL_TRACER
        self.metrics = ServiceMetrics(len(substrates), reservoir_size=reservoir_size)
        #: Every terminal response (completions and rejections) in the
        #: order the service produced them -- the run's audit stream.
        #: Grows O(requests); pass ``keep_responses=False`` for long load
        #: tests where the bounded-memory metrics are the only consumer.
        self.responses: list[SampleResponse] = []
        self._keep_responses = keep_responses
        time_model = time_model if time_model is not None else ServiceTimeModel()
        self.shards: list[ShardWorker] = []
        # Scalar IS per-request dispatch: each request pays its own
        # dispatch overhead, so scalar shards never coalesce regardless
        # of max_batch (see ServiceTimeModel's amortization contract).
        worker_batch = max_batch if dispatch == "batch" else 1
        sink = self.responses.append if keep_responses else None
        # One named stream feeds every shard's retry jitter, so runs
        # stay replayable; a policy without jitter never draws from it.
        retry_rng = rngs.stream("service.retry") if retry_policy is not None else None
        engine_tracer = self.tracer if self.tracer.enabled else None
        for shard_id, dht in enumerate(substrates):
            trial_rng = rngs.stream(f"shard{shard_id}.trials")
            if dispatch == "batch":
                strategy = BatchDispatch(
                    BatchSampler(dht, rng=trial_rng, tracer=engine_tracer)
                )
            else:
                strategy = ScalarDispatch(RandomPeerSampler(dht, rng=trial_rng))
            if engine_tracer is not None:
                # Live substrates expose their message fabric; the ideal
                # oracle has none, so per-hop spans simply don't occur.
                transport = getattr(dht, "transport", None)
                if transport is not None:
                    transport.install_tracer(engine_tracer)
            self.shards.append(
                ShardWorker(
                    shard_id,
                    self.sim,
                    strategy,
                    time_model=time_model,
                    metrics=self.metrics,
                    sink=sink,
                    max_batch=worker_batch,
                    max_wait=max_wait,
                    max_retries=max_retries,
                    retry_backoff=retry_backoff,
                    retry_policy=retry_policy,
                    retry_rng=retry_rng,
                    tracer=self.tracer,
                )
            )
        self.router = ShardRouter(self.shards, policy=policy)
        self.admission = AdmissionController(max_queue_depth=max_queue)
        self._next_id = 0

    # -- the request path --------------------------------------------------

    def submit(self, key: int | None = None) -> SampleRequest:
        """Accept one single-sample request arriving *now* (sim clock).

        Routes, then admits or rejects: a rejection produces an
        immediate ``REJECTED`` response in :attr:`responses`; an
        admission joins the shard's micro-batch queue and completes
        later.  Returns the request record either way.
        """
        request = SampleRequest(
            request_id=self._next_id,
            arrival_time=self.sim.now,
            key=key if key is not None else -1,
        )
        self._next_id += 1
        tracer = self.tracer
        if tracer.enabled:
            tracer.begin_request(request.request_id, self.sim.now)
        shard = self.router.route(request)
        admitted = self.admission.admit(shard)
        if tracer.enabled:
            tracer.record_admission(
                request.request_id,
                shard.shard_id,
                admitted,
                self.sim.now,
                **self.admission.explain(shard),
            )
        if not admitted:
            self.metrics.record_rejected(shard.shard_id)
            if self._keep_responses:
                self.responses.append(
                    SampleResponse(
                        request_id=request.request_id,
                        status=RequestStatus.REJECTED,
                        shard_id=shard.shard_id,
                        peer=None,
                        queue_latency=0.0,
                        service_latency=0.0,
                        completion_time=self.sim.now,
                        batch_size=0,
                    )
                )
            return request
        self.metrics.record_admitted()
        shard.offer(request)
        return request

    # -- run control / views ----------------------------------------------

    def run(self, until: float | None = None) -> None:
        """Advance the clock (drains all pending work when ``until=None``)."""
        self.sim.run(until=until)

    @property
    def completed(self) -> list[SampleResponse]:
        """Served responses only, in completion order."""
        return [r for r in self.responses if r.status is RequestStatus.OK]

    @property
    def failed(self) -> list[SampleResponse]:
        """Churn-failed responses (dispatch retries exhausted)."""
        return [r for r in self.responses if r.status is RequestStatus.FAILED]

    @property
    def healthy_shards(self) -> int:
        """How many shards currently report healthy."""
        return sum(1 for s in self.shards if s.healthy)

    @property
    def pending(self) -> int:
        """Admitted requests not yet completed."""
        return sum(s.load for s in self.shards)

    def summary(self) -> dict:
        """Metrics summary with throughput over the elapsed sim time."""
        return self.metrics.summary(elapsed=self.sim.now)


def build_substrates(
    n: int,
    shards: int,
    *,
    substrate: str = "ideal",
    rngs: RngRegistry | None = None,
    seed: int = 0,
    chord_m: int = 20,
    kad_bits: int = 32,
    kad_k: int = 20,
    kad_alpha: int = 3,
    replicate_rings: bool = False,
    transport: str = "sync",
    sim: Simulator | None = None,
) -> list:
    """Construct the shard substrates for :func:`build_service`.

    ``substrate`` is ``ideal`` (analytic oracle, bulk-capable),
    ``chord`` or ``kademlia`` (message-level simulators; the engine
    degrades to its per-call path), or ``mixed`` (alternating ideal and
    chord -- the oracle-vs-overlay split the mixed-shard tests pin).
    ``replicate_rings=True`` gives every ideal shard the *same* ring
    (one peer population served by many shards) instead of independent
    rings -- what uniformity tests over the union of shards want.

    ``transport="async"`` gives each overlay shard the message-level
    :class:`~repro.sim.async_net.AsyncRpcTransport`; its deliveries live
    on ``sim`` (required, and it must be the clock the caller drives --
    the service's).  The oracle has no transport, so ``ideal``/``mixed``
    refuse the switch.
    """
    if shards < 1:
        raise ValueError("need at least one shard")
    if substrate not in SUBSTRATES:
        raise ValueError(f"unknown substrate {substrate!r}; choose from {SUBSTRATES}")
    if transport not in ("sync", "async"):
        raise ValueError(f"unknown transport {transport!r}; choose sync or async")
    if transport == "async" and substrate not in ("chord", "kademlia"):
        raise ValueError(
            f"substrate {substrate!r} has no message transport to make async"
        )
    if transport == "async" and sim is None:
        raise ValueError("the async transport needs the shared Simulator")
    rngs = rngs if rngs is not None else RngRegistry(seed)
    extra: dict = {}
    if transport == "async":
        extra = {"async_transport": True, "sim": sim}
    out = []
    for shard_id in range(shards):
        kind = substrate
        if substrate == "mixed":
            kind = "ideal" if shard_id % 2 == 0 else "chord"
        stream = "shared.ring" if replicate_rings else f"shard{shard_id}.ring"
        ring_rng = random.Random(rngs.fresh(stream).getrandbits(64))
        if kind == "ideal":
            out.append(IdealDHT.random(n, ring_rng))
        elif kind == "kademlia":
            out.append(
                KademliaNetwork.build_dht(
                    n, m=kad_bits, k=kad_k, alpha=kad_alpha, rng=ring_rng, **extra
                )
            )
        else:
            out.append(ChordNetwork.build_dht(n, m=chord_m, rng=ring_rng, **extra))
    return out


def build_service(
    n: int = 1000,
    shards: int = 2,
    *,
    substrate: str = "ideal",
    seed: int = 0,
    chord_m: int = 20,
    kad_bits: int = 32,
    kad_k: int = 20,
    kad_alpha: int = 3,
    replicate_rings: bool = False,
    transport: str = "sync",
    **service_kwargs,
) -> SamplingService:
    """A ready-to-drive service: substrates built and wired from one seed.

    ``transport="async"`` builds the shard overlays on the message-level
    async transport, sharing one simulator between the shard rings and
    the service so RPC deliveries and service events interleave on a
    single clock.  The sync default is bit-identical to the historical
    construction (no extra kwargs reach the builders, no extra Simulator
    is created).
    """
    rngs = RngRegistry(seed)
    sim = None
    if transport == "async":
        sim = service_kwargs.get("sim")
        if sim is None:
            sim = Simulator()
            service_kwargs["sim"] = sim
    subs = build_substrates(
        n,
        shards,
        substrate=substrate,
        rngs=rngs,
        chord_m=chord_m,
        kad_bits=kad_bits,
        kad_k=kad_k,
        kad_alpha=kad_alpha,
        replicate_rings=replicate_rings,
        transport=transport,
        sim=sim,
    )
    return SamplingService(subs, rngs=rngs, **service_kwargs)


def build_load(
    service: SamplingService,
    *,
    rate: float,
    total: int,
    seed: int = 0,
    stream: str = "arrivals",
    shape=None,
    keys=None,
) -> LoadGenerator:
    """An open-loop Poisson generator wired to ``service.submit``.

    The standard drive idiom -- arrivals on the service's own clock,
    interarrival randomness on its own named seed stream -- in one
    place, so the CLI, benchmarks, examples and tests stay in lockstep.
    ``shape``/``keys`` (see :mod:`repro.service.shapes`) modulate the
    arrival rate and attach skewed request keys; both default off.
    Call ``.start()`` then ``service.run()``.
    """
    return LoadGenerator(
        service.sim,
        service.submit,
        rate=rate,
        total=total,
        rng=RngRegistry(seed).stream(stream),
        shape=shape,
        keys=keys,
    )
