"""Micro-batching shard worker: coalesce, dispatch, stamp latencies.

A :class:`ShardWorker` owns one substrate's dispatch strategy behind a
FIFO queue and models a single-server station on the simulation clock:

- arriving requests wait in the queue;
- a batch is *flushed* when the queue holds ``max_batch`` requests or
  the oldest waiting request has aged ``max_wait`` time units, whichever
  comes first (the classic micro-batching dispatch rule);
- while a batch is in service the worker is busy; completion is a
  scheduled event ``service_time`` later, at which point responses are
  stamped (queue latency = dispatch - arrival, service latency =
  completion - dispatch) and the next flush is considered.

Queue *bounds* are not enforced here -- admission control
(:mod:`repro.service.admission`) rejects before ``offer`` so
backpressure is an explicit, counted decision rather than a silent
queue property.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from ..sim.events import Event
from ..sim.kernel import Simulator
from .dispatch import ServiceTimeModel
from .metrics import ServiceMetrics
from .request import RequestStatus, SampleRequest, SampleResponse

__all__ = ["ShardWorker"]


class ShardWorker:
    """One shard: a bounded-latency micro-batching queue over a sampler."""

    def __init__(
        self,
        shard_id: int,
        sim: Simulator,
        dispatch,
        *,
        time_model: ServiceTimeModel | None = None,
        metrics: ServiceMetrics | None = None,
        sink: Callable[[SampleResponse], None] | None = None,
        max_batch: int = 32,
        max_wait: float = 2.0,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        self.shard_id = shard_id
        self._sim = sim
        self._dispatch = dispatch
        self._time_model = time_model if time_model is not None else ServiceTimeModel()
        self._metrics = metrics
        self._sink = sink
        self.max_batch = max_batch
        self.max_wait = max_wait
        self._queue: deque[SampleRequest] = deque()
        self._timer: Event | None = None
        self._in_flight = 0
        self.batches_served = 0

    # -- load signals (read by routing and admission) ---------------------

    @property
    def queue_depth(self) -> int:
        """Requests waiting for dispatch (excludes the batch in service)."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Requests currently in service (0 or one batch's worth)."""
        return self._in_flight

    @property
    def load(self) -> int:
        """Queued plus in-flight requests -- the least-loaded signal."""
        return len(self._queue) + self._in_flight

    @property
    def busy(self) -> bool:
        return self._in_flight > 0

    # -- the micro-batching state machine ---------------------------------

    def offer(self, request: SampleRequest) -> None:
        """Enqueue an admitted request and re-evaluate the dispatch rule."""
        self._queue.append(request)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        """Flush if the batch is full; otherwise arm the age timer."""
        if self.busy:
            return  # single server: completion will call us again
        if len(self._queue) >= self.max_batch:
            self._flush()
            return
        if self._queue and self._timer is None:
            deadline = self._queue[0].arrival_time + self.max_wait
            self._timer = self._sim.schedule(
                max(0.0, deadline - self._sim.now), self._on_timer
            )

    def _on_timer(self) -> None:
        self._timer = None
        if not self.busy and self._queue:
            self._flush()

    def _flush(self) -> None:
        """Dispatch up to ``max_batch`` queued requests as one batch."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch = [self._queue.popleft() for _ in range(min(self.max_batch, len(self._queue)))]
        self._in_flight = len(batch)
        dispatched_at = self._sim.now
        execution = self._dispatch.execute(len(batch))
        service_time = self._time_model.service_time(execution)
        self._sim.schedule(
            service_time, lambda: self._complete(batch, execution.peers, dispatched_at)
        )

    def _complete(self, batch, peers, dispatched_at: float) -> None:
        now = self._sim.now
        responses = [
            SampleResponse(
                request_id=req.request_id,
                status=RequestStatus.OK,
                shard_id=self.shard_id,
                peer=peer,
                queue_latency=dispatched_at - req.arrival_time,
                service_latency=now - dispatched_at,
                completion_time=now,
                batch_size=len(batch),
            )
            for req, peer in zip(batch, peers)
        ]
        self._in_flight = 0
        self.batches_served += 1
        if self._metrics is not None:
            self._metrics.record_batch(responses)
        if self._sink is not None:
            for response in responses:
                self._sink(response)
        self._maybe_flush()
