"""Micro-batching shard worker: coalesce, dispatch, stamp latencies.

A :class:`ShardWorker` owns one substrate's dispatch strategy behind a
FIFO queue and models a single-server station on the simulation clock:

- arriving requests wait in the queue;
- a batch is *flushed* when the queue holds ``max_batch`` requests or
  the oldest waiting request has aged ``max_wait`` time units, whichever
  comes first (the classic micro-batching dispatch rule);
- while a batch is in service the worker is busy; completion is a
  scheduled event ``service_time`` later, at which point responses are
  stamped (queue latency = dispatch - arrival, service latency =
  completion - dispatch) and the next flush is considered.

Queue *bounds* are not enforced here -- admission control
(:mod:`repro.service.admission`) rejects before ``offer`` so
backpressure is an explicit, counted decision rather than a silent
queue property.

Churn handling
--------------

On a live (churning) substrate a dispatch can fail: the strategy raises
:class:`~repro.service.dispatch.DispatchError` when routing holes or a
stale size estimate kill the execution.  The worker then

1. marks itself *unhealthy* (the router steers new traffic to healthy
   shards while this one recovers),
2. requeues the batch at the head of the queue and backs off for the
   cooldown the shard's :class:`~repro.faults.retry.RetryPolicy`
   prescribes -- giving stabilization a chance to repair the overlay
   (the legacy ``max_retries``/``retry_backoff`` knobs map onto a
   fixed-delay policy, so existing runs are bit-identical),
3. asks the strategy to :meth:`~repro.service.dispatch.BatchDispatch.refresh`
   its parameters (re-running Estimate-n against the now-repaired
   population) and retries while the policy's attempt budget lasts,
4. and finally fails the batch *explicitly*: every request gets a
   ``FAILED`` response, counted by the metrics, never a lost request or
   a leaked exception.

The first successful dispatch re-admits the shard (healthy again, retry
budget reset).  A shard that failed a batch outright re-admits itself
after one further backoff (half-open, circuit-breaker style): the
router sheds unhealthy shards, so an idle one would otherwise never see
the traffic that could prove it recovered.  All of this is
deterministic on the simulation clock.
"""

from __future__ import annotations

import random
from collections import deque
from typing import Callable

from ..faults.retry import RetryPolicy
from ..obs.tracer import NULL_TRACER
from ..sim.events import Event
from ..sim.kernel import Simulator
from .dispatch import DispatchError, ServiceTimeModel
from .metrics import ServiceMetrics
from .request import RequestStatus, SampleRequest, SampleResponse

__all__ = ["ShardWorker"]


class ShardWorker:
    """One shard: a bounded-latency micro-batching queue over a sampler."""

    def __init__(
        self,
        shard_id: int,
        sim: Simulator,
        dispatch,
        *,
        time_model: ServiceTimeModel | None = None,
        metrics: ServiceMetrics | None = None,
        sink: Callable[[SampleResponse], None] | None = None,
        max_batch: int = 32,
        max_wait: float = 2.0,
        max_retries: int = 2,
        retry_backoff: float = 1.0,
        retry_policy: RetryPolicy | None = None,
        retry_rng: random.Random | None = None,
        tracer=None,
    ):
        if max_batch < 1:
            raise ValueError("max_batch must be at least 1")
        if max_wait < 0:
            raise ValueError("max_wait must be non-negative")
        if max_retries < 0:
            raise ValueError("max_retries must be non-negative")
        if retry_backoff < 0:
            raise ValueError("retry_backoff must be non-negative")
        self.shard_id = shard_id
        self._sim = sim
        self._dispatch = dispatch
        self._time_model = time_model if time_model is not None else ServiceTimeModel()
        self._metrics = metrics
        self._sink = sink
        #: Span sink for the batch lifecycle; the shared no-op default
        #: keeps every tracing site a single ``enabled`` attribute read.
        self._tracer = tracer if tracer is not None else NULL_TRACER
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.max_retries = max_retries
        self.retry_backoff = retry_backoff
        #: The cooldown/attempt discipline.  The legacy knobs map onto a
        #: fixed-delay policy (``max_retries`` retries after the first
        #: failure, constant ``retry_backoff`` cooldown), so callers that
        #: pass no policy get bit-identical behaviour; a policy with
        #: exponential backoff or jitter changes only the cooldown
        #: lengths, never the state machine.  Jittered policies need
        #: ``retry_rng`` (see RetryPolicy's determinism contract).
        self.retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(
                attempts=max_retries + 1, base_delay=retry_backoff, factor=1.0
            )
        )
        self._retry_rng = retry_rng
        self._queue: deque[SampleRequest] = deque()
        self._timer: Event | None = None
        self._in_flight = 0
        self._healthy = True
        self._cooling = False  # a retry backoff is pending; hold flushes
        self._consecutive_failures = 0
        self.batches_served = 0
        self.dispatch_failures = 0  # DispatchErrors observed (incl. retried)
        self.retries = 0  # failures that were retried rather than failed
        self.failed_requests = 0  # requests terminated with FAILED

    # -- load signals (read by routing and admission) ---------------------

    @property
    def queue_depth(self) -> int:
        """Requests waiting for dispatch (excludes the batch in service)."""
        return len(self._queue)

    @property
    def in_flight(self) -> int:
        """Requests currently in service (0 or one batch's worth)."""
        return self._in_flight

    @property
    def load(self) -> int:
        """Queued plus in-flight requests -- the least-loaded signal."""
        return len(self._queue) + self._in_flight

    @property
    def busy(self) -> bool:
        return self._in_flight > 0

    @property
    def dispatch(self):
        """The dispatch strategy this shard serves through (read-only)."""
        return self._dispatch

    @property
    def healthy(self) -> bool:
        """False from a dispatch failure until the next success.

        The router prefers healthy shards, so a shard whose substrate is
        mid-repair sheds new traffic while it retries; the first
        successful dispatch re-admits it.
        """
        return self._healthy

    # -- the micro-batching state machine ---------------------------------

    def offer(self, request: SampleRequest) -> None:
        """Enqueue an admitted request and re-evaluate the dispatch rule."""
        self._queue.append(request)
        self._maybe_flush()

    def _maybe_flush(self) -> None:
        """Flush if the batch is full; otherwise arm the age timer."""
        if self.busy or self._cooling:
            return  # single server: completion / retry will call us again
        if len(self._queue) >= self.max_batch:
            self._flush()
            return
        if self._queue and self._timer is None:
            deadline = self._queue[0].arrival_time + self.max_wait
            self._timer = self._sim.schedule(
                max(0.0, deadline - self._sim.now), self._on_timer
            )

    def _on_timer(self) -> None:
        self._timer = None
        if not self.busy and not self._cooling and self._queue:
            self._flush()

    def _flush(self) -> None:
        """Dispatch up to ``max_batch`` queued requests as one batch."""
        if self._timer is not None:
            self._timer.cancel()
            self._timer = None
        batch = [self._queue.popleft() for _ in range(min(self.max_batch, len(self._queue)))]
        self._in_flight = len(batch)
        dispatched_at = self._sim.now
        tracer = self._tracer
        # The batch context must open *before* execute so the engine's
        # round spans and the transport's per-hop rpc/lookup spans land
        # in this dispatch's trace.
        ctx = tracer.begin_batch(batch, self.shard_id, dispatched_at) if tracer.enabled else None
        try:
            execution = self._dispatch.execute(len(batch))
        except DispatchError as exc:
            if ctx is not None:
                tracer.fail_batch(ctx, dispatched_at, str(exc))
            self._on_dispatch_failure(batch)
            return
        service_time = self._time_model.service_time(execution)
        if ctx is not None:
            tracer.end_batch(
                ctx,
                dispatched_at,
                execution,
                service_time,
                overhead=execution.dispatches * self._time_model.dispatch_overhead,
                routing=execution.cost.latency * self._time_model.time_per_latency,
            )
        self._sim.schedule(
            service_time, lambda: self._complete(batch, execution.peers, dispatched_at, ctx)
        )

    def _complete(self, batch, peers, dispatched_at: float, ctx=None) -> None:
        now = self._sim.now
        responses = [
            SampleResponse(
                request_id=req.request_id,
                status=RequestStatus.OK,
                shard_id=self.shard_id,
                peer=peer,
                queue_latency=dispatched_at - req.arrival_time,
                service_latency=now - dispatched_at,
                completion_time=now,
                batch_size=len(batch),
            )
            for req, peer in zip(batch, peers)
        ]
        self._in_flight = 0
        self.batches_served += 1
        self._healthy = True  # a success re-admits a recovering shard
        self._consecutive_failures = 0
        if self._metrics is not None:
            self._metrics.record_batch(responses)
        if self._sink is not None:
            for response in responses:
                self._sink(response)
        if self._tracer.enabled:
            self._tracer.finish_requests(responses, ctx)
        self._maybe_flush()

    # -- the churn failure path -------------------------------------------

    def _on_dispatch_failure(self, batch: list[SampleRequest]) -> None:
        """Handle one dead dispatch: back off and retry, or fail the batch."""
        self._in_flight = 0
        self._healthy = False
        self.dispatch_failures += 1
        self._consecutive_failures += 1
        if self._metrics is not None:
            self._metrics.record_dispatch_failure(self.shard_id)
        if not self.retry_policy.should_retry(self._consecutive_failures):
            self._consecutive_failures = 0  # fresh allowance for the next batch
            self._fail_batch(batch)
            # Half-open re-admission: the router sheds an unhealthy
            # shard, so an idle one would never see the traffic that
            # could prove it recovered.  After one more backoff it may
            # take traffic again; a still-broken substrate just flips
            # it straight back to unhealthy.  The probe delay stays on
            # the flat legacy knob: it is circuit-breaker pacing, not a
            # retry of anything, so the policy's escalation curve (which
            # indexes by consecutive failures) does not apply to it.
            self._sim.schedule(self.retry_backoff, self._readmit_probe)
            self._maybe_flush()
            return
        self.retries += 1
        self._queue.extendleft(reversed(batch))  # head of the line, same order
        self._cooling = True
        cooldown = self.retry_policy.delay(self._consecutive_failures, self._retry_rng)
        if self._tracer.enabled:
            self._tracer.record_backoff(
                [r.request_id for r in batch],
                self._sim.now,
                cooldown,
                self._consecutive_failures,
            )
        self._sim.schedule(cooldown, self._retry_flush)

    def _retry_flush(self) -> None:
        self._cooling = False
        # Re-estimate *after* the backoff, when stabilization has had a
        # chance to repair the overlay the estimate will run against;
        # a failed refresh just keeps the old parameters.  Then pre-warm
        # the substrate's batch-routing caches (the Chord lockstep
        # snapshot) so the retried batch dispatches against a fresh
        # snapshot instead of rebuilding one mid-dispatch.
        refresh = getattr(self._dispatch, "refresh", None)
        if refresh is not None:
            refresh()
        warm = getattr(self._dispatch, "warm", None)
        if warm is not None:
            warm()
        if not self.busy and self._queue:
            self._flush()

    def _readmit_probe(self) -> None:
        # A stale probe must not override a *newer* failure cycle: only
        # re-admit a shard that is idle (not cooling toward a retry and
        # not in service -- those paths decide health on their own).
        if not self._cooling and not self.busy:
            self._healthy = True

    def _fail_batch(self, batch: list[SampleRequest]) -> None:
        """Terminate every request of a batch with an explicit FAILED."""
        now = self._sim.now
        self.failed_requests += len(batch)
        responses = [
            SampleResponse(
                request_id=req.request_id,
                status=RequestStatus.FAILED,
                shard_id=self.shard_id,
                peer=None,
                queue_latency=now - req.arrival_time,
                service_latency=0.0,
                completion_time=now,
                batch_size=len(batch),
            )
            for req in batch
        ]
        if self._metrics is not None:
            self._metrics.record_failed(responses)
        if self._sink is not None:
            for response in responses:
                self._sink(response)
        if self._tracer.enabled:
            self._tracer.finish_requests(responses)
