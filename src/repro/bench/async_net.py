"""Async-transport benchmark: the mass-failure acceptance run, message-level.

PR 6's acceptance experiment -- kill 40% of a 10,000-node overlay in one
instant and demand recovery to 100% oracle-correct lookups -- reruns
here on the asynchronous transport (:mod:`repro.sim.async_net`): every
request and reply is its own scheduled delivery with an independent
latency draw, timeouts are real events on the simulator clock, and
lookups are continuation-driven coroutines that survive peers dying
mid-flight.  Both substrates run it.

Beyond the sync lab's round-counted recovery, the async run reports two
observables that only exist at message level:

- ``recovery_sim_time`` -- the sim-clock span from fault injection to
  the first all-correct probe sweep (wall-of-sim-clock recovery, not a
  maintenance-round count);
- ``hop_latency`` -- p50/p95/p99/mean RTT over every successful
  delivery's *actual* send-to-reply span, from the transport's delivery
  log (two uniform one-way legs, so RTTs land in [1, 3] time units).

Results go to ``BENCH_async.json`` at the repo root (schema in
docs/BENCHMARKS.md).  Run standalone
(``PYTHONPATH=src python benchmarks/bench_async.py``, or
``python -m repro bench async``; add ``--quick`` for the CI smoke
configuration) or under pytest via ``benchmarks/bench_async.py``.
"""

from __future__ import annotations

import argparse
import sys
import time
from pathlib import Path

from ..scenarios.faults import FaultScenarioSpec, fault_preset, run_fault_scenario
from .harness import Table, write_bench_json

__all__ = ["main", "bench_specs", "run_all", "results_table", "check_results",
           "emit", "DEFAULT_OUT", "BACKENDS"]

DEFAULT_OUT = Path(__file__).resolve().parents[3] / "BENCH_async.json"

BACKENDS = ("chord", "kademlia")


def bench_specs(quick: bool, n: int | None = None, seed: int = 0) -> list[FaultScenarioSpec]:
    """The mass-failure preset on the async transport, both substrates.

    Full mode keeps the preset's acceptance scale (n=10,000, m=20);
    quick shrinks to the CI smoke size.  An explicit ``n`` overrides
    either, with the id width stretched to fit.
    """
    shrink: dict = dict(n=256, m=12, probes=32, recovery_round_budget=60) if quick else {}
    if n is not None:
        shrink["n"] = n
        shrink["m"] = max(12, n.bit_length() + 2)
    specs = []
    for backend in BACKENDS:
        spec = fault_preset(
            "mass-failure", backend=backend, transport="async", seed=seed, **shrink
        )
        specs.append(spec.with_(name=f"mass-failure-async-{backend}"))
    return specs


def run_all(specs) -> list:
    return [run_fault_scenario(spec) for spec in specs]


def results_table(results, title: str) -> Table:
    table = Table(
        title=title,
        headers=["scenario", "backend", "n", "recovered", "rounds",
                 "recovery sim-time", "outage err", "post err",
                 "hop p50", "hop p95", "hop p99", "wall s"],
    )
    for r in results:
        hop = r.hop_latency or {}
        table.add_row(
            r.spec.name,
            r.spec.backend,
            r.spec.n,
            r.recovered,
            r.recovery_rounds if r.recovery_rounds is not None else "-",
            r.recovery_sim_time if r.recovery_sim_time is not None else "-",
            r.outage.error_rate,
            r.post.error_rate,
            hop.get("p50", "-"),
            hop.get("p95", "-"),
            hop.get("p99", "-"),
            r.wall_seconds,
        )
    table.note("recovery sim-time = sim clock from injection to first all-correct sweep")
    table.note("hop quantiles = RTT over actual deliveries (two uniform [0.5,1.5] legs)")
    return table


def check_results(results) -> list[str]:
    """The benchmark's gates; returns human-readable violations."""
    problems = []
    for r in results:
        if not r.recovered:
            problems.append(
                f"{r.spec.name}: did not recover "
                f"(rounds={r.recovery_rounds}, post_err={r.post.error_rate:.3f})"
            )
        if r.post.error_rate != 0.0:
            problems.append(
                f"{r.spec.name}: post-recovery lookups not oracle-perfect "
                f"({r.post.error_rate:.3f})"
            )
        if not r.hop_latency:
            problems.append(f"{r.spec.name}: transport delivered no RTT samples")
        elif not 1.0 <= r.hop_latency["p50"] <= 3.0:
            # two uniform [0.5, 1.5] legs bound every RTT to [1, 3]
            problems.append(
                f"{r.spec.name}: hop p50 {r.hop_latency['p50']:.3f} outside [1, 3]"
            )
        if r.recovered and r.recovery_sim_time is None:
            problems.append(f"{r.spec.name}: recovered but no sim-clock recovery time")
    return problems


def emit(results, out: Path, quick: bool, seed: int) -> Path:
    record = {
        "seed": seed,
        "quick": quick,
        "results": [r.to_record() for r in results],
        "generated_unix": time.time(),
    }
    return write_bench_json(out, record)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument("--n", type=int, default=None, help="override the overlay size")
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    args = parser.parse_args(argv)

    results = run_all(bench_specs(args.quick, n=args.n, seed=args.seed))
    results_table(results, "mass failure on the async transport").show()

    path = emit(results, args.out, quick=args.quick, seed=args.seed)
    print(f"wrote {path}")

    problems = check_results(results)
    for problem in problems:
        print(f"FAIL: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
