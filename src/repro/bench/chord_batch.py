"""Chord-path lookup throughput: per-call lookups vs the lockstep engine.

The PR-1 throughput bench (E17) measured batch sampling on the
*ideal* DHT; this bench measures the substrate the paper is actually
about.  For each ring size it times ``k`` Chord lookups issued

- one at a time through :meth:`ChordDHT.h` -- every hop a Python RPC
  dispatch through the simulated transport -- and
- as one :meth:`ChordDHT.h_many` batch through the lockstep snapshot
  engine (:mod:`repro.dht.chord.batch`),

in a *static* phase (ring untouched, the epoch-cached snapshot is built
once and amortized) and under *moderate churn* (a burst of live
joins/crashes before every batch, so each batch pays a snapshot rebuild
and routes around dead fingers).

Because the engine's contract is charge-identical replay -- not merely
"fast" -- every phase first verifies, on twin rings built from the same
seed, that the batched path returns bit-identical peers, per-target hop
counts and meter charges to the scalar loop; the verdicts are recorded
in the JSON artifact next to the throughput figures.  A speedup without
the identities holding would be a bug, not a result.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_chord_batch.py``,
or ``python -m repro bench chord-batch``; add ``--quick`` for the CI
smoke configuration) and writes ``BENCH_chord_batch.json`` at the repo
root so the perf trajectory is tracked across PRs.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

from ..dht.chord.batch import lockstep_resolve
from ..dht.chord.idspace import point_to_target_id
from ..dht.chord.network import ChordNetwork
from ..dht.chord.node import LookupError_
from .harness import Table, time_call, write_bench_json

__all__ = ["main", "run", "measure", "DEFAULT_OUT"]

FULL_SIZES = [1_000, 10_000, 100_000]
FULL_K = 5_000
QUICK_SIZES = [1_000, 4_000]
QUICK_K = 400

#: Membership events per churn burst, as a fraction of n (joins and
#: crashes alternate, so the population stays roughly stationary).
CHURN_FRACTION = 0.002
CHURN_ROUNDS = 3

DEFAULT_OUT = Path(__file__).resolve().parents[3] / "BENCH_chord_batch.json"

_M_BITS = 20


def _twin_rings(n: int, seed: int) -> tuple[ChordNetwork, ChordNetwork]:
    """Two identical rings: one serves the batched path, one the scalar.

    Separate rings keep the meters and transport counters independent so
    charge identity is checked on totals, while the shared seed makes
    the memberships -- and every subsequent lookup route -- identical.
    """
    return (
        ChordNetwork.build(n, m=_M_BITS, rng=random.Random(seed)),
        ChordNetwork.build(n, m=_M_BITS, rng=random.Random(seed)),
    )


def _points(k: int, seed: int) -> list[float]:
    rng = random.Random(seed)
    return [1.0 - rng.random() for _ in range(k)]


def _churn_burst(nets: tuple[ChordNetwork, ChordNetwork], events: int, rng) -> int:
    """Apply the same live join/crash burst to both twin rings.

    Decisions are drawn once from ``rng`` and replayed on both rings
    (identical by construction), so the twins stay in lockstep; no
    stabilization runs, leaving dead fingers for the lookups to route
    around -- the regime the engine's exact fallback exists for.
    """
    applied = 0
    for i in range(events):
        ids = nets[0].sorted_ids()
        if i % 2 == 0 and len(ids) > 8:
            victim = ids[rng.randrange(len(ids))]
            if victim == min(ids):
                continue  # keep the adapters' default entry node alive
            for net in nets:
                net.crash_node(victim)
        else:
            size = 1 << _M_BITS
            candidate = rng.randrange(size)
            while candidate in nets[0].nodes:
                candidate = rng.randrange(size)
            for net in nets:
                net.join_node(candidate)
        applied += 1
    return applied


def _verify(batch_dht, scalar_dht, xs: list[float]) -> dict:
    """Bit-identity of peers, charges and per-target hop counts."""
    before_a = batch_dht.cost.snapshot()
    before_b = scalar_dht.cost.snapshot()
    peers_a = batch_dht.h_many(xs)
    peers_b = [scalar_dht.h(x) for x in xs]
    delta_a = batch_dht.cost.snapshot() - before_a
    delta_b = scalar_dht.cost.snapshot() - before_b
    net = scalar_dht._network
    entry = net.nodes[scalar_dht.entry_id]
    targets = [point_to_target_id(x, net.m) for x in xs]
    scalar_hops: list[int | None] = []
    for t in targets:
        try:
            scalar_hops.append(entry.lookup(t).hops)
        except LookupError_:
            scalar_hops.append(None)  # the engine must predict this too
    transport = net.transport
    snapshot = batch_dht._network.snapshot()
    one_way = transport.latency_model.sample(net.rng)
    traces = lockstep_resolve(
        snapshot,
        batch_dht.entry_id,
        targets,
        mode="iterative",
        rpc_latency=one_way + one_way,
        oneway_latency=one_way,
        timeout=transport.timeout,
    )
    return {
        "identical_peers": peers_a == peers_b,
        "identical_messages": delta_a == delta_b,
        "identical_hops": [t.hops if t.ok else None for t in traces] == scalar_hops,
    }


def measure(n: int, k: int, seed: int = 0, repeat: int = 2) -> list[dict]:
    """Static and churn rows for one ring size."""
    rows = []
    nets = _twin_rings(n, seed)
    batch_dht = nets[0].dht()
    scalar_dht = nets[1].dht()

    # -- static phase ----------------------------------------------------
    identity = _verify(batch_dht, scalar_dht, _points(k, seed + 1))
    xs = _points(k, seed + 2)
    scalar_s = time_call(lambda: [scalar_dht.h(x) for x in xs], repeat=repeat)
    t0 = time.perf_counter()
    batch_dht.warm_lockstep()
    snapshot_s = time.perf_counter() - t0
    batch_s = time_call(lambda: batch_dht.h_many(xs), repeat=repeat)
    rows.append(
        {
            "n": n,
            "k": k,
            "phase": "static",
            "scalar_lookups_per_sec": k / scalar_s,
            "batch_lookups_per_sec": k / batch_s,
            "speedup": scalar_s / batch_s,
            "snapshot_build_seconds": snapshot_s,
            "churn_events": 0,
            **identity,
        }
    )

    # -- churn phase -----------------------------------------------------
    churn_rng = random.Random(seed + 3)
    events = max(4, int(n * CHURN_FRACTION))
    scalar_total = 0.0
    batch_total = 0.0
    applied = 0
    identity = {
        "identical_peers": True,
        "identical_messages": True,
        "identical_hops": True,
    }
    for r in range(CHURN_ROUNDS):
        applied += _churn_burst(nets, events, churn_rng)
        check = _verify(batch_dht, scalar_dht, _points(k // 4, seed + 10 + r))
        identity = {key: identity[key] and check[key] for key in identity}
        xs = _points(k, seed + 20 + r)
        t0 = time.perf_counter()
        for x in xs:
            scalar_dht.h(x)
        scalar_total += time.perf_counter() - t0
        t0 = time.perf_counter()
        batch_dht.h_many(xs)  # pays the post-churn snapshot rebuild
        batch_total += time.perf_counter() - t0
    rows.append(
        {
            "n": n,
            "k": k * CHURN_ROUNDS,
            "phase": "churn",
            "scalar_lookups_per_sec": k * CHURN_ROUNDS / scalar_total,
            "batch_lookups_per_sec": k * CHURN_ROUNDS / batch_total,
            "speedup": scalar_total / batch_total,
            "snapshot_build_seconds": None,
            "churn_events": applied,
            **identity,
        }
    )
    return rows


def run(sizes, k: int, seed: int = 0, repeat: int = 2) -> tuple[Table, list[dict]]:
    table = Table(
        "Chord-path lookup throughput: scalar h() loop vs lockstep h_many()",
        ["n", "phase", "scalar l/s", "batch l/s", "speedup", "identical"],
    )
    results = []
    for n in sizes:
        for row in measure(n, k, seed=seed, repeat=repeat):
            results.append(row)
            table.add_row(
                row["n"],
                row["phase"],
                row["scalar_lookups_per_sec"],
                row["batch_lookups_per_sec"],
                row["speedup"],
                row["identical_peers"]
                and row["identical_messages"]
                and row["identical_hops"],
            )
    table.note("scalar = ChordDHT.h per point (per-hop Python RPC dispatch)")
    table.note("batch = ChordDHT.h_many: lockstep routing over the epoch-cached snapshot")
    table.note("identical: peers, meter charges and hop counts match the scalar path bit-for-bit")
    table.note("churn rows interleave live join/crash bursts (no stabilization) between batches")
    return table, results


def emit(results: list[dict], out: Path, quick: bool, seed: int) -> Path:
    record = {
        "benchmark": "chord_batch",
        "substrate": "ChordDHT",
        "quick": quick,
        "seed": seed,
        "unit": "lookups/sec",
        "generated_unix": time.time(),
        "results": results,
    }
    return write_bench_json(out, record)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="override the ring sizes to measure",
    )
    parser.add_argument(
        "--k", type=int, default=None, help="override lookups per batch"
    )
    args = parser.parse_args(argv)

    sizes = args.sizes if args.sizes else (QUICK_SIZES if args.quick else FULL_SIZES)
    k = args.k if args.k else (QUICK_K if args.quick else FULL_K)
    repeat = 1 if args.quick else 2
    table, results = run(sizes, k, seed=args.seed, repeat=repeat)
    table.show()
    path = emit(results, args.out, quick=args.quick, seed=args.seed)
    print(f"wrote {path}")

    broken = [
        r for r in results
        if not (r["identical_peers"] and r["identical_messages"] and r["identical_hops"])
    ]
    if broken:
        print(
            f"FAIL: {len(broken)} row(s) broke scalar/batch identity", file=sys.stderr
        )
        return 1
    static = [r for r in results if r["phase"] == "static"]
    headline = max(static, key=lambda r: r["n"])
    floor = 1.5 if args.quick else 5.0
    if headline["speedup"] < floor:
        print(
            f"FAIL: static speedup {headline['speedup']:.1f}x at n={headline['n']} "
            f"below the {floor:.1f}x floor",
            file=sys.stderr,
        )
        return 1
    print(f"static speedup {headline['speedup']:.1f}x at n={headline['n']} (floor {floor:.1f}x)")
    return 0
