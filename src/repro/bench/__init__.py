"""Experiment harness shared by the ``benchmarks/`` suite."""

from .harness import Table, fmt, geometric_mean, sweep
from .workloads import make_ideal_dht, make_sampler, selection_counts

__all__ = [
    "Table",
    "fmt",
    "geometric_mean",
    "sweep",
    "make_ideal_dht",
    "make_sampler",
    "selection_counts",
]
