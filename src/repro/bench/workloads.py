"""Workload builders shared by benchmarks and examples.

Centralizes the "make a ring / make a Chord net / draw k samples"
boilerplate so experiments stay declarative and use consistent seeding
via :class:`~repro.sim.rng.RngRegistry`.
"""

from __future__ import annotations

import random
from collections import Counter

from ..core.sampler import RandomPeerSampler
from ..dht.ideal import IdealDHT
from ..sim.rng import RngRegistry

__all__ = ["make_ideal_dht", "make_sampler", "selection_counts"]


def make_ideal_dht(n: int, seed: int, stream: str = "ring") -> IdealDHT:
    """An ``IdealDHT`` of ``n`` uniform peers from a named seed stream."""
    rng = RngRegistry(seed).stream(stream)
    return IdealDHT.random(n, rng)


def make_sampler(
    dht: IdealDHT, seed: int, n_hat: float | None = None, **kwargs
) -> RandomPeerSampler:
    """A sampler with its trial randomness on its own seed stream."""
    rng = RngRegistry(seed).stream("sampler")
    return RandomPeerSampler(dht, n_hat=n_hat, rng=rng, **kwargs)


def selection_counts(sampler, draws: int) -> Counter:
    """Draw ``draws`` samples and tally peers by id."""
    counts: Counter = Counter()
    for _ in range(draws):
        counts[sampler.sample().peer_id] += 1
    return counts
