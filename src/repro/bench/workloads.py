"""Workload builders shared by benchmarks and examples.

Centralizes the "make a ring / make a Chord net / draw k samples"
boilerplate so experiments stay declarative and use consistent seeding
via :class:`~repro.sim.rng.RngRegistry`.
"""

from __future__ import annotations

from collections import Counter

from ..core.sampler import RandomPeerSampler
from ..dht.chord.network import ChordDHT, ChordNetwork
from ..dht.ideal import IdealDHT
from ..dht.kademlia.network import KademliaDHT, KademliaNetwork
from ..sim.rng import RngRegistry

__all__ = [
    "make_ideal_dht",
    "make_chord_dht",
    "make_kademlia_dht",
    "make_sampler",
    "selection_counts",
]


def make_ideal_dht(n: int, seed: int, stream: str = "ring") -> IdealDHT:
    """An ``IdealDHT`` of ``n`` uniform peers from a named seed stream."""
    rng = RngRegistry(seed).stream(stream)
    return IdealDHT.random(n, rng)


def make_chord_dht(
    n: int,
    seed: int,
    m: int = 20,
    stream: str = "chord",
    lookup_mode: str = "iterative",
) -> ChordDHT:
    """A perfectly-wired simulated Chord ring's ``h``/``next`` adapter.

    The underlying :class:`~repro.dht.chord.network.ChordNetwork` is
    reachable as ``dht._network`` for experiments that perturb the
    overlay, but most workloads only need the adapter.
    """
    rng = RngRegistry(seed).stream(stream)
    return ChordNetwork.build_dht(n, m=m, rng=rng, lookup_mode=lookup_mode)


def make_kademlia_dht(
    n: int,
    seed: int,
    m: int = 32,
    k: int = 20,
    alpha: int = 3,
    stream: str = "kademlia",
) -> KademliaDHT:
    """A perfectly-wired simulated Kademlia overlay's ``h``/``next`` adapter.

    The underlying :class:`~repro.dht.kademlia.network.KademliaNetwork`
    is reachable as ``dht._network`` for experiments that perturb the
    overlay, mirroring :func:`make_chord_dht`.
    """
    rng = RngRegistry(seed).stream(stream)
    return KademliaNetwork.build_dht(n, m=m, k=k, alpha=alpha, rng=rng)


def make_sampler(
    dht: IdealDHT, seed: int, n_hat: float | None = None, **kwargs
) -> RandomPeerSampler:
    """A sampler with its trial randomness on its own seed stream."""
    rng = RngRegistry(seed).stream("sampler")
    return RandomPeerSampler(dht, n_hat=n_hat, rng=rng, **kwargs)


def selection_counts(sampler, draws: int) -> Counter:
    """Draw ``draws`` samples and tally peers by id."""
    counts: Counter = Counter()
    for _ in range(draws):
        counts[sampler.sample().peer_id] += 1
    return counts
