"""Substrate backend comparison: Chord vs Kademlia under the same workload.

King & Saia write Choose-Random-Peer against an abstract DHT and assume
standard-DHT costs (``t_h = m_h = O(log n)``, unit ``next``).  The repo
now carries two message-level realizations of that interface -- the
successor-structured Chord ring and the XOR-structured Kademlia overlay
-- and this bench measures how the *same* sampling workload prices out
on each:

- ``rpcs/h``: mean RPCs one ``h`` resolution costs (routing hops plus
  verification), from a pure-lookup probe;
- ``msgs/sample`` and ``latency/sample``: the full algorithm cost per
  uniform draw, walks included, from the substrate meter;
- ``sustained req/s``: wall-clock sampler-tier throughput of a
  ``BatchSampler.sample_many`` drive (the per-call engine path both
  live overlays use);

each in a *static* phase and under *moderate churn* -- a burst of live
joins and crashes (no maintenance rounds) before sampling, so lookups
route around the damage reactively, the regime where the two overlays'
liveness models actually differ.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_backends.py``,
or ``python -m repro bench backends``; add ``--quick`` for the CI smoke
configuration) and writes ``BENCH_backends.json`` at the repo root so
the backend cost gap is tracked across PRs.
"""

from __future__ import annotations

import argparse
import random
import sys
import time
from pathlib import Path

from ..core.engine import BatchSampler
from ..dht.chord.network import ChordNetwork
from ..dht.kademlia.network import KademliaNetwork
from .harness import Table, write_bench_json

__all__ = ["main", "run", "measure_backend", "DEFAULT_OUT", "BACKENDS"]

FULL_SIZES = [10_000, 100_000]
FULL_SAMPLES = 400
FULL_PROBES = 200
# Quick mode shares n=10_000 with the full baselines so the CI
# regression guard has comparable rows (same convention as chord-batch).
QUICK_SIZES = [512, 10_000]
QUICK_SAMPLES = 100
QUICK_PROBES = 40

#: Membership events per churn burst, as a fraction of n (joins and
#: crashes alternate, so the population stays roughly stationary) --
#: the same moderate regime as the chord-batch bench.
CHURN_FRACTION = 0.002

DEFAULT_OUT = Path(__file__).resolve().parents[3] / "BENCH_backends.json"

BACKENDS = ("chord", "kademlia")


def _build(backend: str, n: int, seed: int):
    """One substrate adapter per backend, sized for the bench.

    Chord uses its usual 20-bit ring; Kademlia a 24-bit id space with
    the protocol's classic ``k=20``/``alpha=3`` (id width only has to
    hold ``n`` distinct ids -- routing behaviour is width-independent,
    while table wiring scales with it).
    """
    rng = random.Random(seed)
    if backend == "chord":
        return ChordNetwork.build_dht(n, m=20, rng=rng)
    return KademliaNetwork.build_dht(n, m=24, k=20, alpha=3, rng=rng)


def _points(k: int, seed: int) -> list[float]:
    rng = random.Random(seed)
    return [1.0 - rng.random() for _ in range(k)]


def _churn_burst(net, events: int, rng) -> int:
    """Apply a live join/crash burst; no maintenance runs afterwards."""
    applied = 0
    size = 1 << net.m
    for i in range(events):
        ids = net.sorted_ids()
        if i % 2 == 0 and len(ids) > 8:
            victim = ids[rng.randrange(len(ids))]
            if victim == min(ids):
                continue  # keep the adapter's default entry node alive
            net.crash_node(victim)
        else:
            candidate = rng.randrange(size)
            while candidate in net.nodes:
                candidate = rng.randrange(size)
            net.join_node(candidate)
        applied += 1
    return applied


def _measure_phase(dht, phase: str, samples: int, probes: int, seed: int,
                   churn_events: int = 0) -> dict:
    """Probe lookups, then a timed sampling drive, off one meter."""
    # -- pure-lookup probe: what does one h cost on this substrate? --
    before = dht.cost.snapshot()
    for x in _points(probes, seed + 1):
        dht.h(x)
    probe = dht.cost.snapshot() - before

    # -- the sampling drive: the full algorithm, walks included --
    engine = BatchSampler(dht, rng=random.Random(seed + 2))
    before = dht.cost.snapshot()
    t0 = time.perf_counter()
    peers = engine.sample_many(samples)
    elapsed = time.perf_counter() - t0
    delta = dht.cost.snapshot() - before

    live = set(dht._network.nodes)
    return {
        "phase": phase,
        "samples": samples,
        "probes": probes,
        "churn_events": churn_events,
        "rpcs_per_lookup": probe.messages / (2 * probe.h_calls),
        "msgs_per_lookup": probe.messages / probe.h_calls,
        "msgs_per_sample": delta.messages / samples,
        "latency_per_sample": delta.latency / samples,
        "next_calls_per_sample": delta.next_calls / samples,
        "sustained_rps": samples / elapsed,
        "stale_trials": engine.stale_trials,
        "all_sampled_live": all(p.peer_id in live for p in peers),
    }


def measure_backend(backend: str, n: int, samples: int, probes: int,
                    seed: int = 0) -> list[dict]:
    """Static and moderate-churn rows for one backend at one size."""
    dht = _build(backend, n, seed)
    rows = [
        {"backend": backend, "n": n,
         **_measure_phase(dht, "static", samples, probes, seed + 10)}
    ]
    churn_rng = random.Random(seed + 3)
    events = max(4, int(n * CHURN_FRACTION))
    applied = _churn_burst(dht._network, events, churn_rng)
    rows.append(
        {"backend": backend, "n": n,
         **_measure_phase(dht, "churn", samples, probes, seed + 20,
                          churn_events=applied)}
    )
    return rows


def run(sizes, samples: int, probes: int, seed: int = 0) -> tuple[Table, list[dict]]:
    table = Table(
        "Substrate backends under the sampling workload: Chord vs Kademlia",
        ["backend", "n", "phase", "rpcs/h", "msgs/sample", "lat/sample",
         "req/s", "stale", "live"],
    )
    results = []
    for n in sizes:
        for backend in BACKENDS:
            for row in measure_backend(backend, n, samples, probes, seed=seed):
                results.append(row)
                table.add_row(
                    row["backend"], row["n"], row["phase"],
                    row["rpcs_per_lookup"], row["msgs_per_sample"],
                    row["latency_per_sample"], row["sustained_rps"],
                    row["stale_trials"], row["all_sampled_live"],
                )
    for n in sizes:
        pair = {
            r["backend"]: r for r in results
            if r["n"] == n and r["phase"] == "static"
        }
        if len(pair) == 2:
            ratio = pair["kademlia"]["msgs_per_sample"] / pair["chord"]["msgs_per_sample"]
            table.note(
                f"n={n}: kademlia pays {ratio:.2f}x chord's msgs/sample "
                "(XOR routing + census verification vs native successors)"
            )
    table.note("rpcs/h: mean RPCs per pure h() resolution (routing + verification)")
    table.note("msgs/sample & req/s: full Choose-Random-Peer drives via the per-call engine path")
    table.note("churn rows sample right after a live join/crash burst, no maintenance (reactive-only)")
    return table, results


def emit(results: list[dict], out: Path, quick: bool, seed: int) -> Path:
    record = {
        "benchmark": "backends",
        "backends": list(BACKENDS),
        "quick": quick,
        "seed": seed,
        "generated_unix": time.time(),
        "results": results,
    }
    return write_bench_json(out, record)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="override the overlay sizes to measure",
    )
    parser.add_argument(
        "--samples", type=int, default=None, help="override draws per phase"
    )
    args = parser.parse_args(argv)
    if args.samples is not None and args.samples < 1:
        parser.error("--samples must be positive")
    if args.sizes is not None and any(n < 1 for n in args.sizes):
        parser.error("--sizes must be positive")

    sizes = args.sizes if args.sizes is not None else (
        QUICK_SIZES if args.quick else FULL_SIZES
    )
    samples = args.samples if args.samples is not None else (
        QUICK_SAMPLES if args.quick else FULL_SAMPLES
    )
    probes = QUICK_PROBES if args.quick else FULL_PROBES
    table, results = run(sizes, samples, probes, seed=args.seed)
    table.show()
    path = emit(results, args.out, quick=args.quick, seed=args.seed)
    print(f"wrote {path}")

    broken = [r for r in results if r["phase"] == "static" and not r["all_sampled_live"]]
    if broken:
        print(f"FAIL: {len(broken)} static row(s) sampled a dead peer", file=sys.stderr)
        return 1
    return 0
