"""Decade-scaling benchmark for the struct-of-arrays substrates.

The SoA rebuild exists so the repo can hold a *million-node* overlay in
flat numpy arrays instead of a million Python node objects.  This bench
pins that claim per decade: for each ``n`` in 1e4 -> 1e6 it builds both
SoA substrates (Chord at ``m=32`` with 8-deep successor lists, Kademlia
at ``m=32, k=20``), records build seconds and **bytes of array state
per node**, then serves a lockstep lookup batch and records
**lookups/sec** -- the two curves the nightly regression gate holds to
within 10%.  A 1e7 entry builds only (no serve phase), bounding the
construction path one decade past the serving claim.

A separate churn section certifies the tentpole invariant on the *live*
substrate: the CI-sized moderate-churn scenario preset must absorb all
of its churn through incremental snapshot patches -- zero full rebuilds
beyond the initial one per shard -- and an explicit interleaved
join/crash/leave burst must leave the incrementally patched snapshot
bit-identical to a from-scratch ``RingSnapshot.build``.

Runs standalone (``PYTHONPATH=src python benchmarks/bench_scale.py``,
or ``python -m repro bench scale``; ``--quick`` is the CI smoke
configuration: the n=1e5 decade only, no 1e7 build) and writes
``BENCH_scale.json`` at the repo root.
"""

from __future__ import annotations

import argparse
import bisect
import random
import sys
import time
from pathlib import Path

from ..compat import load_numpy
from ..dht.chord.batch import RingSnapshot
from ..dht.chord.network import ChordNetwork
from ..dht.chord.soa import SoAChordNetwork
from ..dht.kademlia.routing import SoAKademliaNetwork
from .harness import Table, peak_rss_kb, write_bench_json

__all__ = ["main", "run", "measure_decade", "measure_churn", "DEFAULT_OUT", "BACKENDS"]

_np = load_numpy()

FULL_DECADES = [10_000, 100_000, 1_000_000]
FULL_BUILD_ONLY = [10_000_000]
FULL_LOOKUPS = 4096
# Quick mode keeps the n=1e5 decade so the regression guard has a row
# in common with the committed full baselines.
QUICK_DECADES = [100_000]
QUICK_BUILD_ONLY: list[int] = []
QUICK_LOOKUPS = 1024
# The pure-Python lane cannot hold a million list-backed rows; the
# bench still runs (CI imports it under REPRO_PURE_PYTHON) but shrinks
# to a size the lists can carry, keyed distinctly so the lane's rows
# never masquerade as the numpy curves.
PURE_DECADES = [2048]

#: Nodes in the churn-equivalence burst (live ChordNetwork, small ring).
CHURN_N = 192
CHURN_EVENTS = 96

DEFAULT_OUT = Path(__file__).resolve().parents[3] / "BENCH_scale.json"

BACKENDS = ("chord-soa", "kademlia-soa")


def _build(backend: str, n: int, seed: int):
    rng = random.Random(seed)
    if backend == "chord-soa":
        return SoAChordNetwork.build(n, m=32, rng=rng, successor_list_size=8)
    return SoAKademliaNetwork.build(n, m=32, k=20, rng=rng)


def _points(k: int, seed: int) -> list[float]:
    rng = random.Random(seed)
    return [1.0 - rng.random() for _ in range(k)]


def _spot_check(net, backend: str, seed: int, probes: int = 64) -> bool:
    """Sampled structural check, O(probes log n) -- full ``ring_is_correct``
    is an O(n) Python loop, too slow to run at 1e7."""
    rng = random.Random(seed)
    if backend == "kademlia-soa":
        ids = net.sorted_ids()
        return net.routing_is_correct() and ids == sorted(ids)
    store = net.snapshot()
    ids = net.sorted_ids()
    n = len(ids)
    for _ in range(probes):
        i = rng.randrange(n)
        slot = store.pos[ids[i]]
        succs = store.succs_at(slot)
        if not succs or succs[0] != ids[(i + 1) % n]:
            return False
    return True


def _oracle_owner(ids: list[int], target: int) -> int:
    return ids[bisect.bisect_left(ids, target) % len(ids)]


def measure_decade(backend: str, n: int, lookups: int, seed: int,
                   serve: bool = True) -> list[dict]:
    """Build + (optionally) serve rows for one backend at one decade."""
    t0 = time.perf_counter()
    net = _build(backend, n, seed)
    build_seconds = time.perf_counter() - t0
    nbytes = net.array_bytes()
    rows = [{
        "backend": backend,
        "n": n,
        "phase": "build",
        "build_seconds": build_seconds,
        "array_bytes": nbytes,
        "bytes_per_node": nbytes / n,
        "spot_check_ok": _spot_check(net, backend, seed + 1),
        "peak_rss_kb": peak_rss_kb(),
    }]
    if not serve:
        return rows

    dht = net.dht()
    xs = _points(lookups, seed + 2)
    t0 = time.perf_counter()
    refs = dht.h_many(xs)
    serve_seconds = time.perf_counter() - t0

    # Oracle correctness on a sampled subset (the full check is O(n)
    # Python at the big decades).
    from ..dht.idspace import point_to_target_id

    ids = net.sorted_ids()
    check = random.Random(seed + 3).sample(range(lookups), min(128, lookups))
    oracle_ok = all(
        refs[i].peer_id == _oracle_owner(ids, point_to_target_id(xs[i], net.m))
        for i in check
    )
    rows.append({
        "backend": backend,
        "n": n,
        "phase": "serve",
        "lookups": lookups,
        "serve_seconds": serve_seconds,
        "lookups_per_sec": lookups / serve_seconds,
        "msgs_per_lookup": dht.cost.messages / dht.cost.h_calls,
        "oracle_ok": oracle_ok,
        "peak_rss_kb": peak_rss_kb(),
    })
    return rows


def measure_churn(seed: int = 0) -> dict:
    """The tentpole invariant, certified on the live substrates.

    1. The CI-sized moderate-churn scenario preset (``smoke``) must run
       with **zero** churn-induced full snapshot rebuilds: every shard's
       ``snapshot_builds`` stays at the initial 1, with the churn
       absorbed as ``snapshot_patches``.
    2. An explicit join/crash/leave/stabilize burst on a warm
       :class:`ChordNetwork` must leave the incrementally patched
       snapshot bit-identical to a from-scratch rebuild.
    3. The same burst shape on the SoA substrate must splice to exactly
       the oracle-built store.
    """
    from ..scenarios import preset, run_scenario

    result = run_scenario(preset("smoke"))
    full_rebuilds = sum(max(0, s.snapshot_builds - 1) for s in result.shards)
    patches = sum(s.snapshot_patches for s in result.shards)

    # -- explicit burst on the live object-graph network ------------------
    rng = random.Random(seed + 7)
    net = ChordNetwork.build(CHURN_N, m=16, rng=random.Random(seed + 8))
    net.snapshot()  # warm, so churn goes down the incremental path
    for i in range(CHURN_EVENTS):
        op = rng.randrange(4)
        ids = net.sorted_ids()
        if op == 0:
            net.join_node()
        elif op == 1 and len(ids) > 8:
            net.crash_node(rng.choice(ids))
        elif op == 2 and len(ids) > 8:
            net.leave_node(rng.choice(ids))
        else:
            net.stabilize_round()
        if i % 8 == 0:
            net.snapshot()  # periodic drains, like the lockstep engine
    incremental_ok = (
        net.snapshot().canonical_state() == RingSnapshot.build(net).canonical_state()
    )
    live_builds = net.snapshot_builds
    live_patches = net.snapshot_patches

    # -- the same burst shape on the SoA substrate ------------------------
    soa = SoAChordNetwork.build(CHURN_N, m=16, rng=random.Random(seed + 9))
    srng = random.Random(seed + 10)
    for _ in range(CHURN_EVENTS):
        op = srng.randrange(4)
        ids = soa.sorted_ids()
        if op == 0:
            soa.join_node()
        elif op == 1 and len(ids) > 8:
            soa.crash_node(srng.choice(ids))
        elif op == 2 and len(ids) > 8:
            soa.leave_node(srng.choice(ids))
        else:
            soa.stabilize_round()
    soa.stabilize_round()  # converge the crash-stale rows
    fresh = soa._build_store(soa.sorted_ids())
    soa_ok = soa.store.canonical_state() == fresh.canonical_state()

    return {
        "preset": "smoke",
        "shards": len(result.shards),
        "scenario_churn_events": result.churn_events,
        "full_rebuilds": full_rebuilds,
        "snapshot_patches": patches,
        "burst_events": CHURN_EVENTS,
        "burst_builds": live_builds,
        "burst_patches": live_patches,
        "incremental_equals_rebuild": incremental_ok,
        "soa_splice_equals_rebuild": soa_ok,
        "soa_builds": soa.snapshot_builds,
    }


def run(decades, build_only, lookups: int, seed: int = 0):
    table = Table(
        "Struct-of-arrays scaling: memory/node and lookups/sec per decade",
        ["backend", "n", "build s", "bytes/node", "lookups/s", "msgs/h", "ok"],
    )
    results = []
    for n in decades:
        for backend in BACKENDS:
            rows = measure_decade(backend, n, lookups, seed)
            results.extend(rows)
            build = rows[0]
            serve = rows[1] if len(rows) > 1 else {}
            table.add_row(
                backend, n, build["build_seconds"], build["bytes_per_node"],
                serve.get("lookups_per_sec", float("nan")),
                serve.get("msgs_per_lookup", float("nan")),
                build["spot_check_ok"] and serve.get("oracle_ok", True),
            )
    for n in build_only:
        for backend in BACKENDS:
            rows = measure_decade(backend, n, lookups, seed, serve=False)
            results.extend(rows)
            build = rows[0]
            table.add_row(
                backend, n, build["build_seconds"], build["bytes_per_node"],
                float("nan"), float("nan"), build["spot_check_ok"],
            )
    churn = measure_churn(seed)
    table.note(
        f"churn ({churn['preset']} preset): {churn['full_rebuilds']} full "
        f"rebuilds, {churn['snapshot_patches']} incremental patches"
    )
    table.note(
        "incremental==rebuild: "
        f"{churn['incremental_equals_rebuild']}, SoA splice==rebuild: "
        f"{churn['soa_splice_equals_rebuild']}"
    )
    table.note("bytes/node counts flat array state only (ids, fingers, successors)")
    return table, results, churn


def emit(results, churn, out: Path, quick: bool, seed: int) -> Path:
    record = {
        "benchmark": "scale",
        "backends": list(BACKENDS),
        "numpy": _np is not None,
        "quick": quick,
        "seed": seed,
        "generated_unix": time.time(),
        "results": results,
        "churn": churn,
    }
    return write_bench_json(out, record)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI smoke configuration")
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    parser.add_argument("--out", type=Path, default=DEFAULT_OUT, help="JSON output path")
    parser.add_argument(
        "--sizes", type=int, nargs="+", default=None,
        help="override the serve decades to measure",
    )
    parser.add_argument(
        "--lookups", type=int, default=None, help="override the serve batch size"
    )
    args = parser.parse_args(argv)
    if args.lookups is not None and args.lookups < 1:
        parser.error("--lookups must be positive")
    if args.sizes is not None and any(n < 2 for n in args.sizes):
        parser.error("--sizes must be at least 2")

    if _np is None:
        decades = args.sizes if args.sizes is not None else PURE_DECADES
        build_only: list[int] = []
        print("numpy unavailable: running the pure-lane shrunk configuration",
              file=sys.stderr)
    elif args.sizes is not None:
        decades, build_only = args.sizes, []
    elif args.quick:
        decades, build_only = QUICK_DECADES, QUICK_BUILD_ONLY
    else:
        decades, build_only = FULL_DECADES, FULL_BUILD_ONLY
    lookups = args.lookups if args.lookups is not None else (
        QUICK_LOOKUPS if args.quick else FULL_LOOKUPS
    )

    table, results, churn = run(decades, build_only, lookups, seed=args.seed)
    table.show()
    path = emit(results, churn, args.out, quick=args.quick, seed=args.seed)
    print(f"wrote {path}")

    failures = []
    if churn["full_rebuilds"] != 0:
        failures.append(
            f"churn preset forced {churn['full_rebuilds']} full snapshot rebuilds"
        )
    if not churn["incremental_equals_rebuild"]:
        failures.append("incremental snapshot diverged from a from-scratch rebuild")
    if not churn["soa_splice_equals_rebuild"]:
        failures.append("SoA splice diverged from the oracle-built store")
    for row in results:
        if row["phase"] == "build" and not row["spot_check_ok"]:
            failures.append(f"{row['backend']} n={row['n']}: structural spot check failed")
        if row["phase"] == "serve" and not row["oracle_ok"]:
            failures.append(f"{row['backend']} n={row['n']}: served a non-oracle owner")
    for message in failures:
        print(f"FAIL: {message}", file=sys.stderr)
    return 1 if failures else 0
