"""Shared experiment harness: aligned tables and parameter sweeps.

Every benchmark regenerates one of the paper's claims as a printed
table; this module keeps the formatting and sweep plumbing in one place
so each ``benchmarks/bench_eNN_*.py`` stays focused on its experiment.
"""

from __future__ import annotations

import json
import math
import sys
import time
from collections.abc import Callable, Iterable, Sequence
from dataclasses import dataclass, field
from pathlib import Path

try:  # POSIX-only; benches degrade to rss=None elsewhere
    import resource as _resource
except ImportError:  # pragma: no cover - non-POSIX platforms
    _resource = None

__all__ = [
    "Table",
    "fmt",
    "geometric_mean",
    "peak_rss_kb",
    "sweep",
    "time_call",
    "time_call_rss",
    "write_bench_json",
]


def fmt(value, digits: int = 4) -> str:
    """Compact human formatting for table cells."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        if math.isinf(value):
            return "inf"
        if math.isnan(value):
            return "nan"
        magnitude = abs(value)
        if magnitude >= 1e5 or magnitude < 1e-3:
            return f"{value:.{digits - 1}e}"
        return f"{value:.{digits}g}"
    return str(value)


@dataclass
class Table:
    """A printable experiment table with aligned columns."""

    title: str
    headers: Sequence[str]
    rows: list[Sequence] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells) -> None:
        if len(cells) != len(self.headers):
            raise ValueError(
                f"row has {len(cells)} cells but table has {len(self.headers)} columns"
            )
        self.rows.append(cells)

    def note(self, text: str) -> None:
        self.notes.append(text)

    def render(self) -> str:
        formatted = [[fmt(c) for c in row] for row in self.rows]
        widths = [
            max(len(str(h)), *(len(r[i]) for r in formatted)) if formatted else len(str(h))
            for i, h in enumerate(self.headers)
        ]
        lines = [f"== {self.title} =="]
        lines.append("  ".join(str(h).ljust(w) for h, w in zip(self.headers, widths)))
        lines.append("  ".join("-" * w for w in widths))
        for row in formatted:
            lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
        for note in self.notes:
            lines.append(f"   note: {note}")
        return "\n".join(lines)

    def show(self) -> None:
        print("\n" + self.render() + "\n")

    def to_csv(self) -> str:
        """The table as CSV (headers + formatted rows), for plotting."""
        lines = [",".join(str(h) for h in self.headers)]
        for row in self.rows:
            lines.append(",".join(fmt(c) for c in row))
        return "\n".join(lines) + "\n"


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (for averaging cost ratios)."""
    vals = [v for v in values]
    if not vals:
        raise ValueError("no values")
    if any(v <= 0 for v in vals):
        raise ValueError("geometric mean needs positive values")
    return math.exp(math.fsum(math.log(v) for v in vals) / len(vals))


def sweep(values: Sequence, fn: Callable) -> list:
    """Apply ``fn`` to each parameter value, collecting results in order."""
    return [fn(v) for v in values]


def time_call(fn: Callable[[], object], repeat: int = 3) -> float:
    """Best-of-``repeat`` wall-clock seconds for one call of ``fn``.

    Uses ``time.perf_counter`` and keeps the minimum, the standard way
    to suppress scheduler noise in throughput baselines.
    """
    if repeat < 1:
        raise ValueError("repeat must be at least 1")
    best = math.inf
    for _ in range(repeat):
        start = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
    return best


def peak_rss_kb() -> int | None:
    """The process's peak resident set size so far, in KiB.

    ``getrusage(RUSAGE_SELF).ru_maxrss`` is KiB on Linux and bytes on
    macOS; normalized here to KiB.  None where :mod:`resource` is
    unavailable (non-POSIX), so benches degrade instead of failing.
    """
    if _resource is None:
        return None
    maxrss = _resource.getrusage(_resource.RUSAGE_SELF).ru_maxrss
    if sys.platform == "darwin":  # pragma: no cover - linux CI
        return maxrss // 1024
    return maxrss


def time_call_rss(fn: Callable[[], object], repeat: int = 3) -> tuple[float, int | None]:
    """:func:`time_call` plus the peak RSS observed after the runs (KiB).

    Peak RSS is a process-lifetime high-water mark, so this reports the
    memory the benchmark *reached*, not an isolated per-call delta --
    the honest quantity for detecting a structure that suddenly holds
    the whole workload resident.
    """
    best = time_call(fn, repeat=repeat)
    return best, peak_rss_kb()


def write_bench_json(path, record: dict) -> Path:
    """Persist a benchmark record as pretty-printed JSON.

    Creates parent directories as needed and returns the resolved path,
    so ``BENCH_*.json`` artifacts accumulate a perf trajectory across
    PRs.  Every record is stamped with the process's peak RSS
    (``peak_rss_kb``, None off-POSIX) unless the benchmark already
    recorded its own.
    """
    out = Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    record = dict(record)
    record.setdefault("peak_rss_kb", peak_rss_kb())
    out.write_text(json.dumps(record, indent=2, sort_keys=True) + "\n")
    return out
