"""Command-line interface: run the paper's algorithms from a shell.

Subcommands::

    python -m repro estimate   --n 5000             # Estimate-n accuracy
    python -m repro sample     --n 5000 --samples 5 # uniform draws + costs
    python -m repro sample     --n 500 --backend kademlia   # XOR substrate
    python -m repro sample     --n 5000 --samples 500 --batch  # bulk engine
    python -m repro uniformity --n 256 --draws 20000
    python -m repro chord      --n 128 --samples 20 # on simulated Chord
    python -m repro serve      --n 5000 --rate 1.0 --shards 2 --requests 2000
    python -m repro serve      --substrate kademlia --n 2000 --requests 1000
    python -m repro scenario run --preset smoke     # serve under live churn
    python -m repro scenario run --preset smoke --backend kademlia
    python -m repro scenario run --preset mass-failure --n 300   # outage lab
    python -m repro scenario run --preset partition-heal --backend kademlia
    python -m repro scenario run --preset mass-failure --n 300 --transport async
    python -m repro scenario list                   # churn + fault regimes
    python -m repro trace --preset smoke            # traced run + exports
    python -m repro trace --backend kademlia --sample slowest:32
    python -m repro faults list                     # injectors and presets
    python -m repro bench chord-batch --quick       # lockstep lookup bench
    python -m repro bench backends --quick          # Chord-vs-Kademlia costs
    python -m repro bench scale --quick             # SoA decade scaling
    python -m repro bench async --quick             # message-level outage run

Every subcommand accepts ``--seed`` for reproducibility and prints a
plain-text report; exit status is non-zero on invalid arguments.
"""

from __future__ import annotations

import argparse
import random
import sys
from collections import Counter
from collections.abc import Sequence
from pathlib import Path

from .analysis.stats import chi_square_uniform, max_min_ratio
from .baselines.naive import NaiveSampler
from .bench.harness import write_bench_json
from .core.engine import BatchSampler
from .core.estimate import estimate_n, estimate_n_median
from .core.sampler import RandomPeerSampler
from .dht.chord.network import ChordNetwork
from .dht.ideal import IdealDHT
from .dht.kademlia.network import KademliaNetwork
from .faults import INJECTORS
from .obs import Tracer, analyze, parse_policy, prometheus_text, write_chrome_trace, write_jsonl
from .scenarios import (
    BACKENDS,
    FAULT_PRESETS,
    PRESETS,
    TRANSPORTS,
    critical_path_table,
    fault_preset,
    hop_table,
    preset,
    results_record,
    results_table,
    run_fault_scenario,
    run_scenario,
    slowest_table,
)
from .adversary.state import LIE_STRATEGIES
from .service import DISPATCH_MODES, POLICIES, SUBSTRATES, build_load, build_service
from .service.shapes import LOAD_SHAPES

__all__ = ["build_parser", "main"]

#: Every substrate a single-ring subcommand can be pointed at.
BACKEND_CHOICES = ("ideal", "chord", "kademlia")


def _build_backend_dht(backend: str, n: int, seed: int, m: int | None = None):
    """One substrate of the requested backend for the demo subcommands.

    Chord defaults to its usual 20-bit ring, Kademlia to the practical
    32-bit space (``KademliaNetwork.build_dht``'s default); both
    validate that ``n`` distinct ids fit.
    """
    rng = random.Random(seed)
    if backend == "chord":
        return ChordNetwork.build_dht(n, m=m if m is not None else 20, rng=rng)
    if backend == "kademlia":
        return KademliaNetwork.build_dht(n, m=m if m is not None else 32, rng=rng)
    return IdealDHT.random(n, rng)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Choosing a Random Peer (King & Saia, PODC 2004) -- demos",
    )
    parser.add_argument("--seed", type=int, default=0, help="root RNG seed")
    sub = parser.add_subparsers(dest="command", required=True)

    p_est = sub.add_parser("estimate", help="run Estimate-n on a random ring")
    p_est.add_argument("--n", type=int, default=1000, help="true network size")
    p_est.add_argument("--c1", type=float, default=4.0, help="tightness constant")
    p_est.add_argument(
        "--vantages", type=int, default=1,
        help="median over this many vantage peers (variance reduction)",
    )

    p_sample = sub.add_parser("sample", help="draw uniform peers with cost stats")
    p_sample.add_argument("--n", type=int, default=1000)
    p_sample.add_argument("--samples", type=int, default=5)
    p_sample.add_argument(
        "--backend", choices=BACKEND_CHOICES, default="ideal",
        help="substrate to sample over: the analytic oracle, the Chord "
             "simulator, or the Kademlia simulator",
    )
    p_sample.add_argument(
        "--batch", action="store_true",
        help="draw all samples in one BatchSampler.sample_many call "
             "(the PR-1 vectorized engine) instead of a scalar loop",
    )

    p_uni = sub.add_parser("uniformity", help="chi-square vs the naive heuristic")
    p_uni.add_argument("--n", type=int, default=256)
    p_uni.add_argument("--draws", type=int, default=10_000)

    p_chord = sub.add_parser("chord", help="sample over a simulated Chord ring")
    p_chord.add_argument("--n", type=int, default=128)
    p_chord.add_argument("--m", type=int, default=20, help="identifier bits")
    p_chord.add_argument("--samples", type=int, default=10)

    p_serve = sub.add_parser(
        "serve",
        help="run the micro-batching sampling service under open-loop load",
    )
    p_serve.add_argument("--n", type=int, default=1000, help="peers per shard substrate")
    p_serve.add_argument("--rate", type=float, default=1.0, help="Poisson arrivals per time unit")
    p_serve.add_argument("--shards", type=int, default=2, help="substrate shard count")
    p_serve.add_argument("--requests", type=int, default=2000, help="total requests to offer")
    p_serve.add_argument("--max-batch", type=int, default=32, help="micro-batch size cap")
    p_serve.add_argument("--max-wait", type=float, default=2.0,
                         help="max time units a request may wait for batchmates")
    p_serve.add_argument("--max-queue", type=int, default=256, help="per-shard admission bound")
    p_serve.add_argument("--policy", choices=POLICIES, default="round-robin")
    p_serve.add_argument("--dispatch", choices=DISPATCH_MODES, default="batch")
    p_serve.add_argument("--substrate", "--backend", choices=SUBSTRATES, default="ideal",
                         help="shard substrate (--backend is an alias)")
    p_serve.add_argument("--chord-m", type=int, default=20, help="Chord identifier bits")
    p_serve.add_argument("--kad-bits", type=int, default=32, help="Kademlia identifier bits")
    p_serve.add_argument("--kad-k", type=int, default=20, help="Kademlia bucket size")

    p_scn = sub.add_parser(
        "scenario",
        help="dynamic-membership scenario lab: serve load while the ring churns",
    )
    scn_sub = p_scn.add_subparsers(dest="scenario_command", required=True)
    scn_sub.add_parser("list", help="show the named presets and their regimes")
    p_run = scn_sub.add_parser("run", help="run one preset scenario end to end")
    p_run.add_argument(
        "--preset",
        choices=sorted(PRESETS) + sorted(FAULT_PRESETS),
        default="smoke",
        help="a churn regime or a structured-outage regime "
             f"({', '.join(sorted(FAULT_PRESETS))})",
    )
    p_run.add_argument("--backend", choices=BACKENDS, default=None,
                       help="override the shard overlay (chord or kademlia)")
    p_run.add_argument("--transport", choices=TRANSPORTS, default=None,
                       help="override how messages move: sync call-and-return "
                            "or the async message-level transport")
    p_run.add_argument("--n", type=int, default=None,
                       help="override the overlay size")
    p_run.add_argument("--requests", type=int, default=None, help="override offered requests")
    p_run.add_argument("--rate", type=float, default=None, help="override arrival rate")
    p_run.add_argument("--churn-rate", type=float, default=None,
                       help="override membership events per time unit per shard")
    p_run.add_argument("--crash-fraction", type=float, default=None,
                       help="override P(departure is a crash)")
    p_run.add_argument("--stabilize-interval", type=float, default=None,
                       help="override maintenance cadence (0 disables)")
    p_run.add_argument("--adversary", type=float, default=None, metavar="FRACTION",
                       help="mark this fraction of each ring Byzantine "
                            "(0 = everyone honest; see docs/ADVERSARY.md)")
    p_run.add_argument("--lie", choices=LIE_STRATEGIES, default=None,
                       help="lie strategy for Byzantine peers "
                            "(with --adversary or an adversarial preset)")
    p_run.add_argument("--committee-size", type=int, default=None,
                       help="committee draws per capture election")
    p_run.add_argument("--load-shape", choices=LOAD_SHAPES, default=None,
                       help="arrival-rate modulator (constant, diurnal, flash)")
    p_run.add_argument("--key-skew", type=float, default=None,
                       help="Zipf exponent for request keys (0 = unkeyed)")
    p_run.add_argument("--out", type=Path, default=None,
                       help="also write the JSON record to this path")

    p_trace = sub.add_parser(
        "trace",
        help="run a churn scenario with end-to-end tracing and export the spans",
    )
    p_trace.add_argument("--preset", choices=sorted(PRESETS), default="smoke",
                         help="the churn regime to trace")
    p_trace.add_argument("--backend", choices=BACKENDS, default=None,
                         help="override the shard overlay (chord or kademlia)")
    p_trace.add_argument("--n", type=int, default=None, help="override the overlay size")
    p_trace.add_argument("--requests", type=int, default=None,
                         help="override offered requests")
    p_trace.add_argument("--rate", type=float, default=None, help="override arrival rate")
    p_trace.add_argument("--sample", default="all",
                         help="head-sampling policy: all, 1-in-<k> or slowest:<n>")
    p_trace.add_argument("--out-dir", type=Path, default=Path("traces"),
                         help="directory for trace.jsonl / trace.chrome.json / metrics.prom")
    p_trace.add_argument("--slowest", type=int, default=10,
                         help="slowest-request rows to print")

    p_flt = sub.add_parser(
        "faults",
        help="fault-injection subsystem: injectors, presets, retry policies",
    )
    flt_sub = p_flt.add_subparsers(dest="faults_command", required=True)
    flt_sub.add_parser("list", help="show the available injectors and outage presets")

    p_bench = sub.add_parser(
        "bench",
        help="run an artifact-producing benchmark without leaving the CLI",
    )
    bench_sub = p_bench.add_subparsers(dest="bench_command", required=True)
    p_cb = bench_sub.add_parser(
        "chord-batch",
        help="Chord lookup throughput: scalar h() loop vs the lockstep engine",
    )
    p_cb.add_argument("--quick", action="store_true", help="CI smoke configuration")
    p_cb.add_argument("--out", type=Path, default=None, help="JSON output path")
    p_cb.add_argument("--sizes", type=int, nargs="+", default=None,
                      help="override the ring sizes to measure")
    p_cb.add_argument("--k", type=int, default=None,
                      help="override lookups per batch")
    p_bk = bench_sub.add_parser(
        "backends",
        help="substrate comparison: the sampling workload on Chord vs Kademlia",
    )
    p_bk.add_argument("--quick", action="store_true", help="CI smoke configuration")
    p_bk.add_argument("--out", type=Path, default=None, help="JSON output path")
    p_bk.add_argument("--sizes", type=int, nargs="+", default=None,
                      help="override the overlay sizes to measure")
    p_bk.add_argument("--samples", type=int, default=None,
                      help="override draws per phase")
    p_sc = bench_sub.add_parser(
        "scale",
        help="decade scaling of the struct-of-arrays substrates: "
             "memory/node and lookups/sec from 1e4 to 1e6 (1e7 build-only)",
    )
    p_sc.add_argument("--quick", action="store_true", help="CI smoke configuration")
    p_sc.add_argument("--out", type=Path, default=None, help="JSON output path")
    p_sc.add_argument("--sizes", type=int, nargs="+", default=None,
                      help="override the serve decades to measure")
    p_sc.add_argument("--lookups", type=int, default=None,
                      help="override the serve batch size")
    p_as = bench_sub.add_parser(
        "async",
        help="mass failure on the async transport: message-level recovery "
             "time and per-hop RTT quantiles",
    )
    p_as.add_argument("--quick", action="store_true", help="CI smoke configuration")
    p_as.add_argument("--out", type=Path, default=None, help="JSON output path")
    p_as.add_argument("--n", type=int, default=None, help="override the overlay size")
    return parser


def _cmd_estimate(args) -> int:
    if args.n < 1 or args.vantages < 1:
        print("error: --n and --vantages must be positive", file=sys.stderr)
        return 2
    dht = IdealDHT.random(args.n, random.Random(args.seed))
    if args.vantages > 1:
        result = estimate_n_median(
            dht, vantages=args.vantages, c1=args.c1,
            rng=random.Random(args.seed + 1),
        )
    else:
        result = estimate_n(dht, c1=args.c1)
    print(f"true n         : {args.n}")
    print(f"n_hat          : {result.n_hat:.1f} (ratio {result.n_hat / args.n:.3f})")
    print(f"first estimate : {result.n_hat_1:.1f}")
    print(f"next-calls     : {result.hops}")
    print(f"exact (lapped) : {result.exact}")
    return 0


def _cmd_sample(args) -> int:
    if args.n < 1 or args.samples < 1:
        print("error: --n and --samples must be positive", file=sys.stderr)
        return 2
    try:
        dht = _build_backend_dht(args.backend, args.n, args.seed)
    except ValueError as exc:  # id space too small for --n
        print(f"error: {exc}", file=sys.stderr)
        return 2
    rng = random.Random(args.seed + 1)
    if args.batch:
        engine = BatchSampler(dht, rng=rng)
        print(f"n={args.n}  backend={args.backend}  n_hat={engine.params.n_hat:.1f}  "
              f"lambda={engine.params.lam:.3e}  walk_budget={engine.params.walk_budget}  "
              f"mode=batch")
        result = engine.sample_many_attributed(args.samples)
        shown = min(args.samples, 10)
        for i, peer in enumerate(result.peers[:shown]):
            print(f"sample {i}: peer {peer.peer_id:>6} point {peer.point:.6f}")
        if args.samples > shown:
            print(f"... {args.samples - shown} more")
        print(f"batch totals: trials {result.trials}  rounds {result.rounds}  "
              f"messages {result.cost.messages}  "
              f"messages/sample {result.cost.messages / args.samples:.1f}")
        return 0
    sampler = RandomPeerSampler(dht, rng=rng)
    print(f"n={args.n}  backend={args.backend}  n_hat={sampler.params.n_hat:.1f}  "
          f"lambda={sampler.params.lam:.3e}  walk_budget={sampler.params.walk_budget}")
    for i in range(args.samples):
        stats = sampler.sample_with_stats()
        print(f"sample {i}: peer {stats.peer.peer_id:>6} "
              f"point {stats.peer.point:.6f}  trials {stats.trials:>3}  "
              f"messages {stats.cost.messages:>5}")
    return 0


def _cmd_uniformity(args) -> int:
    if args.n < 2 or args.draws < args.n:
        print("error: need --n >= 2 and --draws >= --n", file=sys.stderr)
        return 2
    rng = random.Random(args.seed)
    dht = IdealDHT.random(args.n, rng)
    uniform = RandomPeerSampler(dht, rng=rng)
    naive = NaiveSampler(dht, rng)
    u_counts = Counter(uniform.sample().peer_id for _ in range(args.draws))
    n_counts = Counter(naive.sample().peer_id for _ in range(args.draws))
    u_chi = chi_square_uniform([u_counts.get(i, 0) for i in range(args.n)])
    n_chi = chi_square_uniform([n_counts.get(i, 0) for i in range(args.n)])
    print(f"{args.draws} draws over n={args.n} peers")
    print(f"king-saia : chi2 p={u_chi.p_value:.4f}  "
          f"max/min={max_min_ratio([u_counts.get(i, 0) + 1 for i in range(args.n)]):.1f}")
    print(f"naive h(U): chi2 p={n_chi.p_value:.3e}  "
          f"max/min={max_min_ratio([n_counts.get(i, 0) + 1 for i in range(args.n)]):.1f}")
    return 0


def _cmd_chord(args) -> int:
    if args.n < 1 or args.samples < 1:
        print("error: --n and --samples must be positive", file=sys.stderr)
        return 2
    if args.n > (1 << args.m):
        print("error: identifier space too small for --n", file=sys.stderr)
        return 2
    net = ChordNetwork.build(args.n, m=args.m, rng=random.Random(args.seed))
    dht = net.dht()
    sampler = RandomPeerSampler(dht, rng=random.Random(args.seed + 1))
    print(f"chord: n={args.n}, m={args.m}, ring correct={net.ring_is_correct()}")
    total_msgs = 0
    for i in range(args.samples):
        stats = sampler.sample_with_stats()
        total_msgs += stats.cost.messages
        print(f"sample {i}: node {stats.peer.peer_id:>8}  trials {stats.trials:>3}  "
              f"messages {stats.cost.messages:>5}")
    print(f"mean messages/sample: {total_msgs / args.samples:.1f}")
    return 0


def _cmd_serve(args) -> int:
    if args.n < 1 or args.shards < 1 or args.requests < 1:
        print("error: --n, --shards and --requests must be positive", file=sys.stderr)
        return 2
    if args.rate <= 0 or args.max_batch < 1 or args.max_wait < 0 or args.max_queue < 1:
        print("error: --rate must be positive, --max-batch/--max-queue at least 1, "
              "--max-wait non-negative", file=sys.stderr)
        return 2
    try:
        service = build_service(
            n=args.n,
            shards=args.shards,
            substrate=args.substrate,
            seed=args.seed,
            chord_m=args.chord_m,
            kad_bits=args.kad_bits,
            kad_k=args.kad_k,
            policy=args.policy,
            dispatch=args.dispatch,
            max_batch=args.max_batch,
            max_wait=args.max_wait,
            max_queue=args.max_queue,
        )
    except ValueError as exc:  # e.g. chord id space too small for --n
        print(f"error: {exc}", file=sys.stderr)
        return 2
    generator = build_load(
        service, rate=args.rate, total=args.requests, seed=args.seed
    )
    generator.start()
    service.run()
    s = service.summary()
    print(f"serve: n={args.n}/shard  shards={args.shards}  substrate={args.substrate}  "
          f"dispatch={args.dispatch}  policy={args.policy}")
    batching = (
        f"micro-batch: max_batch={args.max_batch}, max_wait={args.max_wait:g}"
        if args.dispatch == "batch"
        else "per-request dispatch"
    )
    print(f"offered {args.requests} requests at rate {args.rate:g} ({batching})")
    print(f"completed {s['completed']}  rejected {s['rejected']}  "
          f"elapsed {s['elapsed']:.1f}  throughput {s['throughput']:.3f} req/unit")
    for name in ("queue_latency", "service_latency", "total_latency"):
        lat = s["latency"][name]
        print(f"{name:>16}: mean {lat['mean']:.2f}  p50 {lat['p50']:.2f}  "
              f"p95 {lat['p95']:.2f}  p99 {lat['p99']:.2f}")
    bs = s["batch_size"]
    print(f"      batch_size: mean {bs['mean']:.1f}  p99 {bs['p99']:.0f}  "
          f"batches {bs['count']}")
    for shard_id, shard in s["shards"].items():
        print(f"shard {shard_id}: completed {shard['completed']:>6}  "
              f"rejected {shard['rejected']:>6}  batches {shard['batches']:>5}  "
              f"throughput {shard.get('throughput', 0.0):.3f}")
    return 0


def _run_fault_preset(args) -> int:
    """The outage arm of ``scenario run``: fault presets, recovery report."""
    churn_only = {
        "requests": args.requests,
        "rate": args.rate,
        "churn-rate": args.churn_rate,
        "crash-fraction": args.crash_fraction,
        "stabilize-interval": args.stabilize_interval,
        "adversary": args.adversary,
        "lie": args.lie,
        "committee-size": args.committee_size,
        "load-shape": args.load_shape,
        "key-skew": args.key_skew,
    }
    stray = sorted(flag for flag, value in churn_only.items() if value is not None)
    if stray:
        print(
            f"error: --{', --'.join(stray)} only apply to churn presets, "
            f"not the outage preset {args.preset!r}",
            file=sys.stderr,
        )
        return 2
    overrides = {
        key: value
        for key, value in (
            ("backend", args.backend),
            ("transport", args.transport),
            ("n", args.n),
            ("seed", args.seed),
        )
        if value is not None
    }
    try:
        spec = fault_preset(args.preset, **overrides)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_fault_scenario(spec)
    killed = result.population_start - result.population_after_fault
    print(f"fault scenario {spec.name} on {spec.backend}: n={spec.n}, "
          f"{spec.fault} ({killed} nodes lost)" if killed
          else f"fault scenario {spec.name} on {spec.backend}: n={spec.n}, "
          f"{spec.fault} (no nodes lost)")
    for phase in (result.baseline, result.outage, result.post):
        print(f"  {phase.phase:>8}: {phase.correct}/{phase.probes} correct, "
              f"{phase.wrong} wrong, {phase.failed} failed, "
              f"{phase.messages_per_probe:.1f} msgs/probe")
    rounds = "budget exhausted" if result.recovery_rounds is None else (
        f"{result.recovery_rounds} maintenance rounds")
    print(f"  recovery: {rounds}, {result.recovery_messages} repair messages, "
          f"outage error rate {result.outage_error_rate:.2f}, "
          f"outage msgs/probe x{result.msgs_inflation_outage:.2f} vs baseline")
    if spec.transport == "async":
        sim_time = ("n/a" if result.recovery_sim_time is None
                    else f"{result.recovery_sim_time:.1f}")
        hop = result.hop_latency or {}
        print(f"  async: recovery sim-time {sim_time}, hop RTT "
              f"p50 {hop.get('p50', float('nan')):.2f} / "
              f"p99 {hop.get('p99', float('nan')):.2f} "
              f"over {hop.get('count', 0)} deliveries")
    print(f"  recovered: {result.recovered}  (wall {result.wall_seconds:.2f}s)")
    if args.out is not None:
        write_bench_json(args.out, result.to_record())
        print(f"wrote {args.out}")
    return 0 if result.recovered else 1


def _cmd_scenario(args) -> int:
    if args.scenario_command == "list":
        for name in sorted(PRESETS):
            spec = PRESETS[name]
            regime = (
                f"churn {spec.churn_rate:g}/unit/shard, crash {spec.crash_fraction:g}, "
                f"stabilize every {spec.stabilize_interval:g}"
                if spec.churning
                else "no churn (static control)"
            )
            if spec.adversarial:
                regime = (
                    f"{spec.adv_fraction:.0%} Byzantine peers "
                    f"({spec.adv_strategy} lies)"
                )
            elif spec.load_shape != "constant" or spec.key_skew > 0:
                regime = (
                    f"{spec.load_shape} load x{1 + spec.shape_amplitude:g}, "
                    f"Zipf {spec.key_skew:g} keys"
                )
            print(f"{name:>14}: n={spec.n} x {spec.shards} shards, "
                  f"{spec.requests} requests at rate {spec.rate:g} -- {regime}")
        for name in sorted(FAULT_PRESETS):
            spec = FAULT_PRESETS[name]
            outage = (
                f"kill {spec.kill_fraction:.0%} ({spec.region})"
                if spec.fault == "mass-kill"
                else f"{spec.partition_groups}-way {spec.partition_mode} partition "
                     f"for {spec.partition_duration:g} time units"
            )
            print(f"{name:>14}: n={spec.n} on {spec.backend}, {outage} -- "
                  f"outage lab (time-to-recovery)")
        return 0
    if args.preset in FAULT_PRESETS:
        return _run_fault_preset(args)
    overrides = {
        key: value
        for key, value in (
            ("backend", args.backend),
            ("transport", args.transport),
            ("n", args.n),
            ("requests", args.requests),
            ("rate", args.rate),
            ("churn_rate", args.churn_rate),
            ("crash_fraction", args.crash_fraction),
            ("stabilize_interval", args.stabilize_interval),
            ("adv_fraction", args.adversary),
            ("adv_strategy", args.lie),
            ("committee_size", args.committee_size),
            ("load_shape", args.load_shape),
            ("key_skew", args.key_skew),
            # --seed is the CLI's global flag and, as in every other
            # subcommand, always applies -- it deliberately overrides
            # the preset's own seed (both default to 0 today).
            ("seed", args.seed),
        )
        if value is not None
    }
    try:
        spec = preset(args.preset, **overrides)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result = run_scenario(spec)
    results_table([result], title=f"scenario {spec.name}").show()
    print(f"sim time {result.sim_time:.1f}  wall {result.wall_seconds:.2f}s  "
          f"churn events {result.churn_events}  "
          f"rings recovered {sum(s.ring_correct_after_recovery for s in result.shards)}"
          f"/{spec.shards}")
    adv = result.adversary
    if adv is not None:
        committee = adv["committee"]
        empirical = committee["empirical_capture"]
        analytic = committee["analytic_capture"]
        print(f"adversary: {adv['byzantine_total']} Byzantine "
              f"({spec.adv_fraction:.0%}, {adv['strategy']} lies), "
              f"captured {adv['captured_draws']}/{adv['draws']} draws "
              f"({(adv['capture_rate'] or 0.0):.1%}); committee capture "
              f"{'n/a' if empirical is None else f'{empirical:.1%}'} empirical "
              f"vs {'n/a' if analytic is None else f'{analytic:.1%}'} "
              f"analytic-uniform over {committee['elections']} elections "
              f"of {committee['size']}")
    if result.truncated:
        print("warning: max_sim_time tripped before the load drained", file=sys.stderr)
    if args.out is not None:
        write_bench_json(args.out, results_record([result], seed=spec.seed))
        print(f"wrote {args.out}")
    # Under census/eclipse lies the rings may legitimately never verify
    # correct (that is the attack working), so an adversarial run
    # succeeds when it drains -- capture itself is the measurement.
    healthy = not result.truncated and (spec.adversarial or result.ring_recovered)
    return 0 if healthy else 1


def _cmd_trace(args) -> int:
    """Traced scenario run: spans to disk, critical path to the console."""
    try:
        policy = parse_policy(args.sample)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    overrides = {
        key: value
        for key, value in (
            ("backend", args.backend),
            ("n", args.n),
            ("requests", args.requests),
            ("rate", args.rate),
            ("seed", args.seed),
        )
        if value is not None
    }
    try:
        spec = preset(args.preset, **overrides)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    tracer = Tracer(policy)
    result = run_scenario(spec, tracer=tracer)
    results_table([result], title=f"traced scenario {spec.name}").show()
    report = analyze(tracer)
    critical_path_table(report).show()
    if report.hop_profiles:
        hop_table(report).show()
    if args.slowest > 0:
        slowest_table(report, args.slowest).show()
    s = tracer.summary()
    print(f"tracing: policy {s['policy']}  requests traced "
          f"{s['requests_traced']}/{s['requests_seen']}  "
          f"batches {s['batches']}  spans {s['spans']}")
    jsonl = write_jsonl(tracer, args.out_dir / "trace.jsonl")
    chrome = write_chrome_trace(tracer, args.out_dir / "trace.chrome.json")
    prom = args.out_dir / "metrics.prom"
    prom.write_text(prometheus_text(tracer.registries))
    print(f"wrote {jsonl}, {chrome}, {prom}")
    if result.truncated:
        print("warning: max_sim_time tripped before the load drained", file=sys.stderr)
    return 0 if (result.ring_recovered and not result.truncated) else 1


def _cmd_faults(args) -> int:
    if args.faults_command == "list":
        print("injectors (compose them in a FaultPlan; see repro.faults):")
        for name, (cls, summary) in sorted(INJECTORS.items()):
            print(f"  {name:>14}: {summary}  [{cls.__name__}]")
        print("outage presets (run with: repro scenario run --preset NAME):")
        for name in sorted(FAULT_PRESETS):
            spec = FAULT_PRESETS[name]
            outage = (
                f"kill {spec.kill_fraction:.0%} of n={spec.n} in one instant"
                if spec.fault == "mass-kill"
                else f"split n={spec.n} into {spec.partition_groups} groups "
                     f"({spec.partition_mode}) for {spec.partition_duration:g} "
                     f"time units, then heal"
            )
            print(f"  {name:>14}: {outage}; retry {spec.retry_attempts} attempts, "
                  f"base {spec.retry_base_delay:g}, factor {spec.retry_factor:g}, "
                  f"jitter {spec.retry_jitter:g}")
        return 0
    raise AssertionError(f"unhandled faults subcommand {args.faults_command!r}")


def _cmd_bench(args) -> int:
    # Benchmarks own their argument handling; rebuild their argv so the
    # CLI stays a thin launcher and the flags cannot drift apart.
    argv = ["--seed", str(args.seed)]
    if args.quick:
        argv.append("--quick")
    if args.out is not None:
        argv += ["--out", str(args.out)]
    if getattr(args, "sizes", None):
        argv += ["--sizes", *map(str, args.sizes)]
    if args.bench_command == "async":
        from .bench import async_net

        if args.n is not None:
            argv += ["--n", str(args.n)]
        return async_net.main(argv)
    if args.bench_command == "backends":
        from .bench import backends

        if args.samples is not None:
            argv += ["--samples", str(args.samples)]
        return backends.main(argv)
    if args.bench_command == "scale":
        from .bench import scale

        if args.lookups is not None:
            argv += ["--lookups", str(args.lookups)]
        return scale.main(argv)
    from .bench import chord_batch

    if args.k is not None:
        argv += ["--k", str(args.k)]
    return chord_batch.main(argv)


_COMMANDS = {
    "estimate": _cmd_estimate,
    "sample": _cmd_sample,
    "uniformity": _cmd_uniformity,
    "chord": _cmd_chord,
    "serve": _cmd_serve,
    "scenario": _cmd_scenario,
    "trace": _cmd_trace,
    "faults": _cmd_faults,
    "bench": _cmd_bench,
}


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    raise SystemExit(main())
