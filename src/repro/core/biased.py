"""Biased peer sampling -- the paper's third open problem.

Section 4 asks: "In some applications, we may want to choose a peer with
a biased probability ... Are there efficient algorithms to choose a
random peer with specifically biased probabilities?"

Given the exact uniform sampler, a clean answer is rejection sampling:
draw a uniform peer ``p``, accept with probability
``weight(p) / weight_bound``.  Accepted peers are distributed
proportionally to ``weight``; the expected number of uniform draws is
``weight_bound * n / sum(weight)``, so the overhead is the ratio between
the bound and the mean weight.  The weight may depend on anything the
caller can evaluate from a :class:`~repro.dht.api.PeerRef` -- including
its ring position, enabling the paper's inverse-distance example via
:func:`inverse_distance_weight`.
"""

from __future__ import annotations

import random
from collections.abc import Callable
from dataclasses import dataclass

from ..dht.api import DHT, PeerRef
from .errors import SamplingError
from .intervals import clockwise_distance
from .sampler import RandomPeerSampler

__all__ = ["BiasedSampleStats", "BiasedPeerSampler", "inverse_distance_weight"]


@dataclass(frozen=True)
class BiasedSampleStats:
    """Accounting for one biased sample."""

    peer: PeerRef
    uniform_draws: int
    acceptance_probability: float


class BiasedPeerSampler:
    """Sample peers with probability proportional to ``weight(peer)``.

    Parameters
    ----------
    dht:
        Substrate passed through to the inner uniform sampler.
    weight:
        Non-negative weight function over peers.  Values above
        ``weight_bound`` are a contract violation and raise.
    weight_bound:
        A (preferably tight) upper bound on ``weight``; the expected
        number of uniform draws per biased sample scales with it.
    max_rejections:
        Safety cap on uniform draws per sample.
    kwargs:
        Forwarded to :class:`~repro.core.sampler.RandomPeerSampler`
        (``n_hat``, ``rng``, tuning constants...).
    """

    def __init__(
        self,
        dht: DHT,
        weight: Callable[[PeerRef], float],
        weight_bound: float,
        *,
        rng: random.Random | None = None,
        max_rejections: int = 100_000,
        **kwargs,
    ):
        if weight_bound <= 0.0:
            raise ValueError(f"weight_bound must be positive, got {weight_bound!r}")
        if max_rejections < 1:
            raise ValueError("max_rejections must be at least 1")
        self._weight = weight
        self._bound = weight_bound
        self._rng = rng if rng is not None else random.Random()
        self._max_rejections = max_rejections
        self._uniform = RandomPeerSampler(dht, rng=self._rng, **kwargs)

    @property
    def uniform_sampler(self) -> RandomPeerSampler:
        """The inner exact-uniform sampler (shares the DHT cost meter)."""
        return self._uniform

    def sample_with_stats(self) -> BiasedSampleStats:
        """Draw one peer with probability proportional to its weight."""
        for draw in range(1, self._max_rejections + 1):
            peer = self._uniform.sample()
            w = self._weight(peer)
            if w < 0.0:
                raise ValueError(f"weight of peer {peer.peer_id} is negative ({w!r})")
            if w > self._bound * (1.0 + 1e-12):
                raise ValueError(
                    f"weight {w!r} of peer {peer.peer_id} exceeds the declared "
                    f"bound {self._bound!r}; biased sampling would be wrong"
                )
            accept = w / self._bound
            if self._rng.random() < accept:
                return BiasedSampleStats(
                    peer=peer, uniform_draws=draw, acceptance_probability=accept
                )
        raise SamplingError(
            f"no acceptance in {self._max_rejections} uniform draws; the "
            "weight bound is probably far above the typical weight"
        )

    def sample(self) -> PeerRef:
        """Draw one peer with probability proportional to its weight."""
        return self.sample_with_stats().peer

    def sample_many(self, k: int) -> list[PeerRef]:
        """Draw ``k`` independent weighted samples (with replacement)."""
        if k < 0:
            raise ValueError("k must be non-negative")
        return [self.sample() for _ in range(k)]


def inverse_distance_weight(
    origin: float, floor: float = 1e-3
) -> tuple[Callable[[PeerRef], float], float]:
    """The paper's example bias: probability inversely proportional to
    clockwise distance from ``origin`` on the unit circle.

    Returns ``(weight, bound)`` ready for :class:`BiasedPeerSampler`.
    ``floor`` clips the distance from below so the weight (and hence the
    required bound ``1/floor``) stays finite for peers arbitrarily close
    to ``origin``.
    """
    if not 0.0 < floor < 1.0:
        raise ValueError("floor must be in (0, 1)")

    def weight(peer: PeerRef) -> float:
        return 1.0 / max(clockwise_distance(origin, peer.point), floor)

    return weight, 1.0 / floor
