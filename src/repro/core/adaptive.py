"""Churn-aware sampling: keep the size estimate fresh automatically.

The sampler's guarantees need ``n_hat >= gamma_1 * n``; under churn a
once-computed estimate drifts.  :class:`AdaptiveSampler` wraps
:class:`~repro.core.sampler.RandomPeerSampler` and re-runs Estimate-n

- after a configurable number of samples (steady-state refresh), and
- immediately when a sample needs far more trials than the closed-form
  expectation (the operational symptom of ``n`` having outgrown
  ``n_hat``: per-trial success probability is ``n * lambda``, so too
  *few* retries is never a problem, while population shrink merely
  wastes retries until the next refresh catches it).

This is engineering on top of the paper (it only says the estimate
exists); the policy keeps the exactness precondition holding across
membership change without coordination.
"""

from __future__ import annotations

import random

from ..dht.api import DHT, PeerRef
from .errors import SamplingError
from .estimate import DEFAULT_C1, estimate_n
from .sampler import GAMMA1, LAMBDA_SLACK, RandomPeerSampler, SampleStats

__all__ = ["AdaptiveSampler"]


class AdaptiveSampler:
    """A self-refreshing uniform sampler for long-lived, churny networks.

    Parameters
    ----------
    dht:
        The substrate; must reflect membership changes (as the Chord
        adapter does).
    refresh_every:
        Re-estimate after this many successful samples.
    trial_alarm_factor:
        Re-estimate (and retry once) when one sample consumes more than
        ``factor * lambda_slack / gamma1`` trials -- several times the
        expected retry count for a sound estimate.
    """

    def __init__(
        self,
        dht: DHT,
        *,
        refresh_every: int = 256,
        trial_alarm_factor: float = 4.0,
        c1: float = DEFAULT_C1,
        rng: random.Random | None = None,
        **sampler_kwargs,
    ):
        if refresh_every < 1:
            raise ValueError("refresh_every must be positive")
        if trial_alarm_factor <= 1.0:
            raise ValueError("trial_alarm_factor must exceed 1")
        self._dht = dht
        self._c1 = c1
        self._rng = rng if rng is not None else random.Random()
        self._refresh_every = refresh_every
        self._sampler_kwargs = sampler_kwargs
        gamma1 = sampler_kwargs.get("gamma1", GAMMA1)
        slack = sampler_kwargs.get("lambda_slack", LAMBDA_SLACK)
        self._trial_alarm = trial_alarm_factor * slack / gamma1
        self.refreshes = 0
        self._since_refresh = 0
        self._inner = self._build()

    def _build(self) -> RandomPeerSampler:
        self.refreshes += 1
        self._since_refresh = 0
        n_hat = estimate_n(self._dht, c1=self._c1).n_hat
        return RandomPeerSampler(
            self._dht, n_hat, rng=self._rng, **self._sampler_kwargs
        )

    @property
    def n_hat(self) -> float:
        """The estimate currently in use."""
        return self._inner.params.n_hat

    def refresh(self) -> None:
        """Force a fresh Estimate-n now."""
        self._inner = self._build()

    def sample_with_stats(self) -> SampleStats:
        """Draw one uniform peer, refreshing the estimate as needed."""
        if self._since_refresh >= self._refresh_every:
            self.refresh()
        try:
            stats = self._inner.sample_with_stats()
        except SamplingError:
            # Estimate so stale that sampling failed outright: re-estimate
            # and give the fresh parameters one chance before propagating.
            self.refresh()
            stats = self._inner.sample_with_stats()
        self._since_refresh += 1
        if stats.trials > self._trial_alarm:
            # Suspiciously many retries: refresh opportunistically so the
            # *next* samples run at the proper cost.
            self.refresh()
        return stats

    def sample(self) -> PeerRef:
        """Draw one uniform peer."""
        return self.sample_with_stats().peer

    def sample_many(self, k: int) -> list[PeerRef]:
        """Draw ``k`` samples (with replacement), refreshing as needed."""
        if k < 0:
            raise ValueError("k must be non-negative")
        return [self.sample() for _ in range(k)]
