"""The paper's contribution: Estimate-n and Choose-Random-Peer.

See :mod:`repro.core.sampler` for the main algorithm (Figure 1),
:mod:`repro.core.estimate` for size estimation (Section 2),
:mod:`repro.core.assignment` for the exact uniformity analysis behind
Theorem 6, and :mod:`repro.core.properties` for the Lemma 1/2/4 and
Theorem 8 checkers.
"""

from .adaptive import AdaptiveSampler
from .assignment import AssignmentReport, compute_assignment, trial_on_circle
from .biased import BiasedPeerSampler, BiasedSampleStats, inverse_distance_weight
from .engine import BatchSampler, BatchSampleResult
from .errors import EstimationError, ReproError, SamplingError
from .estimate import DEFAULT_C1, EstimateResult, estimate_n, estimate_n_median
from .intervals import Interval, SortedCircle, clockwise_distance, normalize
from .properties import (
    ArcExtremes,
    Lemma1Report,
    Lemma2Report,
    Lemma4Report,
    arc_extremes,
    check_lemma1,
    check_lemma2,
    check_lemma4,
)
from .sampler import (
    GAMMA1,
    GAMMA2,
    LAMBDA_SLACK,
    RandomPeerSampler,
    SamplerParams,
    SampleStats,
    TrialOutcome,
    TrialResult,
    choose_random_peer,
)

__all__ = [
    "AdaptiveSampler",
    "AssignmentReport",
    "BatchSampler",
    "BatchSampleResult",
    "compute_assignment",
    "trial_on_circle",
    "BiasedPeerSampler",
    "BiasedSampleStats",
    "inverse_distance_weight",
    "EstimationError",
    "ReproError",
    "SamplingError",
    "DEFAULT_C1",
    "EstimateResult",
    "estimate_n",
    "estimate_n_median",
    "Interval",
    "SortedCircle",
    "clockwise_distance",
    "normalize",
    "ArcExtremes",
    "Lemma1Report",
    "Lemma2Report",
    "Lemma4Report",
    "arc_extremes",
    "check_lemma1",
    "check_lemma2",
    "check_lemma4",
    "GAMMA1",
    "GAMMA2",
    "LAMBDA_SLACK",
    "RandomPeerSampler",
    "SamplerParams",
    "SampleStats",
    "TrialOutcome",
    "TrialResult",
    "choose_random_peer",
]
