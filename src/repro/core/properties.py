"""Checkers for the high-probability ring properties the proofs rely on.

Theorem 6 holds for any base hash function whose induced ring satisfies
properties (1)-(3); each lemma below asserts one of them:

- property (1), Lemma 1: every predecessor arc ``d`` obeys
  ``ln n - ln ln n - 2 <= ln(1/d) <= 3 ln n``;
- property (2), Lemma 2: anchored intervals holding ``Theta(log n)``
  peers have length ``Theta(log n / n)`` within explicit constants;
- property (3), Lemma 4: any ``6 ln n`` consecutive maximally peerless
  intervals have total length at least ``(ln n) / n``.

Theorem 8 (appendix) pins the extreme arcs: the shortest is
``Theta(1/n^2)`` and (via [16]) the longest is ``Theta(log n / n)``.

Each checker returns a small report object rather than a bare bool so
tests and benchmarks can show *how close* an instance came to violating
a property.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .intervals import SortedCircle

__all__ = [
    "Lemma1Report",
    "check_lemma1",
    "Lemma2Report",
    "check_lemma2",
    "Lemma4Report",
    "check_lemma4",
    "ArcExtremes",
    "arc_extremes",
]


@dataclass(frozen=True)
class Lemma1Report:
    """Property (1): bounds on ``ln(1/arc)`` for every predecessor arc."""

    n: int
    lower_bound: float
    upper_bound: float
    min_log_inv_arc: float
    max_log_inv_arc: float
    violations: int

    @property
    def holds(self) -> bool:
        return self.violations == 0


def check_lemma1(circle: SortedCircle) -> Lemma1Report:
    """Check ``ln n - ln ln n - 2 <= ln(1/d(l(p), l(next(p)))) <= 3 ln n``."""
    n = len(circle)
    if n < 2:
        raise ValueError("Lemma 1 needs at least two peers")
    log_n = math.log(n)
    lower = log_n - math.log(log_n) - 2.0 if n >= 2 else -math.inf
    upper = 3.0 * log_n
    logs = [math.log(1.0 / a) for a in circle.arcs() if a > 0.0]
    violations = sum(1 for v in logs if not lower <= v <= upper)
    violations += sum(1 for a in circle.arcs() if a == 0.0)  # collision => d=0
    return Lemma1Report(
        n=n,
        lower_bound=lower,
        upper_bound=upper,
        min_log_inv_arc=min(logs) if logs else math.inf,
        max_log_inv_arc=max(logs) if logs else math.inf,
        violations=violations,
    )


@dataclass(frozen=True)
class Lemma2Report:
    """Property (2): peer counts vs lengths of anchored intervals."""

    n: int
    count_lower: float  # C * alpha1 * log n
    count_upper: float  # C * alpha2 * log n
    length_lower: float  # C * (1 - eps) * alpha1 * log n / n
    length_upper: float  # C * (1 + eps) * alpha2 * log n / n
    violations: int

    @property
    def holds(self) -> bool:
        return self.violations == 0


def check_lemma2(
    circle: SortedCircle,
    alpha1: float = 1.0,
    alpha2: float = 6.0,
    eps: float = 0.5,
    big_c: float = 1.0,
) -> Lemma2Report:
    """Check property (2) exhaustively over all anchored intervals.

    An anchored interval with anchor ``p_i`` containing exactly ``c``
    non-anchor peers has length anywhere in ``[d_i(c), d_i(c+1))`` where
    ``d_i(k)`` is the distance from ``p_i`` to its ``k``-th successor.  So
    the property fails at anchor ``i`` and count ``c`` in range iff
    ``d_i(c) < length_lower`` or ``d_i(c+1) > length_upper`` (lengths
    arbitrarily close to ``d_i(c+1)`` are achievable).
    """
    n = len(circle)
    if n < 2:
        raise ValueError("Lemma 2 needs at least two peers")
    if not 0.0 < alpha1 < alpha2:
        raise ValueError("need 0 < alpha1 < alpha2")
    log_n = math.log(n)
    count_lo = big_c * alpha1 * log_n
    count_hi = big_c * alpha2 * log_n
    len_lo = big_c * (1.0 - eps) * alpha1 * log_n / n
    len_hi = big_c * (1.0 + eps) * alpha2 * log_n / n

    lo_c = int(math.floor(count_lo)) + 1  # counts strictly greater than count_lo
    hi_c = int(math.ceil(count_hi)) - 1  # counts strictly less than count_hi
    hi_c = min(hi_c, n - 1)  # an anchored interval holds at most n-1 others

    violations = 0
    if lo_c <= hi_c:
        arcs = circle.arcs()
        for i in range(n):
            dist = 0.0  # distance from anchor i to its k-th successor
            for k in range(1, hi_c + 2):
                dist += arcs[(i + k) % n]
                if lo_c <= k <= hi_c and dist < len_lo:
                    violations += 1
                if lo_c <= k - 1 <= hi_c and dist > len_hi:
                    violations += 1
    return Lemma2Report(
        n=n,
        count_lower=count_lo,
        count_upper=count_hi,
        length_lower=len_lo,
        length_upper=len_hi,
        violations=violations,
    )


@dataclass(frozen=True)
class Lemma4Report:
    """Property (3): window sums of consecutive maximally peerless intervals."""

    n: int
    window: int  # ceil(6 ln n)
    bound: float  # (ln n) / n
    min_window_sum: float
    violations: int

    @property
    def holds(self) -> bool:
        return self.violations == 0


def check_lemma4(circle: SortedCircle) -> Lemma4Report:
    """Check that every ``ceil(6 ln n)`` consecutive arcs sum to >= ``ln n / n``.

    The maximally peerless intervals are exactly the predecessor arcs, so
    this is a circular sliding-window minimum over ``arcs()``.  When the
    window reaches ``n`` or more it spans the whole circle (sum >= 1) and
    the property is vacuous.
    """
    n = len(circle)
    if n < 2:
        raise ValueError("Lemma 4 needs at least two peers")
    window = max(1, math.ceil(6.0 * math.log(n)))
    bound = math.log(n) / n
    arcs = circle.arcs()
    if window >= n:
        return Lemma4Report(
            n=n, window=window, bound=bound, min_window_sum=1.0, violations=0
        )
    # Circular sliding window of fixed size `window`.
    current = math.fsum(arcs[:window])
    min_sum = current
    violations = 1 if current < bound else 0
    for start in range(1, n):
        current += arcs[(start + window - 1) % n] - arcs[start - 1]
        if current < min_sum:
            min_sum = current
        if current < bound:
            violations += 1
    return Lemma4Report(
        n=n, window=window, bound=bound, min_window_sum=min_sum, violations=violations
    )


@dataclass(frozen=True)
class ArcExtremes:
    """Theorem 8 quantities: extreme arcs and their theory scales."""

    n: int
    shortest: float
    longest: float
    shortest_scale: float  # 1 / n^2
    longest_scale: float  # ln n / n

    @property
    def shortest_ratio(self) -> float:
        """``shortest / (1/n^2)`` -- Theta(1) under Theorem 8."""
        return self.shortest / self.shortest_scale

    @property
    def longest_ratio(self) -> float:
        """``longest / (ln n / n)`` -- Theta(1) under [16]."""
        return self.longest / self.longest_scale

    @property
    def naive_bias_ratio(self) -> float:
        """How much likelier the naive heuristic picks the luckiest peer
        over the unluckiest: ``longest / shortest = Theta(n log n)``."""
        return self.longest / self.shortest if self.shortest > 0 else math.inf


def arc_extremes(circle: SortedCircle) -> ArcExtremes:
    """Extreme predecessor arcs of one ring instance."""
    n = len(circle)
    if n < 2:
        raise ValueError("arc extremes need at least two peers")
    arcs = circle.arcs()
    return ArcExtremes(
        n=n,
        shortest=min(arcs),
        longest=max(arcs),
        shortest_scale=1.0 / (n * n),
        longest_scale=math.log(n) / n,
    )
