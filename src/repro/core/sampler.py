"""Choose-Random-Peer (Figure 1 of the paper): exact uniform peer sampling.

The circle is implicitly partitioned so that every peer owns intervals of
total measure exactly ``lambda = 1 / (7 n')`` where ``n' = n_hat / gamma_1``
upper-bounds ``n`` w.h.p.  Each *trial* draws ``s`` uniform on ``(0, 1]``:

- if the interval from ``s`` to ``l(h(s))`` is *small* (< lambda), the
  trial succeeds with ``h(s)`` -- that peer's private lambda-sliver
  directly counterclockwise of its point;
- otherwise the algorithm walks clockwise via ``next`` accumulating
  ``T = d(s, .) - lambda * (peers passed)``, returning the first peer at
  which ``T <= 0`` -- a supplementary interval donated by the long
  peerless arcs behind it;
- if ``T`` stays positive for ``ceil(6 ln n')`` hops, ``s`` fell in
  unassigned slack and the trial fails.

Failed trials are retried with fresh randomness; successes are exactly
uniform over peers (Theorem 6) and the expected number of trials is at
most ``7 n' / n = O(1)`` (Theorem 7).

Interpretation note (see DESIGN.md): the paper's text sets
``lambda = 1/(7 n_hat)`` but immediately claims ``lambda <= 1/(7n)``,
which requires dividing by the *upper* bound ``n'``; we implement
``lambda = 1/(7 n')``.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass

from ..dht.api import DHT, CostSnapshot, PeerRef, PeerUnreachableError
from .errors import SamplingError
from .estimate import DEFAULT_C1, estimate_n
from .intervals import clockwise_distance

__all__ = [
    "TrialOutcome",
    "TrialResult",
    "SampleStats",
    "SamplerParams",
    "RandomPeerSampler",
    "choose_random_peer",
    "GAMMA1",
    "GAMMA2",
    "LAMBDA_SLACK",
]

#: Lower/upper approximation constants of Lemma 3: w.h.p.
#: ``GAMMA1 * n <= n_hat <= GAMMA2 * n``.
GAMMA1 = 2.0 / 7.0
GAMMA2 = 6.0

#: The paper's ``7`` in ``lambda = 1 / (7 n')``.  Larger slack shortens
#: walks but lowers per-trial success probability (ablated in bench E6).
LAMBDA_SLACK = 7.0


class TrialOutcome(enum.Enum):
    """How a single trial of Choose-Random-Peer ended."""

    SMALL_HIT = "small-hit"  # line 2: I(s, l(h(s))] was small
    WALK_HIT = "walk-hit"  # line 3: T went non-positive during the walk
    EXHAUSTED = "exhausted"  # walk budget spent with T still positive


@dataclass(frozen=True, slots=True)
class TrialResult:
    """One deterministic trial: the drawn point, outcome, and walk length."""

    s: float
    outcome: TrialOutcome
    peer: PeerRef | None
    walk_hops: int


def _trial_from_first(dht: DHT, lam: float, walk_budget: int, s: float, first: PeerRef) -> TrialResult:
    """Figure 1 for point ``s`` given an already-resolved ``first = h(s)``.

    Shared by the scalar :meth:`RandomPeerSampler.trial` and the batch
    engine's per-call fallback path, so both run byte-identical float
    arithmetic and cannot drift apart.
    """
    arc = clockwise_distance(s, first.point)
    if arc < lam:  # line 2: the interval I(s, l(h(s))] is SMALL
        return TrialResult(s=s, outcome=TrialOutcome.SMALL_HIT, peer=first, walk_hops=0)

    t_value = arc - lam
    hops = 0
    for _ in range(walk_budget):
        nxt = dht.next(first)
        hops += 1
        step = clockwise_distance(first.point, nxt.point)
        if nxt.peer_id == first.peer_id:
            step = 1.0  # a self-successor means a full lap of the circle
        t_value += step - lam
        if t_value <= 0.0:
            return TrialResult(s=s, outcome=TrialOutcome.WALK_HIT, peer=nxt, walk_hops=hops)
        first = nxt
    return TrialResult(s=s, outcome=TrialOutcome.EXHAUSTED, peer=None, walk_hops=hops)


@dataclass(frozen=True)
class SampleStats:
    """Accounting for one successful sample (possibly after retries)."""

    peer: PeerRef
    trials: int
    outcome: TrialOutcome
    walk_hops_total: int
    cost: CostSnapshot


@dataclass(frozen=True, slots=True)
class SamplerParams:
    """Resolved parameters of the sampler, derived from ``n_hat``.

    ``lam`` is the per-peer measure; ``walk_budget`` the ``ceil(6 ln n')``
    hop cap of Figure 1.
    """

    n_hat: float
    n_prime: float
    lam: float
    walk_budget: int

    @classmethod
    def from_estimate(
        cls,
        n_hat: float,
        gamma1: float = GAMMA1,
        lambda_slack: float = LAMBDA_SLACK,
    ) -> "SamplerParams":
        if n_hat < 1.0:
            raise ValueError(f"n_hat must be >= 1, got {n_hat!r}")
        if not 0.0 < gamma1 <= 1.0:
            raise ValueError(f"gamma1 must be in (0, 1], got {gamma1!r}")
        if lambda_slack <= 1.0:
            raise ValueError(f"lambda_slack must exceed 1, got {lambda_slack!r}")
        n_prime = n_hat / gamma1
        lam = 1.0 / (lambda_slack * n_prime)
        walk_budget = max(1, math.ceil(6.0 * math.log(max(n_prime, math.e))))
        return cls(n_hat=n_hat, n_prime=n_prime, lam=lam, walk_budget=walk_budget)


class RandomPeerSampler:
    """Uniform peer sampling over any :class:`~repro.dht.api.DHT`.

    Parameters
    ----------
    dht:
        The substrate providing ``h``/``next``.
    n_hat:
        A constant-factor size estimate.  When omitted, Estimate-n is run
        once from ``dht.any_peer()`` (costing ``O(log n)`` messages).
    gamma1, lambda_slack, c1:
        Tuning constants; the defaults are the paper's.
    rng:
        Source of the trial points ``s``; defaults to a fresh
        ``random.Random()``.
    max_trials:
        Hard cap on rejection-sampling retries before
        :class:`~repro.core.errors.SamplingError` is raised.  The success
        probability per trial is at least ``n * lam >= gamma1 / (7 gamma2)``
        w.h.p., so the default of 10_000 is astronomically safe.
    """

    def __init__(
        self,
        dht: DHT,
        n_hat: float | None = None,
        *,
        gamma1: float = GAMMA1,
        lambda_slack: float = LAMBDA_SLACK,
        c1: float = DEFAULT_C1,
        rng: random.Random | None = None,
        max_trials: int = 10_000,
    ):
        self._dht = dht
        self._rng = rng if rng is not None else random.Random()
        self._gamma1 = gamma1
        self._lambda_slack = lambda_slack
        self._c1 = c1
        if n_hat is None:
            n_hat = estimate_n(dht, c1=c1).n_hat
        self.params = SamplerParams.from_estimate(
            n_hat, gamma1=gamma1, lambda_slack=lambda_slack
        )
        if max_trials < 1:
            raise ValueError("max_trials must be at least 1")
        self._max_trials = max_trials
        self._engine = None  # lazily-built BatchSampler for bulk substrates
        #: Trials lost to transient peer unreachability (see
        #: :meth:`sample_with_stats`); nonzero only on churning overlays.
        self.stale_trials = 0

    # -- parameter lifecycle ----------------------------------------------

    def refresh(self, n_hat: float | None = None) -> SamplerParams:
        """Re-derive sampling parameters from a fresh size estimate.

        On a *dynamic* network the construction-time ``n_hat`` goes stale
        as peers join and leave; a stale estimate inflates trial counts
        (population grew: walk budget too short) or walk lengths
        (population shrank: lambda too small).  Re-runs Estimate-n
        against the substrate (or adopts an explicit ``n_hat``) and
        rebuilds :attr:`params`; the cached batch engine is dropped so it
        rebuilds against the new parameters.  Returns the new params.
        """
        if n_hat is None:
            n_hat = estimate_n(self._dht, c1=self._c1).n_hat
        self.params = SamplerParams.from_estimate(
            n_hat, gamma1=self._gamma1, lambda_slack=self._lambda_slack
        )
        self._engine = None
        return self.params

    # -- the deterministic inner trial (Figure 1) -------------------------

    def trial(self, s: float) -> TrialResult:
        """Run Figure 1 once for the given point ``s`` (no retries).

        Exposed separately so tests and the exact-assignment analysis can
        drive the deterministic part of the algorithm directly.
        """
        return _trial_from_first(
            self._dht, self.params.lam, self.params.walk_budget, s, self._dht.h(s)
        )

    # -- public sampling API ----------------------------------------------

    def sample_with_stats(self) -> SampleStats:
        """Draw one uniform peer, returning full trial/cost accounting.

        A trial that dies of transient peer unreachability (a crash
        mid-walk on a churning overlay) counts as a failed trial and is
        redrawn, mirroring the batch engine's fallback path; only the
        trial-budget exhaustion escalates to
        :class:`~repro.core.errors.SamplingError`.
        """
        before = self._dht.cost.snapshot()
        walk_total = 0
        for attempt in range(1, self._max_trials + 1):
            s = 1.0 - self._rng.random()  # uniform on (0, 1]
            try:
                result = self.trial(s)
            except PeerUnreachableError:
                self.stale_trials += 1
                continue
            walk_total += result.walk_hops
            if result.peer is not None:
                return SampleStats(
                    peer=result.peer,
                    trials=attempt,
                    outcome=result.outcome,
                    walk_hops_total=walk_total,
                    cost=self._dht.cost.snapshot() - before,
                )
        raise SamplingError(
            f"no assigned point found in {self._max_trials} trials "
            f"(n_hat={self.params.n_hat:.3g}); the size estimate is likely stale"
        )

    def sample(self) -> PeerRef:
        """Draw one peer uniformly at random from the DHT."""
        return self.sample_with_stats().peer

    def _batch_engine(self):
        """The :class:`~repro.core.engine.BatchSampler` for bulk substrates.

        Built lazily (sharing this sampler's params, rng and trial cap)
        and only when the substrate satisfies
        :class:`~repro.dht.api.BulkDHT`; returns ``None`` otherwise so
        callers keep the per-call path.
        """
        if self._engine is None:
            from ..dht.api import BulkDHT
            from .engine import BatchSampler

            if isinstance(self._dht, BulkDHT):
                self._engine = BatchSampler(
                    self._dht,
                    params=self.params,
                    rng=self._rng,
                    max_trials=self._max_trials,
                )
        return self._engine

    def sample_many(self, k: int) -> list[PeerRef]:
        """Draw ``k`` independent uniform samples (with replacement).

        On a bulk-capable substrate this delegates to the vectorized
        batch engine (same semantics, one meter charge per round); on
        per-call substrates it loops :meth:`sample`.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        engine = self._batch_engine()
        if engine is not None:
            return engine.sample_many(k)
        return [self.sample() for _ in range(k)]

    def sample_distinct(self, k: int, max_draws: int | None = None) -> list[PeerRef]:
        """Draw ``k`` *distinct* peers, uniform over k-subsets.

        Implemented by rejecting repeats, so the result is a uniformly
        random k-subset (sequential simple random sampling).  Expected
        draws are ``k`` plus a coupon-collector correction that stays
        small while ``k`` is well below ``n``.  Raises
        :class:`~repro.core.errors.SamplingError` if ``max_draws``
        (default ``50 k + 50``) pass without finding ``k`` distinct
        peers -- the symptom of requesting ``k > n``.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        engine = self._batch_engine()
        if engine is not None:
            return engine.sample_distinct(k, max_draws=max_draws)
        cap = max_draws if max_draws is not None else 50 * k + 50
        chosen: dict[int, PeerRef] = {}
        draws = 0
        while len(chosen) < k:
            if draws >= cap:
                raise SamplingError(
                    f"only {len(chosen)} distinct peers after {draws} draws; "
                    f"is k={k} larger than the network?"
                )
            peer = self.sample()
            draws += 1
            chosen.setdefault(peer.peer_id, peer)
        return list(chosen.values())


def choose_random_peer(
    dht: DHT,
    n_hat: float | None = None,
    rng: random.Random | None = None,
    **kwargs,
) -> PeerRef:
    """One-shot convenience wrapper around :class:`RandomPeerSampler`.

    Prefer constructing a sampler once and reusing it when drawing many
    samples: the size estimate is then paid for a single time.
    """
    return RandomPeerSampler(dht, n_hat, rng=rng, **kwargs).sample()
