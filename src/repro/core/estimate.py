"""Estimate-n (Section 2 of the paper): size estimation from one vantage peer.

The algorithm estimates the network size ``n`` to within a constant
multiplicative factor using only ``next`` hops and arc-length arithmetic:

1. ``n_hat_1 <- 1 / d(l(p), l(next(p)))`` -- by Lemma 1 this is within a
   constant *exponent* of ``n`` w.h.p.;
2. ``s <- c1 * log(n_hat_1)`` -- a hop budget of ``Theta(log n)``;
3. ``t <- d(l(p), l(next^(s)(p)))`` -- by Lemma 2, ``s`` consecutive arcs
   span ``Theta(s / n)`` w.h.p.;
4. return ``n_hat_2 <- s / t``.

Lemma 3: with probability at least ``1 - 2/n`` the result is a
``(2/7 - eps, 6 + eps)`` approximation of ``n`` for ``c1`` and ``n``
large enough.

Implementation notes (recorded in DESIGN.md):

- ``s`` is used as a hop count, so we take ``s = max(1, ceil(c1 * ln(n_hat_1)))``
  (natural log, as in the paper's analysis).
- If the walk returns to the vantage peer before spending ``s`` hops we
  have lapped the whole ring and know ``n`` exactly; we return that exact
  count.  This only triggers when ``s >= n`` (tiny rings), where the
  paper's estimate would otherwise be distorted by wraparound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..dht.api import DHT, PeerRef
from .errors import EstimationError
from .intervals import clockwise_distance

__all__ = ["EstimateResult", "estimate_n", "estimate_n_median", "DEFAULT_C1"]

#: Default tightness parameter ``c1``.  Lemma 2 wants ``C > 144 / (alpha1 * eps^2)``
#: for the high-probability guarantee; in practice small constants already
#: give constant-factor estimates (benchmark E3 sweeps this).
DEFAULT_C1 = 4.0


@dataclass(frozen=True)
class EstimateResult:
    """Outcome of one Estimate-n run.

    ``n_hat`` is the final estimate (``n_hat_2 = s / t`` in the paper).
    ``exact`` is True when the walk lapped the ring and counted every
    peer, in which case ``n_hat`` equals the true ``n``.
    """

    n_hat: float
    n_hat_1: float
    hops: int
    span: float
    exact: bool = False


def estimate_n(dht: DHT, peer: PeerRef | None = None, c1: float = DEFAULT_C1) -> EstimateResult:
    """Run Estimate-n from vantage ``peer`` (default: ``dht.any_peer()``).

    Costs ``O(log n)`` ``next`` calls and no ``h`` calls.  Raises
    :class:`EstimationError` if ``c1`` is not positive.
    """
    if c1 <= 0:
        raise EstimationError(f"c1 must be positive, got {c1!r}")
    if peer is None:
        peer = dht.any_peer()

    succ = dht.next(peer)
    if succ.peer_id == peer.peer_id:
        # Single-peer ring: next(p) == p, so d == 0 and n_hat_1 would blow
        # up.  The ring size is known exactly.
        return EstimateResult(n_hat=1.0, n_hat_1=1.0, hops=1, span=1.0, exact=True)

    first_arc = clockwise_distance(peer.point, succ.point)
    if first_arc == 0.0:
        # Two distinct peers hashed to the same point; treat the arc as the
        # smallest representable so the estimate stays finite.
        first_arc = math.ulp(0.0)
    n_hat_1 = 1.0 / first_arc

    s = max(1, math.ceil(c1 * math.log(max(n_hat_1, math.e))))
    current = succ
    hops_taken = 1
    while hops_taken < s:
        current = dht.next(current)
        hops_taken += 1
        if current.peer_id == peer.peer_id:
            # Lapped the whole ring: hops_taken is exactly n.
            return EstimateResult(
                n_hat=float(hops_taken),
                n_hat_1=n_hat_1,
                hops=hops_taken,
                span=1.0,
                exact=True,
            )

    span = clockwise_distance(peer.point, current.point)
    if span == 0.0:
        span = math.ulp(0.0)
    return EstimateResult(
        n_hat=s / span, n_hat_1=n_hat_1, hops=s, span=span, exact=False
    )


def estimate_n_median(
    dht: DHT,
    vantages: int = 5,
    c1: float = DEFAULT_C1,
    rng=None,
) -> EstimateResult:
    """Median of Estimate-n over several vantage peers.

    A practical variance reduction beyond the paper: each vantage peer
    is found with one ``h`` at a random point (the naive heuristic is
    perfectly adequate for picking *measurement* vantages), Estimate-n
    runs from each, and the median estimate is returned.  Costs
    ``vantages`` times the single-vantage cost; the spread tightens
    roughly like the median of that many independent draws.  If any walk
    laps the ring, that exact count wins outright.
    """
    if vantages < 1:
        raise EstimationError(f"vantages must be positive, got {vantages!r}")
    import random as _random

    rng = rng if rng is not None else _random.Random()
    results = []
    for _ in range(vantages):
        vantage = dht.h(1.0 - rng.random())
        result = estimate_n(dht, vantage, c1=c1)
        if result.exact:
            return result
        results.append(result)
    results.sort(key=lambda r: r.n_hat)
    return results[len(results) // 2]
