"""Batch sampling engine: vectorized Choose-Random-Peer.

The scalar :class:`~repro.core.sampler.RandomPeerSampler` pays Python
method-call, dataclass-allocation and metering overhead *per trial*,
which dominates wall-clock long before the algorithm's own
O(1)-trials / O(log n)-latency guarantees do.  :class:`BatchSampler`
runs the identical algorithm over a whole vector of trials at once:

- all trial points are drawn up front and resolved to their ``h``
  successors in one pass over the substrate's flat point array
  (``numpy.searchsorted`` when available and worthwhile, else a
  pure-Python ``bisect`` loop);
- small-hit classification is a single vectorized comparison;
- the clockwise walks run in lockstep over raw floats and sorted
  indices -- no :class:`~repro.dht.api.PeerRef` or
  :class:`~repro.core.sampler.TrialResult` allocation inside the loop --
  with results materialized once at the end;
- failed trials are rejection-retried in batched rounds sized by the
  observed per-trial success rate;
- the cost meter is charged once per round via
  :meth:`~repro.dht.api.CostMeter.charge_bulk` with totals identical to
  what the per-call path would have accumulated.

Every float operation matches the scalar path's expression tree
exactly, so for the same trial points the engine and
:meth:`RandomPeerSampler.trial` produce *identical* outcomes (asserted
by the seeded equivalence tests).  On substrates that do not satisfy
:class:`~repro.dht.api.BulkDHT` (e.g. the live Chord simulator) the
engine degrades to the shared per-call trial helper, preserving
semantics at per-call speed.
"""

from __future__ import annotations

import math
import random
from bisect import bisect_left
from collections.abc import Sequence

from dataclasses import dataclass

from ..compat import load_numpy

from ..dht.api import (
    DHT,
    NUMPY_MIN_BATCH,
    BulkDHT,
    CostSnapshot,
    PeerRef,
    PeerUnreachableError,
)
from .errors import SamplingError
from .estimate import DEFAULT_C1, estimate_n
from .sampler import (
    GAMMA1,
    LAMBDA_SLACK,
    SamplerParams,
    TrialOutcome,
    TrialResult,
    _trial_from_first,
)

__all__ = ["BatchSampler", "BatchSampleResult"]

# Optional acceleration; the pure-Python path is always available and
# REPRO_PURE_PYTHON forces it (see repro.compat).
_np = load_numpy()

#: Largest double strictly below 1.0 -- the clamp value
#: :func:`~repro.core.intervals.clockwise_distance` uses to keep wrap
#: distances inside ``[0, 1)``.
_ONE_BELOW = math.nextafter(1.0, 0.0)

#: Cap on trial points drawn per rejection round (bounds peak memory).
_MAX_ROUND = 1 << 18

# Outcome codes used inside the classification kernels (cheap ints in
# the hot loop; mapped to TrialOutcome only at materialization time).
_SMALL, _WALK, _EXHAUSTED = 0, 1, 2


@dataclass(frozen=True, slots=True)
class BatchSampleResult:
    """One metered :meth:`BatchSampler.sample_many` execution.

    ``peers`` are the ``k`` successful draws *in draw order*, so a caller
    that coalesced ``k`` single-sample requests may attribute
    ``peers[j]`` to request ``j``: the draws are i.i.d. uniform, making
    any fixed assignment of results to requests exchangeable.  ``cost``
    is the substrate meter delta attributable to this call, which is
    what serving layers convert into simulated service time.
    """

    peers: tuple[PeerRef, ...]
    trials: int
    rounds: int
    cost: CostSnapshot


class BatchSampler:
    """Bulk uniform peer sampling over any :class:`~repro.dht.api.DHT`.

    Construction mirrors :class:`~repro.core.sampler.RandomPeerSampler`;
    alternatively pass a resolved ``params`` to share a scalar sampler's
    parameters (this is what :meth:`RandomPeerSampler.sample_many` does
    when delegating).
    """

    def __init__(
        self,
        dht: DHT,
        n_hat: float | None = None,
        *,
        params: SamplerParams | None = None,
        gamma1: float = GAMMA1,
        lambda_slack: float = LAMBDA_SLACK,
        c1: float = DEFAULT_C1,
        rng: random.Random | None = None,
        max_trials: int = 10_000,
        tracer=None,
    ):
        self._dht = dht
        self._rng = rng if rng is not None else random.Random()
        #: Optional span sink (:class:`repro.obs.tracer.Tracer`); the
        #: engine reports per-round trial/success/cost attribution while
        #: the tracer has an active batch context, and touches nothing
        #: (no snapshots, no allocation) when it does not.
        self._tracer = tracer
        self._gamma1 = gamma1
        self._lambda_slack = lambda_slack
        self._c1 = c1
        if params is None:
            if n_hat is None:
                n_hat = estimate_n(dht, c1=c1).n_hat
            params = SamplerParams.from_estimate(
                n_hat, gamma1=gamma1, lambda_slack=lambda_slack
            )
        self.params = params
        if max_trials < 1:
            raise ValueError("max_trials must be at least 1")
        self._max_trials = max_trials
        self._bulk = isinstance(dht, BulkDHT)
        #: Trials lost to transient peer unreachability (routing holes,
        #: crashed walk hops) on the per-call fallback path.  Each such
        #: trial is treated exactly like an EXHAUSTED outcome -- retried
        #: with fresh randomness by the rejection loop -- so churn shows
        #: up as extra trials, never as a leaked substrate exception.
        self.stale_trials = 0

    @property
    def dht(self) -> DHT:
        """The substrate this engine samples over (read-only)."""
        return self._dht

    def warm(self) -> bool:
        """Pre-build the substrate's batch-routing caches, if it has any.

        Delegates to the substrate's ``warm_lockstep`` hook (the Chord
        adapter rebuilds its ring snapshot); a no-op returning False on
        substrates without one.  Serving shards call this right after a
        churn-recovery :meth:`refresh` so the next dispatch does not pay
        cache (re)construction on the request path.
        """
        warm = getattr(self._dht, "warm_lockstep", None)
        return bool(warm()) if warm is not None else False

    def refresh(self, n_hat: float | None = None) -> SamplerParams:
        """Re-derive parameters from a fresh size estimate (see
        :meth:`RandomPeerSampler.refresh <repro.core.sampler.RandomPeerSampler.refresh>`;
        serving shards call this when re-admitting after churn failures)."""
        if n_hat is None:
            n_hat = estimate_n(self._dht, c1=self._c1).n_hat
        self.params = SamplerParams.from_estimate(
            n_hat, gamma1=self._gamma1, lambda_slack=self._lambda_slack
        )
        return self.params

    # -- vectorized classification kernels --------------------------------

    def _classify_charged(self, points: Sequence[float]):
        """Run Figure 1 on every point against the flat point array.

        Returns ``(codes, out_idx, hops)`` parallel sequences: the
        outcome code, the assigned peer's sorted index (``-1`` if none)
        and the walk length of each trial.  Charges the substrate's
        meter once for the whole batch.
        """
        pts = self._dht.points_array()
        n = len(pts)
        lam = self.params.lam
        budget = self.params.walk_budget
        if _np is not None and len(points) >= NUMPY_MIN_BATCH:
            codes, out_idx, hops, total_hops = _kernel_numpy(pts, n, lam, budget, points)
        else:
            codes, out_idx, hops, total_hops = _kernel_python(pts, n, lam, budget, points)
        hm, hl, nm, nl = self._dht.bulk_op_costs()
        k = len(points)
        self._dht.cost.charge_bulk(
            h_calls=k,
            next_calls=total_hops,
            messages=k * hm + total_hops * nm,
            latency=k * hl + total_hops * nl,
        )
        return codes, out_idx, hops

    # -- public API --------------------------------------------------------

    def trial_many(self, points: Sequence[float]) -> list[TrialResult]:
        """Run Figure 1 once per point (no retries), batch-classified.

        Result ``j`` equals ``RandomPeerSampler.trial(points[j])`` for a
        sampler sharing this engine's parameters -- same peer, same
        :class:`~repro.core.sampler.TrialOutcome`, same walk length.
        """
        points = list(points)
        if not self._bulk:
            return self._trials_fallback(points)
        codes, out_idx, hops = self._classify_charged(points)
        succ = self._dht.successor_of_index
        results = []
        for s, code, idx, h in zip(points, codes, out_idx, hops):
            if code == _SMALL:
                results.append(
                    TrialResult(s=s, outcome=TrialOutcome.SMALL_HIT, peer=succ(int(idx)), walk_hops=0)
                )
            elif code == _WALK:
                results.append(
                    TrialResult(s=s, outcome=TrialOutcome.WALK_HIT, peer=succ(int(idx)), walk_hops=int(h))
                )
            else:
                results.append(
                    TrialResult(s=s, outcome=TrialOutcome.EXHAUSTED, peer=None, walk_hops=int(h))
                )
        return results

    def _trials_fallback(self, points: Sequence[float]) -> list[TrialResult]:
        """Batched-resolution path for substrates without a flat point array.

        The expensive half of each trial is resolving ``h(s)`` -- an
        O(log n) routed lookup on a live overlay.  Substrates that offer
        a failure-tolerant batched resolver (``resolve_many``; the Chord
        adapter's is backed by the lockstep snapshot engine) get the
        whole round's points in one call; the clockwise walks then run
        per trial through ``next`` as before.  Substrates without one
        resolve point by point, which is cost-identical to ``h_many`` on
        per-call substrates.

        Either way each trial runs under a
        :class:`~repro.dht.api.PeerUnreachableError` guard: on a live
        overlay a peer can crash mid-walk, and the correct response is to
        discard that trial (it consumed randomness, it produced nothing)
        and let the rejection loop redraw -- not to abort the whole
        batch.
        """
        dht = self._dht
        lam = self.params.lam
        budget = self.params.walk_budget
        resolve_many = getattr(dht, "resolve_many", None)
        firsts: list[PeerRef | None]
        if resolve_many is not None and len(points) > 1:
            firsts = resolve_many(points)
        else:
            firsts = []
            for s in points:
                try:
                    firsts.append(dht.h(s))
                except PeerUnreachableError:
                    firsts.append(None)
        results = []
        for s, first in zip(points, firsts):
            if first is None:
                self.stale_trials += 1
                results.append(
                    TrialResult(s=s, outcome=TrialOutcome.EXHAUSTED, peer=None, walk_hops=0)
                )
                continue
            try:
                results.append(_trial_from_first(dht, lam, budget, s, first))
            except PeerUnreachableError:
                self.stale_trials += 1
                results.append(
                    TrialResult(s=s, outcome=TrialOutcome.EXHAUSTED, peer=None, walk_hops=0)
                )
        return results

    def _round_successes(self, points: list[float]) -> list[PeerRef]:
        """Successful trials of one round, as peers in draw order."""
        if not self._bulk:
            return [r.peer for r in self._trials_fallback(points) if r.peer is not None]
        codes, out_idx, _hops = self._classify_charged(points)
        succ = self._dht.successor_of_index
        return [succ(int(i)) for c, i in zip(codes, out_idx) if c != _EXHAUSTED]

    def sample_many(self, k: int) -> list[PeerRef]:
        """Draw ``k`` independent uniform samples (with replacement).

        Trials are drawn in rounds sized ``need / p`` where ``p`` is the
        success-rate estimate (seeded from ``n_hat * lambda``, then
        updated from observation), so the expected number of rounds is
        O(1).  The total trial budget is ``max_trials * k``; exceeding
        it raises :class:`~repro.core.errors.SamplingError`, mirroring
        the scalar sampler's per-sample cap.
        """
        return list(self.sample_many_attributed(k).peers)

    def sample_many_attributed(self, k: int) -> BatchSampleResult:
        """Like :meth:`sample_many`, plus per-call attribution metadata.

        Returns a :class:`BatchSampleResult` whose ``peers`` are the
        draws in order (result ``j`` belongs to coalesced request ``j``),
        ``trials``/``rounds`` count the rejection work performed, and
        ``cost`` is this call's substrate meter delta.  The serving layer
        (:mod:`repro.service`) uses this hook to stamp per-request
        latency without re-deriving batch internals.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        before = self._dht.cost.snapshot()
        out: list[PeerRef] = []
        budget = self._max_trials * k
        used = 0
        rounds = 0
        p_est = min(max(self.params.n_hat * self.params.lam, 1e-4), 1.0)
        rand = self._rng.random
        # Round spans are recorded only while a sampled batch is being
        # dispatched; the check is hoisted because the whole call runs
        # inside one dispatch (one batch context), so activity cannot
        # change mid-loop.
        tracer = self._tracer
        tracing = tracer is not None and tracer.active
        while len(out) < k:
            if used >= budget:
                raise SamplingError(
                    f"only {len(out)} of {k} samples after {used} trials "
                    f"(n_hat={self.params.n_hat:.3g}); the size estimate is likely stale"
                )
            need = k - len(out)
            round_size = min(
                budget - used,
                _MAX_ROUND,
                max(need, int(need / p_est * 1.15) + 8),
            )
            points = [1.0 - rand() for _ in range(round_size)]
            used += round_size
            rounds += 1
            round_before = self._dht.cost.snapshot() if tracing else None
            successes = self._round_successes(points)
            if tracing:
                tracer.on_round(
                    rounds - 1,
                    round_size,
                    len(successes),
                    self._dht.cost.snapshot() - round_before,
                )
            p_est = min(max((len(successes) + 1) / (round_size + 2), 1e-4), 1.0)
            out.extend(successes[:need])
        return BatchSampleResult(
            peers=tuple(out),
            trials=used,
            rounds=rounds,
            cost=self._dht.cost.snapshot() - before,
        )

    def sample_distinct(self, k: int, max_draws: int | None = None) -> list[PeerRef]:
        """Draw ``k`` *distinct* peers, uniform over k-subsets.

        Batched analogue of the scalar rejection loop: each round draws
        the outstanding deficit through :meth:`sample_many` and dedupes
        by ``peer_id`` in draw order, which is exactly sequential simple
        random sampling.  The ``max_draws`` contract (default
        ``50 k + 50`` successful draws before
        :class:`~repro.core.errors.SamplingError`) is unchanged.
        """
        if k < 0:
            raise ValueError("k must be non-negative")
        cap = max_draws if max_draws is not None else 50 * k + 50
        chosen: dict[int, PeerRef] = {}
        draws = 0
        while len(chosen) < k:
            if draws >= cap:
                raise SamplingError(
                    f"only {len(chosen)} distinct peers after {draws} draws; "
                    f"is k={k} larger than the network?"
                )
            round_size = min(cap - draws, k - len(chosen))
            batch = self.sample_many(round_size)
            draws += len(batch)
            for peer in batch:
                chosen.setdefault(peer.peer_id, peer)
        return list(chosen.values())


# -- classification kernels (module-level: no self lookups in hot loops) --


def _kernel_numpy(pts, n, lam, budget, points):
    """Lockstep-vectorized Figure 1 over all trials at once.

    Every elementwise expression mirrors the scalar path's float
    arithmetic (same operand order, same wrap clamp), so outcomes are
    bit-identical to :meth:`RandomPeerSampler.trial`.
    """
    ss = _np.asarray(points, dtype=_np.float64)
    ok = (ss > 0.0) & (ss <= 1.0)  # negated form would let NaN slip through
    if not ok.all():
        bad = ss[~ok][0]
        raise ValueError(f"point {bad!r} is outside the unit circle (0, 1]")
    pts = _np.asarray(pts, dtype=_np.float64)
    idx = _np.searchsorted(pts, ss, side="left")
    idx[idx == n] = 0
    first = pts[idx]
    arc = _np.where(first >= ss, first - ss, (1.0 - ss) + first)
    _np.minimum(arc, _ONE_BELOW, out=arc)  # the wrap clamp of clockwise_distance
    small = arc < lam
    codes = _np.where(small, _SMALL, _EXHAUSTED).astype(_np.int8)
    out_idx = _np.where(small, idx, -1)
    hops = _np.zeros(ss.shape, dtype=_np.int64)
    active = ~small
    if n == 1:
        # A self-successor lap adds 1 - lam > 0 per hop, so T never
        # drops: every non-small trial exhausts the full budget.
        hops[active] = budget
        return codes, out_idx, hops, int(active.sum()) * budget
    t = arc - lam
    cur_idx = idx
    cur_pt = first
    for hop in range(1, budget + 1):
        if not active.any():
            break
        nxt_idx = cur_idx + 1
        nxt_idx[nxt_idx == n] = 0
        nxt_pt = pts[nxt_idx]
        step = _np.where(nxt_pt >= cur_pt, nxt_pt - cur_pt, (1.0 - cur_pt) + nxt_pt)
        _np.minimum(step, _ONE_BELOW, out=step)
        t += step - lam
        hit = active & (t <= 0.0)
        if hit.any():
            out_idx[hit] = nxt_idx[hit]
            hops[hit] = hop
            codes[hit] = _WALK
            active &= ~hit
        cur_idx = nxt_idx
        cur_pt = nxt_pt
    hops[active] = budget  # leftovers exhausted their walk budget
    return codes, out_idx, hops, int(hops.sum())


def _kernel_python(pts, n, lam, budget, points):
    """Pure-Python fast path: raw floats and indices, zero allocations
    per hop.  Identical arithmetic to the scalar trial."""
    codes: list[int] = []
    out_idx: list[int] = []
    hops_list: list[int] = []
    total_hops = 0
    for s in points:
        if not 0.0 < s <= 1.0:
            raise ValueError(f"point {s!r} is outside the unit circle (0, 1]")
        i = bisect_left(pts, s)
        if i == n:
            i = 0
        cur = pts[i]
        arc = cur - s if cur >= s else (1.0 - s) + cur
        if arc >= 1.0:
            arc = _ONE_BELOW
        if arc < lam:
            codes.append(_SMALL)
            out_idx.append(i)
            hops_list.append(0)
            continue
        t = arc - lam
        code = _EXHAUSTED
        assigned = -1
        taken = 0
        if n == 1:
            taken = budget
        else:
            for hop in range(1, budget + 1):
                ni = i + 1
                if ni == n:
                    ni = 0
                npt = pts[ni]
                step = npt - cur if npt >= cur else (1.0 - cur) + npt
                if step >= 1.0:
                    step = _ONE_BELOW
                t += step - lam
                taken = hop
                if t <= 0.0:
                    code = _WALK
                    assigned = ni
                    break
                i = ni
                cur = npt
        codes.append(code)
        out_idx.append(assigned)
        hops_list.append(taken)
        total_hops += taken
    return codes, out_idx, hops_list, total_hops
