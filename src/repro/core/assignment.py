"""Exact interval-assignment analysis behind Theorem 6.

The deterministic part of Choose-Random-Peer maps each point ``s`` of the
unit circle to a peer (or to "unassigned", triggering a retry).  The proof
of Theorem 6 shows the map sends measure *exactly* ``lambda`` to every
peer.  This module computes that map's measure decomposition in closed
form, so tests can verify uniformity per-instance instead of relying on
Monte-Carlo counts.

How it works.  Fix the peerless arc ending at peer ``p_i`` and write
``A = d(s, l(p_i))`` for ``s`` inside it.  The trial behaves as:

- ``A < lambda``: the SMALL case returns ``p_i``;
- otherwise the walk visits ``p_{i+1}, p_{i+2}, ...`` and returns the
  first ``p_{i+k}`` (``k >= 1``) whose running total satisfies
  ``A + D_k <= (k + 1) * lambda``, where ``D_k`` is the sum of the ``k``
  arcs after ``p_i``.  Equivalently ``A <= theta_k := (k+1) lambda - D_k``.

For fixed ``i``, the chosen ``k`` as a function of ``A`` is the first
``k`` with ``theta_k >= A``; so the set of ``A`` mapping to ``p_{i+k}``
is the slab between the running maximum of earlier thresholds and
``theta_k``.  Sweeping all arcs yields the exact measure each peer
receives, in ``O(n * walk_budget)`` time.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .intervals import SortedCircle, clockwise_distance
from .sampler import SamplerParams, TrialOutcome

__all__ = ["AssignmentReport", "compute_assignment", "trial_on_circle"]


@dataclass(frozen=True)
class AssignmentReport:
    """Exact measure assigned to each peer by the deterministic trial map.

    ``measures[i]`` is the total arc length mapped to peer ``i`` (peers
    indexed clockwise as in :class:`~repro.core.intervals.SortedCircle`).
    ``unassigned`` is the retry mass ``1 - sum(measures)``.
    """

    lam: float
    walk_budget: int
    measures: tuple[float, ...]
    unassigned: float

    @property
    def max_abs_error(self) -> float:
        """Largest deviation of any peer's measure from ``lambda``."""
        return max(abs(m - self.lam) for m in self.measures)

    def is_exactly_uniform(self, tol: float = 1e-12) -> bool:
        """Whether every peer receives measure ``lambda`` up to ``tol``.

        This is the Theorem 6 property.  It holds whenever the ring
        satisfies properties (1)-(3) and the walk budget suffices, i.e.
        w.h.p. over random rings with a sound ``n_hat``.
        """
        return self.max_abs_error <= tol

    @property
    def success_probability(self) -> float:
        """Per-trial success probability ``sum(measures)`` (= ``n * lambda``
        when the assignment is exact)."""
        return 1.0 - self.unassigned


def compute_assignment(
    circle: SortedCircle, lam: float, walk_budget: int
) -> AssignmentReport:
    """Exact measure decomposition of the trial map for one ring instance."""
    if lam <= 0.0:
        raise ValueError(f"lambda must be positive, got {lam!r}")
    if walk_budget < 1:
        raise ValueError(f"walk_budget must be >= 1, got {walk_budget!r}")

    n = len(circle)
    arcs = circle.arcs()
    measures = [0.0] * n

    for i in range(n):
        arc_i = arcs[i]
        # SMALL region: A in [0, min(lambda, arc_i)) maps to p_i itself.
        measures[i] += min(lam, arc_i)
        if arc_i <= lam:
            continue
        # Walk region: A in [lambda, arc_i).  Slabs between successive
        # running-maximum thresholds map to successive peers.
        covered = lam  # everything below is the SMALL region
        d_k = 0.0
        for k in range(1, walk_budget + 1):
            d_k += arcs[(i + k) % n]
            theta_k = (k + 1) * lam - d_k
            hi = min(theta_k, arc_i)
            if hi > covered:
                measures[(i + k) % n] += hi - covered
                covered = hi
            if covered >= arc_i:
                break

    total = math.fsum(measures)
    return AssignmentReport(
        lam=lam,
        walk_budget=walk_budget,
        measures=tuple(measures),
        unassigned=max(0.0, 1.0 - total),
    )


def trial_on_circle(
    circle: SortedCircle, params: SamplerParams, s: float
) -> tuple[TrialOutcome, int | None]:
    """Run the deterministic trial directly on a circle (no DHT, no cost).

    Returns ``(outcome, peer_index)`` with ``peer_index`` None on
    exhaustion.  Used by property tests to cross-check the sampler, the
    closed-form assignment, and the DHT substrates against each other.
    """
    lam = params.lam
    idx = circle.successor_index(s)
    arc = clockwise_distance(s, circle[idx])
    if arc < lam:
        return TrialOutcome.SMALL_HIT, idx

    t_value = arc - lam
    for _ in range(params.walk_budget):
        nxt = circle.next_index(idx)
        step = 1.0 if nxt == idx else clockwise_distance(circle[idx], circle[nxt])
        t_value += step - lam
        if t_value <= 0.0:
            return TrialOutcome.WALK_HIT, nxt
        idx = nxt
    return TrialOutcome.EXHAUSTED, None
