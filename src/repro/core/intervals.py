"""Unit-circle geometry underlying the King--Saia peer-sampling algorithms.

The paper models the DHT key space as a circle of unit circumference whose
points live in ``(0, 1]``.  All distances are measured *clockwise*:
``d(x, y) = y - x`` when ``y >= x`` and ``(1 - x) + y`` otherwise.  This
module provides that arithmetic, half-open clockwise intervals ``I(a, b]``,
and :class:`SortedCircle`, an immutable sorted collection of peer points
with the successor/arc queries every other layer builds on.
"""

from __future__ import annotations

import bisect
import math
from collections.abc import Iterable, Iterator, Sequence
from dataclasses import dataclass

__all__ = [
    "normalize",
    "clockwise_distance",
    "Interval",
    "SortedCircle",
]


def normalize(x: float) -> float:
    """Map a real number onto the unit circle ``(0, 1]``.

    ``0`` and every integer map to ``1.0`` (the paper's circle excludes 0
    and includes 1, which are the same point).
    """
    r = math.fmod(x, 1.0)
    if r < 0.0:
        r += 1.0
    return 1.0 if r == 0.0 else r


def _check_point(x: float) -> float:
    if not 0.0 < x <= 1.0:
        raise ValueError(f"point {x!r} is outside the unit circle (0, 1]")
    return x


def clockwise_distance(x: float, y: float) -> float:
    """Clockwise distance ``d(x, y)`` along the unit circle.

    Follows the paper's definition exactly: ``y - x`` if ``y >= x`` else
    ``(1 - x) + y``.  The result lies in ``[0, 1)`` and ``d(x, x) == 0``.
    In the wrap branch the true distance is strictly below 1 but the
    float sum can round up to 1.0 when ``x - y`` is below one ulp; the
    result is clamped to keep the ``[0, 1)`` contract exact.
    """
    _check_point(x)
    _check_point(y)
    if y >= x:
        return y - x
    d = (1.0 - x) + y
    return d if d < 1.0 else math.nextafter(1.0, 0.0)


@dataclass(frozen=True)
class Interval:
    """Half-open clockwise interval ``I(start, end]`` on the unit circle.

    ``start`` is excluded, ``end`` is included, matching the paper's
    ``I(a, b)`` notation ("interval (a, b] on the unit circle from point a
    clockwise to point b").  An interval with ``start == end`` is empty.
    """

    start: float
    end: float

    def __post_init__(self) -> None:
        _check_point(self.start)
        _check_point(self.end)

    @property
    def length(self) -> float:
        """Arc length ``|I|`` (zero when ``start == end``)."""
        return clockwise_distance(self.start, self.end)

    def contains(self, x: float) -> bool:
        """Whether ``x`` lies in ``(start, end]`` going clockwise.

        Implemented with direct comparisons (no float additions) so
        membership is exact even when ``x`` and the endpoints differ at
        the last ulp; equivalent to ``0 < d(start, x) <= length``.
        """
        _check_point(x)
        a, b = self.start, self.end
        if a < b:
            return a < x <= b
        if a > b:
            return x > a or x <= b
        return False  # empty interval

    def is_small(self, lam: float) -> bool:
        """The paper calls ``I`` *small* when ``|I| < lambda`` (else *big*)."""
        return self.length < lam


class SortedCircle:
    """An immutable, sorted multiset of peer points on ``(0, 1]``.

    This is the analytic view of a DHT ring: it answers the successor and
    arc queries needed by the algorithms and by the exact-assignment
    analysis, without any notion of network cost.  Duplicate points are
    permitted (they simply occupy the same location); with a random-oracle
    hash they occur with probability zero.
    """

    __slots__ = ("_points",)

    def __init__(self, points: Iterable[float]):
        pts = sorted(_check_point(p) for p in points)
        if not pts:
            raise ValueError("a SortedCircle needs at least one peer point")
        self._points: tuple[float, ...] = tuple(pts)

    @classmethod
    def random(cls, n: int, rng) -> "SortedCircle":
        """``n`` points i.i.d. uniform on ``(0, 1]`` (the paper's model)."""
        if n < 1:
            raise ValueError("need at least one peer")
        return cls(1.0 - rng.random() for _ in range(n))

    # -- basic container protocol -------------------------------------

    def __len__(self) -> int:
        return len(self._points)

    def __iter__(self) -> Iterator[float]:
        return iter(self._points)

    def __getitem__(self, i: int) -> float:
        return self._points[i % len(self._points)]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SortedCircle):
            return NotImplemented
        return self._points == other._points

    def __hash__(self) -> int:
        return hash(self._points)

    def __repr__(self) -> str:
        return f"SortedCircle(n={len(self._points)})"

    @property
    def points(self) -> Sequence[float]:
        """The sorted peer points."""
        return self._points

    # -- ring queries ---------------------------------------------------

    def successor_index(self, x: float) -> int:
        """Index of ``h(x)``: the peer point closest clockwise from ``x``.

        A peer located exactly at ``x`` is its own successor
        (``d(x, x) == 0`` is minimal).
        """
        _check_point(x)
        i = bisect.bisect_left(self._points, x)
        return i % len(self._points)

    def successor(self, x: float) -> float:
        """The peer point ``l(h(x))``."""
        return self._points[self.successor_index(x)]

    def next_index(self, i: int) -> int:
        """Index of ``next(p_i)``, wrapping clockwise around the circle."""
        return (i + 1) % len(self._points)

    def arc(self, i: int) -> float:
        """Length of the predecessor arc ending at peer ``i``.

        This is ``d(l(prev(p_i)), l(p_i))`` -- the maximally peerless
        interval whose clockwise endpoint is peer ``i``.  With a single
        peer the arc is the whole circle (length 1).
        """
        n = len(self._points)
        if n == 1:
            return 1.0
        return clockwise_distance(self._points[(i - 1) % n], self._points[i % n])

    def arcs(self) -> list[float]:
        """All predecessor arcs, indexed by peer; they sum to 1."""
        return [self.arc(i) for i in range(len(self._points))]

    def forward_distance(self, i: int, hops: int) -> float:
        """Clockwise distance covered by ``hops`` applications of ``next``.

        Unlike ``clockwise_distance`` between the endpoints, this keeps
        counting across full laps, mirroring what a walking peer observes
        arc by arc (``hops >= n`` covers the circle more than once).
        """
        n = len(self._points)
        laps, rem = divmod(hops, n)
        d = float(laps)
        if rem:
            d += clockwise_distance(self._points[i % n], self._points[(i + rem) % n])
        return d

    def count_in(self, interval: Interval) -> int:
        """Number of peer points inside ``I(a, b]``."""
        a, b = interval.start, interval.end
        if a == b:
            return 0
        hi = bisect.bisect_right(self._points, b)
        lo = bisect.bisect_right(self._points, a)
        if b >= a:
            return hi - lo
        return (len(self._points) - lo) + hi
