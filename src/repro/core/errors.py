"""Exception types raised by the core sampling algorithms."""

from __future__ import annotations

__all__ = ["ReproError", "SamplingError", "EstimationError"]


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SamplingError(ReproError):
    """Choose-Random-Peer exhausted its trial budget without success.

    With a sane size estimate this has probability well under
    ``(6/7)**max_trials``; seeing it usually means ``n_hat`` is far off
    (e.g. stale after massive churn) or ``max_trials`` was set too low.
    """


class EstimationError(ReproError):
    """Estimate-n could not run (e.g. a degenerate one-peer ring query)."""
