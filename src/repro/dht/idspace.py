"""Shared identifier-space arithmetic for discrete-id substrates.

Every message-level DHT in this repo hashes peers onto ``m``-bit
identifiers; the paper's continuous model lives on the unit circle
``(0, 1]``.  Identifier ``j`` maps to the point ``j / 2**m``, with
``j == 0`` landing on ``1.0`` (the same location, since the circle
identifies 0 and 1).  The mapping is substrate-independent -- Chord
arranges the identifiers clockwise on a ring, Kademlia measures them
with the XOR metric -- so it lives here and each substrate layers its
own routing geometry on top (:mod:`repro.dht.chord.idspace`,
:mod:`repro.dht.kademlia.idspace`).
"""

from __future__ import annotations

import math

__all__ = ["id_to_point", "point_to_target_id"]


def id_to_point(node_id: int, m: int) -> float:
    """Location of identifier ``node_id`` on the unit circle ``(0, 1]``."""
    size = 1 << m
    if not 0 <= node_id < size:
        raise ValueError(f"id {node_id} outside [0, 2^{m})")
    return 1.0 if node_id == 0 else node_id / size


def point_to_target_id(x: float, m: int) -> int:
    """The identifier whose clockwise successor is ``h(x)``.

    A node at identifier ``j`` has point ``j / 2**m``; the clockwise-
    closest peer to ``x`` is the first node with ``j >= x * 2**m``,
    i.e. ``find_successor(ceil(x * 2**m) mod 2**m)`` in Chord terms.
    Kademlia's adapter resolves the same target through XOR-routed
    block probes (see :mod:`repro.dht.kademlia.network`).
    """
    if not 0.0 < x <= 1.0:
        raise ValueError(f"point {x!r} outside the unit circle (0, 1]")
    size = 1 << m
    return math.ceil(x * size) % size
