"""A message-level Kademlia simulator (Maymounkov & Mazieres) used as
the XOR-metric substrate: k-bucket routing tables with LRU liveness
eviction, alpha-parallel iterative lookups, bucket refresh as the
stabilization analogue, and successor-style resolution built from
aligned-block certification so the paper's ``h``/``next`` interface is
exact on a substrate that has no ring.
"""

from .async_lookup import find_node_async, find_successor_async
from .idspace import (
    aligned_limit,
    bucket_index,
    bucket_range,
    id_to_point,
    point_to_target_id,
    xor_distance,
)
from .network import DEFAULT_BITS, KademliaDHT, KademliaNetwork
from .node import (
    KademliaLookupError_,
    KademliaNode,
    LookupOutcome,
    SuccessorResult,
    lookup_budget,
)
from .routing import SoAKademliaDHT, SoAKademliaNetwork

__all__ = [
    "DEFAULT_BITS",
    "KademliaDHT",
    "KademliaLookupError_",
    "KademliaNetwork",
    "KademliaNode",
    "LookupOutcome",
    "SoAKademliaDHT",
    "SoAKademliaNetwork",
    "SuccessorResult",
    "aligned_limit",
    "bucket_index",
    "bucket_range",
    "find_node_async",
    "find_successor_async",
    "id_to_point",
    "lookup_budget",
    "point_to_target_id",
    "xor_distance",
]
