"""Genuinely concurrent Kademlia lookups for the async message-level transport.

The sync :meth:`KademliaNode.iterative_find_node` documents its own
simplification: the transport is synchronous, so ``alpha`` shapes the
candidate frontier but the probes of a round still run one after
another.  On :class:`~repro.sim.async_net.AsyncRpcTransport` that
simplification disappears: :class:`_ParallelFindNode` keeps ``alpha``
probes *in flight simultaneously*, folds each arrival into the
shortlist the moment its reply lands (out of order is fine -- replies
are independent scheduled events), immediately re-aims a freed slot at
the new best unqueried candidate, and cancels stragglers outright when
the frontier converges while they are still on the wire (their late
replies are dropped and counted by the transport).

With ``alpha == 1`` and no failures the probe sequence degenerates to
exactly the sync loop's -- the property the cross-transport equivalence
test pins.

:func:`find_successor_async` re-runs the aligned-block certification of
:meth:`KademliaNode.find_successor` decision-for-decision (same
truncated-census escalation, same small-network census answer, same
learned-owner liveness ping with exclude-and-reprobe fallback), as a
callback state machine over :class:`~repro.sim.async_net.Future`
completions instead of a blocking loop.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any

from ...sim.async_net import Future
from .idspace import aligned_limit, xor_distance
from .node import (
    KademliaLookupError_,
    LookupOutcome,
    SuccessorResult,
    _clockwise_min,
    _Shortlist,
    lookup_budget,
)

if TYPE_CHECKING:
    from .node import KademliaNode

__all__ = ["find_node_async", "find_successor_async"]


class _ParallelFindNode:
    """One in-progress alpha-concurrent iterative lookup (see module doc)."""

    __slots__ = (
        "node", "ep", "target", "excluded", "thorough",
        "budget", "sl", "in_flight", "rpcs", "failures", "future",
    )

    def __init__(
        self,
        node: "KademliaNode",
        target_id: int,
        excluded: frozenset,
        max_rpcs: int | None,
        thorough: bool,
    ):
        self.node = node
        self.ep = node._transport
        self.target = target_id
        self.excluded = excluded
        self.thorough = thorough
        self.budget = (
            max_rpcs if max_rpcs is not None else lookup_budget(node.m, node.k)
        )
        self.sl = _Shortlist(target=target_id)
        #: contact id -> AsyncCall, the probes currently on the wire.
        self.in_flight: dict[int, Any] = {}
        self.rpcs = 0
        self.failures = 0
        self.future = Future()

    def start(self) -> Future:
        node = self.node
        self.sl.known.add(node.node_id)
        self.sl.queried.add(node.node_id)  # we answer for ourselves, free
        self.sl.add(
            i
            for i in node.closest_known(self.target, node.k)
            if i not in self.excluded
        )
        self._pump()
        self._maybe_finish()  # a contact-less node converges immediately
        return self.future

    def _pump(self) -> None:
        """Aim every free slot at the best uncovered frontier candidate."""
        node = self.node
        while len(self.in_flight) < node.alpha and self.rpcs < self.budget:
            pending = [
                c
                for c in node._pending(self.sl, self.thorough)
                if c not in self.in_flight
            ]
            if not pending:
                return
            contact = pending[0]
            self.rpcs += 1
            self.in_flight[contact] = self.ep.call(
                contact,
                "find_node",
                self.target,
                node.node_id,
                on_reply=lambda found, c=contact: self._on_reply(c, found),
                on_timeout=lambda _exc, c=contact: self._on_timeout(c),
            )

    def _on_reply(self, contact: int, found) -> None:
        del self.in_flight[contact]
        self.sl.queried.add(contact)
        self.node.observe(contact)
        self.sl.add(i for i in found if i not in self.excluded)
        self._pump()
        self._maybe_finish()

    def _on_timeout(self, contact: int) -> None:
        del self.in_flight[contact]
        self.failures += 1
        self.sl.failed.add(contact)
        self.node.forget(contact)
        self._pump()
        self._maybe_finish()

    def _maybe_finish(self) -> None:
        if self.future.done:
            return
        pending = self.node._pending(self.sl, self.thorough)
        if pending:
            # Converging: either probes are out, or _pump can still aim
            # one (it just did).  Only a dead end -- budget gone, wire
            # empty, frontier unanswered -- falls through to finish.
            if self.in_flight or self.rpcs < self.budget:
                return
        elif self.in_flight:
            # Frontier fully answered while probes to since-displaced
            # candidates are still on the wire: stragglers, cancel them.
            for call in self.in_flight.values():
                call.cancel()
            self.in_flight.clear()
        node = self.node
        self.future.resolve(
            LookupOutcome(
                ids=tuple(self.sl.best(node.k)),
                queried=frozenset(self.sl.queried - self.sl.failed),
                rpcs=self.rpcs,
                failures=self.failures,
                complete=(self.failures == 0 and not pending),
            )
        )


def find_node_async(
    node: "KademliaNode",
    target_id: int,
    excluded: frozenset = frozenset(),
    max_rpcs: int | None = None,
    thorough: bool = False,
) -> Future:
    """Alpha-concurrent :meth:`KademliaNode.iterative_find_node`.

    Resolves to the same :class:`LookupOutcome` shape; like the sync
    path, failures never fail the future -- ``complete`` carries the
    verdict and the successor layer escalates.
    """
    return _ParallelFindNode(node, target_id, excluded, max_rpcs, thorough).start()


def find_successor_async(
    node: "KademliaNode", target_id: int, max_probes: int | None = None
) -> Future:
    """Async aligned-block successor resolution (see module docstring).

    Resolves to :class:`SuccessorResult`; fails with
    :class:`KademliaLookupError_` on a truncated census or an exhausted
    probe budget, exactly where the sync loop raises.
    """
    size = 1 << node.m
    budget = max_probes if max_probes is not None else 2 * node.m + 8
    ep = node._transport
    future = Future()
    state = {"cur": target_id % size, "probes": 0, "rpcs": 0}
    excluded: set[int] = set()

    def probe() -> None:
        if state["probes"] >= budget:
            future.fail(
                KademliaLookupError_(
                    f"successor of {target_id} not certified within "
                    f"{budget} probes"
                )
            )
            return
        find_node_async(
            node, state["cur"], excluded=frozenset(excluded)
        ).add_done_callback(on_probe)

    def on_probe(inner: Future) -> None:
        if inner.error is not None:
            future.fail(inner.error)
            return
        out: LookupOutcome = inner.result
        state["probes"] += 1
        state["rpcs"] += out.rpcs
        cur = state["cur"]
        if len(out.ids) < node.k:
            if not out.complete:
                future.fail(
                    KademliaLookupError_(
                        f"successor of {target_id}: census truncated by "
                        f"{out.failures} failures"
                    )
                )
                return
            ring = sorted(out.ids)
            owner = _clockwise_min(out.ids, target_id)
            pos = ring.index(owner)
            future.resolve(
                SuccessorResult(
                    node_id=owner,
                    probes=state["probes"],
                    rpcs=state["rpcs"],
                    census=tuple(ring[pos:] + ring[:pos]),
                )
            )
            return
        radius = max(xor_distance(cur, i) for i in out.ids)
        if radius == 0:
            future.resolve(
                SuccessorResult(
                    node_id=cur,
                    probes=state["probes"],
                    rpcs=state["rpcs"],
                    census=(cur,),
                )
            )
            return
        limit = aligned_limit(cur, radius, node.m)
        in_reach = sorted(i for i in out.ids if cur <= i < limit)
        if in_reach:
            owner = in_reach[0]
            result = SuccessorResult(
                node_id=owner,
                probes=state["probes"],
                rpcs=state["rpcs"],
                census=tuple(in_reach),
            )
            if owner != node.node_id and owner not in out.queried:
                state["rpcs"] += 1

                def on_dead_owner(_exc) -> None:
                    excluded.add(owner)
                    node.forget(owner)
                    probe()

                ep.call(
                    owner,
                    "ping",
                    on_reply=lambda _r: future.resolve(
                        SuccessorResult(
                            node_id=owner,
                            probes=state["probes"],
                            rpcs=state["rpcs"],
                            census=tuple(in_reach),
                        )
                    ),
                    on_timeout=on_dead_owner,
                )
                return
            future.resolve(result)
            return
        state["cur"] = limit % size
        probe()

    probe()
    return future
