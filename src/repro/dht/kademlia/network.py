"""The Kademlia overlay: membership, bootstrap, bucket refresh, and the
DHT adapter that exposes the paper's ``h``/``next`` interface with real
message-level cost accounting.

:class:`KademliaNetwork` mirrors :class:`~repro.dht.chord.network.ChordNetwork`
shape-for-shape -- ``build``/``join_node``/``crash_node``/``leave_node``,
epoch-keyed oracle views, periodic maintenance on the simulator clock --
so the churn process, the scenario runner and the serving layer drive
either substrate unchanged.  The protocol mapping differs where the
substrates genuinely differ:

===================  ==========================  ===========================
concept              Chord                       Kademlia
===================  ==========================  ===========================
routing state        fingers + successor list    k-buckets (LRU, uptime-bias)
lookup               iterative ring halving      alpha-parallel XOR descent
stabilization        stabilize/notify/fix        self + random bucket refresh
graceful leave       splice out via neighbours   none: leaving *is* crashing
``h`` resolution     native ``find_successor``   aligned-block certification
``next`` cost        one successor RPC, O(1)     a full lookup, O(log n)
===================  ==========================  ===========================

The last two rows are the substrate-independence finding this backend
exists to measure: King & Saia's primitives are *cheap* on a
successor-structured overlay and genuinely cost more on an XOR-
structured one (``bench backends`` quantifies the gap).
"""

from __future__ import annotations

import bisect
import heapq
import random
from array import array
from collections import Counter

from ...faults.retry import RetryPolicy
from ...sim.async_net import AsyncRpcTransport
from ...sim.kernel import Simulator
from ...sim.network import LatencyModel, RpcTimeout, RpcTransport
from ..api import CostMeter, PeerRef
from ..vantage import EntryVantageMixin
from .idspace import bucket_index, bucket_range, id_to_point, point_to_target_id
from .node import KademliaLookupError_, KademliaNode

__all__ = ["KademliaNetwork", "KademliaDHT"]

#: Protocol-faithful identifier width (Kademlia's SHA-1 space).  Sims
#: routinely pass something smaller: routing behaviour only depends on
#: ids being distinct, while table wiring and probe bounds scale with m.
DEFAULT_BITS = 160


class KademliaNetwork:
    """A simulated Kademlia overlay plus the machinery to keep it fresh.

    Nodes live in an :class:`~repro.sim.network.RpcTransport`; a
    :class:`~repro.sim.kernel.Simulator` (optional) drives periodic
    bucket refresh for churn experiments, or callers invoke
    :meth:`refresh_round` directly for lock-step experiments.
    """

    def __init__(
        self,
        m: int = DEFAULT_BITS,
        k: int = 20,
        alpha: int = 3,
        rng: random.Random | None = None,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        sim: Simulator | None = None,
        loss_rng: random.Random | None = None,
        async_transport: bool = False,
    ):
        if m < 3:
            raise ValueError("identifier space needs at least 3 bits")
        self.m = m
        self.k = k
        self.alpha = alpha
        self.rng = rng if rng is not None else random.Random()
        self.sim = sim if sim is not None else Simulator()
        if async_transport:
            # The message-level transport: requests/replies as scheduled
            # events on this network's simulator (see repro.sim.async_net).
            self.transport: RpcTransport = AsyncRpcTransport(
                self.sim,
                latency=latency,
                rng=self.rng,
                loss_rate=loss_rate,
                loss_rng=loss_rng,
            )
        else:
            self.transport = RpcTransport(
                latency=latency, rng=self.rng, loss_rate=loss_rate, loss_rng=loss_rng
            )
        self.nodes: dict[int, KademliaNode] = {}
        #: Monotone counter bumped by every membership or maintenance
        #: event; epoch-keyed oracle caches (:meth:`sorted_ids`,
        #: :meth:`points_array`) rebuild lazily when it moves, exactly
        #: like the Chord network's cache discipline.
        self.churn_epoch = 0
        self._sorted_cache: list[int] | None = None
        self._sorted_epoch = -1
        self._points_cache: array | None = None
        self._points_epoch = -1

    # -- bootstrap ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        n: int,
        m: int = DEFAULT_BITS,
        k: int = 20,
        alpha: int = 3,
        rng: random.Random | None = None,
        perfect: bool = True,
        **kwargs,
    ) -> "KademliaNetwork":
        """Create an overlay of ``n`` nodes with distinct random ids.

        ``perfect=True`` fills every k-bucket from the oracle membership
        (the fixed point a fully-refreshed network converges to), so
        experiments start from correct routing state.  ``perfect=False``
        bootstraps by sequential joins with a refresh round between
        them, exercising the join/refresh protocol itself.
        """
        net = cls(m=m, k=k, alpha=alpha, rng=rng, **kwargs)
        if n < 1:
            raise ValueError("need at least one node")
        ids = net._draw_distinct_ids(n)
        if perfect:
            for node_id in ids:
                net._register(node_id)
            net.wire_perfectly()
        else:
            net._register(ids[0])
            for node_id in ids[1:]:
                net.join_node(node_id)
                net.refresh_round()
        return net

    def _register(self, node_id: int) -> KademliaNode:
        node = KademliaNode(node_id, self.m, self.transport, self.k, self.alpha)
        self.nodes[node_id] = node
        self.transport.register(node_id, node)
        return node

    def _draw_distinct_ids(self, count: int) -> list[int]:
        size = 1 << self.m
        if count > size:
            raise ValueError(f"cannot place {count} nodes in a 2^{self.m} id space")
        chosen: set[int] = set(self.nodes)
        fresh: list[int] = []
        while len(fresh) < count:
            candidate = self.rng.randrange(size)
            if candidate not in chosen:
                chosen.add(candidate)
                fresh.append(candidate)
        return fresh

    def bump_epoch(self) -> None:
        """Invalidate epoch-keyed caches after a state mutation."""
        self.churn_epoch += 1

    def wire_perfectly(self) -> None:
        """Set every routing table to the fully-refreshed fixed point.

        For each node and each bucket, the bucket's aligned id block is
        sliced out of the global sorted membership; blocks holding more
        than ``k`` ids contribute ``k`` rank-evenly-spaced members --
        deterministic, and spreading the finger-like coverage a healthy
        refresh regime produces.  Oracle wiring, free of messages.
        """
        ids = sorted(self.nodes)
        for node_id, node in self.nodes.items():
            for i in range(self.m):
                base, end = bucket_range(node_id, i)
                lo = bisect.bisect_left(ids, base)
                hi = bisect.bisect_left(ids, end)
                count = hi - lo
                if count == 0:
                    members: list[int] = []
                elif count <= self.k:
                    members = ids[lo:hi]
                else:
                    members = [
                        ids[lo + (j * count) // self.k] for j in range(self.k)
                    ]
                node.load_bucket(i, members)
        self.bump_epoch()

    # -- membership ----------------------------------------------------------

    def join_node(self, node_id: int | None = None) -> KademliaNode:
        """Add one node via the real bootstrap protocol (entry + self-lookup)."""
        if node_id is None:
            node_id = self._draw_distinct_ids(1)[0]
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already in the overlay")
        entry = self._random_alive_id(excluding=node_id)
        node = self._register(node_id)
        if entry is not None:
            node.join(entry)
        self.bump_epoch()
        return node

    def crash_node(self, node_id: int) -> None:
        """Fail-stop: the node vanishes without telling anyone."""
        self._remove(node_id)

    def leave_node(self, node_id: int) -> None:
        """Departure.  Kademlia has no splice-out protocol: a leave is
        observationally a crash, and the overlay relies on LRU eviction
        and refresh to forget the departed -- one of the liveness-model
        differences the cross-backend tests pin down."""
        self._remove(node_id)

    def _remove(self, node_id: int) -> None:
        if node_id not in self.nodes:
            raise KeyError(f"no node {node_id}")
        del self.nodes[node_id]
        self.transport.deregister(node_id)
        self.bump_epoch()

    def _random_alive_id(self, excluding: int | None = None) -> int | None:
        pool = [i for i in self.nodes if i != excluding]
        if not pool:
            return None
        return self.rng.choice(pool)

    def __len__(self) -> int:
        return len(self.nodes)

    # -- maintenance -----------------------------------------------------------

    def refresh_round(self) -> None:
        """One lock-step maintenance round over all nodes (random order).

        Kademlia's stabilization analogue: each node repairs its own
        neighbourhood, probes one random far target and liveness-checks
        one stale contact (see :meth:`KademliaNode.refresh`).  All
        traffic runs through the transport and is charged.
        """
        order = list(self.nodes)
        self.rng.shuffle(order)
        for node_id in order:
            node = self.nodes.get(node_id)
            if node is None:  # removed mid-round
                continue
            node.refresh(self.rng)
        self.bump_epoch()

    def purge_dead_contacts(self) -> int:
        """Drop every dead contact from every routing table (uncharged).

        The Kademlia arm of mass-failure recovery: Chord heals by
        successor-list failover plus ring merging, while Kademlia's
        tables only forget the dead lazily, one timeout at a time.
        This oracle-assisted anti-entropy pass (see
        :meth:`KademliaNode.purge_dead`) models the obituary dissemination
        a production deployment gets from gossip, compressing the long
        eviction tail so refresh rounds can rebuild coverage from live
        contacts.  Returns the total number of entries dropped.
        """
        alive = frozenset(self.nodes)
        dropped = 0
        for node in self.nodes.values():
            dropped += node.purge_dead(alive)
        self.bump_epoch()
        return dropped

    def rebootstrap(self) -> None:
        """Every node re-runs the join protocol through a random entry.

        The partition-healing arm: an outage long enough for both sides
        to evict each other's contacts leaves two overlays that share an
        id space but no table entries, and :meth:`refresh_round` can
        only rediscover peers through existing contacts -- a fully split
        table never re-links.  Deployed networks close this gap with
        well-known bootstrap peers that nodes re-contact once
        connectivity returns; we model that here.  Entry selection is
        the only oracle step (the bootstrap set spans the partition, as
        in :meth:`join_node`); everything else is the real protocol and
        every message is charged.  Two passes, as in the paper's join:
        first every node re-learns an entry and looks itself up
        (announcing itself along the path), then every node refreshes
        each bucket range (:meth:`KademliaNode.refresh_all_buckets`) --
        the second pass re-seeds tree branches that emptied wholesale
        during the outage, which neighbourhood self-lookups alone can
        never reach.  The sweep's lookups run ``thorough`` (full
        top-``k`` termination frontier): the only surviving route into a
        dark branch is often a mid-distance contact the steady-state
        alpha frontier would skip right over.
        """
        order = list(self.nodes)
        self.rng.shuffle(order)
        for node_id in order:
            node = self.nodes.get(node_id)
            if node is None:
                continue
            entry = self._random_alive_id(excluding=node_id)
            if entry is not None:
                node.join(entry)
        for node_id in order:
            node = self.nodes.get(node_id)
            if node is None:
                continue
            node.refresh_all_buckets(self.rng)
        self.bump_epoch()

    # Chord-compatible names, so the scenario runner and churn tooling
    # drive either backend through one vocabulary.
    stabilize_round = refresh_round

    def run_stabilization(self, rounds: int, **_ignored) -> None:
        """Run several lock-step refresh rounds back to back."""
        for _ in range(rounds):
            self.refresh_round()

    def start_periodic_maintenance(self, interval: float = 8.0):
        """Schedule bucket refresh on the simulator clock (churn runs)."""
        return self.sim.every(interval, self.refresh_round)

    # -- oracles for tests and analysis ----------------------------------------

    def sorted_ids(self) -> list[int]:
        """Alive identifiers in clockwise ring order (oracle view)."""
        if (
            self._sorted_cache is None
            or self._sorted_epoch != self.churn_epoch
            or len(self._sorted_cache) != len(self.nodes)
        ):
            self._sorted_cache = sorted(self.nodes)
            self._sorted_epoch = self.churn_epoch
        return self._sorted_cache

    def points_array(self) -> array:
        """Alive peer points, sorted, as a flat float array (oracle view).

        Note the wrap: id 0 maps to point 1.0, so when node 0 is alive
        its point sorts *last* while its id sorts first; the array is
        built in point order to keep index arithmetic consistent with
        :meth:`KademliaDHT.successor_of_index`.
        """
        if self._points_cache is None or self._points_epoch != self.churn_epoch:
            pts = sorted(id_to_point(i, self.m) for i in self.nodes)
            self._points_cache = array("d", pts)
            self._points_epoch = self.churn_epoch
        return self._points_cache

    def routing_is_correct(self) -> bool:
        """Every node's working neighbourhood is converged and live.

        The convergence invariant refresh must restore once churn stops
        -- the analogue of Chord's successor-ring correctness, stated at
        the strength Kademlia actually guarantees: for each node,

        - its ``min(k, n-1)`` XOR-closest *table* contacts are all
          alive (the entries lookups and walks answer from), and
        - every member of its true ``min(k, n-1)``-closest live set
          whose distance class fits in a bucket (at most ``k`` live
          members) is present in the table.  Classes with more than
          ``k`` members are bucket-capacity ties: the table holds
          *some* ``k`` of them, and which ``k`` is uptime policy, not
          correctness.

        An O(n^2) oracle check, meant for scenario-sized overlays.
        """
        ids = self.sorted_ids()
        n = len(ids)
        want = min(self.k, n - 1)
        if want <= 0:
            return True
        alive = set(ids)
        for node_id, node in self.nodes.items():
            table = set(node.contacts())
            top = heapq.nsmallest(want, table, key=lambda i: node_id ^ i)
            if not all(c in alive for c in top):
                return False
            expected = sorted(
                (i for i in ids if i != node_id), key=lambda i: node_id ^ i
            )[:want]
            class_counts = Counter(
                bucket_index(node_id, i) for i in ids if i != node_id
            )
            for neighbor in expected:
                if class_counts[bucket_index(node_id, neighbor)] > self.k:
                    continue  # bucket-capacity tie class
                if neighbor not in table:
                    return False
        return True

    # The scenario runner's recovery verdict hook; for Kademlia "the
    # ring" is the XOR neighbourhood structure.
    ring_is_correct = routing_is_correct

    def dht(
        self,
        entry_id: int | None = None,
        retry_policy: RetryPolicy | None = None,
        retry_rng: random.Random | None = None,
    ) -> "KademliaDHT":
        """An ``h``/``next`` adapter rooted at ``entry_id`` (default: any)."""
        return KademliaDHT(
            self, entry_id=entry_id, retry_policy=retry_policy, retry_rng=retry_rng
        )

    @classmethod
    def build_dht(
        cls,
        n: int,
        m: int = 32,
        k: int = 20,
        alpha: int = 3,
        rng: random.Random | None = None,
        **kwargs,
    ) -> "KademliaDHT":
        """Build a perfectly-wired overlay and return its DHT adapter.

        The shared constructor for workloads, the serving layer and the
        CLI, mirroring ``ChordNetwork.build_dht``.  Note the *practical*
        default of ``m=32`` here (the raw network class defaults to the
        protocol-faithful 160): adapter semantics are identical for any
        ``m`` with ``2**m >= n``, while table wiring and successor-probe
        bounds scale with ``m``.
        """
        if n > (1 << m):
            raise ValueError(f"identifier space 2^{m} too small for n={n}")
        return cls.build(n, m=m, k=k, alpha=alpha, rng=rng, **kwargs).dht()


class KademliaDHT(EntryVantageMixin):
    """The paper's DHT interface over a live :class:`KademliaNetwork`.

    ``h(x)`` runs the aligned-block successor resolution from the entry
    node -- one iterative XOR lookup in the common case -- charging the
    *measured* message count and latency.  ``next(p)`` asks ``p`` for
    its clockwise neighbourhood in one RPC (ring-parity O(1) on
    converged tables; see :meth:`next`), falling back to a full
    successor resolution when ``p`` is dead or cannot answer -- so
    Theorem 7's cost premises are *measured* against XOR routing rather
    than assumed, which is what the backend comparison bench
    quantifies.

    Like :class:`~repro.dht.chord.ChordDHT`, this adapter deliberately
    does **not** satisfy :class:`~repro.dht.api.BulkDHT`: a live overlay
    has no unit-priced operations, so ``bulk_op_costs`` is omitted and
    batch samplers keep metering real per-lookup charges through the
    per-call fallback (``h_many``/``resolve_many`` below are
    charge-identical batched conveniences, not a flat-array fast path).
    ``points_array``/``successor_of_index`` are provided as *oracle*
    views for tests and analysis tooling, free of cost, mirroring the
    other substrates.
    """

    def __init__(
        self,
        network: KademliaNetwork,
        entry_id: int | None = None,
        retries: int = 3,
        retry_policy: RetryPolicy | None = None,
        retry_rng: random.Random | None = None,
    ):
        if not network.nodes:
            raise ValueError("cannot adapt an empty network")
        self._network = network
        if entry_id is None:
            entry_id = min(network.nodes)
        if entry_id not in network.nodes:
            raise KeyError(f"entry node {entry_id} is not alive")
        self._entry_id = entry_id
        #: Retry discipline; the default reproduces the historical
        #: ``retries`` back-to-back attempts with no backoff (see the
        #: matching contract on ChordDHT).
        self._retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(attempts=max(1, retries), base_delay=0.0, factor=1.0)
        )
        self._retry_rng = retry_rng
        self._retries = self._retry_policy.attempts
        self.cost = CostMeter()
        #: Successor probes beyond the first lookup (boundary hops of the
        #: aligned-block search) -- observability for benches and tests.
        self.extra_probes = 0
        #: ``next`` hops served by one neighbour query vs full successor
        #: resolutions -- observability for the backend bench.
        self.neighbor_hops = 0
        self.resolved_hops = 0

    def _ref(self, node_id: int) -> PeerRef:
        return PeerRef(peer_id=node_id, point=id_to_point(node_id, self._network.m))

    @property
    def transport(self):
        """The underlying transport (tracer installation, introspection)."""
        return self._network.transport

    # entry_id / entry_is_alive / refresh_entry / _entry_node come from
    # EntryVantageMixin -- the failover discipline shared with ChordDHT.

    # -- the paper's primitives -------------------------------------------

    def _resolve(self, target: int) -> int:
        """Successor of ``target`` with the adapter's retry discipline.

        A failed probe already evicted the dead contacts it met, and a
        stale-head sweep of the entry's buckets between attempts clears
        more of the casualties a crash burst left behind -- targeted,
        entry-local repair, the Kademlia analogue of the Chord adapter
        forcing a stabilization round between lookup retries (and far
        cheaper than one: periodic refresh owns systemic repair).
        """
        policy = self._retry_policy
        transport = self._network.transport
        last_error: Exception | None = None
        for failure in range(1, policy.attempts + 1):
            entry = self._entry_node()
            if failure > 1:
                entry.probe_stale()
            try:
                result = entry.find_successor(target)
            except KademliaLookupError_ as exc:
                last_error = exc
                if policy.should_retry(failure):
                    # Charge the backoff wait before the stale sweep so
                    # the retry sees post-wait table state; the failed
                    # attempt's messages stay on the meter regardless.
                    transport.metrics.counter("rpc.retries").increment()
                    delay = policy.delay(failure, self._retry_rng)
                    if delay > 0:
                        transport.charge_delay(delay)
                continue
            self.extra_probes += result.probes - 1
            return result.node_id
        raise KademliaLookupError_(
            f"successor of {target} failed after {policy.attempts} attempts: "
            f"{last_error}"
        )

    def h(self, x: float) -> PeerRef:
        """``h(x)`` via XOR successor resolution (cost: measured)."""
        target = point_to_target_id(x, self._network.m)
        transport = self._network.transport
        tracing = transport.tracer.active
        before_msgs = transport.messages_sent
        before_time = transport.elapsed
        before_calls = (
            transport.metrics.counter("rpc.calls").value if tracing else 0
        )
        owner = None
        try:
            owner = self._resolve(target)
        finally:
            msgs = transport.messages_sent - before_msgs
            latency = transport.elapsed - before_time
            self.cost.charge_h(msgs, latency)
            if tracing:
                transport.tracer.on_lookup(
                    "kademlia",
                    transport.metrics.counter("rpc.calls").value - before_calls,
                    msgs,
                    latency,
                    owner is not None,
                )
        return self._ref(owner)

    def next(self, peer: PeerRef) -> PeerRef:
        """``next(p)`` via one ``find_clockwise`` RPC to ``p`` (cost: O(1)).

        ``p`` answers from its own routing table; on converged tables
        the first clockwise-at-or-after entry for target ``p + 1`` is
        exactly ``p``'s successor (see
        :meth:`~repro.dht.kademlia.node.KademliaNode.find_clockwise`
        for the block-minimum argument), restoring ring-parity ``next``
        cost on an overlay with no successor pointers.  A dead ``p`` --
        it crashed under us mid-walk -- falls back to a full successor
        resolution of its point, mirroring the Chord adapter's
        timeout-to-``h`` failover; the same full resolution backstops
        the (dynamics-only) case of a reply with no usable candidate.
        """
        size = 1 << self._network.m
        target = (peer.peer_id + 1) % size
        transport = self._network.transport
        before_msgs = transport.messages_sent
        before_time = transport.elapsed
        try:
            reply = transport.rpc(
                peer.peer_id, "find_clockwise", target, self._entry_id
            )
        except RpcTimeout:
            reply = None
        if reply:
            self.neighbor_hops += 1
            self.cost.charge_next(
                transport.messages_sent - before_msgs,
                transport.elapsed - before_time,
            )
            return self._ref(reply[0])
        try:
            self.resolved_hops += 1
            owner = self._resolve(target)
        finally:
            self.cost.charge_next(
                transport.messages_sent - before_msgs,
                transport.elapsed - before_time,
            )
        return self._ref(owner)

    def any_peer(self) -> PeerRef:
        return self._ref(self._entry_node().node_id)

    # -- batched conveniences (charge-identical to per-call loops) ---------

    def h_many(self, xs) -> list[PeerRef]:
        """``h`` over a vector of points, charge-identical to a scalar loop."""
        return [self.h(x) for x in xs]

    def resolve_many(self, xs) -> list[PeerRef | None]:
        """Failure-tolerant :meth:`h_many`: per-point ``None`` on failure.

        Mirrors a loop of ``h`` calls with the substrate's retryable
        liveness error caught per point, which is what the batch
        engine's fallback path expects from live overlays.
        """
        out: list[PeerRef | None] = []
        for x in xs:
            try:
                out.append(self.h(x))
            except KademliaLookupError_:
                out.append(None)
        return out

    # -- oracle views (uncharged, mirroring the other substrates) ----------

    def points_array(self):
        """Sorted live peer points (oracle view, free of cost)."""
        return self._network.points_array()

    def successor_of_index(self, i: int) -> PeerRef:
        """The live peer at clockwise ring position ``i % n`` (uncharged).

        Index order follows the *point* circle (id 0 owns point 1.0 and
        therefore sorts last), consistent with :meth:`points_array`.
        """
        ids = self._network.sorted_ids()
        n = len(ids)
        if ids and ids[0] == 0:
            # id 0 lives at point 1.0: rotate it to the end of the
            # point-ordered view.
            return self._ref(ids[(i % n + 1) % n])
        return self._ref(ids[i % n])
