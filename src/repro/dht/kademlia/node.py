"""A Kademlia node: k-buckets, iterative lookups, successor resolution.

The node follows Maymounkov & Mazieres: the routing table is a sparse
set of *k-buckets* (bucket ``i`` holds up to ``k`` contacts at XOR
distance ``[2**i, 2**(i+1))``, least-recently-seen first), updated
opportunistically from every message observed and defended by the
classic LRU rule -- a full bucket pings its stalest entry through the
simulated transport (charged like any other traffic) and only evicts it
if the ping times out.  Lookups are *iterative* with configurable
``alpha`` concurrency: the querying client keeps a shortlist sorted by
XOR distance, queries the ``alpha`` closest unqueried candidates per
round, and terminates when the ``k`` closest nodes it knows of have all
responded.  (The sim transport is synchronous, so ``alpha`` shapes the
candidate frontier and fault tolerance rather than wall latency --
the same sequential-RPC simplification the Chord simulator documents.)

Successor resolution
--------------------

The paper's ``h(x)`` needs the peer *clockwise-closest* to a point,
which is not Kademlia's native metric: numeric adjacency and XOR
adjacency disagree whenever an interval crosses a high bit boundary
(``0x7ff -> 0x800`` is numerically adjacent but XOR-maximal).
:meth:`KademliaNode.find_successor` bridges the metrics with *aligned
block certification*: a converged ``find_node(q)`` returns the ``k``
XOR-closest live nodes to ``q``, i.e. a complete census of the XOR ball
of radius ``D`` = the ``k``-th best distance.  Inside the aligned block
``[q, limit)`` of :func:`~repro.dht.kademlia.idspace.aligned_limit`,
XOR distance from ``q`` *equals* numeric offset, so that census is also
a complete, ordered census of the id interval ``[q, limit)``: the
smallest in-interval result is the true successor, and no in-interval
result certifies the interval empty.  The search hops ``q`` from
boundary to boundary clockwise; each hop lands ``q`` on an ever
coarser-aligned base, so the certified stretch grows geometrically and
the expected probe count is barely above one lookup (the worst case --
an adversarially empty run of blocks -- is bounded by the ``O(m)``
blocks of the ring decomposition).
"""

from __future__ import annotations

import heapq
from bisect import bisect_left
from dataclasses import dataclass, field

from ...sim.network import RpcTimeout, RpcTransport
from ..api import PeerUnreachableError
from .idspace import aligned_limit, bucket_index, id_to_point, xor_distance

__all__ = [
    "KademliaNode",
    "KademliaLookupError_",
    "LookupOutcome",
    "SuccessorResult",
    "lookup_budget",
]


def lookup_budget(m: int, k: int) -> int:
    """Per-lookup RPC budget: ``4 * m + 2 * k``.

    Convergence needs ``O(log n) <= m`` prefix-improving hops plus up to
    ``k`` confirmation queries of the final shortlist; the headroom
    absorbs reroutes around fresh crashes, mirroring Chord's
    :func:`~repro.dht.chord.node.hop_budget`.
    """
    return 4 * m + 2 * k


class KademliaLookupError_(PeerUnreachableError):
    """An iterative lookup could not converge (dead contacts mid-churn).

    Subclasses :class:`~repro.dht.api.PeerUnreachableError` so
    substrate-agnostic layers treat it as a retryable liveness failure
    without importing Kademlia, exactly like Chord's ``LookupError_``.
    """


@dataclass(frozen=True, slots=True)
class LookupOutcome:
    """What one converged iterative lookup established.

    ``ids`` are the up-to-``k`` XOR-closest nodes to the target the
    lookup *learned of*, sorted by distance; ``queried`` is the subset
    whose liveness the lookup confirmed first-hand (consumers needing a
    live peer ping the others before use).  ``complete`` is True when
    the confirmation frontier was exhausted without a single failure --
    the only state in which ``len(ids) < k`` may be read as "the whole
    network has fewer than ``k`` reachable nodes".
    """

    ids: tuple[int, ...]
    queried: frozenset
    rpcs: int
    failures: int
    complete: bool


@dataclass(frozen=True, slots=True)
class SuccessorResult:
    """Outcome of a successor resolution: the owner plus what came free.

    ``census`` is the certified run of *consecutive clockwise* live
    nodes starting at the owner -- every live id in the final probe's
    certified stretch, in ring order.  The resolution already paid to
    fetch these contacts, so a client walking the ring (the sampler's
    ``next`` loop) may consume them with per-hop liveness pings instead
    of a fresh lookup per hop, the XOR-overlay analogue of walking a
    Chord successor list.
    """

    node_id: int
    probes: int  # iterative lookups issued (1 in the common case)
    rpcs: int  # total find_node/ping RPCs across those lookups
    census: tuple[int, ...] = ()


@dataclass
class _Shortlist:
    """Candidate bookkeeping of one iterative lookup."""

    target: int
    known: set = field(default_factory=set)
    queried: set = field(default_factory=set)
    failed: set = field(default_factory=set)

    def add(self, ids) -> None:
        self.known.update(i for i in ids if i not in self.failed)

    def best(self, count: int):
        return heapq.nsmallest(
            count,
            (i for i in self.known if i not in self.failed),
            key=lambda i: self.target ^ i,
        )


class KademliaNode:
    """One Kademlia peer.  All remote interaction goes through the transport."""

    def __init__(
        self,
        node_id: int,
        m: int,
        transport: RpcTransport,
        k: int = 20,
        alpha: int = 3,
    ):
        if k < 1:
            raise ValueError("bucket size k must be >= 1")
        if alpha < 1:
            raise ValueError("lookup concurrency alpha must be >= 1")
        self.node_id = node_id
        self.m = m
        # Node-scoped endpoint: RPCs carry this node as the source, so
        # partitions and grey failures can attribute each delivery
        # (mirrors ChordNode; raw transports are wrapped, endpoints pass).
        make_endpoint = getattr(transport, "endpoint", None)
        self._transport = (
            make_endpoint(node_id) if make_endpoint is not None else transport
        )
        self.k = k
        self.alpha = alpha
        #: Sparse routing table: bucket index -> contact ids, least
        #: recently seen first (the LRU discipline of the paper).
        self.buckets: dict[int, list[int]] = {}
        #: Per-bucket replacement caches (Kademlia sec. 4.1): contacts
        #: observed while their bucket was full, promoted when a bucket
        #: member is seen to fail.  Avoids pinging the stale head on
        #: every observation -- the paper's own traffic optimization.
        self.replacements: dict[int, list[int]] = {}
        self._contact_set: set[int] = set()
        # Lazily-maintained sorted view of (contacts + self), backing the
        # ring-ordered find_clockwise answers; invalidated on membership
        # changes (not on LRU reorderings, which don't affect it).
        self._ring_cache: list[int] | None = None

    # -- identity ---------------------------------------------------------

    @property
    def point(self) -> float:
        """The node's peer point ``l(p)`` on the unit circle."""
        return id_to_point(self.node_id, self.m)

    def __repr__(self) -> str:
        return f"KademliaNode(id={self.node_id}, m={self.m}, k={self.k})"

    # -- routing-table maintenance ----------------------------------------

    def contacts(self) -> list[int]:
        """Every contact currently in the table (unordered)."""
        return list(self._contact_set)

    def knows(self, contact_id: int) -> bool:
        return contact_id in self._contact_set

    def observe(self, contact_id: int) -> None:
        """Fold an observed sender/contact into its bucket (LRU rule).

        A known contact moves to the tail (most recently seen); a new
        contact joins a non-full bucket directly.  A *full* bucket keeps
        its members (Kademlia's proven uptime-bias) and parks the
        newcomer in the replacement cache instead, to be promoted when a
        member is seen to fail -- the paper's sec. 4.1 optimization that
        liveness-checks stale entries lazily (:meth:`probe_stale`, or a
        lookup timing out on them) rather than pinging on every message.
        """
        if contact_id == self.node_id:
            return
        i = bucket_index(self.node_id, contact_id)
        bucket = self.buckets.setdefault(i, [])
        if contact_id in self._contact_set:
            bucket.remove(contact_id)
            bucket.append(contact_id)
            return
        if len(bucket) < self.k:
            bucket.append(contact_id)
            self._contact_set.add(contact_id)
            self._ring_cache = None
            return
        cache = self.replacements.setdefault(i, [])
        if contact_id in cache:
            cache.remove(contact_id)
        cache.append(contact_id)
        if len(cache) > self.k:
            cache.pop(0)

    def load_bucket(self, i: int, members: list[int]) -> None:
        """Overwrite bucket ``i`` wholesale (oracle wiring, free of RPCs)."""
        old = self.buckets.pop(i, None)
        if old:
            self._contact_set.difference_update(old)
        self.replacements.pop(i, None)
        self._ring_cache = None
        if members:
            self.buckets[i] = list(members)
            self._contact_set.update(members)

    def forget(self, contact_id: int) -> None:
        """Drop a contact observed dead, promoting from the replacement
        cache (most recently seen first) into the freed slot."""
        if contact_id == self.node_id or contact_id not in self._contact_set:
            return
        i = bucket_index(self.node_id, contact_id)
        bucket = self.buckets.get(i)
        if bucket is not None:
            try:
                bucket.remove(contact_id)
            except ValueError:
                pass
            cache = self.replacements.get(i)
            while cache and len(bucket) < self.k:
                promoted = cache.pop()
                if promoted not in self._contact_set and promoted != contact_id:
                    bucket.append(promoted)
                    self._contact_set.add(promoted)
            if not bucket:
                del self.buckets[i]
        self._contact_set.discard(contact_id)
        self._ring_cache = None

    def closest_known(self, target_id: int, count: int) -> list[int]:
        """Up to ``count`` table contacts closest to ``target_id`` in XOR."""
        return heapq.nsmallest(
            count, self._contact_set, key=lambda i: target_id ^ i
        )

    def probe_stale(self) -> int:
        """Ping each bucket's least-recently-seen contact, evicting the dead.

        The per-round maintenance analogue of Chord pinging its
        successor list and predecessor: one charged liveness probe per
        non-empty bucket, aimed at the stalest entry.  A survivor
        rotates to the tail, so successive rounds cycle through a
        bucket's members and every stale entry is eventually checked
        even without insert pressure; a casualty is evicted (promoting
        from the replacement cache).  Returns how many were evicted.
        """
        evicted = 0
        for i in sorted(self.buckets):
            bucket = self.buckets.get(i)
            if not bucket:
                continue
            stalest = bucket[0]
            try:
                self._transport.rpc(stalest, "ping")
            except RpcTimeout:
                self.forget(stalest)
                evicted += 1
                continue
            bucket.remove(stalest)
            bucket.append(stalest)
        return evicted

    def purge_dead(self, alive) -> int:
        """Scrub every table entry not in ``alive`` (oracle anti-entropy).

        After a correlated mass-kill, waiting for per-bucket lazy
        eviction to discover each casualty one timeout at a time is the
        slow path; the recovery machinery instead hands nodes the oracle
        membership once and lets them drop the dead wholesale, free of
        RPCs -- the bookkeeping a gossiped obituary feed would produce.
        Replacement caches are scrubbed *first* so :meth:`forget`'s
        promotions never resurrect a casualty.  Returns how many table
        contacts were dropped.
        """
        for i in list(self.replacements):
            cache = [c for c in self.replacements[i] if c in alive]
            if cache:
                self.replacements[i] = cache
            else:
                del self.replacements[i]
        dead = [c for c in self._contact_set if c not in alive]
        for contact_id in dead:
            self.forget(contact_id)
        return len(dead)

    # -- RPC-exposed methods (invoked via the transport) -------------------

    def ping(self) -> bool:
        """Liveness probe."""
        return True

    def find_node(self, target_id: int, sender_id: int | None = None) -> list[int]:
        """The up-to-``k`` closest contacts to ``target_id`` this node knows.

        Folds the sender into the routing table first (every message is
        an observation -- Kademlia's opportunistic maintenance).
        """
        if sender_id is not None:
            self.observe(sender_id)
        return self.closest_known(target_id, self.k)

    def find_clockwise(self, target_id: int, sender_id: int | None = None) -> list[int]:
        """The up-to-``k`` known ids closest *clockwise at-or-after* the target.

        The ring-oriented twin of :meth:`find_node`, answering from the
        same routing table with ring distance instead of XOR distance
        (the node itself included -- it may be the only peer).  This is
        what makes a walk hop one RPC: a node's bucket for the block
        containing its clockwise successor always holds that block's
        numeric minimum on converged tables (no ids lie between a node
        and its successor, so the successor *is* its block's minimum,
        and refresh keeps near blocks complete), hence the first entry
        of the reply from peer ``p`` for target ``p + 1`` is exactly
        ``next(p)``.
        """
        if sender_id is not None:
            self.observe(sender_id)
        ring = self._ring_view()
        i = bisect_left(ring, target_id)
        take = min(self.k, len(ring))
        return [ring[(i + j) % len(ring)] for j in range(take)]

    def _ring_view(self) -> list[int]:
        """Contacts plus self in sorted id order (cached between changes)."""
        if self._ring_cache is None:
            self._ring_cache = sorted([*self._contact_set, self.node_id])
        return self._ring_cache

    # -- client-driven iterative lookup ------------------------------------

    def iterative_find_node(
        self,
        target_id: int,
        excluded: frozenset = frozenset(),
        max_rpcs: int | None = None,
        thorough: bool = False,
    ) -> LookupOutcome:
        """Converge on the ``k`` XOR-closest known nodes to the target.

        Rounds of up to ``alpha`` queries to the closest unqueried
        candidates; responses merge their contacts into the shortlist,
        timeouts evict the casualty from our table and mark it failed.
        Terminates when the ``alpha`` best known candidates have all
        responded -- the nodes closest to the target, whose tables
        between them hold the target's whole neighbourhood -- or, while
        fewer than ``k`` nodes are known at all, when *every* known
        candidate has responded (so a small-network result is a full
        enumeration).  The outcome lists the top-``k`` known (confirmed
        and learned; consumers ping learned entries before use).
        Failures never raise here -- the ``complete`` flag carries the
        verdict and :meth:`find_successor` escalates a truncated census
        to the retryable :class:`KademliaLookupError_`.

        ``thorough`` widens the termination frontier from the
        ``alpha`` best candidates to the full top-``k`` pool (the
        original paper's rule): the lookup only stops once every one of
        the ``k`` closest known nodes has responded.  Steady-state
        traffic keeps the cheap alpha frontier; recovery sweeps use the
        thorough rule because after a branch of the tree went dark the
        only route back into it can sit behind a candidate the greedy
        frontier would never query.
        """
        budget = max_rpcs if max_rpcs is not None else lookup_budget(self.m, self.k)
        sl = _Shortlist(target=target_id)
        sl.known.add(self.node_id)
        sl.queried.add(self.node_id)  # we answer for ourselves, free of RPCs
        sl.add(i for i in self.closest_known(target_id, self.k) if i not in excluded)
        rpcs = 0
        failures = 0
        while rpcs < budget:
            pending = self._pending(sl, thorough)
            if not pending:
                break
            for contact in pending[: self.alpha]:
                if rpcs >= budget:
                    break
                rpcs += 1
                try:
                    found = self._transport.rpc(
                        contact, "find_node", target_id, self.node_id
                    )
                except RpcTimeout:
                    failures += 1
                    sl.failed.add(contact)
                    self.forget(contact)
                    continue
                sl.queried.add(contact)
                self.observe(contact)
                sl.add(i for i in found if i not in excluded)
        return LookupOutcome(
            ids=tuple(sl.best(self.k)),
            queried=frozenset(sl.queried - sl.failed),
            rpcs=rpcs,
            failures=failures,
            complete=(failures == 0 and not self._pending(sl, thorough)),
        )

    def _pending(self, sl: "_Shortlist", thorough: bool = False) -> list[int]:
        """Unqueried members of the confirmation frontier, closest first."""
        pool = sl.best(self.k)
        if not thorough and len(pool) >= self.k:
            pool = pool[: self.alpha]
        return [i for i in pool if i not in sl.queried]

    # -- successor resolution (the paper's ``h`` primitive) ----------------

    def find_successor(
        self, target_id: int, max_probes: int | None = None
    ) -> SuccessorResult:
        """The first node id clockwise of ``target_id`` (inclusive, wrapping).

        Implements the aligned-block certification of the module
        docstring: probe the XOR neighbourhood of the interval base,
        read the certified numeric stretch off the converged shortlist,
        and hop to the next aligned boundary while the stretch stays
        empty.  Raises :class:`KademliaLookupError_` when a probe cannot
        converge or the probe budget -- ``2 * m``, the worst-case block
        count of the ring decomposition, plus retry headroom -- runs
        out (both only plausible mid-churn).
        """
        size = 1 << self.m
        budget = max_probes if max_probes is not None else 2 * self.m + 8
        cur = target_id % size
        probes = 0
        rpcs = 0
        excluded: set[int] = set()
        while probes < budget:
            out = self.iterative_find_node(cur, excluded=frozenset(excluded))
            probes += 1
            rpcs += out.rpcs
            if len(out.ids) < self.k:
                if not out.complete:
                    raise KademliaLookupError_(
                        f"successor of {target_id}: census truncated by "
                        f"{out.failures} failures"
                    )
                # Fewer than k nodes reachable in total: the census is
                # the whole network (every member was queried by the
                # small-pool termination rule); answer from it directly,
                # with the full wrap-around ring as the certified run.
                ring = sorted(out.ids)
                owner = _clockwise_min(out.ids, target_id)
                pos = ring.index(owner)
                return SuccessorResult(
                    node_id=owner,
                    probes=probes,
                    rpcs=rpcs,
                    census=tuple(ring[pos:] + ring[:pos]),
                )
            radius = max(xor_distance(cur, i) for i in out.ids)
            if radius == 0:  # k == 1 and the sole census member sits on cur
                return SuccessorResult(
                    node_id=cur, probes=probes, rpcs=rpcs, census=(cur,)
                )
            limit = aligned_limit(cur, radius, self.m)
            in_reach = sorted(i for i in out.ids if cur <= i < limit)
            if in_reach:
                # Certified complete and numerically ordered within the
                # aligned stretch: in_reach[0] is the successor and the
                # whole list is a consecutive clockwise run.  A learned
                # (unconfirmed) owner is liveness-checked before being
                # handed out; a dead one is routed around by re-probing
                # the same base with it excluded.
                owner = in_reach[0]
                if owner != self.node_id and owner not in out.queried:
                    rpcs += 1
                    try:
                        self._transport.rpc(owner, "ping")
                    except RpcTimeout:
                        excluded.add(owner)
                        self.forget(owner)
                        continue
                return SuccessorResult(
                    node_id=owner,
                    probes=probes,
                    rpcs=rpcs,
                    census=tuple(in_reach),
                )
            cur = limit % size  # certified empty: hop to the next boundary
        raise KademliaLookupError_(
            f"successor of {target_id} not certified within {budget} probes"
        )

    # -- membership -------------------------------------------------------

    def join(self, entry_id: int) -> None:
        """Bootstrap through ``entry_id``: learn it, then look ourselves up.

        The self-lookup walks the query toward our own id, populating
        our buckets with the responders and -- since every queried node
        observes the sender -- announcing us along the whole path.  A
        node whose bootstrap fails outright stays isolated and is
        adopted later by refresh traffic, like a Chord joiner that lost
        its join RPCs.
        """
        self.observe(entry_id)
        try:
            self.iterative_find_node(self.node_id)
        except KademliaLookupError_:
            pass

    def refresh_all_buckets(self, rng) -> None:
        """Look up one random id in every bucket's range (paper sec. 2.3).

        The original join procedure ends by refreshing every bucket
        further away than the closest neighbour; this is that sweep.
        Routine maintenance (:meth:`refresh`) covers far buckets only in
        proportion to how often traffic crosses them, which is the right
        steady-state economy but can never repair a *branch* of the tree
        that emptied wholesale -- after a long partition, every contact
        a node held in some prefix range may be gone, and no lookup can
        route through a range nobody references.  One charged lookup per
        bucket range re-seeds each branch from whatever the current
        tables do reach.  The sweep uses thorough lookups (full top-``k``
        termination frontier): the lone surviving route into a dark
        branch is often a mid-distance contact the greedy alpha frontier
        would skip right over.
        """
        for i in range(self.m):
            target = self.node_id ^ rng.randrange(1 << i, 1 << (i + 1))
            try:
                self.iterative_find_node(target, thorough=True)
            except KademliaLookupError_:
                pass

    def refresh(self, rng) -> None:
        """One maintenance round: neighbourhood repair plus a far probe.

        Kademlia's stabilization analogue (scheduled periodically by the
        network, like Chord's ``stabilize``):

        - re-look up our own id, pulling the current XOR neighbourhood
          into the close buckets;
        - liveness-sweep the ``k`` closest contacts -- the entries
          ``find_clockwise`` and the successor census answer from --
          evicting the dead for replacement-cache promotions, the
          analogue of Chord pinging its successor list;
        - look up one uniformly random id, which lands in bucket ``i``
          with probability proportional to ``2**i``, weighting far-
          bucket refresh exactly by how often routing traverses it;
        - liveness-probe one stale far entry (:meth:`probe_stale`).

        All traffic runs through the transport and is charged.
        """
        for target in (self.node_id, rng.randrange(1 << self.m)):
            try:
                self.iterative_find_node(target)
            except KademliaLookupError_:
                pass
        for contact in self.closest_known(self.node_id, self.k):
            try:
                self._transport.rpc(contact, "ping")
            except RpcTimeout:
                self.forget(contact)
        self.probe_stale()


def _clockwise_min(ids, target_id: int) -> int:
    """The clockwise-first member of ``ids`` at or after ``target_id``."""
    at_or_after = [i for i in ids if i >= target_id]
    return min(at_or_after) if at_or_after else min(ids)
