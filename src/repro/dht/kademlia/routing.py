"""Struct-of-arrays Kademlia substrate: implicit k-buckets over flat arrays.

:class:`~repro.dht.kademlia.network.KademliaNetwork` materializes a
routing table per node -- m buckets of up to k contacts each, plus LRU
bookkeeping -- which is exactly the memory that stops the benches short
of a million nodes.  This module stores **no routing tables at all**:
the entire substrate is two sorted id arrays,

- ``basis`` -- the membership as of the last refresh round: the ids
  every (implicit) routing table was converged against, dead entries
  included.  This is the array the *tables are a function of*.
- ``live`` -- the current true membership.

A converged Kademlia table is fully determined by the membership it was
built from: bucket ``i`` of node ``v`` is the aligned sibling block
``bucket_range(v, i)``, holding all block members when there are at
most ``k`` and ``k`` rank-evenly-spaced ones otherwise (the same
selection :meth:`KademliaNetwork.wire_perfectly` makes).  So instead of
storing tables, a lookup *recomputes* the one bucket it needs per hop
from two binary searches of ``basis`` -- O(log n) work per hop, ~16
bytes per node total, and the stale-knowledge semantics of real
Kademlia fall out naturally: a crash only leaves ``basis``, and thus
every implicit table, at the next refresh round, exactly like bucket
eviction discovering dead contacts.

Lookups are XOR-descent followed by successor certification, mirroring
the live substrate's two phases: greedily hop to the bucket member
closest to the target (each hop provably lands inside the target's
aligned block, so progress is strict and bounded by ``m``), then walk
``basis`` clockwise from the target pinging candidates until the first
live one answers -- which is precisely the oracle owner ``first live id
>= target`` (wrapping), because ``basis`` is always a superset of
``live``.  Dead probes charge the timeout; live probes charge one RPC
round trip (the same deterministic constants as the SoA Chord
substrate); budget and retry discipline mirror the live adapter
(``lookup_budget(m, k)``, refresh between attempts).

Like :mod:`repro.dht.chord.soa`, this substrate has no transport -- the
conformance suite marks it ``transported=False`` -- and runs on plain
Python lists under ``REPRO_PURE_PYTHON``.
"""

from __future__ import annotations

import bisect
import random

from ...compat import load_numpy
from ..api import CostMeter, PeerRef
from ..vantage import EntryVantageMixin
from .idspace import bucket_index, bucket_range, id_to_point, point_to_target_id
from .node import KademliaLookupError_, lookup_budget

__all__ = ["SoAKademliaNetwork", "SoAKademliaDHT"]

_np = load_numpy()

#: Same deterministic charge constants as the SoA Chord substrate (and
#: the live transport defaults): one-way 1.0, round trip 2.0, dead 8.0.
ONE_WAY_LATENCY = 1.0
RPC_LATENCY = 2.0 * ONE_WAY_LATENCY
TIMEOUT = 8.0


class _SortedIds:
    """A sorted id set as one flat array (numpy) or list (pure lane)."""

    __slots__ = ("_ids",)

    def __init__(self, ids):
        if _np is not None:
            self._ids = _np.ascontiguousarray(ids, dtype=_np.int64)
        else:
            self._ids = list(ids)

    def __len__(self):
        return len(self._ids)

    def __contains__(self, node_id: int) -> bool:
        i = self._find(node_id)
        return i >= 0

    def _find(self, node_id: int) -> int:
        ids = self._ids
        if _np is not None:
            i = int(_np.searchsorted(ids, node_id))
            if i < len(ids) and int(ids[i]) == node_id:
                return i
        else:
            i = bisect.bisect_left(ids, node_id)
            if i < len(ids) and ids[i] == node_id:
                return i
        return -1

    def insort(self, node_id: int) -> None:
        if node_id in self:
            return
        if _np is not None:
            i = int(_np.searchsorted(self._ids, node_id))
            self._ids = _np.insert(self._ids, i, node_id)
        else:
            bisect.insort(self._ids, node_id)

    def discard(self, node_id: int) -> None:
        i = self._find(node_id)
        if i < 0:
            return
        if _np is not None:
            self._ids = _np.delete(self._ids, i)
        else:
            del self._ids[i]

    def at(self, i: int) -> int:
        return int(self._ids[i])

    def bisect_left(self, value: int) -> int:
        if _np is not None:
            return int(_np.searchsorted(self._ids, value))
        return bisect.bisect_left(self._ids, value)

    def slice_range(self, lo: int, hi: int) -> tuple[int, int]:
        """Index bounds of ids in ``[lo, hi)``."""
        if _np is not None:
            return (
                int(_np.searchsorted(self._ids, lo)),
                int(_np.searchsorted(self._ids, hi)),
            )
        return bisect.bisect_left(self._ids, lo), bisect.bisect_left(self._ids, hi)

    def to_list(self) -> list[int]:
        return [int(v) for v in self._ids]

    def copy(self) -> "_SortedIds":
        fresh = _SortedIds.__new__(_SortedIds)
        if _np is not None:
            fresh._ids = self._ids.copy()
        else:
            fresh._ids = list(self._ids)
        return fresh

    def nbytes(self) -> int:
        return int(self._ids.nbytes) if _np is not None else 0


class _MembersView:
    """Mapping-shaped view over the live array (ids stand in for nodes)."""

    __slots__ = ("_net",)

    def __init__(self, net):
        self._net = net

    def __iter__(self):
        return iter(self._net.live.to_list())

    def __len__(self):
        return len(self._net.live)

    def __contains__(self, node_id):
        return node_id in self._net.live

    def get(self, node_id, default=None):
        return node_id if node_id in self._net.live else default

    def __getitem__(self, node_id):
        if node_id not in self._net.live:
            raise KeyError(node_id)
        return node_id


class SoAKademliaNetwork:
    """A Kademlia overlay reduced to two sorted id arrays."""

    def __init__(
        self,
        m: int = 32,
        k: int = 20,
        rng: random.Random | None = None,
    ):
        if m < 3:
            raise ValueError("identifier space needs at least 3 bits")
        if k < 1:
            raise ValueError("bucket size k must be >= 1")
        self.m = m
        self.k = k
        self.rng = rng if rng is not None else random.Random()
        self.churn_epoch = 0
        self.snapshot_builds = 0
        self.snapshot_patches = 0
        self.live = _SortedIds([])
        self.basis = _SortedIds([])
        self.nodes = _MembersView(self)
        self._sorted_cache: list[int] | None = None
        self._sorted_epoch = -1

    @classmethod
    def build(
        cls,
        n: int,
        m: int = 32,
        k: int = 20,
        rng: random.Random | None = None,
        **_ignored,
    ) -> "SoAKademliaNetwork":
        if n < 1:
            raise ValueError("need at least one node")
        if n > (1 << m):
            raise ValueError(f"cannot place {n} nodes in a 2^{m} id space")
        net = cls(m=m, k=k, rng=rng)
        ids = net._draw_distinct_ids(n)
        net.live = _SortedIds(ids)
        net.basis = net.live.copy()
        net.snapshot_builds = 1
        return net

    def _draw_distinct_ids(self, count: int):
        size = 1 << self.m
        if _np is None or count < 1024:
            chosen: set[int] = set(self.live.to_list()) if len(self.live) else set()
            fresh: list[int] = []
            while len(fresh) < count:
                candidate = self.rng.randrange(size)
                if candidate not in chosen:
                    chosen.add(candidate)
                    fresh.append(candidate)
            return sorted(fresh)
        np_rng = _np.random.default_rng(self.rng.randrange(1 << 63))
        uniq = _np.unique(
            np_rng.integers(0, size, size=count + count // 4 + 16, dtype=_np.int64)
        )
        while len(uniq) < count:
            more = np_rng.integers(0, size, size=count, dtype=_np.int64)
            uniq = _np.unique(_np.concatenate([uniq, more]))
        subset = np_rng.choice(uniq, size=count, replace=False)
        subset.sort()
        return subset

    # -- membership --------------------------------------------------------

    def join_node(self, node_id: int | None = None) -> int:
        """A join announces itself: it enters both membership and basis."""
        if node_id is None:
            node_id = int(self._draw_distinct_ids(1)[0])
        if node_id in self.live:
            raise ValueError(f"node {node_id} already in the overlay")
        self.live.insort(node_id)
        self.basis.insort(node_id)
        self.churn_epoch += 1
        self.snapshot_patches += 1
        self._sorted_cache = None
        return node_id

    def crash_node(self, node_id: int) -> None:
        """Fail-stop: leaves ``basis`` -- and thus every implicit routing
        table -- stale until the next refresh round, like unevicted dead
        contacts on the live substrate."""
        if node_id not in self.live:
            raise KeyError(f"no node {node_id}")
        self.live.discard(node_id)
        self.churn_epoch += 1
        self.snapshot_patches += 1
        self._sorted_cache = None

    def leave_node(self, node_id: int) -> None:
        """Graceful departure: announced, so the basis drops it too."""
        if node_id not in self.live:
            raise KeyError(f"no node {node_id}")
        self.live.discard(node_id)
        self.basis.discard(node_id)
        self.churn_epoch += 1
        self.snapshot_patches += 1
        self._sorted_cache = None

    def refresh_round(self) -> None:
        """Re-converge all (implicit) tables on the true membership."""
        self.basis = self.live.copy()
        self.churn_epoch += 1
        self.snapshot_patches += 1

    def stabilize_round(self, fingers_per_round: int = 1) -> None:
        """The ring-protocol spelling of :meth:`refresh_round`."""
        self.refresh_round()

    def run_stabilization(self, rounds: int, **_kw) -> None:
        for _ in range(rounds):
            self.refresh_round()

    # -- oracle views ------------------------------------------------------

    def sorted_ids(self) -> list[int]:
        if (
            self._sorted_cache is None
            or self._sorted_epoch != self.churn_epoch
            or len(self._sorted_cache) != len(self.live)
        ):
            self._sorted_cache = self.live.to_list()
            self._sorted_epoch = self.churn_epoch
        return self._sorted_cache

    def routing_is_correct(self) -> bool:
        """Whether every implicit table reflects the true membership."""
        if _np is not None:
            a, b = self.basis._ids, self.live._ids
            return len(a) == len(b) and bool((a == b).all())
        return self.basis._ids == self.live._ids

    def array_bytes(self) -> int:
        return self.live.nbytes() + self.basis.nbytes()

    def __len__(self) -> int:
        return len(self.live)

    # -- adapter -----------------------------------------------------------

    def dht(self, entry_id: int | None = None) -> "SoAKademliaDHT":
        return SoAKademliaDHT(self, entry_id=entry_id)

    @classmethod
    def build_dht(
        cls,
        n: int,
        m: int = 32,
        k: int = 20,
        rng: random.Random | None = None,
        **kwargs,
    ) -> "SoAKademliaDHT":
        return cls.build(n, m=m, k=k, rng=rng, **kwargs).dht()


class SoAKademliaDHT(EntryVantageMixin):
    """The ``h``/``next`` adapter over :class:`SoAKademliaNetwork`.

    ``h`` runs XOR descent + successor certification against the basis
    array with deterministic per-probe charges; ``h_many`` is a plain
    scalar loop (matching the live Kademlia adapter, which has no
    lockstep engine), so bulk-vs-scalar equivalence is structural.
    """

    def __init__(
        self,
        network: SoAKademliaNetwork,
        entry_id: int | None = None,
        retries: int = 3,
    ):
        if len(network) == 0:
            raise ValueError("cannot adapt an empty network")
        self._network = network
        if entry_id is None:
            entry_id = network.sorted_ids()[0]
        if entry_id not in network.nodes:
            raise KeyError(f"entry node {entry_id} is not alive")
        self._entry_id = entry_id
        self._retries = max(1, retries)
        self.cost = CostMeter()

    def _ref(self, node_id: int) -> PeerRef:
        return PeerRef(peer_id=node_id, point=id_to_point(node_id, self._network.m))

    def _vantage_id(self) -> int:
        if self._entry_id not in self._network.nodes:
            self._entry_id = self._nearest_alive(self._entry_id)
        return self._entry_id

    # -- implicit routing --------------------------------------------------

    def _bucket_members(self, node_id: int, i: int) -> list[int]:
        """Bucket ``i`` of ``node_id``'s implicit converged table.

        All basis ids in the aligned sibling block when there are at
        most ``k``, else ``k`` rank-evenly-spaced ones -- the identical
        selection ``KademliaNetwork.wire_perfectly`` stores, so the
        implicit table equals the materialized one entry for entry.
        """
        basis = self._network.basis
        lo_v, hi_v = bucket_range(node_id, i)
        lo, hi = basis.slice_range(lo_v, hi_v)
        count = hi - lo
        if count <= 0:
            return []
        k = self._network.k
        if count <= k:
            return [basis.at(j) for j in range(lo, hi)]
        return [basis.at(lo + (j * count) // k) for j in range(k)]

    def _lookup(self, target: int, entry: int) -> tuple[int | None, int, float, int]:
        """One lookup attempt: ``(owner | None, messages, latency, probes)``.

        Phase 1 (descent): hop to the bucket member XOR-closest to the
        target.  Every member of the bucket containing the target lies
        inside the target's aligned block, so each live hop strictly
        shrinks the shared-prefix distance -- at most ``m`` live hops.
        Phase 2 (certification): walk the basis clockwise from the
        target, pinging until the first live candidate -- the oracle
        owner, since the basis is a superset of the membership.
        """
        net = self._network
        live = net.live
        budget = lookup_budget(net.m, net.k)
        msgs = 0
        latency = 0.0
        probes = 0
        cur = entry
        while cur != target:
            i = bucket_index(cur, target)
            members = self._bucket_members(cur, i)
            members.sort(key=lambda c: c ^ target)
            nxt = None
            for candidate in members:
                if probes >= budget:
                    return None, msgs, latency, probes
                if candidate in live:
                    probes += 1
                    msgs += 2
                    latency += RPC_LATENCY
                    nxt = candidate
                    break
                # Stale basis entry: the FIND_NODE call times out.
                probes += 1
                msgs += 1
                latency += TIMEOUT
            if nxt is None:
                break  # empty/dead bucket: certification takes over
            cur = nxt
        # Certification walk: first live basis id clockwise of target.
        basis = net.basis
        n_basis = len(basis)
        j = basis.bisect_left(target)
        for step in range(n_basis):
            candidate = basis.at((j + step) % n_basis)
            if candidate in live:
                if candidate != entry:
                    # liveness-confirming ping, like Chord's owner check
                    probes += 1
                    msgs += 2
                    latency += RPC_LATENCY
                return candidate, msgs, latency, probes
            if probes >= budget:
                return None, msgs, latency, probes
            probes += 1
            msgs += 1
            latency += TIMEOUT
        return None, msgs, latency, probes

    # -- the DHT contract --------------------------------------------------

    def h(self, x: float) -> PeerRef:
        target = point_to_target_id(x, self._network.m)
        msgs = 0
        latency = 0.0
        owner: int | None = None
        for attempt in range(self._retries):
            entry = self._vantage_id()
            found, m_msgs, m_lat, _ = self._lookup(target, entry)
            msgs += m_msgs
            latency += m_lat
            if found is not None:
                owner = found
                break
            if attempt + 1 < self._retries:
                self._network.refresh_round()
        self.cost.charge_h(msgs, latency)
        if owner is None:
            raise KademliaLookupError_(
                f"h({x!r}) failed after {self._retries} attempts"
            )
        return self._ref(owner)

    def h_many(self, xs) -> list[PeerRef]:
        return [self.h(x) for x in xs]

    def resolve_many(self, xs) -> list[PeerRef | None]:
        out: list[PeerRef | None] = []
        for x in xs:
            try:
                out.append(self.h(x))
            except KademliaLookupError_:
                out.append(None)
        return out

    def successor_of_index(self, i: int) -> PeerRef:
        ids = self._network.sorted_ids()
        return self._ref(ids[i % len(ids)])

    def next(self, peer: PeerRef) -> PeerRef:
        """``next(p)``: one clockwise-successor query of ``p``."""
        live = self._network.live
        if peer.peer_id in live:
            j = live.bisect_left(peer.peer_id + 1)
            self.cost.charge_next(2, RPC_LATENCY)
            return self._ref(live.at(j % len(live)))
        self.cost.charge_next(1, TIMEOUT)
        return self.h(peer.point)

    def any_peer(self) -> PeerRef:
        return self._ref(self._vantage_id())
