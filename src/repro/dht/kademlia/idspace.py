"""Kademlia identifier-space arithmetic: the XOR metric over ``m``-bit ids.

Kademlia (Maymounkov & Mazieres) measures distance between identifiers
as their bitwise XOR interpreted as an integer.  The metric is symmetric
and unidirectional -- for any point and distance there is exactly one id
at that distance -- which is what lets a node's routing table be a
binary trie of *buckets*: bucket ``i`` of node ``x`` holds contacts
whose distance to ``x`` lies in ``[2**i, 2**(i+1))``, i.e. ids that
agree with ``x`` above bit ``i`` and differ at bit ``i``.

The paper's unit-circle mapping is shared with every other discrete-id
substrate (:mod:`repro.dht.idspace`); this module adds the XOR-side
helpers plus the *aligned block* arithmetic the successor resolution in
:mod:`repro.dht.kademlia.network` is built on.  An aligned block
``[base, base + 2**j)`` (``base`` a multiple of ``2**j``) is
simultaneously a numeric interval and an XOR ball: for any ``y`` inside,
``base XOR y == y - base``, so *XOR order from the base equals numeric
order within the block*.  That identity is what turns Kademlia's
nearest-in-XOR lookups into the clockwise-successor primitive the
sampler needs.
"""

from __future__ import annotations

from ..idspace import id_to_point, point_to_target_id

__all__ = [
    "id_to_point",
    "point_to_target_id",
    "xor_distance",
    "bucket_index",
    "bucket_range",
    "aligned_limit",
]


def xor_distance(a: int, b: int) -> int:
    """The Kademlia metric: ``a XOR b`` as an unsigned integer."""
    return a ^ b


def bucket_index(own_id: int, other_id: int) -> int:
    """Which of ``own_id``'s buckets ``other_id`` belongs in.

    The index of the highest bit where the two ids differ -- contacts in
    bucket ``i`` lie at XOR distance ``[2**i, 2**(i+1))``.  Undefined
    for ``own_id == other_id`` (a node never stores itself).
    """
    d = own_id ^ other_id
    if d == 0:
        raise ValueError("a node has no bucket for its own id")
    return d.bit_length() - 1


def bucket_range(own_id: int, i: int) -> tuple[int, int]:
    """The aligned id block ``[base, base + 2**i)`` covered by bucket ``i``.

    Bucket ``i`` of ``own_id`` is exactly the sibling subtree at bit
    ``i``: ids sharing the bits above ``i`` and differing at ``i``.
    """
    base = ((own_id >> i) ^ 1) << i
    return base, base + (1 << i)


def aligned_limit(cur: int, radius: int, m: int) -> int:
    """End of the largest aligned run ``[cur, limit)`` inside an XOR ball.

    Given a complete view of every id within XOR distance ``<= radius``
    of ``cur``, the numerically contiguous stretch that view certifies
    is ``[cur, limit)`` where ``limit`` is ``cur`` rounded up to its
    ``2**j`` boundary for ``j = floor(log2 radius)``: every id below
    that boundary shares ``cur``'s bits from ``j`` up, hence sits at XOR
    distance ``< 2**j <= radius``.  Beyond the boundary a higher bit
    flips and the XOR distance can exceed the ball, so nothing further
    is certified.  Returns ``2**m`` at most (the top of the space).
    """
    if radius < 1:
        raise ValueError("radius must be at least 1")
    j = radius.bit_length() - 1
    limit = ((cur >> j) + 1) << j
    return min(limit, 1 << m)
