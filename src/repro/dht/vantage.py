"""Shared vantage-peer discipline for live-overlay DHT adapters.

Every message-level substrate adapter issues its lookups *from
somewhere*: a vantage ("entry") peer that stands in for the local node
of the paper's algorithms.  On a dynamic overlay that peer can die, and
the adapter must fail over without leaking substrate-specific errors --
the same rule whether the overlay underneath is a Chord ring or a
Kademlia table, because the rule only needs the oracle membership view.

:class:`EntryVantageMixin` centralizes it.  Hosts provide two
attributes: ``_entry_id`` (the current vantage id) and ``_network``
exposing ``nodes`` (the live-node mapping) and ``sorted_ids()`` (the
epoch-memoized clockwise oracle view).  Failover re-roots at the
clockwise-nearest survivor, which spreads re-rooted adapters around the
ring instead of piling them onto one global node.
"""

from __future__ import annotations

import bisect

__all__ = ["EntryVantageMixin"]


class EntryVantageMixin:
    """Entry-peer bookkeeping shared by the live substrate adapters."""

    @property
    def entry_id(self) -> int:
        """The node id the adapter currently issues lookups from."""
        return self._entry_id

    @property
    def entry_is_alive(self) -> bool:
        """Whether the current vantage peer is still in the overlay."""
        return self._entry_id in self._network.nodes

    def refresh_entry(self, entry_id: int | None = None) -> int:
        """Re-root the adapter at a live vantage peer and return its id.

        With ``entry_id=None`` the clockwise-nearest live node to the
        old vantage is adopted -- the same failover rule
        :meth:`_entry_node` applies lazily -- so callers can proactively
        shed a stale entry (e.g. a serving shard re-admitting itself
        after churn).
        """
        if entry_id is not None:
            if entry_id not in self._network.nodes:
                raise KeyError(f"entry node {entry_id} is not alive")
            self._entry_id = entry_id
        else:
            self._entry_id = self._nearest_alive(self._entry_id)
        return self._entry_id

    def _nearest_alive(self, node_id: int) -> int:
        """The first live id clockwise of ``node_id`` (wrapping, oracle)."""
        ids = self._network.sorted_ids()
        if not ids:
            # A permanent condition, not a transient routing failure:
            # per the dht.api contract this must NOT be retryable.
            raise ValueError("no live peers: the network is empty")
        i = bisect.bisect_left(ids, node_id)
        return ids[i % len(ids)]

    def _entry_node(self):
        """The live vantage node object, failing over if it departed.

        Re-roots at the clockwise-nearest survivor, which spreads
        re-rooted adapters around the ring instead of piling them onto
        one global node.
        """
        node = self._network.nodes.get(self._entry_id)
        if node is None:
            self._entry_id = self._nearest_alive(self._entry_id)
            node = self._network.nodes[self._entry_id]
        return node
