"""The abstract DHT interface the paper's algorithms are written against.

King & Saia assume only two primitives:

- ``h(x)`` -- the peer whose peer point is closest in clockwise distance
  to the point ``x``, costing ``t_h`` latency and ``m_h`` messages
  (``O(log n)`` each in a standard DHT such as Chord);
- ``next(p)`` -- the peer clockwise-next after ``p``, costing ``O(1)``
  latency and messages.

Everything above the substrate (Estimate-n, Choose-Random-Peer, the
baselines) talks to this interface, so the same algorithm code runs
against the analytic :class:`~repro.dht.ideal.IdealDHT` oracle and the
message-level Chord simulator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, runtime_checkable

__all__ = ["PeerRef", "CostMeter", "CostSnapshot", "DHT"]


@dataclass(frozen=True, order=True)
class PeerRef:
    """A handle on a peer: a stable identifier plus its peer point.

    ``point`` is the peer's location ``l(p)`` on the unit circle
    ``(0, 1]``.  A peer always knows its own point, and DHT responses
    carry the responding peer's point, so algorithms may read ``point``
    freely without extra messages.
    """

    peer_id: int
    point: float


@dataclass(frozen=True)
class CostSnapshot:
    """Immutable view of a :class:`CostMeter`, usable for before/after diffs."""

    h_calls: int = 0
    next_calls: int = 0
    messages: int = 0
    latency: float = 0.0

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            h_calls=self.h_calls - other.h_calls,
            next_calls=self.next_calls - other.next_calls,
            messages=self.messages - other.messages,
            latency=self.latency - other.latency,
        )

    def __add__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            h_calls=self.h_calls + other.h_calls,
            next_calls=self.next_calls + other.next_calls,
            messages=self.messages + other.messages,
            latency=self.latency + other.latency,
        )


@dataclass
class CostMeter:
    """Accumulates the latency/message accounting of Theorem 7.

    ``latency`` is measured in abstract time units (one ``next`` costs 1
    by default); ``messages`` counts individual messages sent.  Substrates
    charge the meter from inside ``h``/``next``; callers snapshot around a
    region of interest and subtract.
    """

    h_calls: int = 0
    next_calls: int = 0
    messages: int = 0
    latency: float = 0.0

    def charge_h(self, messages: int, latency: float) -> None:
        """Record one ``h`` invocation costing the given amounts."""
        self.h_calls += 1
        self.messages += messages
        self.latency += latency

    def charge_next(self, messages: int = 1, latency: float = 1.0) -> None:
        """Record one ``next`` invocation (unit cost in a standard DHT)."""
        self.next_calls += 1
        self.messages += messages
        self.latency += latency

    def snapshot(self) -> CostSnapshot:
        return CostSnapshot(self.h_calls, self.next_calls, self.messages, self.latency)

    def reset(self) -> None:
        self.h_calls = 0
        self.next_calls = 0
        self.messages = 0
        self.latency = 0.0


@runtime_checkable
class DHT(Protocol):
    """Structural interface required by the sampling algorithms."""

    cost: CostMeter

    def h(self, x: float) -> PeerRef:
        """The peer closest in clockwise distance to point ``x``."""
        ...

    def next(self, peer: PeerRef) -> PeerRef:
        """The clockwise successor of ``peer``."""
        ...

    def any_peer(self) -> PeerRef:
        """Some live peer, used as the local vantage point of an algorithm."""
        ...
