"""The abstract DHT interface the paper's algorithms are written against.

King & Saia assume only two primitives:

- ``h(x)`` -- the peer whose peer point is closest in clockwise distance
  to the point ``x``, costing ``t_h`` latency and ``m_h`` messages
  (``O(log n)`` each in a standard DHT such as Chord);
- ``next(p)`` -- the peer clockwise-next after ``p``, costing ``O(1)``
  latency and messages.

Everything above the substrate (Estimate-n, Choose-Random-Peer, the
baselines) talks to this interface, so the same algorithm code runs
against the analytic :class:`~repro.dht.ideal.IdealDHT` oracle and the
message-level Chord simulator.

Bulk extension
--------------

:class:`BulkDHT` is an *optional* widening of the interface for
substrates that can answer many queries per call.  It exists for the
batch sampling engine (:mod:`repro.core.engine`), whose hot loop would
otherwise pay one Python method call, one :class:`PeerRef` allocation
and one meter update per trial.  A bulk-capable substrate provides:

- ``h_many(xs)`` -- ``h`` applied to a whole vector of points, metered
  with a single :meth:`CostMeter.charge_bulk` call;
- ``points_array()`` -- the sorted peer points as a flat indexable
  array of floats.  This is *raw substrate access*: reading it charges
  nothing, and a caller that resolves queries against it directly is
  responsible for charging ``cost.charge_bulk`` with the operation
  counts it logically performed (the batch engine does exactly this);
- ``successor_of_index(i)`` -- materialize the :class:`PeerRef` at
  sorted position ``i`` (wrapping), free of cost;
- ``bulk_op_costs()`` -- the per-operation ``(h_messages, h_latency,
  next_messages, next_latency)`` unit costs, so bulk callers can charge
  the meter amounts identical to what the per-call path would have.

Fallback semantics: substrates that cannot answer from a flat array
(the live Chord simulator) may still implement ``h_many`` -- the
:class:`~repro.dht.chord.ChordDHT` adapter resolves batches through a
lockstep replay engine that is charge-identical to a per-call loop --
but they do *not* satisfy :class:`BulkDHT` (no ``points_array`` /
``bulk_op_costs``: a live overlay has no free flat point array and its
per-lookup costs are measured, not unit-priced), and batch callers must
detect this (``isinstance(dht, BulkDHT)``) and keep the per-call
``h``/``next`` trial protocol.  The semantics of both paths are
identical; only the constant factors differ.

Two further *optional* per-call-substrate hooks, discovered by
``getattr`` rather than protocol check:

- ``resolve_many(xs) -> list[PeerRef | None]`` -- failure-tolerant
  batched ``h``: charge-identical to a loop of ``h`` calls with the
  substrate's retryable liveness error caught per point (``None`` marks
  a point whose lookup failed terminally).  Batch samplers use it to
  resolve a whole rejection round in one call and redraw just the
  failed trials.
- ``warm_lockstep() -> bool`` -- pre-build any batch-routing caches off
  the request path (free of charges and randomness); returns whether
  batched resolution is engaged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

__all__ = [
    "PeerRef",
    "PeerUnreachableError",
    "CostMeter",
    "CostSnapshot",
    "DHT",
    "BulkDHT",
]

#: Shared numpy-vs-pure-Python crossover: below this many items per
#: batch, numpy's per-call overhead exceeds its vectorization win, so
#: bulk implementations and the batch engine take the bisect path.
NUMPY_MIN_BATCH = 64


class PeerUnreachableError(Exception):
    """A substrate operation failed because peers were unreachable.

    The liveness escape hatch of the ``h``/``next`` contract: on a
    *dynamic* network an operation can fail transiently (the routing
    peer crashed, stabilization has not yet repaired the hole).  Every
    substrate raises a subclass of this type for such failures -- the
    Chord simulator's ``LookupError_`` is one -- so algorithm layers
    can retry with fresh randomness instead of pattern-matching on
    substrate-specific exceptions.  Permanent errors (bad arguments,
    empty network) stay ordinary ``ValueError``/``KeyError``.
    """


@dataclass(frozen=True, order=True, slots=True)
class PeerRef:
    """A handle on a peer: a stable identifier plus its peer point.

    ``point`` is the peer's location ``l(p)`` on the unit circle
    ``(0, 1]``.  A peer always knows its own point, and DHT responses
    carry the responding peer's point, so algorithms may read ``point``
    freely without extra messages.
    """

    peer_id: int
    point: float


@dataclass(frozen=True, slots=True)
class CostSnapshot:
    """Immutable view of a :class:`CostMeter`, usable for before/after diffs."""

    h_calls: int = 0
    next_calls: int = 0
    messages: int = 0
    latency: float = 0.0

    def __sub__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            h_calls=self.h_calls - other.h_calls,
            next_calls=self.next_calls - other.next_calls,
            messages=self.messages - other.messages,
            latency=self.latency - other.latency,
        )

    def __add__(self, other: "CostSnapshot") -> "CostSnapshot":
        return CostSnapshot(
            h_calls=self.h_calls + other.h_calls,
            next_calls=self.next_calls + other.next_calls,
            messages=self.messages + other.messages,
            latency=self.latency + other.latency,
        )


@dataclass
class CostMeter:
    """Accumulates the latency/message accounting of Theorem 7.

    ``latency`` is measured in abstract time units (one ``next`` costs 1
    by default); ``messages`` counts individual messages sent.  Substrates
    charge the meter from inside ``h``/``next``; callers snapshot around a
    region of interest and subtract.
    """

    h_calls: int = 0
    next_calls: int = 0
    messages: int = 0
    latency: float = 0.0

    def charge_h(self, messages: int, latency: float) -> None:
        """Record one ``h`` invocation costing the given amounts."""
        self.h_calls += 1
        self.messages += messages
        self.latency += latency

    def charge_next(self, messages: int = 1, latency: float = 1.0) -> None:
        """Record one ``next`` invocation (unit cost in a standard DHT)."""
        self.next_calls += 1
        self.messages += messages
        self.latency += latency

    def charge_bulk(
        self,
        *,
        h_calls: int = 0,
        next_calls: int = 0,
        messages: int = 0,
        latency: float = 0.0,
    ) -> None:
        """Record a whole batch of operations in one meter update.

        The amounts are the *totals* for the batch; callers compute them
        from :meth:`BulkDHT.bulk_op_costs` so the accumulated figures are
        identical to what per-call ``charge_h``/``charge_next`` would
        have produced.  This amortizes metering overhead to one Python
        call per batch instead of one per operation.
        """
        self.h_calls += h_calls
        self.next_calls += next_calls
        self.messages += messages
        self.latency += latency

    def snapshot(self) -> CostSnapshot:
        return CostSnapshot(self.h_calls, self.next_calls, self.messages, self.latency)

    def reset(self) -> None:
        self.h_calls = 0
        self.next_calls = 0
        self.messages = 0
        self.latency = 0.0


@runtime_checkable
class DHT(Protocol):
    """Structural interface required by the sampling algorithms."""

    cost: CostMeter

    def h(self, x: float) -> PeerRef:
        """The peer closest in clockwise distance to point ``x``."""
        ...

    def next(self, peer: PeerRef) -> PeerRef:
        """The clockwise successor of ``peer``."""
        ...

    def any_peer(self) -> PeerRef:
        """Some live peer, used as the local vantage point of an algorithm."""
        ...


@runtime_checkable
class BulkDHT(Protocol):
    """Optional widening of :class:`DHT` for batch-capable substrates.

    See the module docstring for the contract.  Detection is structural:
    ``isinstance(dht, BulkDHT)`` is how the batch engine decides between
    the vectorized fast path and the per-call fallback.
    """

    cost: CostMeter

    def h(self, x: float) -> PeerRef:
        ...

    def next(self, peer: PeerRef) -> PeerRef:
        ...

    def any_peer(self) -> PeerRef:
        ...

    def h_many(self, xs: Sequence[float]) -> list[PeerRef]:
        """``h`` applied to every point of ``xs``, metered as one batch."""
        ...

    def points_array(self) -> Sequence[float]:
        """The sorted peer points as a flat indexable float array (uncharged)."""
        ...

    def successor_of_index(self, i: int) -> PeerRef:
        """The :class:`PeerRef` at sorted position ``i % n`` (uncharged)."""
        ...

    def bulk_op_costs(self) -> tuple[int, float, int, float]:
        """Unit costs ``(h_messages, h_latency, next_messages, next_latency)``."""
        ...
