"""An idealized DHT oracle over a :class:`~repro.core.intervals.SortedCircle`.

This substrate answers ``h`` and ``next`` exactly (binary search over the
sorted peer points) while charging the *synthetic* costs of a standard
DHT: ``t_h = m_h = ceil(log2 n)`` for ``h`` and unit cost for ``next``.
It makes large-``n`` experiments cheap and keeps the analytic model of
the paper (peer points i.i.d. uniform on the circle) exact.

The message-level counterpart is :class:`repro.dht.chord.ChordDHT`,
which realizes the same interface on a simulated Chord overlay.
"""

from __future__ import annotations

import math
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..core.intervals import SortedCircle
from .api import CostMeter, PeerRef

__all__ = ["CostModel", "LogCost", "IdealDHT"]


@dataclass(frozen=True)
class CostModel:
    """Synthetic per-operation costs charged by :class:`IdealDHT`.

    ``h_messages``/``h_latency`` default to ``ceil(log2 n)`` -- the
    standard-DHT figure the paper assumes -- and ``next`` costs one
    message and one time unit.
    """

    h_messages: int
    h_latency: float
    next_messages: int = 1
    next_latency: float = 1.0


def LogCost(n: int) -> CostModel:
    """The standard-DHT cost model: ``t_h = m_h = ceil(log2 n)``."""
    hops = max(1, math.ceil(math.log2(max(2, n))))
    return CostModel(h_messages=hops, h_latency=float(hops))


class IdealDHT:
    """Oracle DHT: exact ``h``/``next`` with synthetic cost accounting."""

    def __init__(self, circle: SortedCircle, cost_model: CostModel | None = None):
        self._circle = circle
        self._model = cost_model if cost_model is not None else LogCost(len(circle))
        self._peers = tuple(
            PeerRef(peer_id=i, point=p) for i, p in enumerate(circle.points)
        )
        self.cost = CostMeter()

    @classmethod
    def random(cls, n: int, rng, cost_model: CostModel | None = None) -> "IdealDHT":
        """A ring of ``n`` peers at i.i.d. uniform points (the paper's model)."""
        return cls(SortedCircle.random(n, rng), cost_model=cost_model)

    @classmethod
    def from_points(cls, points: Iterable[float], **kwargs) -> "IdealDHT":
        return cls(SortedCircle(points), **kwargs)

    # -- DHT interface ---------------------------------------------------

    def h(self, x: float) -> PeerRef:
        """The peer closest clockwise to ``x`` (Chord's ``successor``)."""
        self.cost.charge_h(self._model.h_messages, self._model.h_latency)
        return self._peers[self._circle.successor_index(x)]

    def next(self, peer: PeerRef) -> PeerRef:
        """The clockwise successor of ``peer``."""
        self.cost.charge_next(self._model.next_messages, self._model.next_latency)
        return self._peers[self._circle.next_index(peer.peer_id)]

    def any_peer(self) -> PeerRef:
        """An arbitrary live peer, the algorithms' local vantage point."""
        return self._peers[0]

    # -- oracle-only conveniences (not part of the DHT interface) --------

    @property
    def circle(self) -> SortedCircle:
        """The underlying analytic ring (oracle knowledge, free of cost)."""
        return self._circle

    @property
    def peers(self) -> Sequence[PeerRef]:
        """All peers in clockwise order (oracle knowledge, free of cost)."""
        return self._peers

    def __len__(self) -> int:
        return len(self._peers)
