"""An idealized DHT oracle over a :class:`~repro.core.intervals.SortedCircle`.

This substrate answers ``h`` and ``next`` exactly (binary search over the
sorted peer points) while charging the *synthetic* costs of a standard
DHT: ``t_h = m_h = ceil(log2 n)`` for ``h`` and unit cost for ``next``.
It makes large-``n`` experiments cheap and keeps the analytic model of
the paper (peer points i.i.d. uniform on the circle) exact.

The message-level counterpart is :class:`repro.dht.chord.ChordDHT`,
which realizes the same interface on a simulated Chord overlay.
"""

from __future__ import annotations

import math
from array import array
from bisect import bisect_left
from collections.abc import Iterable, Sequence
from dataclasses import dataclass

from ..compat import load_numpy
from ..core.intervals import SortedCircle
from .api import NUMPY_MIN_BATCH, CostMeter, PeerRef

__all__ = ["CostModel", "LogCost", "IdealDHT"]

# Optional acceleration for the bulk interface; None when numpy is
# absent or REPRO_PURE_PYTHON pins the fallback lanes (see repro.compat).
_np = load_numpy()


@dataclass(frozen=True)
class CostModel:
    """Synthetic per-operation costs charged by :class:`IdealDHT`.

    ``h_messages``/``h_latency`` default to ``ceil(log2 n)`` -- the
    standard-DHT figure the paper assumes -- and ``next`` costs one
    message and one time unit.
    """

    h_messages: int
    h_latency: float
    next_messages: int = 1
    next_latency: float = 1.0


def LogCost(n: int) -> CostModel:
    """The standard-DHT cost model: ``t_h = m_h = ceil(log2 n)``."""
    hops = max(1, math.ceil(math.log2(max(2, n))))
    return CostModel(h_messages=hops, h_latency=float(hops))


class IdealDHT:
    """Oracle DHT: exact ``h``/``next`` with synthetic cost accounting."""

    def __init__(self, circle: SortedCircle, cost_model: CostModel | None = None):
        self._circle = circle
        self._model = cost_model if cost_model is not None else LogCost(len(circle))
        self._peers = tuple(
            PeerRef(peer_id=i, point=p) for i, p in enumerate(circle.points)
        )
        # Flat array-backed storage for the bulk interface: peer points in
        # sorted order, so index arithmetic replaces object traversal.
        self._flat = array("d", circle.points)
        if _np is not None:
            self._flat_np = _np.frombuffer(self._flat, dtype=_np.float64)
            self._flat_np.setflags(write=False)  # it's a view into _flat
        else:
            self._flat_np = None
        self.cost = CostMeter()

    @classmethod
    def random(cls, n: int, rng, cost_model: CostModel | None = None) -> "IdealDHT":
        """A ring of ``n`` peers at i.i.d. uniform points (the paper's model)."""
        return cls(SortedCircle.random(n, rng), cost_model=cost_model)

    @classmethod
    def from_points(cls, points: Iterable[float], **kwargs) -> "IdealDHT":
        return cls(SortedCircle(points), **kwargs)

    # -- DHT interface ---------------------------------------------------

    def h(self, x: float) -> PeerRef:
        """The peer closest clockwise to ``x`` (Chord's ``successor``)."""
        self.cost.charge_h(self._model.h_messages, self._model.h_latency)
        return self._peers[self._circle.successor_index(x)]

    def next(self, peer: PeerRef) -> PeerRef:
        """The clockwise successor of ``peer``."""
        self.cost.charge_next(self._model.next_messages, self._model.next_latency)
        return self._peers[self._circle.next_index(peer.peer_id)]

    def any_peer(self) -> PeerRef:
        """An arbitrary live peer, the algorithms' local vantage point."""
        return self._peers[0]

    # -- BulkDHT interface ------------------------------------------------

    def h_many(self, xs: Sequence[float]) -> list[PeerRef]:
        """``h`` over a whole vector of points, metered as one batch.

        Resolution is a vectorized ``searchsorted`` when numpy is
        available and the batch is large enough to amortize its call
        overhead, else a pure-Python ``bisect`` loop over the flat point
        array.  Both charge the meter once via
        :meth:`~repro.dht.api.CostMeter.charge_bulk` with totals
        identical to per-call :meth:`h`.
        """
        k = len(xs)
        peers = self._peers
        n = len(peers)
        if self._flat_np is not None and k >= NUMPY_MIN_BATCH:
            arr = _np.asarray(xs, dtype=_np.float64)
            ok = (arr > 0.0) & (arr <= 1.0)  # negated form would let NaN slip through
            if not ok.all():
                bad = arr[~ok][0]
                raise ValueError(f"point {bad!r} is outside the unit circle (0, 1]")
            idx = _np.searchsorted(self._flat_np, arr, side="left")
            idx[idx == n] = 0
            refs = [peers[i] for i in idx.tolist()]
        else:
            flat = self._flat
            refs = []
            for x in xs:
                if not 0.0 < x <= 1.0:
                    raise ValueError(f"point {x!r} is outside the unit circle (0, 1]")
                refs.append(peers[bisect_left(flat, x) % n])
        self.cost.charge_bulk(
            h_calls=k,
            messages=k * self._model.h_messages,
            latency=k * self._model.h_latency,
        )
        return refs

    def points_array(self) -> Sequence[float]:
        """Sorted peer points as a flat float array (raw, uncharged access)."""
        return self._flat_np if self._flat_np is not None else self._flat

    def successor_of_index(self, i: int) -> PeerRef:
        """Materialize the peer at sorted position ``i % n`` (uncharged)."""
        return self._peers[i % len(self._peers)]

    def bulk_op_costs(self) -> tuple[int, float, int, float]:
        """Per-op unit costs for callers charging the meter in bulk."""
        m = self._model
        return (m.h_messages, m.h_latency, m.next_messages, m.next_latency)

    # -- oracle-only conveniences (not part of the DHT interface) --------

    @property
    def circle(self) -> SortedCircle:
        """The underlying analytic ring (oracle knowledge, free of cost)."""
        return self._circle

    @property
    def peers(self) -> Sequence[PeerRef]:
        """All peers in clockwise order (oracle knowledge, free of cost)."""
        return self._peers

    def __len__(self) -> int:
        return len(self._peers)
