"""DHT substrates: the abstract interface, the ideal oracle, and Chord."""

from .api import DHT, BulkDHT, CostMeter, CostSnapshot, PeerRef
from .ideal import CostModel, IdealDHT, LogCost

__all__ = [
    "DHT",
    "BulkDHT",
    "CostMeter",
    "CostSnapshot",
    "PeerRef",
    "CostModel",
    "IdealDHT",
    "LogCost",
]
