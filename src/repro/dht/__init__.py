"""DHT substrates: the abstract interface, the ideal oracle, and the
message-level Chord (ring) and Kademlia (XOR) overlays."""

from .api import DHT, BulkDHT, CostMeter, CostSnapshot, PeerRef
from .ideal import CostModel, IdealDHT, LogCost
from .kademlia import KademliaDHT, KademliaNetwork

__all__ = [
    "DHT",
    "BulkDHT",
    "CostMeter",
    "CostSnapshot",
    "PeerRef",
    "CostModel",
    "IdealDHT",
    "KademliaDHT",
    "KademliaNetwork",
    "LogCost",
]
