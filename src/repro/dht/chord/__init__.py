"""A message-level Chord simulator (Stoica et al. [16]) used as the
standard-DHT substrate: iterative ``O(log n)`` lookups, successor lists,
stabilization, and churn tolerance.
"""

from .async_lookup import lookup_async, lookup_recursive_async
from .batch import BatchLookupStats, LookupTrace, RingSnapshot, lockstep_resolve
from .idspace import id_to_point, in_open_closed, in_open_open, point_to_target_id
from .network import ChordDHT, ChordNetwork, SnapshotDelta
from .node import ChordNode, LookupError_, LookupResult
from .soa import SoAChordDHT, SoAChordNetwork
from .virtual import VirtualChordNetwork

__all__ = [
    "BatchLookupStats",
    "LookupTrace",
    "RingSnapshot",
    "lockstep_resolve",
    "VirtualChordNetwork",
    "id_to_point",
    "point_to_target_id",
    "in_open_closed",
    "in_open_open",
    "ChordDHT",
    "ChordNetwork",
    "ChordNode",
    "SnapshotDelta",
    "SoAChordDHT",
    "SoAChordNetwork",
    "LookupError_",
    "LookupResult",
    "lookup_async",
    "lookup_recursive_async",
]
