"""A Chord node: successor lists, predecessor, finger table, maintenance.

The node follows Stoica et al. [16]: ``find_successor`` routes through
finger tables in ``O(log n)`` hops; ``stabilize``/``notify``/
``fix_fingers``/``check_predecessor`` repair the overlay after joins,
graceful departures, and crashes.  Lookups are *iterative*: the querying
client drives the hop loop (see :meth:`ChordNode.lookup`), which is what
lets the DHT adapter meter per-operation messages and latency the way
Theorem 7 accounts costs.
"""

from __future__ import annotations

from typing import Any

from ...sim.network import RpcTimeout, RpcTransport
from ..api import PeerUnreachableError
from .idspace import id_to_point, in_open_closed, in_open_open

__all__ = ["ChordNode", "LookupError_", "LookupResult", "hop_budget"]


def hop_budget(m: int) -> int:
    """Default per-lookup hop budget: ``4 * m``.

    ``O(log n)`` hops suffice on a stabilized ring; the 4x headroom
    absorbs reroutes around fresh crashes.  Shared with the lockstep
    batch engine (:mod:`repro.dht.chord.batch`), which must exhaust a
    lookup at exactly the same hop the live path would.
    """
    return 4 * m


class LookupError_(PeerUnreachableError):
    """An iterative lookup could not complete (routing hole during churn).

    Subclasses :class:`~repro.dht.api.PeerUnreachableError` so
    substrate-agnostic layers (the batch engine, the serving layer) can
    treat it as a retryable liveness failure without importing Chord.
    """


class LookupResult:
    """Outcome of an iterative lookup: the owner id plus hop/cost info."""

    __slots__ = ("node_id", "hops")

    def __init__(self, node_id: int, hops: int):
        self.node_id = node_id
        self.hops = hops

    def __repr__(self) -> str:
        return f"LookupResult(node_id={self.node_id}, hops={self.hops})"


class ChordNode:
    """One Chord peer.  All remote interaction goes through the transport."""

    def __init__(
        self,
        node_id: int,
        m: int,
        transport: RpcTransport,
        successor_list_size: int = 8,
    ):
        if successor_list_size < 1:
            raise ValueError("successor_list_size must be >= 1")
        self.node_id = node_id
        self.m = m
        # Bind a node-scoped endpoint so every RPC this node issues
        # carries it as the source -- what lets partitions and grey
        # failures attribute deliveries (a raw transport is accepted
        # for hand-rolled setups and wrapped; an endpoint passes through).
        make_endpoint = getattr(transport, "endpoint", None)
        self._transport = (
            make_endpoint(node_id) if make_endpoint is not None else transport
        )
        self._slist_size = successor_list_size
        self.successors: list[int] = [node_id]
        self.predecessor: int | None = None
        self.fingers: list[int | None] = [None] * m
        self._next_finger = 0
        #: Fired with ``node_id`` whenever the successor list or a finger
        #: actually changes (the predecessor is not snapshot-relevant).
        #: The network installs its dirty-tracking hook here so the ring
        #: snapshot can be patched incrementally instead of rebuilt; every
        #: mutation site below compares before firing, so a stabilize
        #: round on a converged ring marks nothing dirty.
        self.on_change: Any = None
        #: Pending async recursive lookups this node originated:
        #: token -> completion callback (see repro.dht.chord.async_lookup).
        #: Plain bookkeeping; unused (and free) on the sync transport.
        self._async_lookups: dict[int, Any] = {}
        self._async_seq = 0

    # -- identity ---------------------------------------------------------

    @property
    def point(self) -> float:
        """The node's peer point ``l(p)`` on the unit circle."""
        return id_to_point(self.node_id, self.m)

    def __repr__(self) -> str:
        return f"ChordNode(id={self.node_id}, m={self.m})"

    def _changed(self) -> None:
        if self.on_change is not None:
            self.on_change(self.node_id)

    def _set_successors(self, new: list[int]) -> None:
        if new != self.successors:
            self.successors = new
            self._changed()

    # -- RPC-exposed methods (invoked via the transport) --------------------

    def ping(self) -> bool:
        """Liveness probe."""
        return True

    def get_successor(self) -> int:
        """The node's current first live-believed successor."""
        return self.successors[0] if self.successors else self.node_id

    def get_successor_list(self) -> list[int]:
        return list(self.successors)

    def get_predecessor(self) -> int | None:
        return self.predecessor

    def notify(self, candidate_id: int) -> None:
        """A node claiming to be our predecessor (Chord's ``notify``)."""
        if candidate_id == self.node_id:
            return
        if self.predecessor is None or in_open_open(
            candidate_id, self.predecessor, self.node_id
        ):
            self.predecessor = candidate_id

    def closest_preceding_node(
        self, target_id: int, excluded: tuple[int, ...] = ()
    ) -> int:
        """Best local routing step: the closest finger preceding ``target_id``.

        ``excluded`` lists nodes the querying client found unresponsive,
        so retries route around fresh crashes.
        """
        for finger in reversed(self.fingers):
            if (
                finger is not None
                and finger not in excluded
                and in_open_open(finger, self.node_id, target_id)
            ):
                return finger
        for succ in reversed(self.successors):
            if succ not in excluded and in_open_open(succ, self.node_id, target_id):
                return succ
        return self.get_successor()

    def lookup_step(
        self, target_id: int, excluded: tuple[int, ...] = ()
    ) -> tuple[str, int]:
        """One iterative-routing step: ``('done', owner)`` or ``('forward', next)``.

        The effective successor skips entries the client reported dead, so
        ownership falls through to the first live successor-list entry --
        the behaviour that makes lookups converge mid-churn.
        """
        succ = next(
            (s for s in self.successors if s not in excluded), self.node_id
        )
        if succ == self.node_id or in_open_closed(target_id, self.node_id, succ):
            return ("done", succ)
        nxt = self.closest_preceding_node(target_id, excluded)
        if nxt == self.node_id or nxt in excluded:
            # No better finger: hand the query to the successor to
            # guarantee progress (linear fallback).
            nxt = succ
        return ("forward", nxt)

    def set_predecessor(self, candidate_id: int | None) -> None:
        """Used by gracefully departing neighbours to splice the ring."""
        self.predecessor = candidate_id

    def splice_out_successor(self, departing_id: int, replacements: list[int]) -> None:
        """A departing successor hands us its successor list."""
        merged = [s for s in self.successors if s != departing_id]
        for candidate in replacements:
            if candidate != departing_id and candidate not in merged:
                merged.append(candidate)
        self._set_successors(merged[: self._slist_size] or [self.node_id])

    # -- client-driven iterative lookup --------------------------------------

    def lookup(self, target_id: int, max_hops: int | None = None) -> LookupResult:
        """Iteratively resolve ``find_successor(target_id)`` from this node.

        The loop runs at the client: each hop asks the current node for a
        routing step via one RPC.  Raises :class:`LookupError_` when a hop
        times out or the hop budget is exhausted (possible during churn
        before stabilization catches up).
        """
        budget = max_hops if max_hops is not None else hop_budget(self.m)
        excluded: tuple[int, ...] = ()
        # First step is answered locally (no RPC): we are the client.
        current = self.node_id
        kind, nxt = self.lookup_step(target_id)
        hops = 0

        def ask(node_id: int) -> tuple[str, int]:
            if node_id == self.node_id:
                return self.lookup_step(target_id, excluded)
            return self._transport.rpc(node_id, "lookup_step", target_id, excluded)

        while True:
            if kind == "done":
                owner = nxt
                # Verify the owner answers (the client is about to use it);
                # a stale pointer to a fresh crash gets excluded and the
                # query re-asked, falling through to the live successor.
                if owner == self.node_id or self._is_alive(owner, attempts=1):
                    return LookupResult(node_id=owner, hops=hops)
                excluded = excluded + (owner,)
                hops += 1
                if hops >= budget:
                    raise LookupError_(
                        f"lookup of {target_id} from {self.node_id}: no live "
                        f"owner within {budget} hops"
                    )
                try:
                    kind, nxt = ask(current)
                except RpcTimeout as exc:
                    raise LookupError_(str(exc)) from exc
                continue
            if hops >= budget:
                raise LookupError_(
                    f"lookup of {target_id} from {self.node_id} exceeded {budget} hops"
                )
            try:
                kind, result = self._transport.rpc(nxt, "lookup_step", target_id, excluded)
            except RpcTimeout:
                # Route around the dead hop: re-ask the node that sent us
                # here, excluding the casualty.
                excluded = excluded + (nxt,)
                hops += 1
                try:
                    kind, nxt = ask(current)
                except RpcTimeout as exc:
                    raise LookupError_(str(exc)) from exc
                continue
            hops += 1
            current, nxt = nxt, result

    # -- recursive (forwarded) lookup -----------------------------------------

    def lookup_recursive(self, target_id: int, max_hops: int | None = None) -> LookupResult:
        """Resolve ``find_successor(target_id)`` by *recursive* routing.

        The query is forwarded hop by hop with one-way messages and the
        owner's answer returns directly to the querier: roughly half the
        messages and latency of the iterative mode, but a single lost
        hop loses the whole query (no client-side rerouting) -- the
        classical iterative-vs-recursive trade-off, measured in bench
        E16.  Raises :class:`LookupError_` on any mid-chain failure.
        """
        budget = max_hops if max_hops is not None else hop_budget(self.m)
        try:
            owner, hops = self.forward_lookup(target_id, 0, budget)
        except RpcTimeout as exc:
            raise LookupError_(str(exc)) from exc
        # The owner's single direct reply to the querier; a dead owner
        # (stale successor pointer) means the reply never arrives and the
        # querier times out -- it cannot reroute, unlike iterative mode.
        if owner != self.node_id:
            if not self._transport.is_registered(owner):
                # The querier waits out its reply timer in full before
                # giving up: charge the timeout interval and tick the
                # timeout counter exactly like a dead-target RPC, so a
                # failed lookup is never cheaper than a successful one.
                self._transport.metrics.counter("rpc.timeouts").increment()
                self._transport.charge_delay(self._transport.timeout)
                raise LookupError_(
                    f"recursive lookup of {target_id}: owner {owner} never replied"
                )
            self._transport.metrics.counter("messages").increment(1)
        return LookupResult(node_id=owner, hops=hops)

    def forward_lookup(self, target_id: int, hops: int, budget: int) -> tuple[int, int]:
        """Handle one forwarded hop of a recursive lookup (RPC-exposed)."""
        if hops > budget:
            raise LookupError_(
                f"recursive lookup of {target_id} exceeded {budget} hops"
            )
        kind, nxt = self.lookup_step(target_id)
        if kind == "done":
            return nxt, hops
        return self._transport.oneway(nxt, "forward_lookup", target_id, hops + 1, budget)

    # -- async recursive routing (message-level transport only) ---------------
    #
    # The event-scheduled twins of ``lookup_recursive``/``forward_lookup``:
    # each hop is a request/ack exchange (so a forwarder notices a dead
    # next hop and re-issues to the next live successor), and the owner
    # claims the query with one direct message to the querier.  Handlers
    # are plain RPC-exposed methods; the continuation logic lives in
    # :mod:`repro.dht.chord.async_lookup`.  Never invoked on the sync
    # transport (whose endpoints have no ``spawn``/``cast``).

    def async_forward_lookup(
        self, target_id: int, querier_id: int, token: int, hops: int, budget: int
    ) -> bool:
        """Accept one hop of an async recursive lookup (the reply acks it)."""
        from .async_lookup import forward_hop

        self._transport.spawn(
            forward_hop(self, target_id, querier_id, token, hops, budget)
        )
        return True

    def claim_async_lookup(
        self, target_id: int, querier_id: int, token: int, hops: int
    ) -> None:
        """We are the owner: send the single direct answer to the querier.

        Delivery of this message is the liveness proof ``lookup_recursive``
        gets from its direct reply -- a dead owner simply never claims,
        and the querier's deadline event fires instead.
        """
        self._transport.cast(
            querier_id, "complete_async_lookup", token, self.node_id, hops
        )

    def complete_async_lookup(self, token: int, owner_id: int, hops: int) -> None:
        """The owner's direct answer lands at the querier (RPC-exposed)."""
        settle = self._async_lookups.pop(token, None)
        if settle is not None:
            settle(owner_id, hops)

    # -- maintenance protocol -------------------------------------------------

    def join(self, entry_id: int, attempts: int = 3) -> None:
        """Join the ring known to ``entry_id`` (Chord's ``join``).

        Retries a few times so transient packet loss cannot orphan the
        joining node; a node that still cannot reach the ring stays
        self-looped and is adopted later via ``notify``/``stabilize``.
        """
        succ: int | None = None
        for _ in range(attempts):
            try:
                result = self._transport.rpc(entry_id, "lookup", self.node_id)
                succ = result.node_id
                break
            except (RpcTimeout, LookupError_):
                continue
        if succ is None or succ == self.node_id:
            # The lookup can resolve to our own id if the entry node has
            # already learned about us; fall back to its successor view.
            try:
                succ = self._transport.rpc(entry_id, "get_successor")
            except RpcTimeout:
                return  # stay self-looped; stabilization will adopt us
        self.predecessor = None
        self._set_successors([succ])
        try:
            self._transport.rpc(succ, "notify", self.node_id)
        except RpcTimeout:
            pass

    def stabilize(self) -> None:
        """Chord's ``stabilize``: verify successor, adopt a closer one, notify."""
        succ = self._first_live_successor()
        if succ == self.node_id:
            # Self-loop (bootstrap node, or sole survivor).  If someone has
            # notified us, close the ring through them; otherwise idle.
            if self.predecessor is None or self.predecessor == self.node_id:
                return
            succ = self.predecessor
            self._set_successors([succ])
        try:
            x = self._transport.rpc(succ, "get_predecessor")
        except RpcTimeout:
            return
        if x is not None and x != self.node_id and in_open_open(x, self.node_id, succ):
            try:
                self._transport.rpc(x, "ping")
                succ = x
            except RpcTimeout:
                pass
        try:
            self._transport.rpc(succ, "notify", self.node_id)
            succ_list = self._transport.rpc(succ, "get_successor_list")
        except RpcTimeout:
            return
        merged = [succ] + [s for s in succ_list if s != self.node_id]
        deduped: list[int] = []
        for s in merged:
            if s not in deduped:
                deduped.append(s)
        self._set_successors(deduped[: self._slist_size])

    def _is_alive(self, node_id: int, attempts: int = 2) -> bool:
        """Ping with one retry so a single lost packet does not declare a
        live neighbour dead (false-death probability loss_rate^attempts)."""
        for _ in range(attempts):
            try:
                self._transport.rpc(node_id, "ping")
                return True
            except RpcTimeout:
                continue
        return False

    def _first_live_successor(self) -> int:
        """Pop dead entries off the successor list; never leaves it empty."""
        dropped = 0
        while dropped < len(self.successors):
            candidate = self.successors[dropped]
            if candidate == self.node_id or self._is_alive(candidate):
                break
            dropped += 1
        if dropped:
            del self.successors[:dropped]
            self._changed()
        if not self.successors:
            self.successors = [self.node_id]
            self._changed()
            return self.node_id
        return self.successors[0]

    def check_predecessor(self) -> None:
        """Forget a crashed predecessor so ``notify`` can install a new one."""
        if self.predecessor is None:
            return
        if not self._is_alive(self.predecessor):
            self.predecessor = None

    def offer_successor(self, candidate_id: int) -> None:
        """A node claiming to sit between us and our successor (RPC-exposed).

        The successor-side dual of :meth:`notify`: adopt the candidate
        as first successor when it lies strictly inside
        ``(self, successor)``.  Stabilize verifies the adoption next
        round (a liar just gets dropped as dead), so this only ever
        *tightens* the ring.
        """
        succ = self.get_successor()
        if candidate_id == self.node_id or candidate_id == succ:
            return
        if succ == self.node_id or in_open_open(candidate_id, self.node_id, succ):
            self.successors.insert(0, candidate_id)
            del self.successors[self._slist_size :]
            self._changed()

    def rectify(self, via: int | None = None) -> None:
        """Re-insert ourselves clockwise when the ring has bypassed us.

        A correlated regional kill can wipe a node's *entire* successor
        list along with its predecessor: the last survivor before the
        dead region fails over far past the first survivor after it, and
        the bypassed survivors -- alive, successor-correct, but with no
        inbound pointer -- would be walked back into the ring by pairwise
        stabilization only one node per round (``stabilize`` adopts
        ``succ.predecessor``, an O(region-size) heal).  The repair used
        here is a self-search: iteratively route toward our own id; the
        hop that answers "done" is the node whose successor interval
        swallowed us, and :meth:`offer_successor` re-closes the ring
        through us in O(log n) messages.  A no-op on a correct ring (the
        search ends at our true predecessor, which already points here).

        ``via`` roots the search at another node -- the ring-merge pass
        uses a main-ring entry so a node from a split-off island searches
        the ring it needs to re-enter rather than its own.
        """
        target = self.node_id
        budget = hop_budget(self.m)
        excluded: tuple[int, ...] = ()
        current = self.node_id if via is None else via
        hops = 0

        def ask(node_id: int) -> tuple[str, int]:
            if node_id == self.node_id:
                return self.lookup_step(target, excluded)
            return self._transport.rpc(node_id, "lookup_step", target, excluded)

        try:
            kind, nxt = ask(current)
        except RpcTimeout:
            return
        while kind != "done":
            if hops >= budget:
                return
            try:
                kind, result = self._transport.rpc(nxt, "lookup_step", target, excluded)
            except RpcTimeout:
                excluded = excluded + (nxt,)
                hops += 1
                try:
                    kind, nxt = ask(current)
                except RpcTimeout:
                    return
                continue
            hops += 1
            current, nxt = nxt, result
        if current == self.node_id:
            return
        try:
            self._transport.rpc(current, "offer_successor", self.node_id)
        except RpcTimeout:
            pass

    def repair_successor(self, via: int) -> None:
        """Adopt our true clockwise successor as found through ``via``.

        The outward half of ring merging: a node re-splicing into
        another ring keeps its own (island-internal) successor unless
        the search through the other ring finds a strictly closer one --
        :meth:`offer_successor`'s adopt-if-closer guard makes a stale or
        wrong answer harmless.  Used with :meth:`rectify`, which handles
        the inward half (the other ring adopting *us*).
        """
        target = (self.node_id + 1) % (1 << self.m)
        try:
            result = self._transport.rpc(via, "lookup", target)
        except (RpcTimeout, LookupError_):
            return
        self.offer_successor(result.node_id)

    def fix_next_finger(self) -> None:
        """Refresh one finger-table entry per call (Chord's ``fix_fingers``)."""
        i = self._next_finger
        self._next_finger = (self._next_finger + 1) % self.m
        target = (self.node_id + (1 << i)) % (1 << self.m)
        try:
            new: int | None = self.lookup(target).node_id
        except LookupError_:
            new = None
        if new != self.fingers[i]:
            self.fingers[i] = new
            self._changed()

    def fix_all_fingers(self) -> None:
        """Refresh the whole finger table (used at bootstrap)."""
        for _ in range(self.m):
            self.fix_next_finger()

    def leave_gracefully(self) -> None:
        """Splice ourselves out, handing state to both neighbours."""
        succ = self._first_live_successor()
        if self.predecessor is not None and self.predecessor != self.node_id:
            try:
                self._transport.rpc(
                    self.predecessor,
                    "splice_out_successor",
                    self.node_id,
                    [s for s in self.successors if s != self.node_id],
                )
            except RpcTimeout:
                pass
        if succ != self.node_id:
            try:
                self._transport.rpc(succ, "set_predecessor", self.predecessor)
            except RpcTimeout:
                pass
