"""Struct-of-arrays Chord substrate: a million-node ring with no node objects.

:class:`~repro.dht.chord.network.ChordNetwork` carries one Python object
per peer (~1 KiB each with successor/finger lists), which caps benches
near n=1e5 and makes a from-scratch :class:`RingSnapshot` build O(n * m)
object traffic.  This module keeps the *snapshot itself* as the primary
state: the whole ring is the compact struct-of-arrays form of
:class:`~repro.dht.chord.batch.RingSnapshot` -- a sorted id array, a
dense finger matrix, a padded successor matrix, all slot-indexed with a
free list -- built vectorized in O(m) array passes and patched
incrementally under churn.  Per-node memory is exactly the array rows
(~8 * (m + slist + 4) bytes), which is what makes n=1e6 servable and
n=1e7 buildable on one machine (measured in ``benchmarks/bench_scale.py``).

Routing rides the existing lockstep engine
(:func:`~repro.dht.chord.batch.lockstep_resolve`): every lookup --
scalar or batched -- is a replayed trace over the arrays, charged with
the same cost model as the live transport's defaults (one-way latency
1.0, round-trip 2.0, dead-call timeout 8.0), so the adapter satisfies
the conformance contract's charge-accounting and bulk-vs-scalar
equivalence clauses by construction.  What this substrate deliberately
does *not* have is a transport: there are no per-peer RPC endpoints to
partition or corrupt, so fault-injection and adversary scenarios stay
on the object-per-node network (the conformance suite marks such
backends ``transported=False``).

Churn semantics mirror the live ring's observable behaviour:

- **join** splices the id into the sorted views and patches only the
  affected rows -- the new node's own successor/finger rows (oracle
  wiring), the successor lists of its O(slist) clockwise predecessors,
  and for each finger level the O(1) expected live nodes whose finger
  interval the new id now owns.  O(log n) row patches total.
- **crash** removes the id from membership *only*: every surviving row
  that referenced it keeps the stale pointer, and lookups route around
  it through the replay lanes' liveness checks, charging the same
  timeout-and-reroute costs a live ring would.
- **leave** (graceful) additionally repairs what the departing node's
  announcement would have: predecessors' successor lists and the finger
  cells that pointed at it are retargeted to its successor.
- **stabilize** rewires every live row to the oracle fixed point in
  vectorized passes -- the analogue of running pairwise stabilization
  to convergence, used between lookup retry attempts.

Under ``REPRO_PURE_PYTHON`` the same class runs on the snapshot's
Python-list lane (small n only; the benches gate the big decades on
numpy being present).
"""

from __future__ import annotations

import bisect
import random

from ...compat import load_numpy
from ..api import CostMeter, PeerRef
from ..vantage import EntryVantageMixin
from .batch import BatchLookupStats, RingSnapshot, lockstep_resolve
from .idspace import id_to_point, point_to_target_id
from .network import _targets_for
from .node import LookupError_

__all__ = ["SoAChordNetwork", "SoAChordDHT"]

_np = load_numpy()

#: Deterministic charge constants, equal to the live transport defaults
#: (ConstantLatency(1.0) one-way, RpcTransport.timeout = 8.0) so traces
#: from this substrate are directly comparable with live-ring charges.
ONE_WAY_LATENCY = 1.0
RPC_LATENCY = 2.0 * ONE_WAY_LATENCY
TIMEOUT = 8.0


class _MembersView:
    """Mapping-shaped view of the live membership (there are no nodes).

    Satisfies the ``nodes`` surface substrate-agnostic code touches --
    iteration, ``len``, ``in``, ``.get``/``[]`` -- with the id itself
    standing in for the (nonexistent) node object.
    """

    __slots__ = ("_net",)

    def __init__(self, net):
        self._net = net

    def __iter__(self):
        return iter(self._net.sorted_ids())

    def __len__(self):
        return self._net.store.n

    def __contains__(self, node_id):
        return node_id in self._net.store.pos

    def get(self, node_id, default=None):
        return node_id if node_id in self._net.store.pos else default

    def __getitem__(self, node_id):
        if node_id not in self._net.store.pos:
            raise KeyError(node_id)
        return node_id


class SoAChordNetwork:
    """A Chord ring whose entire state is one struct-of-arrays snapshot."""

    def __init__(
        self,
        m: int = 32,
        rng: random.Random | None = None,
        successor_list_size: int = 8,
    ):
        if m < 3:
            raise ValueError("identifier space needs at least 3 bits")
        self.m = m
        self.rng = rng if rng is not None else random.Random()
        self._slist_size = successor_list_size
        self.churn_epoch = 0
        self.snapshot_builds = 0
        self.snapshot_patches = 0
        self.store: RingSnapshot | None = None
        self.nodes = _MembersView(self)
        self._sorted_cache: list[int] | None = None
        self._sorted_epoch = -1

    # -- bootstrap ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        n: int,
        m: int = 32,
        rng: random.Random | None = None,
        successor_list_size: int = 8,
    ) -> "SoAChordNetwork":
        if n < 1:
            raise ValueError("need at least one node")
        if n > (1 << m):
            raise ValueError(f"cannot place {n} nodes in a 2^{m} id space")
        net = cls(m=m, rng=rng, successor_list_size=successor_list_size)
        net.store = net._build_store(net._draw_distinct_ids(n))
        net.snapshot_builds = 1
        return net

    def _draw_distinct_ids(self, count: int):
        """``count`` distinct uniform ids, vectorized when numpy is live."""
        size = 1 << self.m
        if _np is None or count < 1024:
            chosen: set[int] = set()
            if self.store is not None:
                chosen.update(self.sorted_ids())
            fresh: list[int] = []
            while len(fresh) < count:
                candidate = self.rng.randrange(size)
                if candidate not in chosen:
                    chosen.add(candidate)
                    fresh.append(candidate)
            return sorted(fresh)
        # Bulk path: over-draw, dedupe, take a uniform random subset so
        # truncating the (sorted) unique array cannot bias low ids.
        np_rng = _np.random.default_rng(self.rng.randrange(1 << 63))
        uniq = _np.unique(
            np_rng.integers(0, size, size=count + count // 4 + 16, dtype=_np.int64)
        )
        while len(uniq) < count:
            more = np_rng.integers(0, size, size=count, dtype=_np.int64)
            uniq = _np.unique(_np.concatenate([uniq, more]))
        subset = np_rng.choice(uniq, size=count, replace=False)
        subset.sort()
        return subset

    def _build_store(self, sorted_ids) -> RingSnapshot:
        """Oracle-wire the whole ring as flat arrays (O(m) passes)."""
        n = len(sorted_ids)
        m = self.m
        size = 1 << m
        width = max(1, min(self._slist_size, n))
        if _np is not None:
            np = _np
            ids = np.ascontiguousarray(sorted_ids, dtype=np.int64)
            idx = np.arange(n, dtype=np.int64)
            succ_mat = np.full((n, width), -1, dtype=np.int64)
            for j in range(width):
                succ_mat[:, j] = ids[(idx + j + 1) % n]
            finger_mat = np.empty((n, m), dtype=np.int64)
            for f in range(m):
                targets = (ids + (1 << f)) % size
                finger_mat[:, f] = ids[np.searchsorted(ids, targets) % n]
            return RingSnapshot.from_arrays(
                m, ids, succ_mat, finger_mat, epoch=self.churn_epoch
            )
        ids_list = list(sorted_ids)
        succ_lists = [
            tuple(ids_list[(i + j + 1) % n] for j in range(width))
            for i in range(n)
        ]
        finger_lists = [
            tuple(
                ids_list[bisect.bisect_left(ids_list, (node_id + (1 << f)) % size) % n]
                for f in range(m)
            )
            for node_id in ids_list
        ]
        return RingSnapshot(self.churn_epoch, m, ids_list, succ_lists, finger_lists)

    # -- oracle views ------------------------------------------------------

    def sorted_ids(self) -> list[int]:
        """Alive ids in clockwise order (memoized per epoch)."""
        if (
            self._sorted_cache is None
            or self._sorted_epoch != self.churn_epoch
            or len(self._sorted_cache) != self.store.n
        ):
            self._sorted_cache = self.store.sorted_ids_list()
            self._sorted_epoch = self.churn_epoch
        return self._sorted_cache

    def snapshot(self) -> RingSnapshot:
        """The lockstep engine routes directly on the live store."""
        return self.store

    def __len__(self) -> int:
        return self.store.n

    def ring_is_correct(self) -> bool:
        """Every successor row starts with the next alive id clockwise."""
        ids = self.sorted_ids()
        n = len(ids)
        store = self.store
        for i, node_id in enumerate(ids):
            succs = store.succs_at(store.pos[node_id])
            first = succs[0] if succs else node_id
            if first != ids[(i + 1) % n]:
                return False
        return True

    def array_bytes(self) -> int:
        """Bytes held by the substrate's arrays (exact, numpy lane only)."""
        if _np is None or self.store.slot_ids_np is None:
            return 0
        store = self.store
        arrays = [
            store.slot_ids_np, store.succ_first_np, store.finger_mat,
            store.succ_mat, store._ids_buf, store._order_buf,
        ]
        if store.pos_table is not None:
            arrays.append(store.pos_table)
        return int(sum(a.nbytes for a in arrays))

    # -- membership (incremental splices) ----------------------------------

    def _ids_in_interval(self, lo: int, hi: int) -> list[int]:
        """Live ids in the circular interval ``(lo, hi]`` of the id space."""
        if lo == hi:
            return []
        ids = self.sorted_ids()
        left = bisect.bisect_right(ids, lo)
        right = bisect.bisect_right(ids, hi)
        if lo < hi:
            return ids[left:right]
        return ids[left:] + ids[:right]  # wraps past zero

    def _oracle_succs(self, ids: list[int], i: int) -> tuple[int, ...]:
        n = len(ids)
        width = max(1, min(self._slist_size, n))
        return tuple(ids[(i + j + 1) % n] for j in range(width))

    def _oracle_fingers(self, ids: list[int], node_id: int) -> tuple[int, ...]:
        size = 1 << self.m
        n = len(ids)
        return tuple(
            ids[bisect.bisect_left(ids, (node_id + (1 << f)) % size) % n]
            for f in range(self.m)
        )

    def join_node(self, node_id: int | None = None) -> int:
        """Splice one node in with O(log n) row patches (oracle wiring)."""
        if node_id is None:
            node_id = int(self._draw_distinct_ids(1)[0])
        store = self.store
        if node_id in store.pos:
            raise ValueError(f"node {node_id} already in the ring")
        size = 1 << self.m
        before = store.patches
        old_ids = self.sorted_ids()
        ids = list(old_ids)
        i = bisect.bisect_left(ids, node_id)
        ids.insert(i, node_id)
        n = len(ids)
        store.apply_join(
            node_id, self._oracle_succs(ids, i), self._oracle_fingers(ids, node_id)
        )
        self.churn_epoch += 1
        self._sorted_cache = ids
        self._sorted_epoch = self.churn_epoch
        # Predecessors within successor-list range see the new id enter
        # their lists; recompute those rows against the new membership.
        for back in range(1, min(self._slist_size, n - 1) + 1):
            j = (i - back) % n
            store.patch_succs(ids[j], self._oracle_succs(ids, j))
        # Finger level f of x points at the new node iff x's finger
        # target landed in the arc the new id took over from its
        # successor: (predecessor_of_new, new].  Shift by 2^f to get the
        # owning x interval; expected O(1) live ids per level.
        prev_id = ids[(i - 1) % n] if n > 1 else node_id
        if n > 1:
            for f in range(self.m):
                lo = (prev_id - (1 << f)) % size
                hi = (node_id - (1 << f)) % size
                for x in self._ids_in_interval(lo, hi):
                    if x != node_id:
                        store.patch_fingers(x, {f: node_id})
        self.snapshot_patches += store.patches - before
        return node_id

    def crash_node(self, node_id: int) -> None:
        """Fail-stop: membership splice-out only; stale rows stay."""
        store = self.store
        if node_id not in store.pos:
            raise KeyError(f"no node {node_id}")
        before = store.patches
        store.apply_remove(node_id)
        self.churn_epoch += 1
        self._sorted_cache = None
        self.snapshot_patches += store.patches - before

    def leave_node(self, node_id: int) -> None:
        """Graceful departure: splice out and repair what it announced."""
        store = self.store
        if node_id not in store.pos:
            raise KeyError(f"no node {node_id}")
        size = 1 << self.m
        before = store.patches
        old_ids = self.sorted_ids()
        i = bisect.bisect_left(old_ids, node_id)
        ids = old_ids[:i] + old_ids[i + 1 :]
        store.apply_remove(node_id)
        self.churn_epoch += 1
        self._sorted_cache = ids
        self._sorted_epoch = self.churn_epoch
        n = len(ids)
        if n == 0:
            self.snapshot_patches += store.patches - before
            return
        # The departed id's arc collapses onto its successor: repair the
        # predecessors' successor lists and every finger that named it.
        for back in range(1, min(self._slist_size, n) + 1):
            j = (i - back) % n
            store.patch_succs(ids[j], self._oracle_succs(ids, j))
        succ_id = ids[i % n]
        prev_id = ids[(i - 1) % n]
        if n > 1:
            for f in range(self.m):
                lo = (prev_id - (1 << f)) % size
                hi = (node_id - (1 << f)) % size
                for x in self._ids_in_interval(lo, hi):
                    store.patch_fingers(x, {f: succ_id})
        self.snapshot_patches += store.patches - before

    # -- maintenance -------------------------------------------------------

    def stabilize_round(self, fingers_per_round: int = 1) -> None:
        """Rewire every live row to the oracle fixed point (vectorized).

        The analogue of running pairwise stabilization to convergence:
        after this, no row references a dead id.  O(n * m) array work,
        invoked only from lookup retry paths and scenario plumbing --
        steady-state churn goes through the incremental splices.
        """
        store = self.store
        n = store.n
        if n == 0:
            return
        self.churn_epoch += 1
        before = store.patches
        if _np is not None and store.slot_ids_np is not None:
            np = _np
            ids = store.ids_np.copy()
            slots = store.order_np.copy()
            idx = np.arange(n, dtype=np.int64)
            width = max(1, min(self._slist_size, n))
            if width > store._width:
                store._grow_width(width)
            for j in range(store.succ_mat.shape[1]):
                col = ids[(idx + j + 1) % n] if j < width else -1
                store.succ_mat[slots, j] = col
            store.succ_first_np[slots] = ids[(idx + 1) % n]
            size = 1 << self.m
            for f in range(self.m):
                targets = (ids + (1 << f)) % size
                store.finger_mat[slots, f] = ids[np.searchsorted(ids, targets) % n]
            if store.succ_lists is not None:  # mirrored mode: keep lists true
                for p in range(n):
                    slot = int(slots[p])
                    store.succ_lists[slot] = tuple(
                        int(v) for v in store.succ_mat[slot] if v >= 0
                    )
                    store.finger_lists[slot] = tuple(
                        int(v) for v in store.finger_mat[slot]
                    )
            store.patches += 1
        else:
            ids = self.sorted_ids()
            for p, node_id in enumerate(ids):
                store.apply_update(
                    node_id,
                    self._oracle_succs(ids, p),
                    self._oracle_fingers(ids, node_id),
                )
        store.epoch = self.churn_epoch
        self.snapshot_patches += store.patches - before

    def run_stabilization(self, rounds: int, fingers_per_round: int = 1) -> None:
        for _ in range(rounds):
            self.stabilize_round(fingers_per_round=fingers_per_round)

    # -- adapter -----------------------------------------------------------

    def dht(
        self, entry_id: int | None = None, lookup_mode: str = "iterative"
    ) -> "SoAChordDHT":
        return SoAChordDHT(self, entry_id=entry_id, lookup_mode=lookup_mode)

    @classmethod
    def build_dht(
        cls,
        n: int,
        m: int = 32,
        rng: random.Random | None = None,
        lookup_mode: str = "iterative",
        **kwargs,
    ) -> "SoAChordDHT":
        return cls.build(n, m=m, rng=rng, **kwargs).dht(lookup_mode=lookup_mode)


class SoAChordDHT(EntryVantageMixin):
    """The ``h``/``next`` adapter over :class:`SoAChordNetwork`.

    Every lookup is a lockstep replay over the array store, scalar calls
    included, with the deterministic charge constants above -- so
    ``h_many`` equals a scalar ``h`` loop in peers and charges exactly
    (both are the same traces), and the retry discipline (stabilize
    between attempts, accumulate failed-attempt charges) mirrors
    :class:`~repro.dht.chord.network.ChordDHT`.  Deliberately not a
    ``BulkDHT``: costs are modeled per-hop, not unit-priced.
    """

    def __init__(
        self,
        network: SoAChordNetwork,
        entry_id: int | None = None,
        retries: int = 3,
        lookup_mode: str = "iterative",
    ):
        if len(network) == 0:
            raise ValueError("cannot adapt an empty network")
        if lookup_mode not in ("iterative", "recursive"):
            raise ValueError(f"unknown lookup_mode {lookup_mode!r}")
        self._network = network
        if entry_id is None:
            entry_id = network.sorted_ids()[0]
        if entry_id not in network.nodes:
            raise KeyError(f"entry node {entry_id} is not alive")
        self._entry_id = entry_id
        self._retries = max(1, retries)
        self._lookup_mode = lookup_mode
        self.cost = CostMeter()
        self.batch_stats = BatchLookupStats()

    def _ref(self, node_id: int) -> PeerRef:
        return PeerRef(peer_id=node_id, point=id_to_point(node_id, self._network.m))

    def _vantage_id(self) -> int:
        if self._entry_id not in self._network.nodes:
            self._entry_id = self._nearest_alive(self._entry_id)
        return self._entry_id

    def _resolve_batch(self, targets) -> list:
        return lockstep_resolve(
            self._network.snapshot(),
            self._vantage_id(),
            targets,
            mode=self._lookup_mode,
            rpc_latency=RPC_LATENCY,
            oneway_latency=ONE_WAY_LATENCY,
            timeout=TIMEOUT,
        )

    def h(self, x: float) -> PeerRef:
        """``h(x)``: one replayed lookup, retried over stabilization."""
        target = point_to_target_id(x, self._network.m)
        msgs = 0
        latency = 0.0
        owner: int | None = None
        for attempt in range(self._retries):
            trace = self._resolve_batch([target])[0]
            msgs += trace.messages
            latency += trace.latency
            if trace.ok:
                owner = trace.owner
                break
            if attempt + 1 < self._retries:
                self._network.stabilize_round()
        self.cost.charge_h(msgs, latency)
        if owner is None:
            raise LookupError_(
                f"h({x!r}) failed after {self._retries} attempts"
            )
        return self._ref(owner)

    def lockstep_eligible(self) -> bool:
        return True  # charges are deterministic by construction

    def warm_lockstep(self) -> bool:
        return True  # the store *is* the snapshot; nothing to build

    def h_many(self, xs) -> list[PeerRef]:
        return self._h_many(list(xs), tolerant=False)

    def resolve_many(self, xs) -> list[PeerRef | None]:
        return self._h_many(list(xs), tolerant=True)

    def _h_scalar(self, x: float, tolerant: bool) -> PeerRef | None:
        if not tolerant:
            return self.h(x)
        try:
            return self.h(x)
        except LookupError_:
            return None

    def _h_many(self, points: list, tolerant: bool) -> list:
        if len(points) < 2:
            self.batch_stats.percall += len(points)
            return [self._h_scalar(x, tolerant) for x in points]
        out: list = []
        i = 0
        while i < len(points):
            targets = _targets_for(points[i:], self._network.m)
            if len(targets) == 0:
                out.append(self._h_scalar(points[i], tolerant))
                i += 1
                continue
            traces = self._resolve_batch(targets)
            n_ok = next(
                (j for j, tr in enumerate(traces) if not tr.ok), len(traces)
            )
            if n_ok:
                messages = sum(tr.messages for tr in traces[:n_ok])
                latency = sum(tr.latency for tr in traces[:n_ok])
                self.cost.charge_bulk(
                    h_calls=n_ok, messages=messages, latency=latency
                )
                self.batch_stats.lockstep += n_ok
                out.extend(self._ref(tr.owner) for tr in traces[:n_ok])
                i += n_ok
            if n_ok < len(traces):
                # Scalar re-execution replays the failed attempt's
                # charges and runs the stabilize-retry loop, exactly
                # like the scalar twin would at this point.
                self.batch_stats.delegated += 1
                out.append(self._h_scalar(points[i], tolerant))
                i += 1
        return out

    def successor_of_index(self, i: int) -> PeerRef:
        ids = self._network.sorted_ids()
        return self._ref(ids[i % len(ids)])

    def next(self, peer: PeerRef) -> PeerRef:
        """``next(p)``: read the successor row (charged as one RPC)."""
        store = self._network.store
        if peer.peer_id in store.pos:
            succs = store.succs_at(store.pos[peer.peer_id])
            self.cost.charge_next(2, RPC_LATENCY)
            return self._ref(succs[0] if succs else peer.peer_id)
        # Dead peer: the live path charges a timed-out call, then
        # re-resolves the point via h.
        self.cost.charge_next(1, TIMEOUT)
        return self.h(peer.point)

    def any_peer(self) -> PeerRef:
        return self._ref(self._vantage_id())
