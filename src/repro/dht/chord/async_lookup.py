"""Continuation-driven Chord lookups for the async message-level transport.

The coroutines here are the event-clock twins of
:meth:`ChordNode.lookup` and :meth:`ChordNode.lookup_recursive`: the
same routing decisions (every step goes through ``lookup_step`` with the
same excluded tuples), but every remote exchange is a yielded
:class:`~repro.sim.async_net.Call`, so the lookup's pending state lives
across scheduled deliveries rather than inside a blocking call chain.
That is what lets a lookup survive a peer dying *mid-flight*: the
in-flight hop times out as a real event, the coroutine resumes with
:class:`~repro.sim.network.RpcTimeout` thrown in, and routing falls back
to the next live successor-list entry -- all under a per-request
deadline budget measured on the sim clock.

Two modes:

* :func:`iterative_lookup` -- the querier drives every hop, keeping a
  *path stack* of nodes that have answered so far; when the node it
  would re-ask has itself died, it backs down the stack instead of
  aborting (the sync path's one weakness under mid-lookup churn).
* :func:`forward_hop` / :func:`lookup_recursive_async` -- recursive
  forwarding where each hop is an acked request (the ack means
  "accepted", so forwarding still pipelines), letting a forwarder
  notice a dead next hop and re-issue to the next live successor.
  The owner's answer travels as one direct message to the querier
  (:meth:`ChordNode.claim_async_lookup`), preserving the sync mode's
  direct-reply message economy; a querier-side deadline event bounds
  the whole request.

Only meaningful on :class:`~repro.sim.async_net.AsyncRpcTransport`
endpoints (``spawn``/``cast``/``sim`` are async-plane surface); the
sync default never imports this module at lookup time.
"""

from __future__ import annotations

from collections.abc import Generator
from typing import TYPE_CHECKING

from ...sim.async_net import Call, Future
from ...sim.network import RpcTimeout
from .node import LookupError_, LookupResult, hop_budget

if TYPE_CHECKING:
    from .node import ChordNode

__all__ = [
    "forward_hop",
    "iterative_lookup",
    "lookup_async",
    "lookup_recursive_async",
]


def iterative_lookup(
    node: "ChordNode",
    target_id: int,
    *,
    max_hops: int | None = None,
    deadline: float | None = None,
) -> Generator:
    """Coroutine body of an iterative lookup (spawn via :func:`lookup_async`).

    Mirrors :meth:`ChordNode.lookup` exchange-for-exchange under failure-
    free conditions (same ``lookup_step`` sequence, same single owner
    ``ping``), which is what the cross-transport equivalence property
    pins.  Under churn it is *stronger* than the sync path: the nodes
    that answered so far form a stack, and when the node we would re-ask
    has died we back down the stack (ending at ourselves, answered
    locally) instead of aborting the lookup.

    ``deadline`` is a sim-clock budget for the whole request, checked
    between exchanges; ``None`` leaves only the hop budget.
    """
    ep = node._transport
    budget = max_hops if max_hops is not None else hop_budget(node.m)
    expires = None if deadline is None else ep.now + deadline
    excluded: tuple[int, ...] = ()
    #: Nodes that have answered a routing step, query order; the bottom
    #: entry is ourselves, so backing down always terminates locally.
    path = [node.node_id]
    kind, nxt = node.lookup_step(target_id)
    hops = 0

    def overdue() -> bool:
        return expires is not None and ep.now >= expires

    def fail(why: str) -> LookupError_:
        return LookupError_(f"lookup of {target_id} from {node.node_id}: {why}")

    def ask_down_the_path() -> Generator:
        """Re-ask the most recent answerer, backing down past casualties."""
        nonlocal excluded, hops
        while True:
            if overdue():
                raise fail(f"deadline of {deadline:g} sim-seconds exceeded")
            current = path[-1]
            if current == node.node_id:
                return node.lookup_step(target_id, excluded)
            try:
                return (yield Call(current, "lookup_step", target_id, excluded))
            except RpcTimeout:
                excluded = excluded + (current,)
                path.pop()
                hops += 1
                if hops >= budget:
                    raise fail(f"no live path within {budget} hops") from None

    while True:
        if overdue():
            raise fail(f"deadline of {deadline:g} sim-seconds exceeded")
        if kind == "done":
            owner = nxt
            if owner == node.node_id:
                return LookupResult(node_id=owner, hops=hops)
            # Verify the owner answers, as the sync path does with one
            # ping; a stale pointer to a fresh crash gets excluded and
            # the query re-asked, falling to the live successor.
            try:
                yield Call(owner, "ping")
                return LookupResult(node_id=owner, hops=hops)
            except RpcTimeout:
                pass
            excluded = excluded + (owner,)
            hops += 1
            if hops >= budget:
                raise fail(f"no live owner within {budget} hops")
            kind, nxt = yield from ask_down_the_path()
            continue
        if hops >= budget:
            raise fail(f"exceeded {budget} hops")
        try:
            step = yield Call(nxt, "lookup_step", target_id, excluded)
        except RpcTimeout:
            # The hop died with our query in flight: route around it.
            excluded = excluded + (nxt,)
            hops += 1
            kind, nxt = yield from ask_down_the_path()
            continue
        hops += 1
        path.append(nxt)
        kind, nxt = step


def lookup_async(
    node: "ChordNode",
    target_id: int,
    *,
    max_hops: int | None = None,
    deadline: float | None = None,
) -> Future:
    """Start an iterative lookup on the async plane; resolves to
    :class:`LookupResult`, fails with :class:`LookupError_`."""
    return node._transport.spawn(
        iterative_lookup(node, target_id, max_hops=max_hops, deadline=deadline)
    )


def forward_hop(
    node: "ChordNode",
    target_id: int,
    querier_id: int,
    token: int,
    hops: int,
    budget: int,
) -> Generator:
    """One forwarder's share of an async recursive lookup.

    Route locally, then hand the query to the next hop with an *acked*
    request (:meth:`ChordNode.async_forward_lookup` replies immediately
    after spawning its own hop, so the chain still pipelines).  No ack
    within the RPC timeout means the next hop is dead: exclude it,
    recompute the step, and re-issue to the next live successor.  When
    the routing step terminates, the owner is asked -- also acked, also
    failed over -- to claim the query with one direct message to the
    querier.  A hop-budget exhaustion simply stops forwarding; the
    querier's deadline event reports the failure.
    """
    excluded: tuple[int, ...] = ()
    while True:
        kind, nxt = node.lookup_step(target_id, excluded)
        if kind == "done":
            if nxt == node.node_id:
                node.claim_async_lookup(target_id, querier_id, token, hops)
                return
            try:
                yield Call(
                    nxt, "claim_async_lookup", target_id, querier_id, token, hops + 1
                )
                return
            except RpcTimeout:
                excluded = excluded + (nxt,)
                hops += 1
                if hops > budget:
                    return
                continue
        if hops >= budget:
            return
        try:
            yield Call(
                nxt, "async_forward_lookup", target_id, querier_id, token,
                hops + 1, budget,
            )
            return
        except RpcTimeout:
            excluded = excluded + (nxt,)
            hops += 1


def lookup_recursive_async(
    node: "ChordNode",
    target_id: int,
    *,
    max_hops: int | None = None,
    deadline: float | None = None,
) -> Future:
    """Start a recursive lookup on the async plane from ``node``.

    Registers a completion token on the querier, arms a deadline event
    (default ``4 x`` the transport timeout -- room for a couple of
    mid-chain failovers), and spawns the first :func:`forward_hop`
    locally, exactly where :meth:`ChordNode.lookup_recursive` runs its
    own first routing step.  The returned :class:`Future` resolves to
    :class:`LookupResult` when the owner's direct answer lands, or fails
    with :class:`LookupError_` when the deadline fires first (dead
    owner, budget exhaustion, or a chain lost to churn).
    """
    ep = node._transport
    budget = max_hops if max_hops is not None else hop_budget(node.m)
    window = deadline if deadline is not None else 4.0 * ep.timeout
    future = Future()
    token = node._async_seq
    node._async_seq = token + 1

    def expire() -> None:
        if node._async_lookups.pop(token, None) is not None:
            future.fail(
                LookupError_(
                    f"recursive lookup of {target_id} from {node.node_id}: "
                    f"no answer within {window:g} sim-seconds"
                )
            )

    expire_event = ep.sim.schedule(window, expire)

    def settle(owner_id: int, hops: int) -> None:
        expire_event.cancel()
        future.resolve(LookupResult(node_id=owner_id, hops=hops))

    node._async_lookups[token] = settle
    ep.spawn(forward_hop(node, target_id, node.node_id, token, 0, budget))
    return future
