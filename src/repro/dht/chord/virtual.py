"""Virtual-node Chord: each physical peer operates ``v`` ring identities.

The classical load-balancing extension ([16], discussed in the paper's
related work): a peer owns ``v`` points, so its total arc share
concentrates around ``1/n``.  The cost the paper highlights -- and the
reason it sticks to the plain DHT -- is maintenance bandwidth: every
virtual identity runs its own stabilization.  This wrapper builds a real
:class:`~repro.dht.chord.network.ChordNetwork` with ``n * v`` nodes plus
an ownership map, and *measures* the stabilization message cost rather
than modelling it, complementing the analytic
:mod:`repro.baselines.virtual_nodes`.
"""

from __future__ import annotations

import random

from ...core.intervals import SortedCircle
from .network import ChordDHT, ChordNetwork

__all__ = ["VirtualChordNetwork"]


class VirtualChordNetwork:
    """A Chord ring where physical peer ``i`` owns ``v`` virtual nodes."""

    def __init__(
        self,
        n_peers: int,
        v: int,
        m: int = 32,
        rng: random.Random | None = None,
        **kwargs,
    ):
        if n_peers < 1 or v < 1:
            raise ValueError("need at least one peer and one virtual node each")
        self.n_peers = n_peers
        self.v = v
        self.network = ChordNetwork.build(n_peers * v, m=m, rng=rng, **kwargs)
        ids = self.network.sorted_ids()
        shuffled = list(ids)
        self.network.rng.shuffle(shuffled)
        self._owner: dict[int, int] = {
            node_id: index // v for index, node_id in enumerate(shuffled)
        }

    def owner_of(self, node_id: int) -> int:
        """The physical peer operating virtual node ``node_id``."""
        return self._owner[node_id]

    def dht(self, entry_id: int | None = None) -> ChordDHT:
        """The h/next interface over the *virtual* ring."""
        return self.network.dht(entry_id=entry_id)

    def sample_physical(self, sampler) -> int:
        """A uniformly random *physical* peer via any uniform virtual-node
        sampler (each peer owns exactly ``v`` identities, so the induced
        distribution over peers is uniform too)."""
        return self.owner_of(sampler.sample().peer_id)

    def selection_probabilities(self) -> list[float]:
        """Exact naive-heuristic distribution aggregated per physical peer."""
        circle = self.network.to_circle()
        ids = self.network.sorted_ids()
        probs = [0.0] * self.n_peers
        for index, node_id in enumerate(ids):
            probs[self._owner[node_id]] += circle.arc(index)
        return probs

    def measured_maintenance_messages(self, rounds: int = 1) -> int:
        """Actual transport messages consumed by ``rounds`` stabilization
        rounds over all virtual nodes -- the bandwidth cost of ``v``."""
        before = self.network.transport.messages_sent
        self.network.run_stabilization(rounds)
        return self.network.transport.messages_sent - before

    def to_peer_circle(self) -> SortedCircle:
        """All virtual points (the ring the algorithms actually see)."""
        return self.network.to_circle()

    def __len__(self) -> int:
        return self.n_peers
