"""The Chord overlay: membership, bootstrap, stabilization, and the DHT
adapter that exposes the paper's ``h``/``next`` interface with real
message-level cost accounting.
"""

from __future__ import annotations

import bisect
import random
from dataclasses import dataclass

import networkx as nx

from ...compat import load_numpy
from ...core.intervals import SortedCircle
from ...faults.retry import RetryPolicy
from ...sim.async_net import AsyncRpcTransport
from ...sim.kernel import Simulator
from ...sim.network import LatencyModel, RpcTimeout, RpcTransport
from ..api import NUMPY_MIN_BATCH, CostMeter, PeerRef
from ..vantage import EntryVantageMixin
from .batch import BatchLookupStats, RingSnapshot, lockstep_resolve
from .idspace import id_to_point, point_to_target_id
from .node import ChordNode, LookupError_

__all__ = ["ChordNetwork", "ChordDHT", "SnapshotDelta"]


@dataclass(frozen=True, slots=True)
class SnapshotDelta:
    """One membership event in the network's snapshot delta log.

    ``kind`` is ``"add"`` (join) or ``"remove"`` (crash/leave).  The log
    records *which* ids changed membership, not their state: the drain in
    :meth:`ChordNetwork.snapshot` reads each survivor's current
    successor/finger state at patch time, which is what makes the patched
    snapshot bit-identical to a from-scratch rebuild regardless of how
    many maintenance rounds ran between drains.  Row-level changes to
    nodes that stayed members travel separately, via the dirty set fed by
    :attr:`ChordNode.on_change`.
    """

    kind: str
    node_id: int


class ChordNetwork:
    """A simulated Chord ring plus the machinery to keep it stabilized.

    Nodes live in an :class:`~repro.sim.network.RpcTransport`; a
    :class:`~repro.sim.kernel.Simulator` (optional) drives periodic
    maintenance for churn experiments, or callers invoke
    :meth:`stabilize_round` directly for lock-step experiments.
    """

    def __init__(
        self,
        m: int = 32,
        rng: random.Random | None = None,
        latency: LatencyModel | None = None,
        loss_rate: float = 0.0,
        successor_list_size: int = 8,
        sim: Simulator | None = None,
        ring_merge: bool = True,
        loss_rng: random.Random | None = None,
        async_transport: bool = False,
    ):
        if m < 3:
            raise ValueError("identifier space needs at least 3 bits")
        self.m = m
        self.rng = rng if rng is not None else random.Random()
        self.sim = sim if sim is not None else Simulator()
        if async_transport:
            # The message-level transport: requests/replies as scheduled
            # events on this network's simulator (see repro.sim.async_net).
            self.transport: RpcTransport = AsyncRpcTransport(
                self.sim,
                latency=latency,
                rng=self.rng,
                loss_rate=loss_rate,
                loss_rng=loss_rng,
            )
        else:
            self.transport = RpcTransport(
                latency=latency, rng=self.rng, loss_rate=loss_rate, loss_rng=loss_rng
            )
        self._slist_size = successor_list_size
        #: Run the network-level ring-merge pass (see :meth:`_merge_rings`)
        #: at the end of every stabilization round.  On by default -- it
        #: models the merge protocol deployments layer on Chord -- but
        #: can be disabled to study *pure* pairwise stabilization.
        self.ring_merge = ring_merge
        self.nodes: dict[int, ChordNode] = {}
        #: Monotone counter bumped by every membership or maintenance
        #: event (join/crash/leave/stabilize/rewire).  Epoch-keyed caches
        #: -- the memoized :meth:`sorted_ids` and the lockstep engine's
        #: :class:`~repro.dht.chord.batch.RingSnapshot` -- are rebuilt
        #: lazily whenever this moves.  Callers that mutate node state
        #: *directly* (bypassing the network API) must call
        #: :meth:`bump_epoch` themselves.
        self.churn_epoch = 0
        #: How many ring snapshots have been built *from scratch* -- with
        #: incremental maintenance this stays at 1 under churn driven
        #: through the network API; only direct node mutation
        #: (:meth:`bump_epoch`) or a delta backlog larger than the ring
        #: forces another full build.
        self.snapshot_builds = 0
        #: Row-level patch operations applied to the live snapshot in
        #: lieu of full rebuilds (observability for benches/reports).
        self.snapshot_patches = 0
        self._sorted_cache: list[int] | None = None
        self._sorted_epoch = -1
        self._snapshot: RingSnapshot | None = None
        #: Ordered membership-event log plus the row-dirty set, drained
        #: into the live snapshot by :meth:`snapshot`.
        self._deltas: list[SnapshotDelta] = []
        self._dirty: set[int] = set()

    # -- bootstrap ---------------------------------------------------------

    @classmethod
    def build(
        cls,
        n: int,
        m: int = 32,
        rng: random.Random | None = None,
        perfect: bool = True,
        **kwargs,
    ) -> "ChordNetwork":
        """Create a ring of ``n`` nodes with distinct random identifiers.

        ``perfect=True`` wires successors, predecessors, successor lists
        and finger tables exactly (the post-stabilization fixed point), so
        experiments start from a correct overlay.  ``perfect=False``
        builds the ring by sequential joins, leaving repair to
        stabilization -- exercising the maintenance protocol itself.
        """
        net = cls(m=m, rng=rng, **kwargs)
        if n < 1:
            raise ValueError("need at least one node")
        ids = net._draw_distinct_ids(n)
        if perfect:
            for node_id in ids:
                net._register_node(
                    ChordNode(node_id, net.m, net.transport, net._slist_size)
                )
            net.rewire_perfectly()
        else:
            first = ids[0]
            net._register_node(
                ChordNode(first, net.m, net.transport, net._slist_size)
            )
            for node_id in ids[1:]:
                net.join_node(node_id)
                net.stabilize_round()
        return net

    def _draw_distinct_ids(self, count: int) -> list[int]:
        size = 1 << self.m
        if count > size:
            raise ValueError(f"cannot place {count} nodes in a 2^{self.m} id space")
        chosen: set[int] = set(self.nodes)
        fresh: list[int] = []
        while len(fresh) < count:
            candidate = self.rng.randrange(size)
            if candidate not in chosen:
                chosen.add(candidate)
                fresh.append(candidate)
        return fresh

    def bump_epoch(self) -> None:
        """Invalidate epoch-keyed caches after a *direct* state mutation.

        The conservative path for tests and tools that reach into node
        state outside the network API (and for :meth:`rewire_perfectly`,
        which rewrites every row anyway): the live snapshot is discarded
        and the next :meth:`snapshot` call rebuilds from scratch, since
        the delta log cannot know what changed.  Churn driven through the
        network API does *not* come here -- joins, crashes, leaves and
        stabilization record deltas via :meth:`_note_churn` and the
        snapshot is patched incrementally.
        """
        self.churn_epoch += 1
        self._snapshot = None
        self._deltas.clear()
        self._dirty.clear()

    def _note_churn(self, delta: SnapshotDelta | None = None) -> None:
        """Advance the epoch, logging a membership delta when one occurred.

        A delta backlog larger than the ring means patching would cost
        more than rebuilding (and the log would otherwise grow unbounded
        if no one consumes snapshots), so the log collapses to a full
        rebuild past that point.
        """
        self.churn_epoch += 1
        if self._snapshot is None:
            return  # nothing live to patch; next snapshot() rebuilds
        if delta is not None:
            self._deltas.append(delta)
        if len(self._deltas) > max(64, 2 * len(self.nodes)):
            self._snapshot = None
            self._deltas.clear()
            self._dirty.clear()

    def _mark_dirty(self, node_id: int) -> None:
        self._dirty.add(node_id)

    def _register_node(self, node: ChordNode) -> None:
        node.on_change = self._mark_dirty
        self.nodes[node.node_id] = node
        self.transport.register(node.node_id, node)

    def rewire_perfectly(self) -> None:
        """Set every node's state to the stabilized fixed point (oracle)."""
        ids = sorted(self.nodes)
        n = len(ids)
        size = 1 << self.m
        for i, node_id in enumerate(ids):
            node = self.nodes[node_id]
            node.successors = [ids[(i + k + 1) % n] for k in range(min(self._slist_size, n))]
            if not node.successors:
                node.successors = [node_id]
            node.predecessor = ids[(i - 1) % n] if n > 1 else None
            for f in range(self.m):
                target = (node_id + (1 << f)) % size
                node.fingers[f] = self._oracle_successor(ids, target)
        self.bump_epoch()

    @staticmethod
    def _oracle_successor(sorted_ids: list[int], target: int) -> int:
        i = bisect.bisect_left(sorted_ids, target)
        return sorted_ids[i % len(sorted_ids)]

    # -- membership ----------------------------------------------------------

    def join_node(self, node_id: int | None = None) -> ChordNode:
        """Add one node via the real join protocol (needs stabilization after)."""
        if node_id is None:
            node_id = self._draw_distinct_ids(1)[0]
        if node_id in self.nodes:
            raise ValueError(f"node {node_id} already in the ring")
        node = ChordNode(node_id, self.m, self.transport, self._slist_size)
        entry = self._random_alive_id()
        self._register_node(node)
        if entry is not None:
            node.join(entry)
        self._note_churn(SnapshotDelta("add", node_id))
        return node

    def crash_node(self, node_id: int) -> None:
        """Fail-stop: the node vanishes without telling anyone."""
        self._remove(node_id)

    def leave_node(self, node_id: int) -> None:
        """Graceful departure: the node splices itself out first."""
        self.nodes[node_id].leave_gracefully()
        self._remove(node_id)

    def _remove(self, node_id: int) -> None:
        if node_id not in self.nodes:
            raise KeyError(f"no node {node_id}")
        del self.nodes[node_id]
        self.transport.deregister(node_id)
        self._note_churn(SnapshotDelta("remove", node_id))

    def _random_alive_id(self) -> int | None:
        others = [i for i in self.nodes]
        if not others:
            return None
        return self.rng.choice(others)

    def __len__(self) -> int:
        return len(self.nodes)

    # -- maintenance -----------------------------------------------------------

    def stabilize_round(self, fingers_per_round: int = 1) -> None:
        """One lock-step maintenance round over all nodes (random order)."""
        order = list(self.nodes)
        self.rng.shuffle(order)
        for node_id in order:
            node = self.nodes.get(node_id)
            if node is None:  # removed mid-round
                continue
            node.check_predecessor()
            node.stabilize()
            # Bypass repair: a node with no inbound pointer at all
            # (correlated kill took its predecessor and the ring failed
            # over past it) re-inserts itself by self-search -- rectify,
            # O(log n) messages, cold on a healthy ring.
            if len(self.nodes) > 1 and node.predecessor is None:
                node.rectify()
            for _ in range(fingers_per_round):
                node.fix_next_finger()
        if self.ring_merge:
            self._merge_rings()
        # Maintenance only rewrites rows of existing members; the nodes'
        # on_change hooks have already marked exactly which ones.
        self._note_churn()

    def _merge_rings(self) -> None:
        """Re-join nodes that churn has split off the main ring.

        Crash-heavy churn can orphan a node (its entire successor list
        died before repair, so it self-loops) or, worse, let several
        orphans adopt *each other* into a small island ring.  A
        partition leaves each side a self-consistent subring, and a
        correlated arc kill leaves long bypassed *tails*: chains of
        live, successor-correct nodes that feed into the main cycle
        while one node upstream skips over all of them.  No pointer in
        the main ring leads to any of these, so pairwise stabilization
        re-admits them at best one node per round -- the classic Chord
        liveness gap that deployed systems close with a separate
        ring-merge/anti-entropy protocol.  We model that protocol at
        the network level: find the cycles of the live
        successor-pointer graph, take the largest as the main ring, and
        *splice* every live node that is not a member of it -- minority
        cycles and bypassed tails alike -- via a self-search through a
        main-ring entry that offers the node to whoever bypasses it
        (:meth:`ChordNode.rectify`), plus a successor probe that adopts
        a strictly closer successor if the main ring holds one
        (:meth:`ChordNode.repair_successor`).  Splicing preserves the
        island's internal clockwise chain, so a partition-healed half
        re-enters in one pass instead of being flattened onto a single
        boundary node (the pathology of re-``join``-ing every member,
        which then interleaves back one node per round).  Nodes whose
        successor chain dead-ends at a crashed pointer are skipped:
        their state is not yet settled enough to splice, and
        ``stabilize`` repairs the dangling pointer first.  All searches
        run the real lookup protocol and are metered like any other
        traffic; on a healthy ring every node sits in the single main
        cycle and this pass does nothing.
        """
        if len(self.nodes) < 2:
            return
        succ = {}
        for node_id, node in self.nodes.items():
            s = node.get_successor()
            succ[node_id] = s if s in self.nodes else None
        # Walk the (partial) functional graph once, recording for every
        # node whether its chain reaches a cycle or dead-ends (None).
        visited: dict[int, int] = {}  # node -> walk it was first seen in
        cycles: list[set[int]] = []
        reaches_cycle: set[int] = set()
        pending: list[list[int]] = []  # paths awaiting terminal resolution
        for walk, start in enumerate(sorted(succ)):
            path = []
            cur = start
            while cur is not None and cur not in visited:
                visited[cur] = walk
                path.append(cur)
                cur = succ[cur]
            if cur is None:
                continue  # dead-ends; stabilize() repairs these first
            if visited[cur] == walk:
                cycles.append(set(path[path.index(cur):]))
                reaches_cycle.update(path)
            elif cur in reaches_cycle:
                reaches_cycle.update(path)
            else:
                pending.append(path)
        for path in pending:
            if succ[path[-1]] in reaches_cycle:
                reaches_cycle.update(path)
        if not cycles:
            return
        main = max(cycles, key=lambda c: (len(c), -min(c)))
        stranded = sorted(reaches_cycle - main)
        if not stranded:
            return
        entry_pool = sorted(main)
        for node_id in stranded:
            node = self.nodes.get(node_id)
            if node is None:
                continue
            entry = self.rng.choice(entry_pool)
            node.rectify(via=entry)
            node.repair_successor(via=entry)

    def run_stabilization(self, rounds: int, fingers_per_round: int = 1) -> None:
        """Run several lock-step maintenance rounds back to back."""
        for _ in range(rounds):
            self.stabilize_round(fingers_per_round=fingers_per_round)

    def start_periodic_maintenance(self, interval: float = 8.0):
        """Schedule stabilization on the simulator clock (churn experiments)."""
        return self.sim.every(interval, self.stabilize_round)

    # -- oracles for tests and analysis ----------------------------------------

    def sorted_ids(self) -> list[int]:
        """Alive identifiers in clockwise ring order (oracle view).

        Memoized on :attr:`churn_epoch`: static phases pay the O(n log n)
        sort once per epoch instead of on every call (the pre-memoization
        behaviour re-sorted on *each* lookup failover, bench row and
        oracle check).  The returned list is shared -- treat it as
        read-only.  A length guard catches direct ``nodes`` mutations
        that forgot :meth:`bump_epoch`.
        """
        if (
            self._sorted_cache is None
            or self._sorted_epoch != self.churn_epoch
            or len(self._sorted_cache) != len(self.nodes)
        ):
            self._sorted_cache = sorted(self.nodes)
            self._sorted_epoch = self.churn_epoch
        return self._sorted_cache

    def snapshot(self) -> RingSnapshot:
        """The live array view used by the lockstep lookup engine.

        Built from scratch once, then maintained *incrementally*: when
        :attr:`churn_epoch` has moved, the pending membership deltas are
        drained in order (joins spliced in, crashes/leaves spliced out)
        and every surviving node the maintenance hooks marked dirty gets
        its successor/finger rows rewritten from its current state --
        O(changed) row patches instead of an O(n * m) rebuild.  The
        patched snapshot is bit-identical to ``RingSnapshot.build(self)``
        (pinned by the Hypothesis equivalence property), so the lockstep
        engine's charge-identity guarantee is unaffected.  Only
        :meth:`bump_epoch` (direct node mutation, perfect rewire) or a
        delta backlog exceeding the ring size forces a fresh build.
        """
        snap = self._snapshot
        if snap is None:
            self._deltas.clear()
            self._dirty.clear()
            snap = self._snapshot = RingSnapshot.build(self)
            self.snapshot_builds += 1
            return snap
        if snap.epoch != self.churn_epoch:
            before = snap.patches
            for delta in self._deltas:
                if delta.kind == "remove":
                    snap.apply_remove(delta.node_id)
                    continue
                node = self.nodes.get(delta.node_id)
                if node is None:
                    continue  # joined and departed within one drain window
                snap.apply_join(delta.node_id, node.successors, node.fingers)
                self._dirty.discard(delta.node_id)
            self._deltas.clear()
            for node_id in self._dirty:
                node = self.nodes.get(node_id)
                if node is not None and node_id in snap.pos:
                    snap.apply_update(node_id, node.successors, node.fingers)
            self._dirty.clear()
            self.snapshot_patches += snap.patches - before
            snap.epoch = self.churn_epoch
        return snap

    def ring_is_correct(self) -> bool:
        """Every successor pointer equals the next alive id clockwise."""
        ids = self.sorted_ids()
        n = len(ids)
        for i, node_id in enumerate(ids):
            expected = ids[(i + 1) % n]
            if self.nodes[node_id].get_successor() != expected:
                return False
        return True

    def predecessors_correct(self) -> bool:
        """Every predecessor pointer equals the previous alive id."""
        ids = self.sorted_ids()
        n = len(ids)
        if n == 1:
            return True
        return all(
            self.nodes[ids[i]].predecessor == ids[(i - 1) % n] for i in range(n)
        )

    def to_circle(self) -> SortedCircle:
        """The analytic view: alive peer points on the unit circle."""
        return SortedCircle(id_to_point(i, self.m) for i in self.nodes)

    def overlay_graph(self, include_fingers: bool = True) -> nx.Graph:
        """The overlay as an undirected graph (successor + finger edges)."""
        g = nx.Graph()
        g.add_nodes_from(self.nodes)
        for node_id, node in self.nodes.items():
            succ = node.get_successor()
            if succ in self.nodes and succ != node_id:
                g.add_edge(node_id, succ)
            if include_fingers:
                for finger in node.fingers:
                    if finger is not None and finger in self.nodes and finger != node_id:
                        g.add_edge(node_id, finger)
        return g

    def dht(
        self,
        entry_id: int | None = None,
        lookup_mode: str = "iterative",
        retry_policy: RetryPolicy | None = None,
        retry_rng: random.Random | None = None,
    ) -> "ChordDHT":
        """An ``h``/``next`` adapter rooted at ``entry_id`` (default: any)."""
        return ChordDHT(
            self,
            entry_id=entry_id,
            lookup_mode=lookup_mode,
            retry_policy=retry_policy,
            retry_rng=retry_rng,
        )

    @classmethod
    def build_dht(
        cls,
        n: int,
        m: int = 20,
        rng: random.Random | None = None,
        lookup_mode: str = "iterative",
        **kwargs,
    ) -> "ChordDHT":
        """Build a perfectly-wired ring and return its DHT adapter.

        The one shared constructor for workloads, the serving layer and
        the CLI, so every consumer builds identically-configured rings.
        Validates that the identifier space can hold ``n`` distinct ids.
        """
        if n > (1 << m):
            raise ValueError(f"identifier space 2^{m} too small for n={n}")
        return cls.build(n, m=m, rng=rng, **kwargs).dht(lookup_mode=lookup_mode)


# Optional acceleration for batched point -> target conversion; None
# when numpy is absent or REPRO_PURE_PYTHON is set (see repro.compat).
_np = load_numpy()


def _targets_for(points, m: int):
    """``point_to_target_id`` over a vector, stopping at the first invalid.

    Returns the converted prefix (possibly the whole vector); the caller
    replays the first unconverted point through the scalar path so an
    out-of-domain value raises exactly where a per-call loop would.
    """
    if _np is not None and len(points) >= NUMPY_MIN_BATCH:
        arr = _np.asarray(points, dtype=_np.float64)
        ok = (arr > 0.0) & (arr <= 1.0)  # negated form would let NaN through
        if not ok.all():
            arr = arr[: int(_np.argmin(ok))]
        size = 1 << m
        # same float product and ceiling as math.ceil(x * size) % size
        return _np.ceil(arr * size).astype(_np.int64) % size
    targets: list[int] = []
    for x in points:
        try:
            targets.append(point_to_target_id(x, m))
        except ValueError:
            break
    return targets


class ChordDHT(EntryVantageMixin):
    """The paper's DHT interface over a live :class:`ChordNetwork`.

    ``h(x)`` runs one Chord lookup from the entry node -- iterative
    (client-driven, fault-tolerant) or recursive (forwarded, cheaper) --
    charging the *measured* message count and latency; ``next(p)`` is a
    single ``get_successor`` RPC.  This is the substrate on which
    Theorem 7's ``t_h = m_h = O(log n)`` premise is validated rather
    than assumed.
    """

    def __init__(
        self,
        network: ChordNetwork,
        entry_id: int | None = None,
        retries: int = 3,
        lookup_mode: str = "iterative",
        retry_policy: RetryPolicy | None = None,
        retry_rng: random.Random | None = None,
    ):
        if not network.nodes:
            raise ValueError("cannot adapt an empty network")
        if lookup_mode not in ("iterative", "recursive"):
            raise ValueError(f"unknown lookup_mode {lookup_mode!r}")
        self._network = network
        if entry_id is None:
            entry_id = min(network.nodes)
        if entry_id not in network.nodes:
            raise KeyError(f"entry node {entry_id} is not alive")
        self._entry_id = entry_id
        #: The lookup retry discipline.  The default reproduces the
        #: historical behaviour exactly: ``retries`` back-to-back
        #: attempts with no backoff.  A policy with backoff charges the
        #: waits through the transport (see RetryPolicy's determinism
        #: contract); jittered policies need ``retry_rng``.
        self._retry_policy = (
            retry_policy
            if retry_policy is not None
            else RetryPolicy(attempts=max(1, retries), base_delay=0.0, factor=1.0)
        )
        self._retry_rng = retry_rng
        self._retries = self._retry_policy.attempts
        self._lookup_mode = lookup_mode
        self.cost = CostMeter()
        #: Where this adapter's batched lookups were resolved (lockstep
        #: engine vs live per-call) -- read by benches and the scenario
        #: runner's shard reports.
        self.batch_stats = BatchLookupStats()

    def _ref(self, node_id: int) -> PeerRef:
        return PeerRef(peer_id=node_id, point=id_to_point(node_id, self._network.m))

    @property
    def transport(self):
        """The underlying transport (tracer installation, introspection)."""
        return self._network.transport

    # entry_id / entry_is_alive / refresh_entry / _entry_node come from
    # EntryVantageMixin -- the failover discipline shared with KademliaDHT.

    def h(self, x: float) -> PeerRef:
        """``h(x)`` via an iterative lookup (cost: measured, ~O(log n))."""
        target = point_to_target_id(x, self._network.m)
        transport = self._network.transport
        policy = self._retry_policy
        before_msgs = transport.messages_sent
        before_time = transport.elapsed
        last_error: Exception | None = None
        result = None
        for failure in range(1, policy.attempts + 1):
            try:
                entry = self._entry_node()
                if self._lookup_mode == "recursive":
                    result = entry.lookup_recursive(target)
                else:
                    result = entry.lookup(target)
                break
            except LookupError_ as exc:
                last_error = exc
                if policy.should_retry(failure):
                    # Charge the backoff wait before the repair round so
                    # the retry attempt sees post-wait ring state; failed
                    # attempts' messages stay on the meter regardless.
                    transport.metrics.counter("rpc.retries").increment()
                    delay = policy.delay(failure, self._retry_rng)
                    if delay > 0:
                        transport.charge_delay(delay)
                self._network.stabilize_round()
        msgs = transport.messages_sent - before_msgs
        latency = transport.elapsed - before_time
        self.cost.charge_h(msgs, latency)
        if transport.tracer.active:
            transport.tracer.on_lookup(
                "chord",
                result.hops if result is not None else 0,
                msgs,
                latency,
                result is not None,
            )
        if result is None:
            raise LookupError_(
                f"h({x!r}) failed after {policy.attempts} attempts: {last_error}"
            )
        return self._ref(result.node_id)

    # -- batched lookups (the lockstep engine) ---------------------------

    def lockstep_eligible(self) -> bool:
        """Whether snapshot replay is charge-identical to live lookups.

        Requires a loss-free transport, a deterministic latency model
        (see :class:`~repro.sim.network.LatencyModel`), and no active
        fault state: under a stochastic ingredient, replaying lookups
        off-transport would consume the RNG stream differently from
        live execution, and under active faults (partitions, grey
        latency inflation, loss bursts) the snapshot would not see the
        blocked edges or inflated charges -- either way the equivalence
        guarantee (same peers, hops and charges as a scalar ``h`` loop)
        would be lost.  Ineligible adapters keep the per-call loop.
        An active adversary disqualifies replay for the same reason:
        lies are applied per delivery on the reply leg, and a snapshot
        of honest routing state cannot reproduce them.  An asynchronous
        transport is refused outright: its lookups are event-scheduled
        deliveries racing timeout events on the sim clock, which
        off-clock replay cannot be charge-identical to.
        """
        transport = self._network.transport
        return (
            transport.loss_rate == 0.0
            and not getattr(transport, "asynchronous", False)
            and not transport.faults.active
            and not transport.adversary.active
            and bool(getattr(transport.latency_model, "deterministic", False))
        )

    def warm_lockstep(self) -> bool:
        """Pre-build the ring snapshot off the request path.

        Serving shards call this after churn-recovery refreshes so the
        first batch of a re-admitted shard does not pay the snapshot
        build inside its dispatch.  Returns whether the lockstep engine
        is engaged for this adapter.  Free of charges and randomness.
        """
        if not self.lockstep_eligible():
            return False
        self._network.snapshot()
        return True

    def h_many(self, xs) -> list[PeerRef]:
        """``h`` over a whole vector of points via lockstep batch routing.

        Resolves all points in one pass over the epoch-cached
        :class:`~repro.dht.chord.batch.RingSnapshot` -- every in-flight
        lookup advanced one hop per round through array-indexed finger
        tables -- and charges the meter and transport counters the exact
        per-lookup amounts the equivalent ``[self.h(x) for x in xs]``
        loop would have, including routing around crashed fingers.  A
        lookup the engine cannot complete (the live path would raise and
        stabilize) cuts the batch over to live per-call execution from
        that index on, preserving the scalar loop's retry/stabilization
        sequence exactly.  When replay cannot be charge-identical (lossy
        transport, stochastic latency; see :meth:`lockstep_eligible`)
        the whole batch takes the per-call loop.

        ``ChordDHT`` still deliberately does *not* implement
        ``points_array``/``bulk_op_costs`` and therefore fails the
        ``BulkDHT`` check: a live overlay has no free flat point array,
        and batch samplers must keep metering real per-hop costs rather
        than synthetic unit costs.
        """
        return self._h_many(list(xs), tolerant=False)

    def resolve_many(self, xs) -> list[PeerRef | None]:
        """Failure-tolerant :meth:`h_many`: per-point ``None`` on failure.

        Same batched resolution and identical charges, but a point whose
        lookup fails terminally (after the live path's own retries and
        stabilization attempts) yields ``None`` instead of raising, so
        batch samplers can redraw just that trial.  Mirrors a loop of
        ``h`` calls with ``LookupError_`` caught per point.
        """
        return self._h_many(list(xs), tolerant=True)

    def _h_scalar(self, x: float, tolerant: bool) -> PeerRef | None:
        if not tolerant:
            return self.h(x)
        try:
            return self.h(x)
        except LookupError_:
            return None

    def _h_many(self, points: list, tolerant: bool) -> list:
        if len(points) < 2 or not self.lockstep_eligible():
            self.batch_stats.percall += len(points)
            return [self._h_scalar(x, tolerant) for x in points]
        network = self._network
        transport = network.transport
        # Deterministic models return a constant and consume no RNG, so
        # sampling here mirrors (not perturbs) the live per-call charges.
        one_way = transport.latency_model.sample(network.rng)
        out: list = []
        i = 0
        while i < len(points):
            entry = self._entry_node()
            snapshot = network.snapshot()
            targets = _targets_for(points[i:], network.m)
            if len(targets) == 0:
                out.append(self._h_scalar(points[i], tolerant))
                i += 1
                continue
            traces = lockstep_resolve(
                snapshot,
                entry.node_id,
                targets,
                mode=self._lookup_mode,
                rpc_latency=one_way + one_way,
                oneway_latency=one_way,
                timeout=transport.timeout,
            )
            n_ok = next(
                (j for j, tr in enumerate(traces) if not tr.ok), len(traces)
            )
            if n_ok:
                self._commit_traces(traces[:n_ok])
                out.extend(self._ref(tr.owner) for tr in traces[:n_ok])
                i += n_ok
            if n_ok < len(traces):
                # The engine predicts this lookup fails; the live path
                # replays the failed attempt's charges, stabilizes and
                # retries -- and may mutate the ring, so the loop
                # re-snapshots before resuming lockstep for the rest.
                self.batch_stats.delegated += 1
                out.append(self._h_scalar(points[i], tolerant))
                i += 1
        return out

    def _commit_traces(self, traces) -> None:
        """Charge a batch of successful replays exactly as live calls."""
        messages = 0
        calls = 0
        timeouts = 0
        latency = 0.0
        for trace in traces:
            messages += trace.messages
            calls += trace.rpc_calls
            timeouts += trace.rpc_timeouts
            latency += trace.latency
        transport = self._network.transport
        metrics = transport.metrics
        if calls:
            metrics.counter("rpc.calls").increment(calls)
        if timeouts:
            metrics.counter("rpc.timeouts").increment(timeouts)
        if messages:
            metrics.counter("messages").increment(messages)
            # Lockstep traffic is all lookup routing; attribute it to
            # the mode's routing method so the per-method split keeps
            # summing to the aggregate counter under offline replay.
            transport.count_method_messages(
                "lookup_step" if self._lookup_mode == "iterative"
                else "forward_lookup",
                messages,
            )
        transport.elapsed += latency
        self.cost.charge_bulk(
            h_calls=len(traces), messages=messages, latency=latency
        )
        self.batch_stats.lockstep += len(traces)
        if transport.tracer.active:
            on_lookup = transport.tracer.on_lookup
            for trace in traces:
                on_lookup("chord", trace.hops, trace.messages, trace.latency, True)

    def successor_of_index(self, i: int) -> PeerRef:
        """The live peer at clockwise ring position ``i % n`` (uncharged).

        Oracle-style access backed by the epoch-memoized sorted-id view,
        mirroring ``IdealDHT.successor_of_index`` for callers that
        index the ring directly (tests, analysis tooling).
        """
        ids = self._network.sorted_ids()
        return self._ref(ids[i % len(ids)])

    def next(self, peer: PeerRef) -> PeerRef:
        """``next(p)`` via one ``get_successor`` RPC (cost: O(1))."""
        transport = self._network.transport
        before_msgs = transport.messages_sent
        before_time = transport.elapsed
        try:
            succ = transport.rpc(peer.peer_id, "get_successor")
        except RpcTimeout:
            # The peer crashed under us; resolve its point again via h.
            self.cost.charge_next(
                transport.messages_sent - before_msgs,
                transport.elapsed - before_time,
            )
            return self.h(peer.point)
        self.cost.charge_next(
            transport.messages_sent - before_msgs,
            transport.elapsed - before_time,
        )
        return self._ref(succ)

    def any_peer(self) -> PeerRef:
        return self._ref(self._entry_node().node_id)
