"""Chord identifier-space arithmetic.

Chord hashes peers onto ``m``-bit identifiers arranged clockwise on a
ring of size ``2**m``.  The id <-> unit-circle mapping is shared with
the other discrete-id substrates (:mod:`repro.dht.idspace`) and
re-exported here; what is Chord-specific is the ring geometry -- the
clockwise interval tests on raw identifiers that drive successor
ownership and finger routing.
"""

from __future__ import annotations

from ..idspace import id_to_point, point_to_target_id

__all__ = [
    "id_to_point",
    "point_to_target_id",
    "in_open_closed",
    "in_open_open",
]


def in_open_closed(x: int, a: int, b: int) -> bool:
    """Whether ``x`` lies in the clockwise identifier interval ``(a, b]``.

    When ``a == b`` the interval is the entire ring (a single-node ring's
    successor interval), matching Chord's conventions.
    """
    if a < b:
        return a < x <= b
    if a > b:
        return x > a or x <= b
    return True


def in_open_open(x: int, a: int, b: int) -> bool:
    """Whether ``x`` lies strictly inside the clockwise interval ``(a, b)``."""
    if a < b:
        return a < x < b
    if a > b:
        return x > a or x < b
    return x != a
