"""Chord identifier-space arithmetic.

Chord hashes peers onto ``m``-bit identifiers arranged clockwise on a
ring of size ``2**m``.  The paper's continuous model lives on the unit
circle ``(0, 1]``; we map identifier ``j`` to the point ``j / 2**m``,
with ``j == 0`` landing on ``1.0`` (the same location, since the circle
identifies 0 and 1).  All interval tests below are on raw identifiers.
"""

from __future__ import annotations

import math

__all__ = [
    "id_to_point",
    "point_to_target_id",
    "in_open_closed",
    "in_open_open",
]


def id_to_point(node_id: int, m: int) -> float:
    """Location of identifier ``node_id`` on the unit circle ``(0, 1]``."""
    size = 1 << m
    if not 0 <= node_id < size:
        raise ValueError(f"id {node_id} outside [0, 2^{m})")
    return 1.0 if node_id == 0 else node_id / size


def point_to_target_id(x: float, m: int) -> int:
    """The identifier whose Chord successor is ``h(x)``.

    A node at identifier ``j`` has point ``j / 2**m``; the clockwise-
    closest peer to ``x`` is the first node with ``j >= x * 2**m``,
    i.e. Chord's ``find_successor(ceil(x * 2**m) mod 2**m)``.
    """
    if not 0.0 < x <= 1.0:
        raise ValueError(f"point {x!r} outside the unit circle (0, 1]")
    size = 1 << m
    return math.ceil(x * size) % size


def in_open_closed(x: int, a: int, b: int) -> bool:
    """Whether ``x`` lies in the clockwise identifier interval ``(a, b]``.

    When ``a == b`` the interval is the entire ring (a single-node ring's
    successor interval), matching Chord's conventions.
    """
    if a < b:
        return a < x <= b
    if a > b:
        return x > a or x <= b
    return True


def in_open_open(x: int, a: int, b: int) -> bool:
    """Whether ``x`` lies strictly inside the clockwise interval ``(a, b)``."""
    if a < b:
        return a < x < b
    if a > b:
        return x > a or x < b
    return x != a
