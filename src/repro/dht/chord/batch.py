"""Lockstep batch lookup engine over a struct-of-arrays ring snapshot.

The per-call Chord lookup pays Python RPC dispatch, metrics-counter and
finger-scan overhead *per hop*.  For a batch of ``k`` lookups on a ring
whose state is not changing, that work is pure interpretation overhead:
every routing step is a deterministic function of frozen node state.
This module resolves whole batches against a :class:`RingSnapshot` -- a
flat struct-of-arrays view of the ring (sorted identifiers, a dense
finger matrix, a padded successor-list matrix, all indexed by stable
free-list *slots*) -- advancing all in-flight lookups **in lockstep**,
one hop per round, with the routing decisions of a round computed as a
handful of vectorized array operations instead of ``k`` RPC round trips.

Struct-of-arrays layout
-----------------------

Rows live at *slots*: stable indices handed out by a free list, so a
membership change never moves another node's row.  Two thin sorted
views -- the live id array and a parallel ``order`` array mapping each
sorted position to its slot -- make id -> slot resolution a binary
search (or one gather through the dense ``pos_table`` when the id space
is small enough to materialize it).  The payoff is *incremental
maintenance*: a join or crash splices one id in or out of the sorted
views (an O(n) 1-D memmove of 8-byte words) and writes O(log n) row
cells, instead of rebuilding every array from the node objects.  The
:class:`~repro.dht.chord.network.ChordNetwork` drives this through an
explicit delta log (see its ``snapshot`` method); the
struct-of-arrays substrates (:mod:`repro.dht.chord.soa`) use the same
class *as* their primary state, with no per-node objects at all
(``compact`` construction: no Python list mirrors, id -> slot resolved
through the arrays).

Correctness contract
--------------------

The engine is a *charge-identical replay*, not an approximation: for
every target it must produce the same owner, the same hop count, and
the same message/latency charges that :meth:`ChordNode.lookup` (or
``lookup_recursive``) would have produced against the same frozen node
state.  Three design rules make that exact:

- **Delta-synced snapshots.**  :class:`~repro.dht.chord.network.ChordNetwork`
  bumps a ``churn_epoch`` counter on every membership or maintenance
  event (join, crash, leave, stabilize, rewire) and records what changed
  in a ``SnapshotDelta`` log.  A snapshot records the epoch it is synced
  to; the moment the counter moves, the network re-syncs it by applying
  the pending deltas (splice joins/crashes, patch dirty rows) before the
  engine routes on it -- the patched arrays are bit-identical to a
  from-scratch rebuild (a pinned invariant), so the engine never routes
  on state the live path would no longer see.  Direct node mutation
  outside the network API (``bump_epoch``) still forces a full rebuild.
- **Cost determinism.**  Offline replay is only charge-identical when
  the transport's per-call costs are deterministic (a ``deterministic``
  latency model and ``loss_rate == 0``); the adapter checks this before
  engaging and otherwise keeps the per-call loop.
- **Exact fallback.**  The vectorized lane handles the hot path -- no
  crashed references, no exclusion lists.  A lookup that touches a dead
  node (a stale finger/successor pointing at a crashed peer) is replayed
  from scratch by :func:`_sim_iterative`, a line-by-line Python
  transcription of the client-driven loop *including* its
  excluded-node rerouting, still against the snapshot.  A lookup that
  fails terminally (hop budget exhausted, dead recursive hop) is
  reported with ``ok=False`` and the adapter re-executes it -- and
  everything after it -- through the live per-call path, which replays
  the failed attempt's charges, triggers the same stabilization retry,
  and leaves the network in the same state as a scalar call sequence.

Because successful lookups never mutate node state, evaluating a batch
against one frozen snapshot is order-equivalent to evaluating it
sequentially; the first terminal failure is the first point at which
the live path would have mutated the network (stabilization), which is
exactly where the adapter cuts over.
"""

from __future__ import annotations

import bisect as _bisect
from dataclasses import dataclass

from ...compat import load_numpy
from ..api import NUMPY_MIN_BATCH
from .idspace import in_open_closed, in_open_open
from .node import hop_budget

__all__ = ["BatchLookupStats", "LookupTrace", "RingSnapshot", "lockstep_resolve"]

# Optional acceleration; the pure-Python lane is always available and
# REPRO_PURE_PYTHON forces it (see repro.compat).
_np = load_numpy()


@dataclass(frozen=True, slots=True)
class LookupTrace:
    """Outcome and exact cost accounting of one replayed lookup.

    ``messages``/``latency``/``rpc_calls``/``rpc_timeouts`` are the
    amounts the live transport would have charged; ``ok=False`` marks a
    terminal failure (the live path would raise ``LookupError_``), whose
    charges the caller must *discard* and re-execute live.
    """

    owner: int
    hops: int
    messages: int
    latency: float
    rpc_calls: int
    rpc_timeouts: int
    ok: bool


@dataclass(slots=True)
class BatchLookupStats:
    """Where an adapter's batched lookups were resolved (observability).

    ``lockstep`` counts lookups answered by the snapshot engine,
    ``delegated`` those the engine flagged as failing and handed back to
    the live per-call path, and ``percall`` points that never reached
    the engine (batch too small, or a non-deterministic cost model).
    """

    lockstep: int = 0
    delegated: int = 0
    percall: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "lockstep": self.lockstep,
            "delegated": self.delegated,
            "percall": self.percall,
        }


class _SlotMap:
    """Dict-shaped id -> slot view over a compact snapshot's arrays.

    Compact snapshots (the struct-of-arrays substrates) carry no Python
    dict -- a million-entry dict would cost more than the arrays it
    indexes -- so membership and slot resolution go through the dense
    ``pos_table`` when present, else a binary search of the sorted id
    view.  Read-only: the snapshot's splice methods maintain the arrays
    this resolves against.
    """

    __slots__ = ("_snap",)

    def __init__(self, snap: "RingSnapshot"):
        self._snap = snap

    def _slot(self, node_id: int) -> int:
        snap = self._snap
        table = snap.pos_table
        if table is not None:
            if node_id < 0 or node_id >= len(table):
                return -1
            return int(table[node_id]) - 1
        ids = snap._ids_buf
        i = int(_np.searchsorted(ids[: snap.n], node_id))
        if i >= snap.n or int(ids[i]) != node_id:
            return -1
        return int(snap._order_buf[i])

    def __getitem__(self, node_id: int) -> int:
        slot = self._slot(node_id)
        if slot < 0:
            raise KeyError(node_id)
        return slot

    def __contains__(self, node_id: int) -> bool:
        return self._slot(node_id) >= 0

    def get(self, node_id: int, default=None):
        slot = self._slot(node_id)
        return default if slot < 0 else slot


class RingSnapshot:
    """Struct-of-arrays view of a Chord ring with incremental maintenance.

    Copies every node's successor list and finger table (the live lists
    mutate in place during stabilization) and, when numpy is available,
    lays them out as dense matrices indexed by free-list *slot* so a
    lockstep round is a few vectorized gathers instead of per-node
    attribute traffic.  Build cost is O(n * m); membership events after
    that splice the sorted views and rewrite single rows
    (:meth:`apply_join` / :meth:`apply_remove` / :meth:`apply_update`)
    instead of rebuilding, with :attr:`patches` counting the row-level
    edits applied since construction.

    Under ``REPRO_PURE_PYTHON`` (or without numpy) the same slot
    discipline runs over plain Python lists; the ``compact=True``
    construction path (:meth:`from_arrays`) keeps *only* the numpy
    arrays, for substrates where per-node Python mirrors would dominate
    memory.
    """

    __slots__ = (
        "epoch", "m", "n", "pos", "succ_lists", "finger_lists", "free",
        "ids", "patches", "_width", "slot_ids_np", "finger_mat", "succ_mat",
        "succ_first_np", "_ids_buf", "_order_buf", "pos_table",
    )

    #: Largest identifier space for which a dense id -> slot table is
    #: materialized (2^22 entries of int32 = 16 MiB); larger spaces fall
    #: back to binary search for liveness/slot queries.
    MAX_TABLE_BITS = 22

    def __init__(self, epoch: int, m: int, ids, succ_lists, finger_lists):
        self.epoch = epoch
        self.m = m
        self.n = len(ids)
        self.patches = 0
        self.free: list[int] = []
        self._width = max((len(s) for s in succ_lists), default=1)
        # Slots are handed out in sorted-id order at build time, so the
        # initial order view is just 0..n-1.
        self.ids = list(ids)
        self.pos = {node_id: i for i, node_id in enumerate(ids)}
        self.succ_lists = [tuple(s) for s in succ_lists]
        self.finger_lists = [tuple(f) for f in finger_lists]
        if _np is not None:
            self._alloc_arrays()
        else:
            self.slot_ids_np = None
            self.finger_mat = None
            self.succ_mat = None
            self.succ_first_np = None
            self._ids_buf = None
            self._order_buf = None
            self.pos_table = None

    def _alloc_arrays(self) -> None:
        np = _np
        n, m = self.n, self.m
        cap = max(n, 1)
        ids_arr = np.asarray(self.ids, dtype=np.int64)
        self.slot_ids_np = np.empty(cap, dtype=np.int64)
        self.slot_ids_np[:n] = ids_arr
        self.finger_mat = np.full((cap, m), -1, dtype=np.int64)
        if n:
            self.finger_mat[:n] = np.fromiter(
                (-1 if f is None else f for fl in self.finger_lists for f in fl),
                dtype=np.int64,
                count=n * m,
            ).reshape(n, m)
        self.succ_mat = np.full((cap, self._width), -1, dtype=np.int64)
        self.succ_first_np = np.empty(cap, dtype=np.int64)
        for i, s in enumerate(self.succ_lists):
            if s:
                self.succ_mat[i, : len(s)] = s
            self.succ_first_np[i] = s[0] if s else self.ids[i]
        self._ids_buf = np.empty(cap, dtype=np.int64)
        self._ids_buf[:n] = ids_arr
        self._order_buf = np.empty(cap, dtype=np.int64)
        self._order_buf[:n] = np.arange(n, dtype=np.int64)
        if m <= self.MAX_TABLE_BITS:
            # Dense id -> slot + 1 (0 = dead): O(1) liveness and slot
            # gathers per round instead of binary searches.
            table = np.zeros(1 << m, dtype=np.int32)
            if n:
                table[ids_arr] = np.arange(1, n + 1, dtype=np.int32)
            self.pos_table = table
        else:
            self.pos_table = None

    @classmethod
    def build(cls, network) -> "RingSnapshot":
        ids = list(network.sorted_ids())
        nodes = network.nodes
        succ_lists = [tuple(nodes[i].successors) for i in ids]
        finger_lists = [tuple(nodes[i].fingers) for i in ids]
        return cls(network.churn_epoch, network.m, ids, succ_lists, finger_lists)

    @classmethod
    def from_arrays(
        cls, m: int, ids, succ_mat, finger_mat, epoch: int = 0
    ) -> "RingSnapshot":
        """Compact construction straight from prebuilt numpy arrays.

        ``ids`` must be sorted and distinct; ``succ_mat``/``finger_mat``
        are row-aligned with it (``-1`` = padding / empty finger).  No
        Python list mirrors are kept: the exact-replay lane decodes rows
        on demand and id -> slot goes through :class:`_SlotMap`.  This is
        the construction the million-node substrates use -- per-node
        memory is exactly the array rows.
        """
        if _np is None:
            raise RuntimeError("compact snapshots require numpy")
        np = _np
        snap = object.__new__(cls)
        ids = np.ascontiguousarray(ids, dtype=np.int64)
        n = len(ids)
        snap.epoch = epoch
        snap.m = m
        snap.n = n
        snap.patches = 0
        snap.free = []
        snap.ids = None
        snap.succ_lists = None
        snap.finger_lists = None
        snap._width = succ_mat.shape[1] if succ_mat.ndim == 2 else 1
        snap.slot_ids_np = ids.copy()
        snap.succ_mat = np.ascontiguousarray(succ_mat, dtype=np.int64)
        snap.finger_mat = np.ascontiguousarray(finger_mat, dtype=np.int64)
        first = snap.succ_mat[:, 0] if n else np.empty(0, dtype=np.int64)
        snap.succ_first_np = np.where(first >= 0, first, ids).astype(np.int64)
        snap._ids_buf = ids.copy()
        snap._order_buf = np.arange(n, dtype=np.int64)
        if m <= cls.MAX_TABLE_BITS:
            table = np.zeros(1 << m, dtype=np.int32)
            if n:
                table[ids] = np.arange(1, n + 1, dtype=np.int32)
            snap.pos_table = table
        else:
            snap.pos_table = None
        snap.pos = _SlotMap(snap)
        return snap

    # -- sorted views -------------------------------------------------------

    @property
    def ids_np(self):
        """Sorted live ids as a numpy view (None in the pure-Python lane)."""
        return None if self._ids_buf is None else self._ids_buf[: self.n]

    @property
    def order_np(self):
        """Slot of each sorted position, parallel to :attr:`ids_np`."""
        return None if self._order_buf is None else self._order_buf[: self.n]

    def sorted_ids_list(self) -> list[int]:
        """The live membership in sorted order as plain ints."""
        if self.ids is not None:
            return list(self.ids)
        return [int(v) for v in self._ids_buf[: self.n]]

    def alive(self, node_id: int) -> bool:
        """Whether ``node_id`` is a live ring member in this snapshot."""
        return node_id in self.pos

    # -- row access (the exact-replay lane reads through these) ------------

    def succs_at(self, slot: int):
        """The successor list stored at ``slot`` as a tuple of ids."""
        lists = self.succ_lists
        if lists is not None:
            return lists[slot]
        return tuple(int(v) for v in self.succ_mat[slot] if v >= 0)

    def fingers_at(self, slot: int):
        """The finger table stored at ``slot`` (None = unset finger)."""
        lists = self.finger_lists
        if lists is not None:
            return lists[slot]
        return tuple(None if v < 0 else int(v) for v in self.finger_mat[slot])

    # -- incremental maintenance -------------------------------------------

    def _alloc_slot(self) -> int:
        if self.free:
            return self.free.pop()
        slot = self.n  # live + free == allocated; free is empty here
        if self.slot_ids_np is not None and slot >= len(self.slot_ids_np):
            self._grow_slots(slot + 1)
        if self.succ_lists is not None and slot == len(self.succ_lists):
            self.succ_lists.append(())
            self.finger_lists.append(())
        return slot

    def _grow_slots(self, need: int) -> None:
        np = _np
        cap = max(need, 2 * len(self.slot_ids_np))
        for name in ("slot_ids_np", "succ_first_np"):
            old = getattr(self, name)
            fresh = np.empty(cap, dtype=np.int64)
            fresh[: len(old)] = old
            setattr(self, name, fresh)
        for name in ("finger_mat", "succ_mat"):
            old = getattr(self, name)
            fresh = np.full((cap, old.shape[1]), -1, dtype=np.int64)
            fresh[: len(old)] = old
            setattr(self, name, fresh)

    def _grow_sorted(self) -> None:
        np = _np
        cap = max(self.n + 1, 2 * len(self._ids_buf))
        for name in ("_ids_buf", "_order_buf"):
            old = getattr(self, name)
            fresh = np.empty(cap, dtype=np.int64)
            fresh[: self.n] = old[: self.n]
            setattr(self, name, fresh)

    def _grow_width(self, width: int) -> None:
        np = _np
        old = self.succ_mat
        fresh = np.full((len(old), width), -1, dtype=np.int64)
        fresh[:, : old.shape[1]] = old
        self.succ_mat = fresh
        self._width = width

    def _set_rows(self, slot: int, node_id: int, succs, fingers) -> None:
        succs = tuple(succs)
        fingers = tuple(fingers)
        if self.succ_lists is not None:
            self.succ_lists[slot] = succs
            self.finger_lists[slot] = fingers
        if self.slot_ids_np is not None:
            if len(succs) > self._width:
                self._grow_width(len(succs))
            row = self.succ_mat[slot]
            if succs:
                row[: len(succs)] = succs
            row[len(succs):] = -1
            self.finger_mat[slot] = [-1 if f is None else f for f in fingers]
            self.slot_ids_np[slot] = node_id
            self.succ_first_np[slot] = succs[0] if succs else node_id

    def apply_join(self, node_id: int, succs, fingers) -> None:
        """Splice a joined id into the sorted views and write its rows.

        O(log n) row cells written plus one O(n) 1-D memmove of the
        sorted id/order views -- never a matrix rebuild.  An id already
        present degrades to :meth:`apply_update` (re-join after a
        remove processed in the same delta drain).
        """
        if node_id in self.pos:
            self.apply_update(node_id, succs, fingers)
            return
        slot = self._alloc_slot()
        self._set_rows(slot, node_id, succs, fingers)
        if self.ids is not None:
            self.ids.insert(_bisect.bisect_left(self.ids, node_id), node_id)
        if self._ids_buf is not None:
            if self.n == len(self._ids_buf):
                self._grow_sorted()
            i = int(_np.searchsorted(self._ids_buf[: self.n], node_id))
            self._ids_buf[i + 1 : self.n + 1] = self._ids_buf[i : self.n]
            self._ids_buf[i] = node_id
            self._order_buf[i + 1 : self.n + 1] = self._order_buf[i : self.n]
            self._order_buf[i] = slot
            if self.pos_table is not None:
                self.pos_table[node_id] = slot + 1
        if isinstance(self.pos, dict):
            self.pos[node_id] = slot
        self.n += 1
        self.patches += 1

    def apply_remove(self, node_id: int) -> None:
        """Splice a departed id out of the sorted views, freeing its slot.

        The slot's row data is left stale on purpose: live nodes'
        finger/successor entries still referencing the departed id are
        exactly what the live ring holds after a crash, and the replay
        lanes route around them through the same liveness checks.  A
        no-op for ids not present (crashed before the delta drained).
        """
        if node_id not in self.pos:
            return
        slot = self.pos[node_id]
        if isinstance(self.pos, dict):
            del self.pos[node_id]
        if self.ids is not None:
            del self.ids[_bisect.bisect_left(self.ids, node_id)]
        if self._ids_buf is not None:
            i = int(_np.searchsorted(self._ids_buf[: self.n], node_id))
            self._ids_buf[i : self.n - 1] = self._ids_buf[i + 1 : self.n]
            self._order_buf[i : self.n - 1] = self._order_buf[i + 1 : self.n]
            if self.pos_table is not None:
                self.pos_table[node_id] = 0
        self.free.append(slot)
        self.n -= 1
        self.patches += 1

    def apply_update(self, node_id: int, succs, fingers) -> None:
        """Rewrite one live id's successor/finger rows in place (O(log n))."""
        self._set_rows(self.pos[node_id], node_id, succs, fingers)
        self.patches += 1

    def patch_fingers(self, node_id: int, entries: dict[int, int | None]) -> None:
        """Point-patch individual finger cells of one live id's row."""
        slot = self.pos[node_id]
        if self.finger_lists is not None:
            row = list(self.finger_lists[slot])
            for f, value in entries.items():
                row[f] = value
            self.finger_lists[slot] = tuple(row)
        if self.finger_mat is not None:
            for f, value in entries.items():
                self.finger_mat[slot, f] = -1 if value is None else value
        self.patches += 1

    def patch_succs(self, node_id: int, succs) -> None:
        """Rewrite one live id's successor list, leaving fingers alone."""
        slot = self.pos[node_id]
        succs = tuple(succs)
        if self.succ_lists is not None:
            self.succ_lists[slot] = succs
        if self.succ_mat is not None:
            if len(succs) > self._width:
                self._grow_width(len(succs))
            row = self.succ_mat[slot]
            if succs:
                row[: len(succs)] = succs
            row[len(succs):] = -1
            self.succ_first_np[slot] = succs[0] if succs else node_id
        self.patches += 1

    # -- equivalence (tests pin incremental == rebuild through this) --------

    def canonical_state(self):
        """The logical ring state, id-ordered and representation-free.

        ``(id, successor-tuple, finger-tuple)`` per live member, decoded
        from the numpy arrays when they exist (so the bit-identity
        property test exercises the maintained arrays, not the Python
        mirrors) and from the list mirrors in the pure-Python lane.  Two
        snapshots are equivalent iff their canonical states are equal --
        slot numbering and free-list history are representation detail.
        """
        if self.slot_ids_np is not None:
            out = []
            for i in range(self.n):
                slot = int(self._order_buf[i])
                node_id = int(self._ids_buf[i])
                succs = tuple(int(v) for v in self.succ_mat[slot] if v >= 0)
                fingers = tuple(
                    None if v < 0 else int(v) for v in self.finger_mat[slot]
                )
                out.append((node_id, succs, fingers))
            return tuple(out)
        return tuple(
            (node_id, self.succ_lists[self.pos[node_id]],
             self.finger_lists[self.pos[node_id]])
            for node_id in self.ids
        )


def lockstep_resolve(
    snapshot: RingSnapshot,
    entry_id: int,
    targets,
    *,
    mode: str = "iterative",
    rpc_latency: float,
    oneway_latency: float,
    timeout: float,
) -> list[LookupTrace]:
    """Replay one lookup per target from ``entry_id``, all in lockstep.

    ``rpc_latency`` is the full round-trip charge of one successful RPC
    (two one-way samples), ``oneway_latency`` a single forwarded leg,
    ``timeout`` the charge of a call to a dead node.  Returns one
    :class:`LookupTrace` per target, in order; traces with ``ok=False``
    carry the charges of the *failed attempt*, which callers discard in
    favour of a live re-execution (see the module docstring).
    """
    if entry_id not in snapshot.pos:
        raise KeyError(f"entry node {entry_id} is not in the snapshot")
    budget = hop_budget(snapshot.m)
    if (
        _np is None
        or snapshot.ids_np is None
        or len(targets) < NUMPY_MIN_BATCH
    ):
        sim = _sim_iterative if mode == "iterative" else _sim_recursive
        lat = rpc_latency if mode == "iterative" else oneway_latency
        return [
            sim(snapshot, entry_id, t, budget, lat, timeout) for t in targets
        ]
    if mode == "iterative":
        return _vector_resolve(
            snapshot, entry_id, targets, budget, rpc_latency, timeout,
            recursive=False,
        )
    return _vector_resolve(
        snapshot, entry_id, targets, budget, oneway_latency, timeout,
        recursive=True,
    )


# -- exact Python replay (slow lane, and the no-numpy path) ----------------


def _sim_step(snapshot: RingSnapshot, node_id: int, target: int, excluded):
    """``ChordNode.lookup_step`` evaluated against the snapshot.

    Byte-for-byte transcription of the live routing step -- the
    effective successor skips excluded ids, ``closest_preceding_node``
    scans fingers then successors in reverse, and a self/excluded best
    hop falls through to the successor -- so replayed routes cannot
    drift from what the live node would have answered.
    """
    slot = snapshot.pos[node_id]
    succs = snapshot.succs_at(slot)
    succ = next((s for s in succs if s not in excluded), node_id)
    if succ == node_id or in_open_closed(target, node_id, succ):
        return "done", succ
    nxt = None
    for finger in reversed(snapshot.fingers_at(slot)):
        if (
            finger is not None
            and finger not in excluded
            and in_open_open(finger, node_id, target)
        ):
            nxt = finger
            break
    if nxt is None:
        for s in reversed(succs):
            if s not in excluded and in_open_open(s, node_id, target):
                nxt = s
                break
    if nxt is None:
        nxt = succs[0] if succs else node_id  # get_successor()
    if nxt == node_id or nxt in excluded:
        nxt = succ
    return "forward", nxt


def _sim_iterative(
    snapshot: RingSnapshot,
    entry_id: int,
    target: int,
    budget: int,
    rpc_latency: float,
    timeout: float,
) -> LookupTrace:
    """Replay of the client-driven iterative loop, exclusions included.

    Mirrors :meth:`ChordNode.lookup` statement for statement: the first
    step is answered locally (uncharged), each forward is one charged
    RPC, a dead owner is pinged (one lost message + timeout), excluded,
    and the query re-asked from the last responsive node, and the hop
    budget is checked at exactly the same points.
    """
    excluded: tuple[int, ...] = ()
    current = entry_id
    kind, nxt = _sim_step(snapshot, entry_id, target, excluded)
    hops = 0
    msgs = 0
    calls = 0
    touts = 0
    lat = 0.0

    def ask(node_id: int):
        nonlocal msgs, calls, lat
        if node_id != entry_id:
            calls += 1
            msgs += 2
            lat += rpc_latency
        return _sim_step(snapshot, node_id, target, excluded)

    while True:
        if kind == "done":
            owner = nxt
            if owner == entry_id:
                return LookupTrace(owner, hops, msgs, lat, calls, touts, True)
            if snapshot.alive(owner):
                calls += 1
                msgs += 2
                lat += rpc_latency  # the liveness ping before handing out the owner
                return LookupTrace(owner, hops, msgs, lat, calls, touts, True)
            calls += 1
            touts += 1
            msgs += 1
            lat += timeout
            excluded = excluded + (owner,)
            hops += 1
            if hops >= budget:
                return LookupTrace(-1, hops, msgs, lat, calls, touts, False)
            kind, nxt = ask(current)
            continue
        if hops >= budget:
            return LookupTrace(-1, hops, msgs, lat, calls, touts, False)
        if snapshot.alive(nxt):
            calls += 1
            msgs += 2
            lat += rpc_latency
            kind, result = _sim_step(snapshot, nxt, target, excluded)
            hops += 1
            current, nxt = nxt, result
        else:
            calls += 1
            touts += 1
            msgs += 1
            lat += timeout
            excluded = excluded + (nxt,)
            hops += 1
            kind, nxt = ask(current)


def _sim_recursive(
    snapshot: RingSnapshot,
    entry_id: int,
    target: int,
    budget: int,
    oneway_latency: float,
    timeout: float,
) -> LookupTrace:
    """Replay of the forwarded (recursive) chain.

    Mirrors ``lookup_recursive``/``forward_lookup``: one charged one-way
    message per forwarded hop, the budget checked on arrival, a dead hop
    or a dead owner failing the whole query (no client-side rerouting),
    and the owner's single direct reply charged as one message with no
    latency leg.
    """
    cur = entry_id
    hops = 0
    msgs = 0
    calls = 0
    touts = 0
    lat = 0.0
    while True:
        if hops > budget:
            return LookupTrace(-1, hops, msgs, lat, calls, touts, False)
        kind, nxt = _sim_step(snapshot, cur, target, ())
        if kind == "done":
            owner = nxt
            if owner != entry_id:
                if not snapshot.alive(owner):
                    return LookupTrace(-1, hops, msgs, lat, calls, touts, False)
                msgs += 1  # the owner's direct reply to the querier
            return LookupTrace(owner, hops, msgs, lat, calls, touts, True)
        if not snapshot.alive(nxt):
            calls += 1
            touts += 1
            msgs += 1
            lat += timeout
            return LookupTrace(-1, hops, msgs, lat, calls, touts, False)
        calls += 1
        msgs += 1
        lat += oneway_latency
        hops += 1
        cur = nxt


# -- the vectorized lane ----------------------------------------------------


def _alive_np(ids, values):
    """Membership of ``values`` in the sorted ``ids`` array."""
    pos = _np.searchsorted(ids, values)
    pos = _np.minimum(pos, len(ids) - 1)
    return ids[pos] == values


# Per-lookup states of the lockstep frontier.
_ACTIVE, _OK, _REPLAY = 0, 1, 2


def _vector_resolve(
    snapshot: RingSnapshot,
    entry_id: int,
    targets,
    budget: int,
    hop_latency: float,
    timeout: float,
    *,
    recursive: bool,
) -> list[LookupTrace]:
    """Advance all lookups one hop per round via array-indexed routing.

    Handles only the uncomplicated path -- every touched node alive, no
    exclusion lists.  The moment a lookup meets a dead reference or
    exhausts its budget it is parked in the ``_REPLAY`` state and
    finished by the exact Python simulator, which recomputes it from
    scratch (replays are side-effect-free, so restarting loses nothing).
    ``hop_latency`` is the round-trip charge per hop in iterative mode
    and the one-way charge in recursive mode.

    The frontier ``cur`` holds *slots* (stable row indices), so routing
    is a gather through the finger/successor matrices; id -> slot for
    forwarded values goes through the dense ``pos_table`` when present,
    else a binary search of the sorted id view composed with the
    position -> slot ``order`` array.

    Interval tests use modular distances: with the identifier space a
    power of two, ``in_open_open(x, a, b)`` is
    ``dx != 0 and (dx < db or db == 0)`` for ``dx = (x-a) & mask``,
    ``db = (b-a) & mask`` (``db == 0`` covers the ``a == b`` whole-ring
    convention), and ``in_open_closed(x, a, b)`` with ``a != b`` is
    ``dx != 0 and dx <= db`` -- two integer ops and two compares per
    element, no branching.
    """
    np = _np
    k = len(targets)
    ids = snapshot.ids_np
    order = snapshot.order_np
    slot_ids = snapshot.slot_ids_np
    fingers = snapshot.finger_mat
    succ_mat = snapshot.succ_mat
    succ_first = snapshot.succ_first_np
    table = snapshot.pos_table
    m = snapshot.m
    mask = (1 << m) - 1
    t = np.asarray(targets, dtype=np.int64)

    # Values probed below are always node ids drawn from snapshot state
    # (fingers, successor entries), never the -1 padding, so the dense
    # table can be indexed directly.
    if table is not None:

        def alive_of(v):
            return table[v] > 0

        def pos_of(v):
            return table[v].astype(np.int64) - 1

    else:

        def alive_of(v):
            return _alive_np(ids, v)

        def pos_of(v):
            return order[np.searchsorted(ids, v)]

    cur = np.full(k, snapshot.pos[entry_id], dtype=np.int64)
    hops = np.zeros(k, dtype=np.int64)
    owner = np.full(k, -1, dtype=np.int64)
    pinged = np.zeros(k, dtype=bool)
    state = np.full(k, _ACTIVE, dtype=np.int8)

    while True:
        act = np.nonzero(state == _ACTIVE)[0]
        if act.size == 0:
            break
        if recursive:
            # forward_lookup checks the budget on arrival, before routing.
            over = hops[act] > budget
            if over.any():
                state[act[over]] = _REPLAY
                act = act[~over]
                if act.size == 0:
                    continue
        c = cur[act]
        node = slot_ids[c]
        tgt = t[act]
        succ = succ_first[c]
        # in_open_closed(tgt, node, succ); succ == node (whole-ring case)
        # short-circuits the test, so the a != b modular form suffices.
        d_t = (tgt - node) & mask
        d_s = (succ - node) & mask
        done = (succ == node) | ((d_t != 0) & (d_t <= d_s))

        if done.any():
            d_idx = act[done]
            own = succ[done]
            is_entry = own == entry_id
            ok = is_entry | alive_of(own)
            ok_idx = d_idx[ok]
            state[ok_idx] = _OK
            owner[ok_idx] = own[ok]
            pinged[ok_idx] = ~is_entry[ok]
            # Dead owner: iterative mode excludes and re-routes, recursive
            # mode fails outright -- both exactly replayed in Python.
            state[d_idx[~ok]] = _REPLAY

        fwd = ~done
        if not fwd.any():
            continue
        f_idx = act[fwd]
        if not recursive:
            # The iterative client checks the budget before forwarding.
            over = hops[f_idx] >= budget
            if over.any():
                state[f_idx[over]] = _REPLAY
                f_idx = f_idx[~over]
                if f_idx.size == 0:
                    continue
        c = cur[f_idx]
        node = slot_ids[c]
        tgt = t[f_idx]
        succ = succ_first[c]
        # closest_preceding_node: the highest finger strictly inside
        # (node, target), whole rows at once.  Reversing the column axis
        # makes argmax return the *first* admissible entry scanning from
        # the top finger down -- the live node's scan order.
        d_t = (tgt - node) & mask
        whole_ring = (d_t == 0)[:, None]
        rows = fingers[c]
        d_f = (rows - node[:, None]) & mask
        ok_f = (rows >= 0) & (d_f != 0) & ((d_f < d_t[:, None]) | whole_ring)
        rev = ok_f[:, ::-1]
        pick = rev.argmax(axis=1)
        found = rev[np.arange(rows.shape[0]), pick]
        nxt = rows[np.arange(rows.shape[0]), m - 1 - pick]
        if not found.all():
            # ... then the successor list in reverse, then the successor.
            miss = np.nonzero(~found)[0]
            rows = succ_mat[c[miss]]
            d_s = (rows - node[miss, None]) & mask
            ok_s = (
                (rows >= 0)
                & (d_s != 0)
                & ((d_s < d_t[miss, None]) | whole_ring[miss])
            )
            rev = ok_s[:, ::-1]
            pick = rev.argmax(axis=1)
            sub_found = rev[np.arange(rows.shape[0]), pick]
            sub_nxt = rows[np.arange(rows.shape[0]), rows.shape[1] - 1 - pick]
            nxt[miss] = np.where(sub_found, sub_nxt, succ[miss])
        nxt = np.where(nxt == node, succ, nxt)  # lookup_step's self-fallback
        alive = alive_of(nxt)
        state[f_idx[~alive]] = _REPLAY  # dead hop: reroute (or fail) exactly
        live_idx = f_idx[alive]
        hops[live_idx] += 1
        cur[live_idx] = pos_of(nxt[alive])

    sim = _sim_recursive if recursive else _sim_iterative
    traces = []
    for i in range(k):
        if state[i] == _OK:
            h = int(hops[i])
            if recursive:
                calls = h
                msgs = h + (1 if int(owner[i]) != entry_id else 0)
            else:
                calls = h + (1 if pinged[i] else 0)
                msgs = 2 * calls
            traces.append(
                LookupTrace(
                    int(owner[i]), h, msgs, hop_latency * calls, calls, 0, True
                )
            )
        else:
            traces.append(
                sim(snapshot, entry_id, int(t[i]), budget, hop_latency, timeout)
            )
    return traces
