"""Lockstep batch lookup engine over an epoch-cached Chord ring snapshot.

The per-call Chord lookup pays Python RPC dispatch, metrics-counter and
finger-scan overhead *per hop*.  For a batch of ``k`` lookups on a ring
whose state is not changing, that work is pure interpretation overhead:
every routing step is a deterministic function of frozen node state.
This module resolves whole batches against a :class:`RingSnapshot` -- a
flat array view of the ring (sorted identifiers, first-successor array,
a dense finger matrix and padded successor-list matrix) -- advancing all
in-flight lookups **in lockstep**, one hop per round, with the routing
decisions of a round computed as a handful of vectorized array
operations instead of ``k`` RPC round trips.

Correctness contract
--------------------

The engine is a *charge-identical replay*, not an approximation: for
every target it must produce the same owner, the same hop count, and
the same message/latency charges that :meth:`ChordNode.lookup` (or
``lookup_recursive``) would have produced against the same frozen node
state.  Three design rules make that exact:

- **Epoch invalidation.**  :class:`~repro.dht.chord.network.ChordNetwork`
  bumps a ``churn_epoch`` counter on every membership or maintenance
  event (join, crash, leave, stabilize, rewire).  A snapshot records the
  epoch it was built at and is discarded the moment the counter moves,
  so the engine never routes on state the live path would no longer see.
- **Cost determinism.**  Offline replay is only charge-identical when
  the transport's per-call costs are deterministic (a ``deterministic``
  latency model and ``loss_rate == 0``); the adapter checks this before
  engaging and otherwise keeps the per-call loop.
- **Exact fallback.**  The vectorized lane handles the hot path -- no
  crashed references, no exclusion lists.  A lookup that touches a dead
  node (a stale finger/successor pointing at a crashed peer) is replayed
  from scratch by :func:`_sim_iterative`, a line-by-line Python
  transcription of the client-driven loop *including* its
  excluded-node rerouting, still against the snapshot.  A lookup that
  fails terminally (hop budget exhausted, dead recursive hop) is
  reported with ``ok=False`` and the adapter re-executes it -- and
  everything after it -- through the live per-call path, which replays
  the failed attempt's charges, triggers the same stabilization retry,
  and leaves the network in the same state as a scalar call sequence.

Because successful lookups never mutate node state, evaluating a batch
against one frozen snapshot is order-equivalent to evaluating it
sequentially; the first terminal failure is the first point at which
the live path would have mutated the network (stabilization), which is
exactly where the adapter cuts over.
"""

from __future__ import annotations

from dataclasses import dataclass

from ...compat import load_numpy
from ..api import NUMPY_MIN_BATCH
from .idspace import in_open_closed, in_open_open
from .node import hop_budget

__all__ = ["BatchLookupStats", "LookupTrace", "RingSnapshot", "lockstep_resolve"]

# Optional acceleration; the pure-Python lane is always available and
# REPRO_PURE_PYTHON forces it (see repro.compat).
_np = load_numpy()


@dataclass(frozen=True, slots=True)
class LookupTrace:
    """Outcome and exact cost accounting of one replayed lookup.

    ``messages``/``latency``/``rpc_calls``/``rpc_timeouts`` are the
    amounts the live transport would have charged; ``ok=False`` marks a
    terminal failure (the live path would raise ``LookupError_``), whose
    charges the caller must *discard* and re-execute live.
    """

    owner: int
    hops: int
    messages: int
    latency: float
    rpc_calls: int
    rpc_timeouts: int
    ok: bool


@dataclass(slots=True)
class BatchLookupStats:
    """Where an adapter's batched lookups were resolved (observability).

    ``lockstep`` counts lookups answered by the snapshot engine,
    ``delegated`` those the engine flagged as failing and handed back to
    the live per-call path, and ``percall`` points that never reached
    the engine (batch too small, or a non-deterministic cost model).
    """

    lockstep: int = 0
    delegated: int = 0
    percall: int = 0

    def as_dict(self) -> dict[str, int]:
        return {
            "lockstep": self.lockstep,
            "delegated": self.delegated,
            "percall": self.percall,
        }


class RingSnapshot:
    """Immutable array view of a :class:`ChordNetwork` at one churn epoch.

    Copies every node's successor list and finger table (the live lists
    mutate in place during stabilization) and, when numpy is available,
    lays them out as dense matrices indexed by ring position so a
    lockstep round is a few vectorized gathers instead of per-node
    attribute traffic.  Build cost is O(n * m); the network caches one
    snapshot per epoch so static phases amortize it across every batch
    issued until the next membership event.
    """

    __slots__ = (
        "epoch", "m", "n", "ids", "pos", "succ_lists", "finger_lists",
        "ids_np", "succ_first_np", "finger_mat", "succ_mat", "pos_table",
    )

    #: Largest identifier space for which a dense id -> position table is
    #: materialized (2^22 entries of int32 = 16 MiB); larger spaces fall
    #: back to binary search for liveness/position queries.
    MAX_TABLE_BITS = 22

    def __init__(self, epoch: int, m: int, ids, succ_lists, finger_lists):
        self.epoch = epoch
        self.m = m
        self.ids = ids
        self.n = len(ids)
        self.pos = {node_id: i for i, node_id in enumerate(ids)}
        self.succ_lists = succ_lists
        self.finger_lists = finger_lists
        if _np is not None and self.n:
            self.ids_np = _np.asarray(ids, dtype=_np.int64)
            self.succ_first_np = _np.fromiter(
                (s[0] if s else node_id for node_id, s in zip(ids, succ_lists)),
                dtype=_np.int64,
                count=self.n,
            )
            self.finger_mat = _np.fromiter(
                (-1 if f is None else f for fl in finger_lists for f in fl),
                dtype=_np.int64,
                count=self.n * m,
            ).reshape(self.n, m)
            width = max((len(s) for s in succ_lists), default=1)
            succ_mat = _np.full((self.n, width), -1, dtype=_np.int64)
            for i, s in enumerate(succ_lists):
                if s:
                    succ_mat[i, : len(s)] = s
            self.succ_mat = succ_mat
            if m <= self.MAX_TABLE_BITS:
                # Dense id -> position + 1 (0 = dead): O(1) liveness and
                # position gathers per round instead of binary searches.
                table = _np.zeros(1 << m, dtype=_np.int32)
                table[self.ids_np] = _np.arange(1, self.n + 1, dtype=_np.int32)
                self.pos_table = table
            else:
                self.pos_table = None
        else:
            self.ids_np = None
            self.succ_first_np = None
            self.finger_mat = None
            self.succ_mat = None
            self.pos_table = None

    @classmethod
    def build(cls, network) -> "RingSnapshot":
        ids = list(network.sorted_ids())
        nodes = network.nodes
        succ_lists = [tuple(nodes[i].successors) for i in ids]
        finger_lists = [tuple(nodes[i].fingers) for i in ids]
        return cls(network.churn_epoch, network.m, ids, succ_lists, finger_lists)

    def alive(self, node_id: int) -> bool:
        """Whether ``node_id`` was a live ring member at snapshot time."""
        return node_id in self.pos


def lockstep_resolve(
    snapshot: RingSnapshot,
    entry_id: int,
    targets,
    *,
    mode: str = "iterative",
    rpc_latency: float,
    oneway_latency: float,
    timeout: float,
) -> list[LookupTrace]:
    """Replay one lookup per target from ``entry_id``, all in lockstep.

    ``rpc_latency`` is the full round-trip charge of one successful RPC
    (two one-way samples), ``oneway_latency`` a single forwarded leg,
    ``timeout`` the charge of a call to a dead node.  Returns one
    :class:`LookupTrace` per target, in order; traces with ``ok=False``
    carry the charges of the *failed attempt*, which callers discard in
    favour of a live re-execution (see the module docstring).
    """
    if entry_id not in snapshot.pos:
        raise KeyError(f"entry node {entry_id} is not in the snapshot")
    budget = hop_budget(snapshot.m)
    if (
        _np is None
        or snapshot.ids_np is None
        or len(targets) < NUMPY_MIN_BATCH
    ):
        sim = _sim_iterative if mode == "iterative" else _sim_recursive
        lat = rpc_latency if mode == "iterative" else oneway_latency
        return [
            sim(snapshot, entry_id, t, budget, lat, timeout) for t in targets
        ]
    if mode == "iterative":
        return _vector_resolve(
            snapshot, entry_id, targets, budget, rpc_latency, timeout,
            recursive=False,
        )
    return _vector_resolve(
        snapshot, entry_id, targets, budget, oneway_latency, timeout,
        recursive=True,
    )


# -- exact Python replay (slow lane, and the no-numpy path) ----------------


def _sim_step(snapshot: RingSnapshot, node_id: int, target: int, excluded):
    """``ChordNode.lookup_step`` evaluated against the snapshot.

    Byte-for-byte transcription of the live routing step -- the
    effective successor skips excluded ids, ``closest_preceding_node``
    scans fingers then successors in reverse, and a self/excluded best
    hop falls through to the successor -- so replayed routes cannot
    drift from what the live node would have answered.
    """
    i = snapshot.pos[node_id]
    succs = snapshot.succ_lists[i]
    succ = next((s for s in succs if s not in excluded), node_id)
    if succ == node_id or in_open_closed(target, node_id, succ):
        return "done", succ
    nxt = None
    for finger in reversed(snapshot.finger_lists[i]):
        if (
            finger is not None
            and finger not in excluded
            and in_open_open(finger, node_id, target)
        ):
            nxt = finger
            break
    if nxt is None:
        for s in reversed(succs):
            if s not in excluded and in_open_open(s, node_id, target):
                nxt = s
                break
    if nxt is None:
        nxt = succs[0] if succs else node_id  # get_successor()
    if nxt == node_id or nxt in excluded:
        nxt = succ
    return "forward", nxt


def _sim_iterative(
    snapshot: RingSnapshot,
    entry_id: int,
    target: int,
    budget: int,
    rpc_latency: float,
    timeout: float,
) -> LookupTrace:
    """Replay of the client-driven iterative loop, exclusions included.

    Mirrors :meth:`ChordNode.lookup` statement for statement: the first
    step is answered locally (uncharged), each forward is one charged
    RPC, a dead owner is pinged (one lost message + timeout), excluded,
    and the query re-asked from the last responsive node, and the hop
    budget is checked at exactly the same points.
    """
    excluded: tuple[int, ...] = ()
    current = entry_id
    kind, nxt = _sim_step(snapshot, entry_id, target, excluded)
    hops = 0
    msgs = 0
    calls = 0
    touts = 0
    lat = 0.0

    def ask(node_id: int):
        nonlocal msgs, calls, lat
        if node_id != entry_id:
            calls += 1
            msgs += 2
            lat += rpc_latency
        return _sim_step(snapshot, node_id, target, excluded)

    while True:
        if kind == "done":
            owner = nxt
            if owner == entry_id:
                return LookupTrace(owner, hops, msgs, lat, calls, touts, True)
            if snapshot.alive(owner):
                calls += 1
                msgs += 2
                lat += rpc_latency  # the liveness ping before handing out the owner
                return LookupTrace(owner, hops, msgs, lat, calls, touts, True)
            calls += 1
            touts += 1
            msgs += 1
            lat += timeout
            excluded = excluded + (owner,)
            hops += 1
            if hops >= budget:
                return LookupTrace(-1, hops, msgs, lat, calls, touts, False)
            kind, nxt = ask(current)
            continue
        if hops >= budget:
            return LookupTrace(-1, hops, msgs, lat, calls, touts, False)
        if snapshot.alive(nxt):
            calls += 1
            msgs += 2
            lat += rpc_latency
            kind, result = _sim_step(snapshot, nxt, target, excluded)
            hops += 1
            current, nxt = nxt, result
        else:
            calls += 1
            touts += 1
            msgs += 1
            lat += timeout
            excluded = excluded + (nxt,)
            hops += 1
            kind, nxt = ask(current)


def _sim_recursive(
    snapshot: RingSnapshot,
    entry_id: int,
    target: int,
    budget: int,
    oneway_latency: float,
    timeout: float,
) -> LookupTrace:
    """Replay of the forwarded (recursive) chain.

    Mirrors ``lookup_recursive``/``forward_lookup``: one charged one-way
    message per forwarded hop, the budget checked on arrival, a dead hop
    or a dead owner failing the whole query (no client-side rerouting),
    and the owner's single direct reply charged as one message with no
    latency leg.
    """
    cur = entry_id
    hops = 0
    msgs = 0
    calls = 0
    touts = 0
    lat = 0.0
    while True:
        if hops > budget:
            return LookupTrace(-1, hops, msgs, lat, calls, touts, False)
        kind, nxt = _sim_step(snapshot, cur, target, ())
        if kind == "done":
            owner = nxt
            if owner != entry_id:
                if not snapshot.alive(owner):
                    return LookupTrace(-1, hops, msgs, lat, calls, touts, False)
                msgs += 1  # the owner's direct reply to the querier
            return LookupTrace(owner, hops, msgs, lat, calls, touts, True)
        if not snapshot.alive(nxt):
            calls += 1
            touts += 1
            msgs += 1
            lat += timeout
            return LookupTrace(-1, hops, msgs, lat, calls, touts, False)
        calls += 1
        msgs += 1
        lat += oneway_latency
        hops += 1
        cur = nxt


# -- the vectorized lane ----------------------------------------------------


def _alive_np(ids, values):
    """Membership of ``values`` in the sorted ``ids`` array."""
    pos = _np.searchsorted(ids, values)
    pos = _np.minimum(pos, len(ids) - 1)
    return ids[pos] == values


# Per-lookup states of the lockstep frontier.
_ACTIVE, _OK, _REPLAY = 0, 1, 2


def _vector_resolve(
    snapshot: RingSnapshot,
    entry_id: int,
    targets,
    budget: int,
    hop_latency: float,
    timeout: float,
    *,
    recursive: bool,
) -> list[LookupTrace]:
    """Advance all lookups one hop per round via array-indexed routing.

    Handles only the uncomplicated path -- every touched node alive, no
    exclusion lists.  The moment a lookup meets a dead reference or
    exhausts its budget it is parked in the ``_REPLAY`` state and
    finished by the exact Python simulator, which recomputes it from
    scratch (replays are side-effect-free, so restarting loses nothing).
    ``hop_latency`` is the round-trip charge per hop in iterative mode
    and the one-way charge in recursive mode.

    Interval tests use modular distances: with the identifier space a
    power of two, ``in_open_open(x, a, b)`` is
    ``dx != 0 and (dx < db or db == 0)`` for ``dx = (x-a) & mask``,
    ``db = (b-a) & mask`` (``db == 0`` covers the ``a == b`` whole-ring
    convention), and ``in_open_closed(x, a, b)`` with ``a != b`` is
    ``dx != 0 and dx <= db`` -- two integer ops and two compares per
    element, no branching.
    """
    np = _np
    k = len(targets)
    ids = snapshot.ids_np
    fingers = snapshot.finger_mat
    succ_mat = snapshot.succ_mat
    succ_first = snapshot.succ_first_np
    table = snapshot.pos_table
    m = snapshot.m
    mask = (1 << m) - 1
    t = np.asarray(targets, dtype=np.int64)

    # Values probed below are always node ids drawn from snapshot state
    # (fingers, successor entries), never the -1 padding, so the dense
    # table can be indexed directly.
    if table is not None:

        def alive_of(v):
            return table[v] > 0

        def pos_of(v):
            return table[v].astype(np.int64) - 1

    else:

        def alive_of(v):
            return _alive_np(ids, v)

        def pos_of(v):
            return np.searchsorted(ids, v)

    cur = np.full(k, snapshot.pos[entry_id], dtype=np.int64)
    hops = np.zeros(k, dtype=np.int64)
    owner = np.full(k, -1, dtype=np.int64)
    pinged = np.zeros(k, dtype=bool)
    state = np.full(k, _ACTIVE, dtype=np.int8)

    while True:
        act = np.nonzero(state == _ACTIVE)[0]
        if act.size == 0:
            break
        if recursive:
            # forward_lookup checks the budget on arrival, before routing.
            over = hops[act] > budget
            if over.any():
                state[act[over]] = _REPLAY
                act = act[~over]
                if act.size == 0:
                    continue
        c = cur[act]
        node = ids[c]
        tgt = t[act]
        succ = succ_first[c]
        # in_open_closed(tgt, node, succ); succ == node (whole-ring case)
        # short-circuits the test, so the a != b modular form suffices.
        d_t = (tgt - node) & mask
        d_s = (succ - node) & mask
        done = (succ == node) | ((d_t != 0) & (d_t <= d_s))

        if done.any():
            d_idx = act[done]
            own = succ[done]
            is_entry = own == entry_id
            ok = is_entry | alive_of(own)
            ok_idx = d_idx[ok]
            state[ok_idx] = _OK
            owner[ok_idx] = own[ok]
            pinged[ok_idx] = ~is_entry[ok]
            # Dead owner: iterative mode excludes and re-routes, recursive
            # mode fails outright -- both exactly replayed in Python.
            state[d_idx[~ok]] = _REPLAY

        fwd = ~done
        if not fwd.any():
            continue
        f_idx = act[fwd]
        if not recursive:
            # The iterative client checks the budget before forwarding.
            over = hops[f_idx] >= budget
            if over.any():
                state[f_idx[over]] = _REPLAY
                f_idx = f_idx[~over]
                if f_idx.size == 0:
                    continue
        c = cur[f_idx]
        node = ids[c]
        tgt = t[f_idx]
        succ = succ_first[c]
        # closest_preceding_node: the highest finger strictly inside
        # (node, target), whole rows at once.  Reversing the column axis
        # makes argmax return the *first* admissible entry scanning from
        # the top finger down -- the live node's scan order.
        d_t = (tgt - node) & mask
        whole_ring = (d_t == 0)[:, None]
        rows = fingers[c]
        d_f = (rows - node[:, None]) & mask
        ok_f = (rows >= 0) & (d_f != 0) & ((d_f < d_t[:, None]) | whole_ring)
        rev = ok_f[:, ::-1]
        pick = rev.argmax(axis=1)
        found = rev[np.arange(rows.shape[0]), pick]
        nxt = rows[np.arange(rows.shape[0]), m - 1 - pick]
        if not found.all():
            # ... then the successor list in reverse, then the successor.
            miss = np.nonzero(~found)[0]
            rows = succ_mat[c[miss]]
            d_s = (rows - node[miss, None]) & mask
            ok_s = (
                (rows >= 0)
                & (d_s != 0)
                & ((d_s < d_t[miss, None]) | whole_ring[miss])
            )
            rev = ok_s[:, ::-1]
            pick = rev.argmax(axis=1)
            sub_found = rev[np.arange(rows.shape[0]), pick]
            sub_nxt = rows[np.arange(rows.shape[0]), rows.shape[1] - 1 - pick]
            nxt[miss] = np.where(sub_found, sub_nxt, succ[miss])
        nxt = np.where(nxt == node, succ, nxt)  # lookup_step's self-fallback
        alive = alive_of(nxt)
        state[f_idx[~alive]] = _REPLAY  # dead hop: reroute (or fail) exactly
        live_idx = f_idx[alive]
        hops[live_idx] += 1
        cur[live_idx] = pos_of(nxt[alive])

    sim = _sim_recursive if recursive else _sim_iterative
    traces = []
    for i in range(k):
        if state[i] == _OK:
            h = int(hops[i])
            if recursive:
                calls = h
                msgs = h + (1 if int(owner[i]) != entry_id else 0)
            else:
                calls = h + (1 if pinged[i] else 0)
                msgs = 2 * calls
            traces.append(
                LookupTrace(
                    int(owner[i]), h, msgs, hop_latency * calls, calls, 0, True
                )
            )
        else:
            traces.append(
                sim(snapshot, entry_id, int(t[i]), budget, hop_latency, timeout)
            )
    return traces
