"""The Byzantine-peer surface an :class:`~repro.sim.network.RpcTransport`
consults on every delivery.

The King-Saia threat model is peers that *participate but lie*: they
answer RPCs (so they never look dead) yet deflect lookups, misreport
membership, or poison routing tables toward a colluding clique.  An
:class:`AdversaryState` holds which node ids are Byzantine and what lie
family each tells, and rewrites the *reply* of any RPC whose responder
is Byzantine -- the request still crossed the network, the handler still
ran, every message and latency unit was still charged.  Honest nodes
cannot tell a lie from a truth at the transport level, which is exactly
the premise the sampling algorithm must survive.

Three lie families (see docs/ADVERSARY.md for the full threat model):

- ``lookup`` -- deflection: routed answers (`Chord` ``lookup_step`` /
  ``get_successor``, Kademlia ``find_node`` / ``find_clockwise``) are
  bent toward the colluder clique, so queries terminate on an adversary
  instead of the true successor.
- ``census`` -- membership misreport: successor lists and contact
  replies are over-reported (colluders injected) by odd-id liars and
  under-reported (truncated) by even-id liars, skewing any census or
  repair that trusts reported neighbourhoods.
- ``eclipse`` -- routing-table poisoning: every contact reply is
  replaced wholesale by colluders, so honest Kademlia nodes ``observe``
  only adversaries and honest Chord stabilization is dragged toward the
  clique.  The poison persists in honest state long after the reply.

Design discipline mirrors :class:`repro.faults.state.FaultState`: pure
bookkeeping, **no RNG** (every lie is a deterministic function of the
query, so seeded runs stay bit-identical), no clock, no transport
imports.  The transport consults :attr:`active` once per delivery; the
:class:`~repro.sim.network.NullAdversary` default keeps the disabled
cost to that single attribute read.
"""

from __future__ import annotations

from bisect import bisect_left

__all__ = ["AdversaryState", "LIE_STRATEGIES"]

#: The lie families a Byzantine node can be marked with.
LIE_STRATEGIES = ("lookup", "census", "eclipse")

#: Chord maintenance replies the eclipse strategy rewrites (lookup-path
#: and Kademlia contact-list replies are handled per method below).
_CHORD_ECLIPSED = frozenset(
    {"closest_preceding_node", "get_predecessor", "get_successor_list"}
)


class AdversaryState:
    """Currently-marked Byzantine peers and their lie strategies.

    ``m`` is the identifier width of the overlay the adversary lives in
    (ids are in ``[0, 2**m)``); clockwise deflection needs it to wrap.
    """

    def __init__(self, m: int):
        if m < 1:
            raise ValueError("identifier width m must be positive")
        self.m = m
        self._size = 1 << m
        self._strategy: dict[int, str] = {}
        self._colluders: tuple[int, ...] = ()  # sorted, for bisect deflection
        #: Lies told, split by RPC method (pure bookkeeping for reports).
        self.lies: dict[str, int] = {}

    # -- marking ----------------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether any peer is currently marked Byzantine.

        Consumers that need exact off-transport replay (the Chord
        lockstep engine) refuse to engage while this is True: lies are
        applied at delivery time and cannot be replayed from a snapshot.
        """
        return bool(self._strategy)

    def mark(self, node_id: int, strategy: str = "lookup") -> None:
        """Mark ``node_id`` Byzantine with the given lie family.

        Marked nodes automatically join the colluder clique unless an
        explicit clique was pinned via :meth:`set_colluders`.
        """
        if strategy not in LIE_STRATEGIES:
            raise ValueError(
                f"unknown lie strategy {strategy!r}; choose from {LIE_STRATEGIES}"
            )
        if not 0 <= node_id < self._size:
            raise ValueError(f"node id {node_id} outside [0, 2^{self.m})")
        self._strategy[node_id] = strategy
        if not self._explicit_colluders:
            self._colluders = tuple(sorted(self._strategy))

    def clear(self, node_id: int | None = None) -> None:
        """Restore one node (or, with ``None``, every node) to honesty."""
        if node_id is None:
            self._strategy = {}
        else:
            self._strategy.pop(node_id, None)
        if not self._explicit_colluders:
            self._colluders = tuple(sorted(self._strategy))

    _explicit_colluders = False

    def set_colluders(self, node_ids) -> None:
        """Pin the clique lies deflect toward (defaults to the marked set)."""
        self._colluders = tuple(sorted(set(node_ids)))
        self._explicit_colluders = True

    def is_byzantine(self, node_id: int) -> bool:
        return node_id in self._strategy

    @property
    def byzantine_ids(self) -> frozenset[int]:
        return frozenset(self._strategy)

    @property
    def colluders(self) -> tuple[int, ...]:
        return self._colluders

    def describe(self) -> dict:
        """A JSON-able snapshot (for reports/tests)."""
        by_strategy: dict[str, int] = {}
        for strategy in self._strategy.values():
            by_strategy[strategy] = by_strategy.get(strategy, 0) + 1
        return {
            "active": self.active,
            "byzantine": len(self._strategy),
            "colluders": len(self._colluders),
            "by_strategy": by_strategy,
            "lies_told": sum(self.lies.values()),
            "lies_by_method": dict(sorted(self.lies.items())),
        }

    # -- deterministic lie helpers ----------------------------------------

    def _deflect(self, target_id: int) -> int:
        """The colluder 'owning' ``target_id``: first clockwise at-or-after.

        Deterministic (bisect on the sorted clique, wrapping) so seeded
        runs replay bit for bit -- the adversary owns no dice.
        """
        colluders = self._colluders
        i = bisect_left(colluders, target_id % self._size)
        return colluders[i % len(colluders)]

    def _by_ring_distance(self, target_id: int) -> list[int]:
        """Colluders ordered clockwise from ``target_id`` (wrapping)."""
        colluders = self._colluders
        i = bisect_left(colluders, target_id % self._size)
        return [colluders[(i + j) % len(colluders)] for j in range(len(colluders))]

    def _by_xor_distance(self, target_id: int) -> list[int]:
        """Colluders ordered by XOR distance to ``target_id``."""
        return sorted(self._colluders, key=lambda c: c ^ target_id)

    def _tally(self, method: str) -> None:
        lies = self.lies
        try:
            lies[method] += 1
        except KeyError:
            lies[method] = 1

    # -- the per-delivery rewrite the transport issues ---------------------

    def rewrite(self, responder_id: int, method: str, args: tuple, result):
        """The reply ``responder_id`` actually sends for ``method(*args)``.

        Honest responders (and methods the responder's strategy does not
        cover) pass ``result`` through untouched.  Rewrites never raise
        and never consume randomness; they only substitute ids the
        clique wants believed.  The transport has already charged the
        delivery -- lying is free for the liar, as in the real threat
        model.
        """
        strategy = self._strategy.get(responder_id)
        if strategy is None or not self._colluders:
            return result
        target = args[0] if args and isinstance(args[0], int) else responder_id
        if strategy == "lookup":
            return self._lie_lookup(method, target, result)
        if strategy == "census":
            return self._lie_census(responder_id, method, result)
        return self._lie_eclipse(method, target, result)

    def _lie_lookup(self, method: str, target: int, result):
        if method == "lookup_step":
            # Claim the query is resolved -- at a colluder.  Maintenance
            # replies (get_successor etc.) stay honest under this
            # strategy: lie-in-lookup bends query routing only, so any
            # degradation is attributable to lookups, and the ring
            # itself still stabilizes (poisoning state is `eclipse`).
            self._tally(method)
            return ("done", self._deflect(target))
        if method == "lookup":
            # A full lookup answered by a liar (joins route through this).
            self._tally(method)
            result.node_id = self._deflect(target)
            return result
        if method == "find_node":
            # Keep the reply size (honest nodes cannot count the network)
            # but lead with the clique, XOR-closest first.
            self._tally(method)
            lied = self._by_xor_distance(target)[: len(result)]
            return lied + [i for i in result if i not in lied][: len(result) - len(lied)]
        if method == "find_clockwise":
            self._tally(method)
            lied = self._by_ring_distance(target)[: len(result)]
            return lied + [i for i in result if i not in lied][: len(result) - len(lied)]
        return result

    def _lie_census(self, responder_id: int, method: str, result):
        if method not in ("get_successor_list", "find_node", "find_clockwise"):
            return result
        self._tally(method)
        if responder_id % 2 == 0:
            # Under-report: the neighbourhood shrinks to one entry.
            return result[:1]
        # Over-report: the clique is injected ahead of the honest view.
        return list(self._colluders) + [i for i in result if i not in self._colluders]

    def _lie_eclipse(self, method: str, target: int, result):
        if method in ("find_node", "find_clockwise"):
            # Wholesale replacement: honest callers observe only the
            # clique, and the poison settles into their k-buckets.
            self._tally(method)
            order = (
                self._by_xor_distance(target)
                if method == "find_node"
                else self._by_ring_distance(target)
            )
            return order[: max(len(result), 1)]
        if method in _CHORD_ECLIPSED:
            self._tally(method)
            if method == "get_successor_list":
                return list(self._colluders)
            return self._deflect(target if method == "closest_preceding_node" else 0)
        return result
