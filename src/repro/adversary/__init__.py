"""Byzantine peer models and the statistical harness that verifies them.

See docs/ADVERSARY.md for the threat model; ``state`` holds the
per-delivery lie surface the transport consults, ``verify`` the
Bonferroni-banded acceptance procedures the adversary tests share.
"""

from repro.adversary.state import LIE_STRATEGIES, AdversaryState
from repro.adversary.verify import (
    VerificationReport,
    acceptance_band,
    bonferroni,
    verify_capture,
    verify_uniformity,
)

__all__ = [
    "AdversaryState",
    "LIE_STRATEGIES",
    "VerificationReport",
    "acceptance_band",
    "bonferroni",
    "verify_capture",
    "verify_uniformity",
]
