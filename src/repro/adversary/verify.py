"""Statistical verification harness: acceptance bands with real p-values.

The adversarial claims this repo makes ("capture stays near the analytic
binomial tail", "the honest population stays uniform at fraction 0") are
statistical, so the tests that back them must be statistical too -- but
deterministic under a fixed seed, and honest about multiple comparisons.
This module provides the two verdict procedures the adversary suite and
``bench_adversary`` share:

- :func:`verify_uniformity` -- seeded multi-trial chi-square against the
  uniform null over a peer population, with a Bonferroni-corrected
  per-trial significance level.  A sampler is *rejected* only if any
  trial's p-value falls below ``alpha / trials``, so the family-wise
  false-rejection rate of the whole harness stays at ``alpha``.
- :func:`acceptance_band` / :func:`verify_capture` -- exact binomial
  quantile bands for an empirical capture frequency around an analytic
  probability ``p``: with ``elections`` seeded committees the observed
  capture count must land in ``[ppf(alpha/2), ppf(1-alpha/2)]``.

Both are self-testable: a deliberately biased sampler (one peer drawn
with double weight) must be rejected and the honest one accepted, under
the same fixed seeds, before any real verdict is trusted
(``tests/adversary/test_verify.py`` and the ``harness_self_test`` block
in ``BENCH_adversary.json``).

Derivations and the choice of ``alpha`` are documented in
docs/ADVERSARY.md.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.analysis.stats import chi_square_uniform, total_variation_from_uniform

__all__ = [
    "VerificationReport",
    "acceptance_band",
    "bonferroni",
    "verify_capture",
    "verify_uniformity",
]


def bonferroni(alpha: float, tests: int) -> float:
    """Per-test significance level controlling family-wise error at ``alpha``."""
    if not 0.0 < alpha < 1.0:
        raise ValueError("alpha must be in (0, 1)")
    if tests < 1:
        raise ValueError("tests must be positive")
    return alpha / tests


@dataclass(frozen=True, slots=True)
class VerificationReport:
    """Verdict of a multi-trial uniformity check."""

    trials: int
    draws_per_trial: int
    alpha: float
    corrected_alpha: float
    p_values: tuple[float, ...]
    tv_distances: tuple[float, ...]
    rejections: int = field(init=False)

    def __post_init__(self):
        object.__setattr__(
            self,
            "rejections",
            sum(1 for p in self.p_values if p < self.corrected_alpha),
        )

    @property
    def accepted(self) -> bool:
        """Uniformity not rejected at family-wise level ``alpha``."""
        return self.rejections == 0

    @property
    def min_p_value(self) -> float:
        return min(self.p_values)

    @property
    def max_tv(self) -> float:
        return max(self.tv_distances)

    def to_record(self) -> dict:
        return {
            "trials": self.trials,
            "draws_per_trial": self.draws_per_trial,
            "alpha": self.alpha,
            "corrected_alpha": self.corrected_alpha,
            "min_p_value": self.min_p_value,
            "max_tv": self.max_tv,
            "rejections": self.rejections,
            "accepted": self.accepted,
        }


def verify_uniformity(
    draw,
    population,
    *,
    trials: int = 8,
    draws: int = 2000,
    alpha: float = 0.01,
    seed: int = 0,
) -> VerificationReport:
    """Run ``trials`` independent seeded chi-square tests of ``draw``.

    ``draw(rng)`` must return a member of ``population`` using only the
    supplied :class:`random.Random`; each trial gets its own
    deterministic sub-seed, so the verdict is reproducible bit for bit.
    Rejection requires ANY trial to beat the Bonferroni-corrected
    threshold ``alpha / trials`` -- the family-wise false-alarm rate of
    the whole report is therefore at most ``alpha``.
    """
    members = sorted(population)
    if len(members) < 2:
        raise ValueError("population must hold at least two members")
    if draws < 10 * len(members):
        raise ValueError(
            f"need >= {10 * len(members)} draws per trial for a stable "
            f"chi-square over {len(members)} members, got {draws}"
        )
    corrected = bonferroni(alpha, trials)
    index = {member: i for i, member in enumerate(members)}
    p_values = []
    tvs = []
    for trial in range(trials):
        rng = random.Random(f"{seed}.{trial}")
        counts = [0] * len(members)
        for _ in range(draws):
            counts[index[draw(rng)]] += 1
        p_values.append(chi_square_uniform(counts).p_value)
        tvs.append(
            total_variation_from_uniform(
                {m: counts[i] / draws for i, m in enumerate(members)}
            )
        )
    return VerificationReport(
        trials=trials,
        draws_per_trial=draws,
        alpha=alpha,
        corrected_alpha=corrected,
        p_values=tuple(p_values),
        tv_distances=tuple(tvs),
    )


def acceptance_band(
    p: float, elections: int, *, alpha: float = 1e-6, tests: int = 1
) -> tuple[float, float]:
    """Exact binomial band for an observed capture *frequency*.

    If each of ``elections`` independent committees is captured with
    probability ``p``, the observed count is Binomial(elections, p); the
    band is ``[ppf(a/2), ppf(1-a/2)] / elections`` with
    ``a = alpha / tests`` (Bonferroni over ``tests`` simultaneous
    bands).  An empirical frequency outside the band is evidence the
    sampler does not match the analytic model at level ``alpha``.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError("p must be a probability")
    if elections < 1:
        raise ValueError("elections must be positive")
    a = bonferroni(alpha, tests) if tests > 1 else alpha
    import scipy.stats as sps

    lo = float(sps.binom.ppf(a / 2, elections, p)) / elections
    hi = float(sps.binom.ppf(1 - a / 2, elections, p)) / elections
    return (lo, hi)


def verify_capture(
    observed_rate: float,
    analytic_p: float,
    elections: int,
    *,
    alpha: float = 1e-6,
    tests: int = 1,
) -> dict:
    """Check an empirical capture frequency against its analytic band."""
    lo, hi = acceptance_band(analytic_p, elections, alpha=alpha, tests=tests)
    return {
        "observed": observed_rate,
        "analytic": analytic_p,
        "elections": elections,
        "band_low": lo,
        "band_high": hi,
        "alpha": alpha,
        "within_band": lo <= observed_rate <= hi,
    }
