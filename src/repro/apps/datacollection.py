"""Data collection by statistically rigorous sampling (motivation 1).

With a uniform sampler, polling ``k`` peers yields unbiased estimates of
population fractions and means with textbook confidence intervals.  With
the *naive* sampler the estimates are biased toward peers owning long
arcs; :func:`horvitz_thompson_fraction` shows the classical fix when the
inclusion probabilities happen to be known, which in a real DHT they are
not -- the point the paper makes for exact uniform sampling.
"""

from __future__ import annotations

from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass

from ..analysis.stats import mean_confidence_interval, wilson_interval
from ..dht.api import PeerRef

__all__ = ["FractionEstimate", "MeanEstimate", "poll_fraction", "poll_mean",
           "horvitz_thompson_fraction"]


@dataclass(frozen=True)
class FractionEstimate:
    """Estimated population fraction with a Wilson confidence interval."""

    estimate: float
    low: float
    high: float
    samples: int

    def covers(self, truth: float) -> bool:
        return self.low <= truth <= self.high


@dataclass(frozen=True)
class MeanEstimate:
    """Estimated population mean with a t-based confidence interval."""

    estimate: float
    low: float
    high: float
    samples: int

    def covers(self, truth: float) -> bool:
        return self.low <= truth <= self.high


def poll_fraction(
    sampler,
    predicate: Callable[[PeerRef], bool],
    samples: int,
    confidence: float = 0.95,
) -> FractionEstimate:
    """Estimate the fraction of peers satisfying ``predicate``.

    ``sampler`` is anything with a ``sample() -> PeerRef`` method (the
    King--Saia sampler, the naive baseline, a random-walk adapter...).
    """
    if samples < 1:
        raise ValueError("need at least one sample")
    hits = sum(1 for _ in range(samples) if predicate(sampler.sample()))
    low, high = wilson_interval(hits, samples, confidence)
    return FractionEstimate(estimate=hits / samples, low=low, high=high, samples=samples)


def poll_mean(
    sampler,
    attribute: Callable[[PeerRef], float],
    samples: int,
    confidence: float = 0.95,
) -> MeanEstimate:
    """Estimate the population mean of a per-peer numeric attribute."""
    if samples < 2:
        raise ValueError("need at least two samples for an interval")
    values = [attribute(sampler.sample()) for _ in range(samples)]
    mean, low, high = mean_confidence_interval(values, confidence)
    return MeanEstimate(estimate=mean, low=low, high=high, samples=samples)


def horvitz_thompson_fraction(
    draws: Sequence[PeerRef],
    predicate: Callable[[PeerRef], bool],
    selection_probability: Mapping[int, float],
    population: int,
) -> float:
    """Bias-corrected fraction estimate for a *non-uniform* sampler.

    Weighs each drawn peer by ``1 / (population * p_select)``, the
    Horvitz--Thompson estimator.  Requires the per-peer selection
    probabilities -- available in simulation, unobtainable in a deployed
    DHT, which is why uniform sampling is the practical answer.
    """
    if not draws:
        raise ValueError("need at least one draw")
    total = 0.0
    for peer in draws:
        p = selection_probability[peer.peer_id]
        if p <= 0.0:
            raise ValueError(f"peer {peer.peer_id} has non-positive selection probability")
        if predicate(peer):
            total += 1.0 / (population * p)
    return total / len(draws)
