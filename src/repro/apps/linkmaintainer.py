"""Maintaining random links through churn (motivation 3, completed).

The paper argues a uniform sampler "allows for simple creation *and
maintenance* of random links".  :class:`RandomLinkMaintainer` is that
maintenance loop over a live Chord network: every node keeps ``r``
links to uniformly sampled peers; each repair pass drops links to
departed peers and tops back up with fresh uniform samples, so the
overlay stays a random graph -- and hence robust -- no matter how the
membership churns.
"""

from __future__ import annotations

import random

import networkx as nx

from ..core.adaptive import AdaptiveSampler

__all__ = ["RandomLinkMaintainer"]


class RandomLinkMaintainer:
    """Keeps ``links_per_node`` uniform random links per live Chord node."""

    def __init__(self, network, links_per_node: int = 4, rng: random.Random | None = None):
        if links_per_node < 1:
            raise ValueError("need at least one link per node")
        self._network = network
        self._r = links_per_node
        self._rng = rng if rng is not None else random.Random()
        self._links: dict[int, set[int]] = {}
        self._sampler = AdaptiveSampler(
            network.dht(), rng=self._rng, refresh_every=64
        )

    @property
    def sampler(self) -> AdaptiveSampler:
        """The adaptive uniform sampler feeding the link tables."""
        return self._sampler

    @property
    def links(self) -> dict[int, set[int]]:
        """Current link table: node id -> its sampled neighbour ids."""
        return {node: set(targets) for node, targets in self._links.items()}

    def _draw_link(self, owner: int) -> int | None:
        """One uniform link target distinct from ``owner`` (a few tries)."""
        for _ in range(16):
            candidate = self._sampler.sample().peer_id
            if candidate != owner and candidate not in self._links.get(owner, ()):
                return candidate
        return None

    def repair(self) -> dict[str, int]:
        """One maintenance pass; returns what changed.

        Drops links whose endpoint departed, adds tables for new nodes,
        and tops every table back up to ``links_per_node`` with fresh
        uniform samples.
        """
        alive = set(self._network.nodes)
        dropped = 0
        added = 0
        # Forget departed owners, prune dead targets.
        for owner in list(self._links):
            if owner not in alive:
                del self._links[owner]
                continue
            dead = self._links[owner] - alive
            dropped += len(dead)
            self._links[owner] -= dead
        # Top up every live node.
        for owner in alive:
            table = self._links.setdefault(owner, set())
            while len(table) < self._r:
                candidate = self._draw_link(owner)
                if candidate is None:
                    break
                table.add(candidate)
                added += 1
        return {"dropped": dropped, "added": added}

    def graph(self) -> nx.Graph:
        """The maintained overlay (undirected, live nodes only)."""
        g = nx.Graph()
        g.add_nodes_from(self._network.nodes)
        for owner, targets in self._links.items():
            for target in targets:
                if owner in g and target in g:
                    g.add_edge(owner, target)
        return g

    def is_fully_provisioned(self) -> bool:
        """Whether every live node currently holds ``links_per_node`` links."""
        alive = set(self._network.nodes)
        return all(
            len(self._links.get(node, ())) >= self._r for node in alive
        )
