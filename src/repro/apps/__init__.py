"""The paper's motivating applications, built on the public sampler API."""

from .committee import (
    CommitteeSpec,
    committee_failure_probability,
    empirical_committee_failure,
)
from .datacollection import (
    FractionEstimate,
    MeanEstimate,
    horvitz_thompson_fraction,
    poll_fraction,
    poll_mean,
)
from .linkmaintainer import RandomLinkMaintainer
from .loadbalance import (
    LoadReport,
    assign_tasks,
    one_choice_max_load_theory,
    two_choice_max_load_theory,
)
from .randlinks import (
    RobustnessPoint,
    build_random_link_overlay,
    deletion_robustness,
)

__all__ = [
    "RandomLinkMaintainer",
    "CommitteeSpec",
    "committee_failure_probability",
    "empirical_committee_failure",
    "FractionEstimate",
    "MeanEstimate",
    "horvitz_thompson_fraction",
    "poll_fraction",
    "poll_mean",
    "LoadReport",
    "assign_tasks",
    "one_choice_max_load_theory",
    "two_choice_max_load_theory",
    "RobustnessPoint",
    "build_random_link_overlay",
    "deletion_robustness",
]
