"""Committee sampling for scalable Byzantine agreement (motivation 2, [8]).

Lewis & Saia's scalable Byzantine agreement elects small committees of
uniformly random peers; safety needs every committee's Byzantine share
below a threshold (canonically 1/3).  Uniform sampling gives the
hypergeometric/binomial guarantees computed here; the naive sampler lets
an adversary position its peers after long arcs and get picked far more
often, which :func:`empirical_committee_failure` exposes.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

from scipy import stats as sps

__all__ = [
    "CommitteeSpec",
    "committee_failure_probability",
    "empirical_committee_failure",
]


@dataclass(frozen=True)
class CommitteeSpec:
    """A committee election: size and maximum tolerable Byzantine share."""

    size: int
    threshold: float = 1.0 / 3.0

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("committee size must be positive")
        if not 0.0 < self.threshold < 1.0:
            raise ValueError("threshold must be in (0, 1)")

    @property
    def max_byzantine(self) -> int:
        """Largest Byzantine head-count the committee tolerates."""
        return math.ceil(self.threshold * self.size) - 1


def committee_failure_probability(
    n: int, byzantine: int, spec: CommitteeSpec
) -> float:
    """Exact failure probability under uniform sampling *with* replacement.

    Each member is an independent uniform draw, so the Byzantine count is
    Binomial(size, byzantine/n); failure is exceeding the tolerance.
    """
    if not 0 <= byzantine <= n:
        raise ValueError("byzantine count must lie in [0, n]")
    p = byzantine / n
    return float(sps.binom.sf(spec.max_byzantine, spec.size, p))


def empirical_committee_failure(
    sampler,
    is_byzantine,
    spec: CommitteeSpec,
    elections: int,
    rng: random.Random | None = None,
) -> float:
    """Fraction of sampled committees whose Byzantine share breaks ``spec``.

    ``sampler.sample()`` supplies members (with replacement, as in the
    analysis); ``is_byzantine(peer) -> bool`` marks adversarial peers.
    """
    if elections < 1:
        raise ValueError("need at least one election")
    failures = 0
    for _ in range(elections):
        bad = sum(1 for _ in range(spec.size) if is_byzantine(sampler.sample()))
        if bad > spec.max_byzantine:
            failures += 1
    return failures / elections
