"""Random-link overlays and fault tolerance (motivation 3).

A network where every node keeps a few links to *uniformly random*
peers stays well connected under massive adversarial deletion
(Motwani & Raghavan [11]).  Links drawn with the *naive* biased sampler
concentrate on long-arc peers, creating hubs whose removal shatters the
graph.  Benchmark E9 quantifies the difference.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

import networkx as nx

__all__ = ["build_random_link_overlay", "RobustnessPoint", "deletion_robustness"]


def build_random_link_overlay(sampler, n_nodes: int, links_per_node: int) -> nx.Graph:
    """Every node draws ``links_per_node`` neighbours from ``sampler``.

    ``sampler.sample()`` must return an object with a ``peer_id`` in
    ``range(n_nodes)``-compatible space; self-loops and duplicate edges
    collapse (as they would in a real link table).
    """
    if links_per_node < 1:
        raise ValueError("need at least one link per node")
    g = nx.Graph()
    g.add_nodes_from(range(n_nodes))
    for u in range(n_nodes):
        made = 0
        attempts = 0
        while made < links_per_node and attempts < 20 * links_per_node:
            attempts += 1
            v = sampler.sample().peer_id
            if v != u and not g.has_edge(u, v):
                g.add_edge(u, v)
                made += 1
    return g


@dataclass(frozen=True)
class RobustnessPoint:
    """Connectivity after deleting a fraction of nodes."""

    deleted_fraction: float
    survivors: int
    largest_component_fraction: float  # of survivors


def deletion_robustness(
    graph: nx.Graph,
    fractions: list[float],
    targeted: bool = True,
    rng: random.Random | None = None,
) -> list[RobustnessPoint]:
    """Largest-component share after deleting each fraction of nodes.

    ``targeted=True`` models the adversary: delete highest-degree nodes
    first.  ``targeted=False`` deletes uniformly at random.  The input
    graph is never mutated.
    """
    rng = rng if rng is not None else random.Random()
    order = sorted(graph.nodes, key=lambda u: graph.degree(u), reverse=True)
    if not targeted:
        rng.shuffle(order)
    n = graph.number_of_nodes()
    points = []
    for fraction in fractions:
        if not 0.0 <= fraction < 1.0:
            raise ValueError("deletion fractions must be in [0, 1)")
        kill = order[: int(fraction * n)]
        surviving = graph.copy()
        surviving.remove_nodes_from(kill)
        survivors = surviving.number_of_nodes()
        if survivors == 0:
            largest = 0.0
        else:
            components = nx.connected_components(surviving)
            largest = max((len(c) for c in components), default=0) / survivors
        points.append(
            RobustnessPoint(
                deleted_fraction=fraction,
                survivors=survivors,
                largest_component_fraction=largest,
            )
        )
    return points
