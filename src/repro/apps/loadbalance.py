"""Load balancing by random peer choice (motivation 2, after [7]).

Assign ``m`` tasks by drawing a uniformly random peer per task: the
maximum load is ``Theta(log n / log log n)`` for ``m = n`` and
``m/n + O(sqrt(m log n / n))`` beyond.  With *two* uniform choices per
task (place on the lighter peer) the maximum drops to
``log log n / log 2 + O(m/n)`` -- the power of two choices.  Both
guarantees evaporate under the naive biased sampler, whose long-arc
peers absorb ``Theta(log n / n)`` of all tasks.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass

__all__ = ["LoadReport", "assign_tasks", "one_choice_max_load_theory",
           "two_choice_max_load_theory"]


@dataclass(frozen=True)
class LoadReport:
    """Outcome of one allocation experiment."""

    n_peers: int
    n_tasks: int
    choices: int
    max_load: int
    mean_load: float
    loads: dict[int, int]


def assign_tasks(sampler, n_peers: int, n_tasks: int, choices: int = 1) -> LoadReport:
    """Allocate ``n_tasks`` tasks, drawing ``choices`` candidate peers per
    task from ``sampler`` and placing on the least-loaded candidate."""
    if choices < 1:
        raise ValueError("need at least one choice per task")
    if n_tasks < 0:
        raise ValueError("task count must be non-negative")
    loads: Counter = Counter()
    for _ in range(n_tasks):
        candidates = [sampler.sample().peer_id for _ in range(choices)]
        target = min(candidates, key=lambda c: loads[c])
        loads[target] += 1
    max_load = max(loads.values(), default=0)
    return LoadReport(
        n_peers=n_peers,
        n_tasks=n_tasks,
        choices=choices,
        max_load=max_load,
        mean_load=n_tasks / n_peers,
        loads=dict(loads),
    )


def one_choice_max_load_theory(n_peers: int, n_tasks: int) -> float:
    """Asymptotic max load of one uniform choice (balls in bins).

    ``m = n``: ``ln n / ln ln n``; heavily loaded case adds the
    square-root deviation term.
    """
    if n_peers < 2:
        return float(n_tasks)
    log_n = math.log(n_peers)
    if n_tasks <= n_peers:
        return log_n / math.log(max(log_n, math.e))
    mean = n_tasks / n_peers
    return mean + math.sqrt(2.0 * mean * log_n)


def two_choice_max_load_theory(n_peers: int, n_tasks: int) -> float:
    """Asymptotic max load of two uniform choices (Azar et al.)."""
    if n_peers < 2:
        return float(n_tasks)
    return n_tasks / n_peers + math.log(math.log(n_peers)) / math.log(2.0)
