"""Asynchronous message-level transport on the discrete-event kernel.

:class:`AsyncRpcTransport` extends :class:`~repro.sim.network.RpcTransport`
with an *in-flight message plane*: each request and reply is a separate
scheduled event with its own one-way latency draw, so replies can arrive
out of order relative to later requests, a target can die while a
message is on the wire, and a timeout is a real event at ``now +
timeout`` on the :class:`~repro.sim.kernel.Simulator` clock -- a reply
landing first cancels it (leaving a heap tombstone the
:class:`~repro.sim.events.EventQueue` compacts lazily), it is never an
instantaneous exception.

The inherited synchronous ``rpc``/``oneway`` plane stays fully
functional and is what lock-step maintenance rounds and the seeded
control paths keep using; the async plane is additive.  Callers of the
async plane are *continuations*: :meth:`call_from` takes ``on_reply``/
``on_timeout`` callbacks, and :meth:`spawn_from` drives a generator
coroutine that ``yield``\\ s :class:`Call` descriptors -- the reply is
sent back into the generator, a timeout is thrown in as
:class:`~repro.sim.network.RpcTimeout`, so protocol logic reads
linearly while living on the event clock.

Determinism: both one-way latency samples and the loss die are drawn at
*send* time (in call order, from the same streams the sync plane uses),
so a fixed seed fixes the entire delivery schedule regardless of how
deliveries interleave.  Liveness and partition checks happen at
*delivery* time: a node that crashes while the request is in flight
eats the message, exactly the race the sync plane cannot express.

Accounting parity: a completed async call charges the same two
messages and two one-way samples to the same counters as a sync
``rpc``, and reports the same ``on_rpc`` tracer event -- but with
``start``/``end`` being actual sim-clock send/delivery instants, so
span timestamps downstream are real delivery times.  A timed-out call
charges one message (the lost request), one ``rpc.timeouts`` tick and
the full timeout interval, like the sync plane's ``_admit``.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Generator

from .kernel import Simulator
from .metrics import MetricsRegistry
from .network import LatencyModel, RpcTimeout, RpcTransport, TransportEndpoint

__all__ = ["AsyncCall", "AsyncEndpoint", "AsyncRpcTransport", "Call", "Future", "drive"]

# AsyncCall lifecycle states.
_PENDING = 0
_REPLIED = 1
_TIMED_OUT = 2
_CANCELLED = 3


class Call:
    """One awaited RPC, yielded by a coroutine to its driver.

    ``yield Call(target, "method", *args)`` suspends the coroutine until
    the reply is delivered (the reply value is the result of the
    ``yield``) or the timeout event fires (:class:`RpcTimeout` is thrown
    into the generator at the ``yield``).
    """

    __slots__ = ("target_id", "method", "args", "kwargs", "timeout")

    def __init__(
        self,
        target_id: int,
        method: str,
        *args: Any,
        timeout: float | None = None,
        **kwargs: Any,
    ):
        self.target_id = target_id
        self.method = method
        self.args = args
        self.kwargs = kwargs
        self.timeout = timeout

    def __repr__(self) -> str:
        return f"Call(target={self.target_id}, method={self.method!r})"


class Future:
    """Completion cell for a spawned coroutine (resolved exactly once)."""

    __slots__ = ("done", "result", "error", "_callbacks")

    def __init__(self) -> None:
        self.done = False
        self.result: Any = None
        self.error: BaseException | None = None
        self._callbacks: list[Callable[["Future"], None]] = []

    def resolve(self, result: Any) -> None:
        if not self.done:
            self.done = True
            self.result = result
            self._run_callbacks()

    def fail(self, error: BaseException) -> None:
        if not self.done:
            self.done = True
            self.error = error
            self._run_callbacks()

    def add_done_callback(self, fn: Callable[["Future"], None]) -> None:
        """Invoke ``fn(self)`` on settlement (immediately if already done)."""
        if self.done:
            fn(self)
        else:
            self._callbacks.append(fn)

    def _run_callbacks(self) -> None:
        callbacks, self._callbacks = self._callbacks, []
        for fn in callbacks:
            fn(self)

    def value(self) -> Any:
        """The result, re-raising a failure (call only when ``done``)."""
        if self.error is not None:
            raise self.error
        return self.result


def drive(sim: Simulator, future: Future) -> Any:
    """Run ``sim`` until ``future`` resolves; return (or re-raise) it.

    The blocking facade for top-level callers (probe sweeps, benches,
    tests): events already scheduled -- other lookups, maintenance
    ticks, fault injections -- interleave with the awaited work, which
    is the point.  Must not be called from inside an event handler (the
    kernel is single-threaded and non-reentrant); continuation-style
    code running *on* the clock composes with ``Call``/callbacks
    instead.
    """
    while not future.done:
        if not sim.step():
            raise RuntimeError(
                "simulation drained with the awaited call still pending"
            )
    return future.value()


class AsyncCall:
    """Per-call pending bookkeeping: one in-flight request/reply pair.

    Holds the timeout event handle so the first of {reply delivery,
    timeout} to fire wins and cancels the other path;
    :meth:`cancel` abandons the call (straggler probes a lookup no
    longer needs) -- a late reply is then dropped and counted.
    """

    __slots__ = (
        "transport",
        "source_id",
        "target_id",
        "method",
        "sent_at",
        "on_reply",
        "on_timeout",
        "state",
        "_timeout_event",
    )

    def __init__(self, transport, source_id, target_id, method, sent_at, on_reply, on_timeout):
        self.transport = transport
        self.source_id = source_id
        self.target_id = target_id
        self.method = method
        self.sent_at = sent_at
        self.on_reply = on_reply
        self.on_timeout = on_timeout
        self.state = _PENDING
        self._timeout_event = None

    @property
    def pending(self) -> bool:
        return self.state == _PENDING

    def cancel(self) -> None:
        """Abandon the call: the timeout event dies, a reply is ignored."""
        if self.state != _PENDING:
            return
        self.state = _CANCELLED
        if self._timeout_event is not None:
            self._timeout_event.cancel()
        self.transport._count_cancelled()


class AsyncEndpoint(TransportEndpoint):
    """Node-bound async view: sync plane inherited, async plane added."""

    __slots__ = ()

    def call(
        self,
        target_id: int,
        method: str,
        *args: Any,
        on_reply: Callable[[Any], None] | None = None,
        on_timeout: Callable[[RpcTimeout], None] | None = None,
        timeout: float | None = None,
        **kwargs: Any,
    ) -> AsyncCall:
        return self._transport.call_from(
            self.node_id,
            target_id,
            method,
            *args,
            on_reply=on_reply,
            on_timeout=on_timeout,
            timeout=timeout,
            **kwargs,
        )

    def cast(self, target_id: int, method: str, *args: Any, **kwargs: Any) -> None:
        self._transport.cast_from(self.node_id, target_id, method, *args, **kwargs)

    def spawn(
        self,
        gen: Generator,
        on_done: Callable[[Any], None] | None = None,
        on_error: Callable[[BaseException], None] | None = None,
    ) -> Future:
        return self._transport.spawn_from(
            self.node_id, gen, on_done=on_done, on_error=on_error
        )

    @property
    def sim(self) -> Simulator:
        return self._transport.sim

    @property
    def now(self) -> float:
        return self._transport.sim.now


class AsyncRpcTransport(RpcTransport):
    """The message-level transport (see module docstring).

    Shares the full :class:`RpcTransport` surface -- ``endpoint``,
    ``install_faults``/``install_tracer``/``install_adversary``,
    metrics, registration, the synchronous ``rpc``/``oneway`` plane --
    and adds the event-scheduled async plane.  Requires the
    :class:`Simulator` whose clock deliveries live on.
    """

    #: Lockstep/batch engines refuse transports that advertise this
    #: (same pattern as refusing active faults): off-clock replay cannot
    #: be charge-identical to event-scheduled delivery.
    asynchronous = True

    def __init__(
        self,
        sim: Simulator,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
        timeout: float = 8.0,
        loss_rate: float = 0.0,
        metrics: MetricsRegistry | None = None,
        loss_rng: random.Random | None = None,
        faults: Any | None = None,
    ):
        super().__init__(
            latency=latency,
            rng=rng,
            timeout=timeout,
            loss_rate=loss_rate,
            metrics=metrics,
            loss_rng=loss_rng,
            faults=faults,
        )
        self.sim = sim
        self._count_late = self.metrics.counter("rpc.late_replies").increment
        self._count_cancelled = self.metrics.counter("rpc.cancelled").increment
        #: When not None, every completed async call appends its
        #: sim-clock round trip here (per-hop latency capture for the
        #: async bench); ``None`` keeps the off state free.
        self.rtt_log: list[float] | None = None

    def endpoint(self, node_id: int) -> AsyncEndpoint:
        """A node-bound view carrying both the sync and async planes."""
        return AsyncEndpoint(self, node_id)

    # -- the async message plane ----------------------------------------

    def call(
        self,
        target_id: int,
        method: str,
        *args: Any,
        on_reply: Callable[[Any], None] | None = None,
        on_timeout: Callable[[RpcTimeout], None] | None = None,
        timeout: float | None = None,
        **kwargs: Any,
    ) -> AsyncCall:
        """Source-less :meth:`call_from` (an external client)."""
        return self.call_from(
            None,
            target_id,
            method,
            *args,
            on_reply=on_reply,
            on_timeout=on_timeout,
            timeout=timeout,
            **kwargs,
        )

    def call_from(
        self,
        source_id: int | None,
        target_id: int,
        method: str,
        *args: Any,
        on_reply: Callable[[Any], None] | None = None,
        on_timeout: Callable[[RpcTimeout], None] | None = None,
        timeout: float | None = None,
        **kwargs: Any,
    ) -> AsyncCall:
        """Send one request; the reply (or timeout) arrives as an event.

        Both one-way samples and the loss die are drawn now, at send
        time (see module docstring); the request leg delivers after the
        first sample, the reply leg after the second, and the timeout
        event is armed at ``now + timeout``.
        """
        self._count_call()
        sim = self.sim
        call = AsyncCall(self, source_id, target_id, method, sim.now, on_reply, on_timeout)
        # The request leaves the source now: charged whether or not it
        # ever lands (the sync plane charges its lost request the same).
        self._count_msgs()
        mm = self._method_messages
        try:
            mm[method] += 1
        except KeyError:
            mm[method] = 1
        faults = self.faults
        factor = faults.latency_factor(source_id, target_id) if faults.active else 1.0
        request_delay = factor * self._latency.sample(self._rng)
        reply_delay = factor * self._latency.sample(self._rng)
        # The loss die rolls per call on the dedicated loss stream, only
        # when some loss source is in play (stream parity with _admit).
        p = self._loss_rate
        if faults.active:
            extra = faults.extra_drop(source_id, target_id)
            if extra > 0.0:
                p = 1.0 - (1.0 - p) * (1.0 - extra)
        lost = p > 0.0 and self._loss_rng.random() < p
        call._timeout_event = sim.schedule(
            self._timeout if timeout is None else timeout,
            lambda: self._fire_timeout(call),
        )
        if not lost:
            sim.schedule(
                request_delay,
                lambda: self._deliver_request(call, args, kwargs, reply_delay),
            )
        return call

    def _deliver_request(self, call: AsyncCall, args, kwargs, reply_delay: float) -> None:
        """The request leg lands: liveness/partition judged *now*."""
        target = self._nodes.get(call.target_id)
        if target is None:
            return  # died (possibly mid-flight); the timeout will fire
        faults = self.faults
        if faults.active and faults.blocked(call.source_id, call.target_id):
            return
        result = getattr(target, call.method)(*args, **kwargs)
        adversary = self.adversary
        if adversary.active:
            result = adversary.rewrite(call.target_id, call.method, args, result)
        if faults.active and faults.blocked(call.target_id, call.source_id):
            return  # one-way partition: the reply leg is severed
        if call.state != _PENDING:
            return  # caller already gave up; don't charge a reply nobody reads
        # The reply leaves the target now.
        self._count_msgs()
        mm = self._method_messages
        try:
            mm[call.method] += 1
        except KeyError:
            mm[call.method] = 1
        self.sim.schedule(reply_delay, lambda: self._deliver_reply(call, result))

    def _deliver_reply(self, call: AsyncCall, result: Any) -> None:
        if call.state != _PENDING:
            # The timeout fired (or the caller cancelled) first: the
            # answer arrives to no one.  The wire cost already stands.
            self._count_late()
            return
        call.state = _REPLIED
        call._timeout_event.cancel()
        now = self.sim.now
        rtt = now - call.sent_at
        self.elapsed += rtt
        if self.rtt_log is not None:
            self.rtt_log.append(rtt)
        tracer = self.tracer
        if tracer.active:
            tracer.on_rpc(
                call.source_id, call.target_id, call.method, "rpc",
                call.sent_at, now, "ok",
            )
        if call.on_reply is not None:
            call.on_reply(result)

    def _fire_timeout(self, call: AsyncCall) -> None:
        if call.state != _PENDING:
            return
        call.state = _TIMED_OUT
        self._count_timeout()
        now = self.sim.now
        self.elapsed += now - call.sent_at
        tracer = self.tracer
        if tracer.active:
            tracer.on_rpc(
                call.source_id, call.target_id, call.method, "rpc",
                call.sent_at, now, "timeout",
            )
        if call.on_timeout is not None:
            call.on_timeout(
                RpcTimeout(f"rpc {call.method} to node {call.target_id}: timed out")
            )

    def cast(self, target_id: int, method: str, *args: Any, **kwargs: Any) -> None:
        """Source-less :meth:`cast_from`."""
        self.cast_from(None, target_id, method, *args, **kwargs)

    def cast_from(
        self,
        source_id: int | None,
        target_id: int,
        method: str,
        *args: Any,
        **kwargs: Any,
    ) -> None:
        """One fire-and-forget message as a scheduled delivery.

        The async twin of the sync plane's ``oneway``: one message, one
        one-way sample.  No reply, no timeout -- the sender cannot know
        whether it landed; a dead or partitioned target just eats it.
        """
        self._count_call()
        self._count_msgs()
        mm = self._method_messages
        try:
            mm[method] += 1
        except KeyError:
            mm[method] = 1
        faults = self.faults
        factor = faults.latency_factor(source_id, target_id) if faults.active else 1.0
        delay = factor * self._latency.sample(self._rng)
        p = self._loss_rate
        if faults.active:
            extra = faults.extra_drop(source_id, target_id)
            if extra > 0.0:
                p = 1.0 - (1.0 - p) * (1.0 - extra)
        if p > 0.0 and self._loss_rng.random() < p:
            return
        sent_at = self.sim.now
        self.sim.schedule(
            delay, lambda: self._deliver_cast(source_id, target_id, method, args, kwargs, sent_at)
        )

    def _deliver_cast(self, source_id, target_id, method, args, kwargs, sent_at) -> None:
        target = self._nodes.get(target_id)
        if target is None:
            return
        faults = self.faults
        if faults.active and faults.blocked(source_id, target_id):
            return
        now = self.sim.now
        self.elapsed += now - sent_at
        tracer = self.tracer
        if tracer.active:
            tracer.on_rpc(source_id, target_id, method, "oneway", sent_at, now, "ok")
        getattr(target, method)(*args, **kwargs)

    # -- the coroutine driver -------------------------------------------

    def spawn(
        self,
        gen: Generator,
        on_done: Callable[[Any], None] | None = None,
        on_error: Callable[[BaseException], None] | None = None,
    ) -> Future:
        """Source-less :meth:`spawn_from`."""
        return self.spawn_from(None, gen, on_done=on_done, on_error=on_error)

    def spawn_from(
        self,
        source_id: int | None,
        gen: Generator,
        on_done: Callable[[Any], None] | None = None,
        on_error: Callable[[BaseException], None] | None = None,
    ) -> Future:
        """Drive a generator coroutine that yields :class:`Call` objects.

        Each yielded call is issued on the async plane attributed to
        ``source_id``; the coroutine resumes with the reply value, or
        has :class:`RpcTimeout` thrown in when the timeout event fires.
        ``StopIteration``'s value resolves the returned :class:`Future`;
        any other exception fails it (and goes to ``on_error`` when
        given).  The failure is never re-raised out of the resuming
        event -- that would kill the whole sim run -- so a caller that
        cares must read the :class:`Future` (``drive`` re-raises).
        """
        future = Future()

        def settle_ok(value: Any) -> None:
            future.resolve(value)
            if on_done is not None:
                on_done(value)

        def settle_err(error: BaseException) -> None:
            future.fail(error)
            if on_error is not None:
                on_error(error)

        def step(send_value: Any = None, throw_exc: BaseException | None = None) -> None:
            try:
                if throw_exc is not None:
                    item = gen.throw(throw_exc)
                else:
                    item = gen.send(send_value)
            except StopIteration as stop:
                settle_ok(stop.value)
                return
            except Exception as exc:  # noqa: BLE001 -- see docstring
                settle_err(exc)
                return
            if not isinstance(item, Call):
                settle_err(
                    TypeError(f"async coroutine must yield Call, got {item!r}")
                )
                return
            self.call_from(
                source_id,
                item.target_id,
                item.method,
                *item.args,
                on_reply=lambda result: step(send_value=result),
                on_timeout=lambda exc: step(throw_exc=exc),
                timeout=item.timeout,
                **item.kwargs,
            )

        step()
        return future
