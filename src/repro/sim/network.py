"""Simulated RPC transport with latency models and failure injection.

Protocol code issues synchronous RPCs through :class:`RpcTransport`; the
transport charges each call's messages and sampled round-trip latency to
its metrics, and raises :class:`RpcTimeout` for dead or missing targets
(after charging the timeout cost, as a real caller would pay it).

The transport deliberately executes calls synchronously while the
discrete-event :class:`~repro.sim.kernel.Simulator` drives *when*
protocol actions happen (stabilization ticks, churn, workload arrivals).
This sequential-RPC simplification keeps protocol code linear and
testable while preserving exactly the quantities the paper's Theorem 7
accounts for: message counts and additive per-operation latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Protocol

from .metrics import MetricsRegistry

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "RpcError",
    "RpcTimeout",
    "RpcTransport",
]


class LatencyModel(Protocol):
    """Samples one-way network delays (abstract time units).

    Models may additionally declare a class attribute
    ``deterministic = True`` to promise that :meth:`sample` always
    returns the same value *and never consumes the RNG*.  Offline cost
    replays (the Chord lockstep lookup engine) are only charge-identical
    to live execution under a deterministic model, so they check this
    flag before engaging.
    """

    def sample(self, rng: random.Random) -> float:
        ...


@dataclass(frozen=True)
class ConstantLatency:
    """Every hop takes exactly ``delay`` units (the default: 1)."""

    #: ``sample`` is a constant and ignores the RNG (see LatencyModel).
    deterministic = True

    delay: float = 1.0

    def sample(self, rng: random.Random) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency:
    """One-way delay uniform on ``[low, high]``."""

    low: float
    high: float

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class ExponentialLatency:
    """One-way delay exponential with the given mean (heavy-ish tail)."""

    mean: float = 1.0

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)


class RpcError(Exception):
    """Base class for transport-level failures."""


class RpcTimeout(RpcError):
    """The target did not answer (dead, departed, or dropped packet)."""


class RpcTransport:
    """Synchronous simulated RPC fabric between registered nodes.

    ``rpc(target_id, method, *args)`` invokes ``method`` on the node
    object registered under ``target_id``, charging two messages
    (request + reply) and a sampled round trip to the metrics.  Dead
    targets cost ``timeout`` latency and raise :class:`RpcTimeout`.
    ``loss_rate`` drops individual calls at random with the same timeout
    cost, modelling an unreliable network.
    """

    def __init__(
        self,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
        timeout: float = 8.0,
        loss_rate: float = 0.0,
        metrics: MetricsRegistry | None = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self._latency = latency if latency is not None else ConstantLatency()
        self._rng = rng if rng is not None else random.Random()
        self._timeout = timeout
        self._loss_rate = loss_rate
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self._nodes: dict[int, Any] = {}
        #: Total simulated latency accrued by RPCs (additive, per Theorem 7).
        self.elapsed: float = 0.0

    # -- membership -----------------------------------------------------

    def register(self, node_id: int, node: Any) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node id {node_id} already registered")
        self._nodes[node_id] = node

    def deregister(self, node_id: int) -> None:
        self._nodes.pop(node_id, None)

    def is_registered(self, node_id: int) -> bool:
        return node_id in self._nodes

    def node(self, node_id: int) -> Any:
        """Direct (cost-free) access to a node object, for tests/oracles."""
        return self._nodes[node_id]

    # -- cost-model introspection (read-only) ---------------------------
    #
    # Exposed so offline replays (the Chord lockstep lookup engine) can
    # decide whether simulating calls off-transport is charge-identical
    # to issuing them, and charge the exact per-call amounts if so.

    @property
    def latency_model(self) -> LatencyModel:
        return self._latency

    @property
    def loss_rate(self) -> float:
        return self._loss_rate

    @property
    def timeout(self) -> float:
        return self._timeout

    @property
    def node_ids(self) -> list[int]:
        return list(self._nodes)

    # -- the RPC fabric ---------------------------------------------------

    def rpc(self, target_id: int, method: str, *args: Any, **kwargs: Any) -> Any:
        """Call ``method`` on the target node, charging messages and latency."""
        self.metrics.counter("rpc.calls").increment()
        target = self._nodes.get(target_id)
        dropped = self._loss_rate > 0.0 and self._rng.random() < self._loss_rate
        if target is None or dropped:
            self.metrics.counter("rpc.timeouts").increment()
            self.metrics.counter("messages").increment()  # the lost request
            self.elapsed += self._timeout
            reason = "lost" if dropped and target is not None else "dead or unknown"
            raise RpcTimeout(f"rpc {method} to node {target_id}: target {reason}")
        self.metrics.counter("messages").increment(2)  # request + reply
        self.elapsed += self._latency.sample(self._rng) + self._latency.sample(self._rng)
        return getattr(target, method)(*args, **kwargs)

    def oneway(self, target_id: int, method: str, *args: Any, **kwargs: Any) -> Any:
        """Forward a message without a reply leg (recursive routing).

        Charges one message and a single one-way latency sample.  The
        handler runs synchronously and its return value propagates up the
        Python call chain, modelling the final direct reply being sent
        once at the end of a forwarding chain (the caller charges that
        reply separately).  Lost/dead targets cost the timeout, like
        :meth:`rpc`.
        """
        self.metrics.counter("rpc.calls").increment()
        target = self._nodes.get(target_id)
        dropped = self._loss_rate > 0.0 and self._rng.random() < self._loss_rate
        if target is None or dropped:
            self.metrics.counter("rpc.timeouts").increment()
            self.metrics.counter("messages").increment()
            self.elapsed += self._timeout
            reason = "lost" if dropped and target is not None else "dead or unknown"
            raise RpcTimeout(f"oneway {method} to node {target_id}: target {reason}")
        self.metrics.counter("messages").increment(1)
        self.elapsed += self._latency.sample(self._rng)
        return getattr(target, method)(*args, **kwargs)

    @property
    def messages_sent(self) -> int:
        return self.metrics.counter("messages").value
