"""Simulated RPC transport with latency models and failure injection.

Protocol code issues synchronous RPCs through :class:`RpcTransport`; the
transport charges each call's messages and sampled round-trip latency to
its metrics, and raises :class:`RpcTimeout` for dead or missing targets
(after charging the timeout cost, as a real caller would pay it).

The transport deliberately executes calls synchronously while the
discrete-event :class:`~repro.sim.kernel.Simulator` drives *when*
protocol actions happen (stabilization ticks, churn, workload arrivals).
This sequential-RPC simplification keeps protocol code linear and
testable while preserving exactly the quantities the paper's Theorem 7
accounts for: message counts and additive per-operation latency.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Any, Protocol

from .metrics import MetricsRegistry
from .rng import derive_seed

__all__ = [
    "LatencyModel",
    "ConstantLatency",
    "UniformLatency",
    "ExponentialLatency",
    "NullAdversary",
    "NullFaults",
    "NullTraceSink",
    "RpcError",
    "RpcTimeout",
    "RpcTransport",
    "TransportEndpoint",
]


class LatencyModel(Protocol):
    """Samples one-way network delays (abstract time units).

    Models may additionally declare a class attribute
    ``deterministic = True`` to promise that :meth:`sample` always
    returns the same value *and never consumes the RNG*.  Offline cost
    replays (the Chord lockstep lookup engine) are only charge-identical
    to live execution under a deterministic model, so they check this
    flag before engaging.
    """

    def sample(self, rng: random.Random) -> float:
        ...


@dataclass(frozen=True)
class ConstantLatency:
    """Every hop takes exactly ``delay`` units (the default: 1)."""

    #: ``sample`` is a constant and ignores the RNG (see LatencyModel).
    deterministic = True

    delay: float = 1.0

    def sample(self, rng: random.Random) -> float:
        return self.delay


@dataclass(frozen=True)
class UniformLatency:
    """One-way delay uniform on ``[low, high]``."""

    #: ``sample`` consumes the RNG: offline replay cannot be
    #: charge-identical, so lockstep engines must refuse this model.
    deterministic = False

    low: float
    high: float

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)


@dataclass(frozen=True)
class ExponentialLatency:
    """One-way delay exponential with the given mean (heavy-ish tail)."""

    #: ``sample`` consumes the RNG (see UniformLatency.deterministic).
    deterministic = False

    mean: float = 1.0

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)


class RpcError(Exception):
    """Base class for transport-level failures."""


class RpcTimeout(RpcError):
    """The target did not answer (dead, departed, or dropped packet)."""


class NullFaults:
    """The default fault surface: no structured misbehaviour.

    The transport consults its :attr:`RpcTransport.faults` object on
    every delivery; this null object answers "nothing is wrong" with no
    per-call overhead beyond the attribute reads.  The real implementor
    of the protocol -- partitions, grey failures, loss bursts -- is
    :class:`repro.faults.state.FaultState`, installed via
    :meth:`RpcTransport.install_faults`.  (The sim layer deliberately
    does not import :mod:`repro.faults`: the dependency points the
    other way.)
    """

    active = False

    def blocked(self, source: int | None, target: int | None) -> bool:
        return False

    def extra_drop(self, source: int | None, target: int | None) -> float:
        return 0.0

    def latency_factor(self, source: int | None, target: int | None) -> float:
        return 1.0


class NullAdversary:
    """The default Byzantine surface: every peer answers honestly.

    The transport consults :attr:`RpcTransport.adversary` after each
    handler runs; this null object answers "no one lies" at the cost of
    one attribute read per delivery.  The real implementor -- colluding
    deflection, census misreport, eclipse poisoning -- is
    :class:`repro.adversary.state.AdversaryState`, installed via
    :meth:`RpcTransport.install_adversary`.  Same inversion as
    :class:`NullFaults` and :class:`NullTraceSink`, for the same
    reason: the sim layer does not import the layers above it.
    """

    active = False

    def rewrite(self, responder_id: int, method: str, args: tuple, result):
        return result


class NullTraceSink:
    """The default trace sink: nothing listens, nothing is recorded.

    The transport reports each delivery to its :attr:`RpcTransport.tracer`
    only when the sink says it is ``active``; this null object keeps the
    disabled cost to one attribute read per delivery.  The real sink is
    :class:`repro.obs.tracer.Tracer`, installed via
    :meth:`RpcTransport.install_tracer` -- the same inversion as
    :class:`NullFaults`/:meth:`RpcTransport.install_faults`, and for the
    same reason: the sim layer does not import the layers above it.
    """

    active = False

    def on_rpc(self, source, target, method, kind, start, end, outcome) -> None:
        return None

    def on_lookup(self, backend, hops, messages, latency, ok) -> None:
        return None


class TransportEndpoint:
    """A node-bound view of the transport: calls carry the node as source.

    Overlay nodes hold one of these instead of the raw transport so
    partitions and grey failures can attribute every delivery's
    *source*.  The transport's own ``rpc``/``oneway`` stay source-less
    -- they model an external client outside the overlay, which no
    partition group contains.  The endpoint mirrors exactly the
    transport surface node code uses (``rpc``, ``oneway``, ``metrics``,
    ``is_registered``, ``timeout``, ``charge_delay``).
    """

    __slots__ = ("_transport", "node_id")

    def __init__(self, transport: "RpcTransport", node_id: int):
        self._transport = transport
        self.node_id = node_id

    def rpc(self, target_id: int, method: str, *args: Any, **kwargs: Any) -> Any:
        return self._transport.rpc_from(
            self.node_id, target_id, method, *args, **kwargs
        )

    def oneway(self, target_id: int, method: str, *args: Any, **kwargs: Any) -> Any:
        return self._transport.oneway_from(
            self.node_id, target_id, method, *args, **kwargs
        )

    def is_registered(self, node_id: int) -> bool:
        return self._transport.is_registered(node_id)

    def charge_delay(self, delay: float) -> None:
        self._transport.charge_delay(delay)

    @property
    def metrics(self) -> MetricsRegistry:
        return self._transport.metrics

    @property
    def timeout(self) -> float:
        return self._transport.timeout


class RpcTransport:
    """Synchronous simulated RPC fabric between registered nodes.

    ``rpc(target_id, method, *args)`` invokes ``method`` on the node
    object registered under ``target_id``, charging two messages
    (request + reply) and a sampled round trip to the metrics.  Dead
    targets cost ``timeout`` latency and raise :class:`RpcTimeout`.
    ``loss_rate`` drops individual calls at random with the same timeout
    cost, modelling an unreliable network.

    Drop decisions draw from a **dedicated** loss stream (``loss_rng``),
    never from the latency/workload ``rng``: enabling loss must not
    shift any other component's draws, so seeded runs stay comparable
    across fault configurations.  The default loss stream is fixed-seed
    (reproducible run-to-run, like metric reservoirs); pass ``loss_rng``
    to tie it to an experiment's seed registry.

    Structured misbehaviour -- partitions, grey failures, loss bursts --
    is consulted per delivery through :attr:`faults`
    (:class:`NullFaults` until :meth:`install_faults` installs a real
    :class:`repro.faults.state.FaultState`).  Asymmetric partitions need
    a *source* for each delivery, which node-bound
    :class:`TransportEndpoint` views supply; the bare ``rpc``/``oneway``
    methods carry no source and model an external client.
    """

    #: Whether calls are event-scheduled rather than instantaneous.
    #: The Chord lockstep engine (and anything else replaying charges
    #: off-transport) checks this and refuses asynchronous transports,
    #: the same way it refuses active faults: replay could never be
    #: charge-identical to message-level delivery.
    asynchronous = False

    def __init__(
        self,
        latency: LatencyModel | None = None,
        rng: random.Random | None = None,
        timeout: float = 8.0,
        loss_rate: float = 0.0,
        metrics: MetricsRegistry | None = None,
        loss_rng: random.Random | None = None,
        faults: Any | None = None,
    ):
        if not 0.0 <= loss_rate < 1.0:
            raise ValueError("loss_rate must be in [0, 1)")
        self._latency = latency if latency is not None else ConstantLatency()
        self._rng = rng if rng is not None else random.Random()
        self._timeout = timeout
        self._loss_rate = loss_rate
        self._loss_rng = (
            loss_rng
            if loss_rng is not None
            else random.Random(derive_seed(0, "transport.loss"))
        )
        #: The structured-fault surface consulted on every delivery.
        self.faults = faults if faults is not None else NullFaults()
        #: The trace sink notified of deliveries while it is active
        #: (:class:`NullTraceSink` until :meth:`install_tracer`).
        self.tracer = NullTraceSink()
        #: The Byzantine surface asked to rewrite each reply while it is
        #: active (:class:`NullAdversary` until :meth:`install_adversary`).
        self.adversary = NullAdversary()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        #: Bound ``Counter.increment`` handles for the per-delivery
        #: counters.  Caching them skips two registry lookups and an
        #: attribute chain per call -- which more than pays for the
        #: per-method split and the tracer guard below, so the
        #: instrumented hot path runs *faster* than its
        #: pre-instrumentation twin (benchmarks/bench_obs.py measures
        #: the ratio).  ``counter()`` is get-or-create, so external
        #: readers and writers still see the same Counter objects.
        self._count_call = self.metrics.counter("rpc.calls").increment
        self._count_msgs = self.metrics.counter("messages").increment
        self._count_timeout = self.metrics.counter("rpc.timeouts").increment
        #: Per-method message counts (the ``messages`` counter, split by
        #: RPC method).  Deliberately an *exact* dict updated with a
        #: try/except-KeyError subscript: CPython's adaptive interpreter
        #: specializes subscripts only for exact dicts (a Counter
        #: subclass deoptimizes every hit), and the except arm runs once
        #: per method name.  Surfaced as ``messages.<method>`` counters
        #: by :meth:`method_message_counters`.
        self._method_messages: dict[str, int] = {}
        self._nodes: dict[int, Any] = {}
        #: Total simulated latency accrued by RPCs (additive, per Theorem 7).
        self.elapsed: float = 0.0

    def install_faults(self, faults: Any) -> Any:
        """Install (and return) a fault surface, replacing the current one."""
        self.faults = faults
        return faults

    def install_tracer(self, tracer: Any) -> Any:
        """Install (and return) a trace sink, replacing the current one.

        The sink is consulted per delivery only while its ``active``
        attribute is true (:class:`repro.obs.tracer.Tracer` raises it
        exactly while a sampled batch is dispatching), so an installed
        but idle tracer costs the same one attribute read as the null
        sink.
        """
        self.tracer = tracer
        return tracer

    def install_adversary(self, adversary: Any) -> Any:
        """Install (and return) a Byzantine surface, replacing the current one.

        While ``adversary.active`` is true, every delivered reply passes
        through ``adversary.rewrite(responder_id, method, args, result)``
        *after* the handler has run and the delivery has been charged:
        Byzantine peers participate at full protocol cost, they just
        answer falsely.  The rewrite sits on the reply leg only -- a lie
        never saves a message, and a dead liar still times out.
        """
        self.adversary = adversary
        return adversary

    def endpoint(self, node_id: int) -> TransportEndpoint:
        """A node-bound view whose calls carry ``node_id`` as the source."""
        return TransportEndpoint(self, node_id)

    def charge_delay(self, delay: float) -> None:
        """Charge waiting time (retry backoff) into the latency account."""
        if delay < 0:
            raise ValueError("cannot charge negative delay")
        self.elapsed += delay

    # -- membership -----------------------------------------------------

    def register(self, node_id: int, node: Any) -> None:
        if node_id in self._nodes:
            raise ValueError(f"node id {node_id} already registered")
        self._nodes[node_id] = node

    def deregister(self, node_id: int) -> None:
        self._nodes.pop(node_id, None)

    def is_registered(self, node_id: int) -> bool:
        return node_id in self._nodes

    def node(self, node_id: int) -> Any:
        """Direct (cost-free) access to a node object, for tests/oracles."""
        return self._nodes[node_id]

    # -- cost-model introspection (read-only) ---------------------------
    #
    # Exposed so offline replays (the Chord lockstep lookup engine) can
    # decide whether simulating calls off-transport is charge-identical
    # to issuing them, and charge the exact per-call amounts if so.

    @property
    def latency_model(self) -> LatencyModel:
        return self._latency

    @property
    def loss_rate(self) -> float:
        return self._loss_rate

    @property
    def timeout(self) -> float:
        return self._timeout

    @property
    def node_ids(self) -> list[int]:
        return list(self._nodes)

    # -- the RPC fabric ---------------------------------------------------

    def _admit(
        self, source_id: int | None, target_id: int, method: str, kind: str
    ) -> tuple[Any, float]:
        """The shared dead/partition/loss gate for one delivery.

        Returns ``(target, latency_factor)`` when the request leg
        delivers; otherwise charges the failure (one lost-request
        message, the timeout latency, a timeout tick) and raises
        :class:`RpcTimeout`.  The drop die is rolled on the dedicated
        loss stream, and only when some loss source is actually in play.
        """
        target = self._nodes.get(target_id)
        faults = self.faults
        if target is not None and not faults.blocked(source_id, target_id):
            p = self._loss_rate
            if faults.active:
                extra = faults.extra_drop(source_id, target_id)
                if extra > 0.0:
                    p = 1.0 - (1.0 - p) * (1.0 - extra)
            if not (p > 0.0 and self._loss_rng.random() < p):
                factor = (
                    faults.latency_factor(source_id, target_id)
                    if faults.active
                    else 1.0
                )
                return target, factor
            reason = "lost"
        elif target is None:
            reason = "dead or unknown"
        else:
            reason = "partitioned"
        self._count_timeout()
        self._count_msgs()  # the lost request
        mm = self._method_messages
        try:
            mm[method] += 1
        except KeyError:
            mm[method] = 1
        tracer = self.tracer
        if tracer.active:
            start = self.elapsed
            self.elapsed = start + self._timeout
            tracer.on_rpc(
                source_id, target_id, method, kind, start, self.elapsed, reason
            )
        else:
            self.elapsed += self._timeout
        raise RpcTimeout(f"{kind} {method} to node {target_id}: target {reason}")

    def rpc(self, target_id: int, method: str, *args: Any, **kwargs: Any) -> Any:
        """Call ``method`` on the target node, charging messages and latency.

        Source-less: the caller is an external client outside the
        overlay (partitions never apply).  Overlay nodes call through
        their :class:`TransportEndpoint` (:meth:`rpc_from`) instead.
        """
        return self.rpc_from(None, target_id, method, *args, **kwargs)

    def rpc_from(
        self,
        source_id: int | None,
        target_id: int,
        method: str,
        *args: Any,
        **kwargs: Any,
    ) -> Any:
        """One request/reply exchange attributed to ``source_id``."""
        self._count_call()
        target, factor = self._admit(source_id, target_id, method, "rpc")
        self._count_msgs(2)  # request + reply
        mm = self._method_messages
        try:
            mm[method] += 2
        except KeyError:
            mm[method] = 2
        delta = factor * (
            self._latency.sample(self._rng) + self._latency.sample(self._rng)
        )
        tracer = self.tracer
        if tracer.active:
            start = self.elapsed
            self.elapsed = start + delta
            tracer.on_rpc(
                source_id, target_id, method, "rpc", start, self.elapsed, "ok"
            )
        else:
            self.elapsed += delta
        result = getattr(target, method)(*args, **kwargs)
        adversary = self.adversary
        if adversary.active:
            # Byzantine responder: the handler ran and the exchange was
            # charged in full, but the reply on the wire may be a lie.
            result = adversary.rewrite(target_id, method, args, result)
        if self.faults.blocked(target_id, source_id):
            # One-way partition, reply leg severed: the request crossed
            # and the handler ran (side effects stand), but the answer
            # never returns -- the caller eats a timeout.  This is the
            # asymmetry that distinguishes a partial partition from a
            # crash, and exactly why one-way cuts are nasty.
            self._count_timeout()
            tracer = self.tracer
            if tracer.active:
                start = self.elapsed
                self.elapsed = start + self._timeout
                tracer.on_rpc(
                    source_id, target_id, method, "rpc",
                    start, self.elapsed, "reply-partitioned",
                )
            else:
                self.elapsed += self._timeout
            raise RpcTimeout(
                f"rpc {method} to node {target_id}: reply partitioned"
            )
        return result

    def oneway(self, target_id: int, method: str, *args: Any, **kwargs: Any) -> Any:
        """Forward a message without a reply leg (recursive routing).

        Charges one message and a single one-way latency sample.  The
        handler runs synchronously and its return value propagates up the
        Python call chain, modelling the final direct reply being sent
        once at the end of a forwarding chain (the caller charges that
        reply separately).  Lost/dead targets cost the timeout, like
        :meth:`rpc`.  Source-less, like :meth:`rpc`; overlay nodes use
        :meth:`oneway_from` via their endpoint.
        """
        return self.oneway_from(None, target_id, method, *args, **kwargs)

    def oneway_from(
        self,
        source_id: int | None,
        target_id: int,
        method: str,
        *args: Any,
        **kwargs: Any,
    ) -> Any:
        """One fire-and-forget message attributed to ``source_id``."""
        self._count_call()
        target, factor = self._admit(source_id, target_id, method, "oneway")
        self._count_msgs(1)
        mm = self._method_messages
        try:
            mm[method] += 1
        except KeyError:
            mm[method] = 1
        delta = factor * self._latency.sample(self._rng)
        tracer = self.tracer
        if tracer.active:
            start = self.elapsed
            self.elapsed = start + delta
            tracer.on_rpc(
                source_id, target_id, method, "oneway", start, self.elapsed, "ok"
            )
        else:
            self.elapsed += delta
        result = getattr(target, method)(*args, **kwargs)
        adversary = self.adversary
        if adversary.active:
            result = adversary.rewrite(target_id, method, args, result)
        return result

    # -- per-method message accounting ----------------------------------

    def count_method_messages(self, method: str, count: int) -> None:
        """Bulk-attribute messages to a method (offline lockstep commits).

        The Chord lockstep engine charges the aggregate ``messages``
        counter directly (it never issues transport calls); this keeps
        the per-method split consistent with the aggregate so hop-level
        traces and counters cross-check under any execution path.
        """
        mm = self._method_messages
        mm[method] = mm.get(method, 0) + count

    def messages_by_method(self) -> dict[str, int]:
        """Message counts split by RPC method (sums to ``messages_sent``)."""
        return dict(self._method_messages)

    def method_message_counters(self) -> MetricsRegistry:
        """Materialize the per-method split as ``messages.<method>``
        counters in :attr:`metrics` (for exposition/scrapes), returning
        the registry.  The hot path deliberately updates a bare dict;
        this sync-on-read keeps per-delivery overhead at one dict update.
        """
        for method, count in self._method_messages.items():
            self.metrics.counter(f"messages.{method}").value = count
        return self.metrics

    @property
    def messages_sent(self) -> int:
        return self.metrics.counter("messages").value
