"""Discrete-event simulation substrate: kernel, transport, churn, metrics."""

from .churn import ChurnEvent, ChurnProcess
from .events import Event, EventQueue
from .kernel import PeriodicTask, Simulator
from .metrics import Counter, Histogram, MetricsRegistry
from .network import (
    ConstantLatency,
    ExponentialLatency,
    RpcError,
    RpcTimeout,
    RpcTransport,
    UniformLatency,
)
from .rng import RngRegistry, derive_seed

__all__ = [
    "ChurnEvent",
    "ChurnProcess",
    "Event",
    "EventQueue",
    "PeriodicTask",
    "Simulator",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "ConstantLatency",
    "ExponentialLatency",
    "RpcError",
    "RpcTimeout",
    "RpcTransport",
    "UniformLatency",
    "RngRegistry",
    "derive_seed",
]
