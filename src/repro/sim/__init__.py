"""Discrete-event simulation substrate: kernel, transport, churn, metrics."""

from .async_net import AsyncRpcTransport, Call, Future, drive
from .churn import ChurnEvent, ChurnProcess
from .events import Event, EventQueue
from .kernel import PeriodicTask, Simulator
from .metrics import Counter, Histogram, MetricsRegistry
from .network import (
    ConstantLatency,
    ExponentialLatency,
    RpcError,
    RpcTimeout,
    RpcTransport,
    UniformLatency,
)
from .rng import RngRegistry, derive_seed

__all__ = [
    "AsyncRpcTransport",
    "Call",
    "Future",
    "drive",
    "ChurnEvent",
    "ChurnProcess",
    "Event",
    "EventQueue",
    "PeriodicTask",
    "Simulator",
    "Counter",
    "Histogram",
    "MetricsRegistry",
    "ConstantLatency",
    "ExponentialLatency",
    "RpcError",
    "RpcTimeout",
    "RpcTransport",
    "UniformLatency",
    "RngRegistry",
    "derive_seed",
]
