"""Event queue primitives for the discrete-event simulation kernel."""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled action.  Ordered by ``(time, seq)`` for determinism.

    Events are compared only on their schedule key, never on the action,
    so two events at the same instant fire in scheduling order.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    #: Back-reference to the queue while the event sits in its heap, so
    #: :meth:`cancel` can report the tombstone for lazy compaction.
    #: Cleared when the event is popped (a post-pop cancel is a no-op
    #: for queue accounting).
    _queue: "EventQueue | None" = field(default=None, compare=False, repr=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it; cancelling is O(1)."""
        if self.cancelled:
            return
        self.cancelled = True
        queue = self._queue
        if queue is not None:
            queue._note_cancel()


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects.

    Cancelled events stay in the heap as O(1) tombstones, normally
    discarded when they surface at the top.  A workload that cancels
    far-future events faster than it drains them (every async RPC whose
    reply lands before its timeout leaves one) would otherwise grow the
    heap without bound, so the queue counts its tombstones and lazily
    compacts -- filter plus re-heapify, O(heap) amortized against the
    cancellations that earned it -- whenever they outnumber the live
    events ``compact_factor`` to one.  The live count makes ``__len__``
    O(1) as a bonus.

    ``compact_factor`` (default 1.0) bounds the heap at roughly
    ``(1 + compact_factor) * len(self)`` entries: compaction fires once
    tombstones exceed ``compact_factor`` times the live count.  Raising
    it trades memory for fewer re-heapify passes under cancel-heavy
    load; it must be positive or tombstones would never be allowed to
    accumulate at all.
    """

    def __init__(self, compact_factor: float = 1.0) -> None:
        if compact_factor <= 0:
            raise ValueError("compact_factor must be positive")
        self._heap: list[Event] = []
        self._seq = itertools.count()
        #: Cancelled events still sitting in the heap.
        self._tombstones = 0
        self.compact_factor = compact_factor

    def push(self, time: float, action: Callable[[], None]) -> Event:
        event = Event(time=time, seq=next(self._seq), action=action, _queue=self)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Next non-cancelled event, or None when the queue is drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            event._queue = None
            if not event.cancelled:
                return event
            self._tombstones -= 1
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)._queue = None
            self._tombstones -= 1
        return self._heap[0].time if self._heap else None

    def _note_cancel(self) -> None:
        """Account one new tombstone, compacting when they dominate.

        The trigger compares tombstones against ``compact_factor`` times
        the live count (``len(self._heap) - self._tombstones``); at the
        default factor of 1.0 this is the classic ``tombstones > live``
        rule, i.e. ``raw_size`` at most ``2 * len(self)`` plus the one
        cancel that fires compaction.
        """
        self._tombstones += 1
        if self._tombstones > self.compact_factor * (
            len(self._heap) - self._tombstones
        ):
            self._compact()

    def _compact(self) -> None:
        """Drop every tombstone and restore the heap invariant."""
        live = [e for e in self._heap if not e.cancelled]
        for event in self._heap:
            if event.cancelled:
                event._queue = None
        self._heap = live
        heapq.heapify(self._heap)
        self._tombstones = 0

    @property
    def raw_size(self) -> int:
        """Heap entries including tombstones (bounded-growth invariant:
        at most ``compact_factor`` tombstones per live event, so
        ``raw_size`` never exceeds ``(1 + compact_factor) * len(self)``
        plus the one cancel that triggers compaction)."""
        return len(self._heap)

    def __len__(self) -> int:
        """Exact number of live (non-cancelled) events; O(1)."""
        return len(self._heap) - self._tombstones

    def __bool__(self) -> bool:
        return self.peek_time() is not None
