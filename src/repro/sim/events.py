"""Event queue primitives for the discrete-event simulation kernel."""

from __future__ import annotations

import heapq
import itertools
from collections.abc import Callable
from dataclasses import dataclass, field

__all__ = ["Event", "EventQueue"]


@dataclass(order=True)
class Event:
    """A scheduled action.  Ordered by ``(time, seq)`` for determinism.

    Events are compared only on their schedule key, never on the action,
    so two events at the same instant fire in scheduling order.
    """

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the kernel skips it; cancelling is O(1)."""
        self.cancelled = True


class EventQueue:
    """A deterministic min-heap of :class:`Event` objects."""

    def __init__(self) -> None:
        self._heap: list[Event] = []
        self._seq = itertools.count()

    def push(self, time: float, action: Callable[[], None]) -> Event:
        event = Event(time=time, seq=next(self._seq), action=action)
        heapq.heappush(self._heap, event)
        return event

    def pop(self) -> Event | None:
        """Next non-cancelled event, or None when the queue is drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        """Timestamp of the next live event without removing it."""
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        """Exact number of live (non-cancelled) events; O(n)."""
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
