"""Seeded random-number streams for reproducible experiments.

Every stochastic component (peer-point hashing, trial randomness, churn
interarrivals, network latency) draws from its own named substream, so
changing how much randomness one component consumes never perturbs the
others.  Substreams are derived from a root seed by hashing the stream
name, which makes whole experiments reproducible from a single integer.
"""

from __future__ import annotations

import hashlib
import random

__all__ = ["RngRegistry", "derive_seed"]


def derive_seed(root_seed: int, name: str) -> int:
    """A stable 64-bit seed for substream ``name`` under ``root_seed``."""
    digest = hashlib.sha256(f"{root_seed}:{name}".encode()).digest()
    return int.from_bytes(digest[:8], "big")


class RngRegistry:
    """A factory of named, independent ``random.Random`` substreams."""

    def __init__(self, root_seed: int = 0):
        self.root_seed = root_seed
        self._streams: dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The substream for ``name`` (created on first use, then cached)."""
        if name not in self._streams:
            self._streams[name] = random.Random(derive_seed(self.root_seed, name))
        return self._streams[name]

    def fresh(self, name: str) -> random.Random:
        """A brand-new, uncached substream (for short-lived consumers)."""
        return random.Random(derive_seed(self.root_seed, name))

    def __contains__(self, name: str) -> bool:
        return name in self._streams
