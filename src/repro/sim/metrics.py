"""Lightweight metric primitives for simulation components."""

from __future__ import annotations

import math
import random
from dataclasses import dataclass

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("counters only go up")
        self.value += by


class Histogram:
    """Streaming summary of observed values (mean, extremes, percentiles).

    By default every observation is stored, which is exact and fine for
    the per-run scales used here (thousands to low millions of points).
    Long-lived consumers -- the sampling service observes one latency per
    request, indefinitely -- pass ``reservoir_size`` to bound memory:
    count, mean, min and max stay exact (tracked as running aggregates)
    while percentiles come from a uniform reservoir sample of that size
    (Vitter's Algorithm R).  Reservoir replacement randomness defaults to
    a fixed-seed stream so metric summaries are reproducible run-to-run;
    pass ``rng`` to tie it to an experiment's seed registry instead.
    """

    def __init__(
        self,
        reservoir_size: int | None = None,
        rng: random.Random | None = None,
    ) -> None:
        if reservoir_size is not None and reservoir_size < 1:
            raise ValueError("reservoir_size must be positive")
        self._reservoir_size = reservoir_size
        self._rng = rng if rng is not None else random.Random(0)
        self._values: list[float] = []
        self._count = 0
        self._sum = 0.0
        self._min = math.inf
        self._max = -math.inf

    def observe(self, value: float) -> None:
        self._count += 1
        self._sum += value
        if value < self._min:
            self._min = value
        if value > self._max:
            self._max = value
        if self._reservoir_size is None or len(self._values) < self._reservoir_size:
            self._values.append(value)
        else:
            # Algorithm R: keep each of the first i observations with
            # probability reservoir_size / i.
            j = self._rng.randrange(self._count)
            if j < self._reservoir_size:
                self._values[j] = value

    @property
    def count(self) -> int:
        return self._count

    @property
    def mean(self) -> float:
        return self._sum / self._count if self._count else 0.0

    @property
    def minimum(self) -> float:
        return self._min if self._count else 0.0

    @property
    def maximum(self) -> float:
        return self._max if self._count else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 <= q <= 100), nearest-rank method.

        Exact in the default store-everything mode; estimated from the
        reservoir sample when ``reservoir_size`` bounds storage.
        """
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        return self._nearest_rank(sorted(self._values), q)

    def quantile(self, q: float) -> float:
        """The ``q``-quantile (0 <= q <= 1) -- ``quantile(0.999)`` is p999.

        The general accessor SLO checks want (any tail, not just the
        fixed p50/p95/p99 of :meth:`summary`); same nearest-rank method
        and reservoir caveats as :meth:`percentile`.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError("quantile must be within [0, 1]")
        return self._nearest_rank(sorted(self._values), q * 100.0)

    @staticmethod
    def _nearest_rank(ordered: list[float], q: float) -> float:
        if not ordered:
            return 0.0
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    def summary(self) -> dict:
        """Count/mean/min/max plus the p50/p95/p99/p999 tail, as one dict.

        Sorts the stored values once and indexes all four percentiles
        from that one ordering.
        """
        ordered = sorted(self._values)
        return {
            "count": self.count,
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "p50": self._nearest_rank(ordered, 50.0),
            "p95": self._nearest_rank(ordered, 95.0),
            "p99": self._nearest_rank(ordered, 99.0),
            "p999": self._nearest_rank(ordered, 99.9),
        }

    @property
    def values(self) -> list[float]:
        """The stored observations (the reservoir sample when bounded)."""
        return list(self._values)


class MetricsRegistry:
    """Named counters and histograms shared across simulation components."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def histogram(
        self,
        name: str,
        reservoir_size: int | None = None,
        rng: random.Random | None = None,
    ) -> Histogram:
        """The named histogram, created on first use.

        ``reservoir_size``/``rng`` configure the histogram only at
        creation; later lookups return the existing instance unchanged.
        """
        if name not in self._histograms:
            self._histograms[name] = Histogram(reservoir_size=reservoir_size, rng=rng)
        return self._histograms[name]

    def counters(self) -> dict[str, int]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in self._counters.items()}

    def histograms(self) -> dict[str, Histogram]:
        """All histograms by name (live references, not copies)."""
        return dict(self._histograms)
