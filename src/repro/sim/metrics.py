"""Lightweight metric primitives for simulation components."""

from __future__ import annotations

import math
from dataclasses import dataclass

__all__ = ["Counter", "Histogram", "MetricsRegistry"]


@dataclass
class Counter:
    """A monotonically increasing count."""

    value: int = 0

    def increment(self, by: int = 1) -> None:
        if by < 0:
            raise ValueError("counters only go up")
        self.value += by


class Histogram:
    """Streaming summary of observed values (mean, extremes, percentiles).

    Stores observations; suitable for the per-run scales used here
    (thousands to low millions of points).
    """

    def __init__(self) -> None:
        self._values: list[float] = []

    def observe(self, value: float) -> None:
        self._values.append(value)

    @property
    def count(self) -> int:
        return len(self._values)

    @property
    def mean(self) -> float:
        return math.fsum(self._values) / len(self._values) if self._values else 0.0

    @property
    def minimum(self) -> float:
        return min(self._values) if self._values else 0.0

    @property
    def maximum(self) -> float:
        return max(self._values) if self._values else 0.0

    def percentile(self, q: float) -> float:
        """The ``q``-th percentile (0 <= q <= 100), nearest-rank method."""
        if not 0.0 <= q <= 100.0:
            raise ValueError("percentile must be within [0, 100]")
        if not self._values:
            return 0.0
        ordered = sorted(self._values)
        rank = max(1, math.ceil(q / 100.0 * len(ordered)))
        return ordered[rank - 1]

    @property
    def values(self) -> list[float]:
        return list(self._values)


class MetricsRegistry:
    """Named counters and histograms shared across simulation components."""

    def __init__(self) -> None:
        self._counters: dict[str, Counter] = {}
        self._histograms: dict[str, Histogram] = {}

    def counter(self, name: str) -> Counter:
        return self._counters.setdefault(name, Counter())

    def histogram(self, name: str) -> Histogram:
        return self._histograms.setdefault(name, Histogram())

    def counters(self) -> dict[str, int]:
        """Snapshot of all counter values."""
        return {name: c.value for name, c in self._counters.items()}
