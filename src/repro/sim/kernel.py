"""The discrete-event simulation kernel.

A :class:`Simulator` owns a virtual clock and an event queue.  Protocol
layers (Chord stabilization, churn processes, workload drivers) schedule
callbacks; ``run``/``run_for`` advance the clock to each event in
timestamp order.  The kernel is single-threaded and deterministic given
deterministic callbacks and RNG streams (see :mod:`repro.sim.rng`).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass

from .events import Event, EventQueue

__all__ = ["Simulator", "PeriodicTask"]


@dataclass
class PeriodicTask:
    """Handle for a recurring action; ``cancel()`` stops future firings."""

    interval: float
    action: Callable[[], None]
    _sim: "Simulator"
    _event: Event | None = None
    _stopped: bool = False

    def cancel(self) -> None:
        self._stopped = True
        if self._event is not None:
            self._event.cancel()

    def _fire(self) -> None:
        if self._stopped:
            return
        self.action()
        if not self._stopped:
            self._event = self._sim.schedule(self.interval, self._fire)


class Simulator:
    """Deterministic single-threaded discrete-event simulator."""

    def __init__(self) -> None:
        self._queue = EventQueue()
        self.now: float = 0.0
        self.events_executed: int = 0

    def schedule(self, delay: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` to run ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule into the past (delay={delay!r})")
        return self._queue.push(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> Event:
        """Schedule ``action`` at an absolute timestamp."""
        if time < self.now:
            raise ValueError(f"cannot schedule into the past (time={time!r}, now={self.now!r})")
        return self._queue.push(time, action)

    def every(
        self, interval: float, action: Callable[[], None], first_delay: float | None = None
    ) -> PeriodicTask:
        """Run ``action`` every ``interval`` units until the task is cancelled."""
        if interval <= 0:
            raise ValueError("interval must be positive")
        task = PeriodicTask(interval=interval, action=action, _sim=self)
        task._event = self.schedule(
            interval if first_delay is None else first_delay, task._fire
        )
        return task

    def step(self) -> bool:
        """Execute the next event; returns False when the queue is empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self.now = event.time
        self.events_executed += 1
        event.action()
        return True

    def run(self, until: float | None = None, max_events: int | None = None) -> None:
        """Drain the queue, optionally stopping at time ``until`` (inclusive)
        or after ``max_events`` events."""
        executed = 0
        while True:
            if max_events is not None and executed >= max_events:
                return
            next_time = self._queue.peek_time()
            if next_time is None:
                if until is not None:
                    self.now = max(self.now, until)
                return
            if until is not None and next_time > until:
                self.now = until
                return
            self.step()
            executed += 1

    def run_for(self, duration: float) -> None:
        """Advance the clock by ``duration`` units, executing due events."""
        if duration < 0:
            raise ValueError("duration must be non-negative")
        self.run(until=self.now + duration)

    @property
    def pending(self) -> int:
        """Number of live events still queued (O(queue))."""
        return len(self._queue)
