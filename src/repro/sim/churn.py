"""Churn processes: Poisson joins and departures driven by the simulator.

A :class:`ChurnProcess` schedules node arrivals and departures with
exponential interarrival times on any overlay exposing the membership
vocabulary (``join_node``/``crash_node``/``leave_node``/``nodes``/
``__len__`` -- the Chord and Kademlia networks both do), keeping the
population near a target size.  Departures are crashes with probability
``crash_fraction`` and graceful leaves otherwise (Kademlia treats the
two identically: it has no splice-out protocol).

Randomness follows the sim layer's seeding contract: pass an
:class:`~repro.sim.rng.RngRegistry` (the process draws from its own
named substream, ``"churn"`` by default) so membership timing never
perturbs -- and is never perturbed by -- any other component's draws.
A bare ``random.Random`` is still accepted for hand-rolled setups.
"""

from __future__ import annotations

import random
from collections import Counter
from dataclasses import dataclass

from .rng import RngRegistry

__all__ = ["ChurnEvent", "ChurnProcess"]


@dataclass(frozen=True, slots=True)
class ChurnEvent:
    """One membership change, for post-hoc analysis of a run."""

    time: float
    kind: str  # "join" | "leave" | "crash"
    node_id: int
    population: int


class ChurnProcess:
    """Poisson churn on a DHT overlay network.

    ``rate`` is the expected number of membership events per time unit.
    Each event is a join or a departure with equal probability, except
    that the population is nudged back toward ``target_size`` when it
    drifts beyond 25% (keeping long runs statistically stationary) and
    never drops below ``min_size``.

    ``rng`` may be an :class:`~repro.sim.rng.RngRegistry` (the process
    uses its ``stream`` substream, default ``"churn"``), a plain
    ``random.Random``, or ``None`` for fresh unseeded randomness.
    """

    def __init__(
        self,
        network,
        sim,
        rate: float,
        rng: random.Random | RngRegistry | None = None,
        target_size: int | None = None,
        min_size: int = 4,
        crash_fraction: float = 0.5,
        stream: str = "churn",
    ):
        if rate <= 0:
            raise ValueError("churn rate must be positive")
        if not 0.0 <= crash_fraction <= 1.0:
            raise ValueError("crash_fraction must be in [0, 1]")
        self._network = network
        self._sim = sim
        self._rate = rate
        if isinstance(rng, RngRegistry):
            self._rng = rng.stream(stream)
        elif rng is not None:
            self._rng = rng
        else:
            self._rng = random.Random()
        self._target = target_size if target_size is not None else len(network)
        self._min_size = min_size
        self._crash_fraction = crash_fraction
        self._events: list[ChurnEvent] = []
        self._running = False

    # -- the event log (deterministic given the RNG stream) ----------------

    @property
    def events(self) -> tuple[ChurnEvent, ...]:
        """The membership changes so far, in simulation-time order.

        An immutable snapshot: two runs from the same seed produce
        identical logs, so tests and scenario reports can assert on the
        exact sequence.
        """
        return tuple(self._events)

    def event_counts(self) -> dict[str, int]:
        """``{"join": j, "leave": l, "crash": c}`` totals so far."""
        counts = Counter(e.kind for e in self._events)
        return {kind: counts.get(kind, 0) for kind in ("join", "leave", "crash")}

    # -- run control --------------------------------------------------------

    def start(self) -> None:
        self._running = True
        self._schedule_next()

    def stop(self) -> None:
        self._running = False

    def _schedule_next(self) -> None:
        delay = self._rng.expovariate(self._rate)
        self._sim.schedule(delay, self._fire)

    def _fire(self) -> None:
        if not self._running:
            return
        n = len(self._network)
        join_bias = 0.5
        if n <= self._min_size:
            join_bias = 1.0  # the floor is a guarantee, not a tendency
        elif n < 0.75 * self._target:
            join_bias = 0.9
        elif n > 1.25 * self._target:
            join_bias = 0.1
        if self._rng.random() < join_bias:
            node = self._network.join_node()
            kind, node_id = "join", node.node_id
        else:
            node_id = self._rng.choice(list(self._network.nodes))
            if self._rng.random() < self._crash_fraction:
                self._network.crash_node(node_id)
                kind = "crash"
            else:
                self._network.leave_node(node_id)
                kind = "leave"
        self._events.append(
            ChurnEvent(
                time=self._sim.now, kind=kind, node_id=node_id,
                population=len(self._network),
            )
        )
        self._schedule_next()
