"""repro: a full reproduction of "Choosing a Random Peer" (King & Saia,
PODC 2004).

The package provides:

- :mod:`repro.core` -- the paper's algorithms (Estimate-n, Choose-Random-
  Peer) plus the exact uniformity analysis and property checkers;
- :mod:`repro.dht` -- substrates exposing the paper's ``h``/``next``
  interface: an analytic oracle and message-level Chord (ring) and
  Kademlia (XOR) simulators;
- :mod:`repro.sim` -- the discrete-event kernel, RPC transport, churn;
- :mod:`repro.service` -- sampling-as-a-service: micro-batching shard
  workers, health-aware routing, admission control, churn failover;
- :mod:`repro.scenarios` -- the dynamic-membership scenario lab:
  declarative churn regimes run against the serving stack;
- :mod:`repro.baselines` -- the biased naive heuristic, random-walk
  samplers, and virtual-node load balancing for comparison;
- :mod:`repro.analysis` -- statistics (TV distance, chi-square), arc
  analytics, and spectral tools;
- :mod:`repro.apps` -- the motivating applications: data collection,
  random-link overlays, load balancing, committee sampling.

Quickstart::

    import random
    from repro import IdealDHT, RandomPeerSampler

    rng = random.Random(7)
    dht = IdealDHT.random(10_000, rng)
    sampler = RandomPeerSampler(dht, rng=rng)   # Estimate-n runs once
    peer = sampler.sample()                     # uniform, O(log n) messages
"""

from .core import (
    GAMMA1,
    GAMMA2,
    LAMBDA_SLACK,
    AssignmentReport,
    BatchSampler,
    EstimateResult,
    EstimationError,
    Interval,
    RandomPeerSampler,
    ReproError,
    SamplerParams,
    SampleStats,
    SamplingError,
    SortedCircle,
    TrialOutcome,
    arc_extremes,
    check_lemma1,
    check_lemma2,
    check_lemma4,
    choose_random_peer,
    clockwise_distance,
    compute_assignment,
    estimate_n,
    estimate_n_median,
    normalize,
)
from .apps import RandomLinkMaintainer
from .core import AdaptiveSampler, BiasedPeerSampler, inverse_distance_weight
from .dht import BulkDHT, CostMeter, CostSnapshot, IdealDHT, LogCost, PeerRef
from .dht.chord import ChordDHT, ChordNetwork, VirtualChordNetwork
from .dht.kademlia import KademliaDHT, KademliaNetwork
from .sim import RngRegistry, Simulator

__version__ = "1.0.0"

__all__ = [
    "BatchSampler",
    "BulkDHT",
    "GAMMA1",
    "GAMMA2",
    "LAMBDA_SLACK",
    "AssignmentReport",
    "EstimateResult",
    "EstimationError",
    "Interval",
    "RandomPeerSampler",
    "ReproError",
    "SamplerParams",
    "SampleStats",
    "SamplingError",
    "SortedCircle",
    "TrialOutcome",
    "arc_extremes",
    "check_lemma1",
    "check_lemma2",
    "check_lemma4",
    "choose_random_peer",
    "clockwise_distance",
    "compute_assignment",
    "estimate_n",
    "estimate_n_median",
    "normalize",
    "CostMeter",
    "CostSnapshot",
    "IdealDHT",
    "LogCost",
    "PeerRef",
    "ChordDHT",
    "ChordNetwork",
    "KademliaDHT",
    "KademliaNetwork",
    "VirtualChordNetwork",
    "BiasedPeerSampler",
    "AdaptiveSampler",
    "RandomLinkMaintainer",
    "inverse_distance_weight",
    "RngRegistry",
    "Simulator",
    "__version__",
]
