"""The mutable fault surface an :class:`~repro.sim.network.RpcTransport`
consults on every delivery.

A :class:`FaultState` holds the currently *active* structured faults --
network partitions (full or one-way), per-node grey failures (latency
inflation plus elevated loss; the node is alive but degraded), and a
global loss burst -- and answers three per-delivery questions:

- :meth:`blocked`: is the directed ``source -> target`` leg severed by a
  partition?  (Asymmetric: a one-way partition can block one direction
  of a pair while the reverse still delivers.)
- :meth:`extra_drop`: what *additional* loss probability applies on top
  of the transport's baseline ``loss_rate``?
- :meth:`latency_factor`: by what factor are this delivery's latency
  samples inflated?  (Grey nodes are slow on every leg touching them.)

The class is pure bookkeeping: no RNG, no clock, no transport imports.
The transport owns the dice (its dedicated loss stream) and the charges;
the injectors in :mod:`repro.faults.plan` own the timeline.  A delivery
whose ``source`` is ``None`` models an external client outside the
overlay: partitions never apply to it (it is in no reachability group),
while grey failures and loss bursts still do.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FaultState", "GreyProfile", "PARTITION_MODES"]

#: ``full`` severs every cross-group leg in both directions; ``oneway``
#: severs only legs from a *higher*-indexed group to a lower-indexed one
#: (so group order encodes who can still initiate: group 0 reaches
#: everyone, nobody reaches back across the cut).
PARTITION_MODES = ("full", "oneway")


@dataclass(frozen=True, slots=True)
class GreyProfile:
    """One grey-failing node: alive, but slow and lossy.

    ``latency_factor`` multiplies every latency sample on legs touching
    the node; ``extra_loss`` is the additional drop probability those
    legs suffer (combined independently with every other loss source).
    """

    latency_factor: float = 1.0
    extra_loss: float = 0.0

    def __post_init__(self):
        if self.latency_factor < 1.0:
            raise ValueError("grey latency_factor must be >= 1")
        if not 0.0 <= self.extra_loss < 1.0:
            raise ValueError("grey extra_loss must be in [0, 1)")


class FaultState:
    """Currently-active structured network faults (see module docstring)."""

    def __init__(self) -> None:
        self._group_of: dict[int, int] = {}
        self._blocked_groups: frozenset[tuple[int, int]] = frozenset()
        self._partition_mode: str | None = None
        self._grey: dict[int, GreyProfile] = {}
        self._burst_loss: float = 0.0

    # -- introspection -----------------------------------------------------

    @property
    def active(self) -> bool:
        """Whether *any* fault is live (partition, grey node, or burst).

        Consumers that need exact charge replay (the Chord lockstep
        engine) refuse to engage while this is True: fault hooks would
        make off-transport replay diverge from live execution.
        """
        return bool(self._blocked_groups or self._grey or self._burst_loss)

    @property
    def partitioned(self) -> bool:
        return bool(self._blocked_groups)

    @property
    def partition_mode(self) -> str | None:
        return self._partition_mode

    @property
    def grey_nodes(self) -> dict[int, GreyProfile]:
        """The grey-failing nodes and their profiles (a copy)."""
        return dict(self._grey)

    @property
    def burst_loss(self) -> float:
        return self._burst_loss

    def clear(self) -> None:
        """Lift every active fault at once."""
        self.heal_partition()
        self.clear_grey()
        self._burst_loss = 0.0

    # -- partitions --------------------------------------------------------

    def partition(self, groups, mode: str = "full") -> None:
        """Split the given node groups from each other.

        ``groups`` is an iterable of iterables of node ids; a node in no
        group is unaffected (it reaches, and is reached by, everyone).
        Replaces any previous partition.  See :data:`PARTITION_MODES`
        for the ``full``/``oneway`` semantics.
        """
        if mode not in PARTITION_MODES:
            raise ValueError(f"unknown partition mode {mode!r}; choose from {PARTITION_MODES}")
        group_of: dict[int, int] = {}
        for gi, members in enumerate(groups):
            for node_id in members:
                if node_id in group_of and group_of[node_id] != gi:
                    raise ValueError(f"node {node_id} appears in two partition groups")
                group_of[node_id] = gi
        count = (max(group_of.values()) + 1) if group_of else 0
        if count < 2:
            raise ValueError("a partition needs at least two non-empty groups")
        blocked = set()
        for a in range(count):
            for b in range(count):
                if a == b:
                    continue
                if mode == "full" or a > b:
                    blocked.add((a, b))
        self._group_of = group_of
        self._blocked_groups = frozenset(blocked)
        self._partition_mode = mode

    def heal_partition(self) -> None:
        """Restore full cross-group reachability."""
        self._group_of = {}
        self._blocked_groups = frozenset()
        self._partition_mode = None

    def blocked(self, source: int | None, target: int | None) -> bool:
        """Is the directed ``source -> target`` leg severed?

        ``None`` on either end means "outside the overlay" (an external
        client, or a reply with no attributable destination): such legs
        are never partitioned.
        """
        if not self._blocked_groups or source is None or target is None:
            return False
        gs = self._group_of.get(source)
        gt = self._group_of.get(target)
        if gs is None or gt is None:
            return False
        return (gs, gt) in self._blocked_groups

    # -- grey failures -----------------------------------------------------

    def set_grey(
        self,
        node_id: int,
        latency_factor: float = 1.0,
        extra_loss: float = 0.0,
    ) -> None:
        """Mark one node grey-failing (alive but degraded)."""
        self._grey[node_id] = GreyProfile(
            latency_factor=latency_factor, extra_loss=extra_loss
        )

    def clear_grey(self, node_id: int | None = None) -> None:
        """Restore one node (or, with ``None``, every node) to health."""
        if node_id is None:
            self._grey = {}
        else:
            self._grey.pop(node_id, None)

    # -- loss bursts -------------------------------------------------------

    def set_burst_loss(self, extra_loss: float) -> None:
        """Add ``extra_loss`` drop probability to every delivery (0 lifts it)."""
        if not 0.0 <= extra_loss < 1.0:
            raise ValueError("burst extra_loss must be in [0, 1)")
        self._burst_loss = extra_loss

    # -- the per-delivery queries the transport issues ---------------------

    def extra_drop(self, source: int | None, target: int | None) -> float:
        """Additional drop probability for this leg (independent sources).

        Burst loss and each endpoint's grey loss are combined as
        independent drop events: ``1 - prod(1 - p_i)``.
        """
        survive = 1.0 - self._burst_loss
        if self._grey:
            for endpoint in (source, target):
                profile = self._grey.get(endpoint) if endpoint is not None else None
                if profile is not None:
                    survive *= 1.0 - profile.extra_loss
        return 1.0 - survive

    def latency_factor(self, source: int | None, target: int | None) -> float:
        """Multiplier applied to this leg's latency samples (>= 1)."""
        factor = 1.0
        if self._grey:
            for endpoint in (source, target):
                profile = self._grey.get(endpoint) if endpoint is not None else None
                if profile is not None:
                    factor *= profile.latency_factor
        return factor

    def describe(self) -> dict:
        """A JSON-able snapshot of the active faults (for reports/tests)."""
        return {
            "active": self.active,
            "partition_mode": self._partition_mode,
            "partition_groups": (
                max(self._group_of.values()) + 1 if self._group_of else 0
            ),
            "grey_nodes": len(self._grey),
            "burst_loss": self._burst_loss,
        }
