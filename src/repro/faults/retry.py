"""First-class retry/backoff policy for the transport/DHT boundary.

A :class:`RetryPolicy` pins the whole retry discipline of one caller as
a frozen, JSON-able record: how many total attempts, how long to back
off after each failure (exponential with a cap), and how much seeded
jitter to spread synchronized retriers apart.  Every consumer -- the
DHT adapters' lookup retries, the service layer's shard workers, the
fault-scenario probes -- shares this one type, so "what happens on
failure" is configuration, not scattered ad-hoc loops.

Determinism contract: :meth:`delay` consumes its RNG **only** when the
policy actually has jitter (``jitter > 0`` and a positive delay), so
jitter-free policies -- every default -- perturb no seeded stream, and
jittered ones draw from an explicitly passed stream.  Backoff time is
charged to the transport like any other cost (the caller waited), so
retries stay inside the Theorem 7 accounting and two runs of the same
seed produce bit-identical charges.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass

__all__ = ["RetryPolicy", "call_with_retry", "call_with_retry_async"]


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Bounded retries with exponential backoff and seeded jitter.

    ``attempts`` is the *total* number of tries (1 = no retries).  After
    failure ``f`` (1-based) the caller backs off
    ``min(base_delay * factor**(f-1), max_delay)`` time units, stretched
    by a uniform ``+/- jitter`` fraction when jitter is configured.

    ``deadline``, when set, caps the *total latency budget* of one
    logical call: retrying stops -- even with attempts left -- once the
    time already spent (failed attempts' timeout charges plus backoff
    waits), or spending the next backoff, would reach it.  The budget is
    tracked from the policy's own charge model, so it is deterministic
    and identical on the sync and async transports.
    """

    attempts: int = 3
    base_delay: float = 0.0
    factor: float = 2.0
    max_delay: float = 64.0
    jitter: float = 0.0
    deadline: float | None = None

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError("attempts must be >= 1")
        if self.base_delay < 0 or self.max_delay < 0:
            raise ValueError("delays must be non-negative")
        if self.factor < 1.0:
            raise ValueError("backoff factor must be >= 1")
        if not 0.0 <= self.jitter < 1.0:
            raise ValueError("jitter must be in [0, 1)")
        if self.deadline is not None and self.deadline <= 0:
            raise ValueError("deadline must be positive when set")

    # -- canned policies ---------------------------------------------------

    @classmethod
    def none(cls) -> "RetryPolicy":
        """One attempt, no retries, no backoff."""
        return cls(attempts=1, base_delay=0.0)

    @classmethod
    def fixed(cls, attempts: int, delay: float) -> "RetryPolicy":
        """Constant backoff: every retry waits exactly ``delay``."""
        return cls(attempts=attempts, base_delay=delay, factor=1.0)

    @classmethod
    def exponential(
        cls,
        attempts: int,
        base_delay: float,
        factor: float = 2.0,
        max_delay: float = 64.0,
        jitter: float = 0.0,
    ) -> "RetryPolicy":
        return cls(
            attempts=attempts,
            base_delay=base_delay,
            factor=factor,
            max_delay=max_delay,
            jitter=jitter,
        )

    # -- the discipline ----------------------------------------------------

    @property
    def retries(self) -> int:
        """Retries after the first attempt (``attempts - 1``)."""
        return self.attempts - 1

    def should_retry(self, failures: int) -> bool:
        """May another attempt follow after ``failures`` failures so far?"""
        return failures < self.attempts

    def within_deadline(self, spent: float) -> bool:
        """Whether a call that has already spent ``spent`` may continue."""
        return self.deadline is None or spent < self.deadline

    def delay(self, failure: int, rng: random.Random | None = None) -> float:
        """Backoff before the retry that follows failure ``failure`` (1-based).

        Consumes ``rng`` only when the policy has jitter *and* the
        undithered delay is positive -- jitter-free policies never
        perturb a seeded stream.  A jittered policy without an RNG is a
        caller bug (unseeded jitter would break replayability).
        """
        if failure < 1:
            raise ValueError("failure index is 1-based")
        d = min(self.base_delay * self.factor ** (failure - 1), self.max_delay)
        if self.jitter > 0.0 and d > 0.0:
            if rng is None:
                raise ValueError("a jittered policy needs a seeded rng")
            d *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return d

    def to_record(self) -> dict:
        return dataclasses.asdict(self)


def call_with_retry(
    transport,
    policy: RetryPolicy,
    target_id: int,
    method: str,
    *args,
    rng: random.Random | None = None,
    **kwargs,
):
    """Issue one RPC under ``policy``, charging every attempt and backoff.

    ``transport`` is an :class:`~repro.sim.network.RpcTransport` or a
    node-bound endpoint -- anything with ``rpc`` and ``charge_delay``.
    Failed attempts are charged by the transport as usual (messages,
    timeout latency); backoff time is charged via ``charge_delay`` and
    counted under the ``rpc.retries`` metric.  Raises the final
    :class:`~repro.sim.network.RpcTimeout` when the budget runs out.
    """
    from ..sim.network import RpcTimeout  # deferred: sim must not import us

    last: RpcTimeout | None = None
    spent = 0.0
    for failure in range(1, policy.attempts + 1):
        try:
            return transport.rpc(target_id, method, *args, **kwargs)
        except RpcTimeout as exc:
            last = exc
            spent += transport.timeout  # what the failed attempt charged
            if not policy.should_retry(failure) or not policy.within_deadline(spent):
                break
            delay = policy.delay(failure, rng)
            if policy.deadline is not None and spent + delay >= policy.deadline:
                break  # the backoff alone would exhaust the budget
            transport.metrics.counter("rpc.retries").increment()
            transport.charge_delay(delay)
            spent += delay
    assert last is not None
    raise last


def call_with_retry_async(
    endpoint,
    policy: RetryPolicy,
    target_id: int,
    method: str,
    *args,
    on_reply=None,
    on_timeout=None,
    rng: random.Random | None = None,
    **kwargs,
):
    """Async twin of :func:`call_with_retry`: backoff *elapses* on the clock.

    ``endpoint`` is an :class:`~repro.sim.async_net.AsyncEndpoint` (or
    the transport itself via a bound ``call``).  Each attempt goes out
    on the async plane; a timeout schedules the next attempt ``delay``
    later as a real simulator event -- other traffic proceeds while this
    caller backs off -- with the wait also charged to the latency ledger
    for parity with the sync discipline.  The same ``deadline`` budget
    arithmetic as the sync helper decides when to stop; the final
    failure reaches ``on_timeout``.
    """
    sim = endpoint.sim
    state = {"failures": 0, "spent": 0.0}

    def attempt() -> None:
        endpoint.call(
            target_id, method, *args, on_reply=on_reply, on_timeout=failed, **kwargs
        )

    def failed(exc) -> None:
        state["failures"] += 1
        state["spent"] += endpoint.timeout
        failure = state["failures"]
        give_up = not policy.should_retry(failure) or not policy.within_deadline(
            state["spent"]
        )
        delay = 0.0
        if not give_up:
            delay = policy.delay(failure, rng)
            if policy.deadline is not None and state["spent"] + delay >= policy.deadline:
                give_up = True
        if give_up:
            if on_timeout is not None:
                on_timeout(exc)
            return
        endpoint.metrics.counter("rpc.retries").increment()
        state["spent"] += delay
        if delay > 0:
            endpoint.charge_delay(delay)
            sim.schedule(delay, attempt)
        else:
            attempt()

    attempt()
