"""Fault injection: structured network misbehaviour and retry policy.

The transport's baseline ``loss_rate`` models uniform Bernoulli packet
loss; real outages are *structured* -- partitions, grey failures, loss
bursts, correlated mass-kill.  This package supplies those as first-
class, deterministic, replayable objects:

- :class:`~repro.faults.state.FaultState` -- the live fault surface an
  :class:`~repro.sim.network.RpcTransport` consults per delivery
  (install with ``transport.install_faults(FaultState())``);
- :class:`~repro.faults.plan.FaultPlan` and its injector events
  (:class:`~repro.faults.plan.MassKill`,
  :class:`~repro.faults.plan.Partition`,
  :class:`~repro.faults.plan.GreyFailure`,
  :class:`~repro.faults.plan.LossBurst`) -- a declarative timeline of
  faults on the simulation clock;
- :class:`~repro.faults.retry.RetryPolicy` -- the shared bounded-retry/
  exponential-backoff/seeded-jitter discipline used at the transport/
  DHT boundary and by the service layer's shard workers.

The scenario presets built on these live in
:mod:`repro.scenarios.faults`; ``benchmarks/bench_faults.py`` sweeps
kill fraction x retry policy into ``BENCH_faults.json``.
"""

from .plan import INJECTORS, FaultPlan, GreyFailure, LossBurst, MassKill, Partition
from .retry import RetryPolicy, call_with_retry, call_with_retry_async
from .state import PARTITION_MODES, FaultState, GreyProfile

__all__ = [
    "FaultPlan",
    "FaultState",
    "GreyFailure",
    "GreyProfile",
    "INJECTORS",
    "LossBurst",
    "MassKill",
    "PARTITION_MODES",
    "Partition",
    "RetryPolicy",
    "call_with_retry",
    "call_with_retry_async",
]
