"""Declarative fault plans: a timeline of scheduled fault events.

A :class:`FaultPlan` is a frozen sequence of fault events, each pinned
to a simulation-clock instant (and, for revertable faults, a duration).
:meth:`FaultPlan.schedule` arms the whole timeline on a
:class:`~repro.sim.kernel.Simulator` against one overlay network; the
fault-scenario runner (:mod:`repro.scenarios.faults`) instead applies
events phase by phase for lock-step measurement.  Either way the events
themselves do the injecting, so "what went wrong and when" lives in one
JSON-able record.

Events operate on the backend-agnostic overlay vocabulary (``nodes``,
``sorted_ids()``, ``crash_node``, ``transport.faults``, ``bump_epoch``),
so every injector works unchanged on Chord and Kademlia networks.  All
victim selection draws from an explicitly passed RNG stream -- plans
are deterministic under a fixed seed.

:data:`INJECTORS` names and describes the available injectors for the
CLI's ``repro faults list``.
"""

from __future__ import annotations

import dataclasses
import math
import random
from dataclasses import dataclass

__all__ = [
    "FaultPlan",
    "GreyFailure",
    "INJECTORS",
    "LossBurst",
    "MassKill",
    "Partition",
    "REGIONS",
    "select_region",
]

#: How correlated-victim sets are drawn.  ``arc`` takes a contiguous run
#: of the clockwise id order starting at a random offset (a "region" of
#: the ring -- one datacenter's identifier range failing together);
#: ``random`` samples victims independently of ring position.
REGIONS = ("arc", "random")


def select_region(sorted_ids, count: int, region: str, rng: random.Random) -> list[int]:
    """``count`` victim ids from the live membership, per the region rule."""
    if region not in REGIONS:
        raise ValueError(f"unknown region {region!r}; choose from {REGIONS}")
    n = len(sorted_ids)
    count = max(0, min(count, n))
    if count == 0:
        return []
    if region == "random":
        return sorted(rng.sample(list(sorted_ids), count))
    start = rng.randrange(n)
    return [sorted_ids[(start + j) % n] for j in range(count)]


@dataclass(frozen=True, slots=True)
class MassKill:
    """Correlated regional mass failure: crash a fraction of the overlay
    in one instant (no goodbyes, no staggering)."""

    at: float = 0.0
    fraction: float = 0.4
    region: str = "arc"

    def __post_init__(self):
        if not 0.0 < self.fraction < 1.0:
            raise ValueError("kill fraction must be in (0, 1)")
        if self.region not in REGIONS:
            raise ValueError(f"unknown region {self.region!r}; choose from {REGIONS}")

    def apply(self, network, rng: random.Random) -> list[int]:
        ids = network.sorted_ids()
        count = min(math.ceil(self.fraction * len(ids)), len(ids) - 1)
        victims = select_region(ids, count, self.region, rng)
        for victim in victims:
            network.crash_node(victim)
        return victims


@dataclass(frozen=True, slots=True)
class Partition:
    """Sever the overlay into reachability groups for ``duration`` units.

    Groups are ``groups`` contiguous arcs of the clockwise id order
    (rotated by a random offset) or a random assignment, per ``region``.
    ``mode="full"`` severs every cross-group leg; ``mode="oneway"``
    leaves legs from lower- to higher-indexed groups alive (a partial,
    asymmetric partition: requests cross, replies are lost).
    """

    at: float = 0.0
    duration: float = 50.0
    groups: int = 2
    mode: str = "full"
    region: str = "arc"

    def __post_init__(self):
        if self.groups < 2:
            raise ValueError("a partition needs at least two groups")
        if self.duration <= 0:
            raise ValueError("partition duration must be positive")
        if self.region not in REGIONS:
            raise ValueError(f"unknown region {self.region!r}; choose from {REGIONS}")

    def build_groups(self, network, rng: random.Random) -> list[list[int]]:
        ids = network.sorted_ids()
        if len(ids) < self.groups:
            raise ValueError(f"cannot split {len(ids)} nodes into {self.groups} groups")
        if self.region == "random":
            shuffled = list(ids)
            rng.shuffle(shuffled)
            return [shuffled[g :: self.groups] for g in range(self.groups)]
        start = rng.randrange(len(ids))
        rotated = [ids[(start + j) % len(ids)] for j in range(len(ids))]
        bounds = [round(g * len(ids) / self.groups) for g in range(self.groups + 1)]
        return [rotated[bounds[g] : bounds[g + 1]] for g in range(self.groups)]

    def apply(self, network, rng: random.Random) -> list[list[int]]:
        groups = self.build_groups(network, rng)
        network.transport.faults.partition(groups, mode=self.mode)
        network.bump_epoch()
        return groups

    def revert(self, network, token=None) -> None:
        network.transport.faults.heal_partition()
        network.bump_epoch()


@dataclass(frozen=True, slots=True)
class GreyFailure:
    """Grey-fail a fraction of nodes: alive, but slow and lossy."""

    at: float = 0.0
    duration: float = 50.0
    fraction: float = 0.1
    latency_factor: float = 10.0
    extra_loss: float = 0.25
    region: str = "random"

    def __post_init__(self):
        if not 0.0 < self.fraction < 1.0:
            raise ValueError("grey fraction must be in (0, 1)")
        if self.duration <= 0:
            raise ValueError("grey duration must be positive")
        if self.region not in REGIONS:
            raise ValueError(f"unknown region {self.region!r}; choose from {REGIONS}")

    def apply(self, network, rng: random.Random) -> list[int]:
        ids = network.sorted_ids()
        count = min(math.ceil(self.fraction * len(ids)), len(ids))
        victims = select_region(ids, count, self.region, rng)
        faults = network.transport.faults
        for victim in victims:
            faults.set_grey(
                victim,
                latency_factor=self.latency_factor,
                extra_loss=self.extra_loss,
            )
        return victims

    def revert(self, network, token=None) -> None:
        faults = network.transport.faults
        for victim in token or ():
            faults.clear_grey(victim)


@dataclass(frozen=True, slots=True)
class LossBurst:
    """A network-wide burst of elevated packet loss."""

    at: float = 0.0
    duration: float = 50.0
    extra_loss: float = 0.5

    def __post_init__(self):
        if not 0.0 < self.extra_loss < 1.0:
            raise ValueError("burst extra_loss must be in (0, 1)")
        if self.duration <= 0:
            raise ValueError("burst duration must be positive")

    def apply(self, network, rng: random.Random) -> float:
        network.transport.faults.set_burst_loss(self.extra_loss)
        return self.extra_loss

    def revert(self, network, token=None) -> None:
        network.transport.faults.set_burst_loss(0.0)


#: Injector catalogue for ``repro faults list``: name -> (class, summary).
INJECTORS: dict[str, tuple[type, str]] = {
    "mass-kill": (
        MassKill,
        "crash 30-50% of the overlay in one instant; region = contiguous "
        "id arc or random sample",
    ),
    "partition": (
        Partition,
        "sever reachability into groups (contiguous arcs or random); "
        "full two-way or one-way (requests cross, replies lost)",
    ),
    "grey": (
        GreyFailure,
        "grey-fail nodes: alive but with inflated latency and elevated "
        "per-leg loss",
    ),
    "loss-burst": (
        LossBurst,
        "network-wide burst of extra packet loss on every delivery",
    ),
}


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """An immutable timeline of fault events on the simulation clock."""

    events: tuple = ()

    def __post_init__(self):
        for event in self.events:
            if not hasattr(event, "apply") or not hasattr(event, "at"):
                raise TypeError(f"not a fault event: {event!r}")

    def schedule(self, sim, network, rng: random.Random) -> list[dict]:
        """Arm every event on ``sim`` against ``network``.

        Returns a live log list: as events fire, one record per
        apply/revert is appended (``time``, ``event``, ``detail``), so
        callers can assert on -- or report -- what actually happened.
        Revertable events schedule their revert at ``at + duration``.
        """
        log: list[dict] = []
        for event in self.events:
            self._arm(sim, network, rng, event, log)
        return log

    def _arm(self, sim, network, rng, event, log) -> None:
        token_cell: list = []

        def fire() -> None:
            token_cell.append(event.apply(network, rng))
            log.append(
                {"time": sim.now, "event": self.describe_event(event), "phase": "apply"}
            )

        sim.schedule_at(event.at, fire)
        duration = getattr(event, "duration", None)
        if duration is not None and hasattr(event, "revert"):

            def lift() -> None:
                token = token_cell[0] if token_cell else None
                event.revert(network, token)
                log.append(
                    {
                        "time": sim.now,
                        "event": self.describe_event(event),
                        "phase": "revert",
                    }
                )

            sim.schedule_at(event.at + duration, lift)

    @staticmethod
    def describe_event(event) -> dict:
        record = dataclasses.asdict(event)
        record["kind"] = next(
            (name for name, (cls, _) in INJECTORS.items() if isinstance(event, cls)),
            type(event).__name__,
        )
        return record

    def to_record(self) -> list[dict]:
        return [self.describe_event(e) for e in self.events]
