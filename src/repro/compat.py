"""Optional-dependency gates shared across the package.

numpy is an acceleration, never a requirement: every vectorized path
has a pure-Python twin with identical semantics (asserted by the seeded
equivalence tests).  All numpy imports go through :func:`load_numpy` so
one switch covers every site:

- numpy missing from the environment -> pure-Python paths, silently;
- ``REPRO_PURE_PYTHON`` set to a truthy value (anything but ``""`` or
  ``"0"``) -> pure-Python paths even when numpy *is* installed.  CI's
  test matrix uses this to exercise the fallback lanes on every push
  instead of only on machines that happen to lack numpy.

The flag is read once at import time (modules bind ``_np`` at module
scope); set it before importing :mod:`repro`.
"""

from __future__ import annotations

import os

__all__ = ["PURE_PYTHON_ENV", "load_numpy"]

#: Environment variable that forces the pure-Python paths.
PURE_PYTHON_ENV = "REPRO_PURE_PYTHON"


def pure_python_forced() -> bool:
    """Whether the environment pins the pure-Python fallback paths."""
    return os.environ.get(PURE_PYTHON_ENV, "0") not in ("", "0")


def load_numpy():
    """numpy, or ``None`` when unavailable or disabled by the env flag."""
    if pure_python_forced():
        return None
    try:
        import numpy
    except ImportError:  # pragma: no cover - depends on the environment
        return None
    return numpy
