#!/usr/bin/env python
"""Data collection by rigorous sampling (the paper's first motivation).

Scenario: a measurement study wants the fraction of peers running an
old client version and the mean free disk space -- without contacting
all n peers.  With the uniform sampler both come with honest confidence
intervals; with the naive heuristic the answers are silently biased
whenever the measured attribute correlates with ring position, and
fixing that (Horvitz-Thompson) needs selection probabilities no real
deployment knows.

Run:  python examples/data_collection.py
"""

from __future__ import annotations

import random

from repro import IdealDHT, RandomPeerSampler
from repro.apps.datacollection import (
    horvitz_thompson_fraction,
    poll_fraction,
    poll_mean,
)
from repro.baselines.naive import NaiveSampler, naive_selection_probabilities

N = 1500
SAMPLES = 1200


def main() -> None:
    rng = random.Random(11)
    dht = IdealDHT.random(N, rng)

    # Synthetic per-peer ground truth.  `old_client` is adversarially
    # correlated with arc length -- e.g. long-lived peers own long arcs
    # *and* run old software -- the case that breaks naive polling.
    arcs = dht.circle.arcs()
    median_arc = sorted(arcs)[N // 2]
    old_client = {p.peer_id: arcs[p.peer_id] > median_arc for p in dht.peers}
    disk_gb = {p.peer_id: 20.0 + (p.peer_id % 100) for p in dht.peers}
    true_fraction = sum(old_client.values()) / N
    true_mean = sum(disk_gb.values()) / N

    print(f"population: n={N}, true old-client fraction {true_fraction:.3f}, "
          f"true mean disk {true_mean:.1f} GB")
    print(f"polling {SAMPLES} peers per estimator...\n")

    uniform = RandomPeerSampler(dht, rng=rng)  # size auto-estimated
    est = poll_fraction(uniform, lambda p: old_client[p.peer_id], SAMPLES)
    print(f"uniform sampler : fraction = {est.estimate:.3f} "
          f"[{est.low:.3f}, {est.high:.3f}]  covers truth: {est.covers(true_fraction)}")

    naive = NaiveSampler(dht, rng)
    est_naive = poll_fraction(naive, lambda p: old_client[p.peer_id], SAMPLES)
    print(f"naive heuristic : fraction = {est_naive.estimate:.3f} "
          f"[{est_naive.low:.3f}, {est_naive.high:.3f}]  "
          f"covers truth: {est_naive.covers(true_fraction)}  <- biased")

    # The classical correction, only possible because the simulator knows
    # every selection probability.
    probs = {i: p for i, p in enumerate(naive_selection_probabilities(dht.circle))}
    draws = naive.sample_many(SAMPLES)
    corrected = horvitz_thompson_fraction(
        draws, lambda p: old_client[p.peer_id], probs, population=N
    )
    print(f"naive + Horvitz-Thompson (needs oracle probabilities): "
          f"{corrected:.3f}")

    mean_est = poll_mean(uniform, lambda p: disk_gb[p.peer_id], SAMPLES)
    print(f"\nuniform sampler : mean disk = {mean_est.estimate:.1f} GB "
          f"[{mean_est.low:.1f}, {mean_est.high:.1f}]  "
          f"covers truth: {mean_est.covers(true_mean)}")


if __name__ == "__main__":
    main()
