#!/usr/bin/env python
"""Quickstart: draw exactly-uniform random peers from a DHT.

Builds a ring of peers, estimates the network size from one vantage
peer (Section 2 of the paper), then samples peers uniformly at random
(Figure 1), printing the per-sample cost accounting of Theorem 7 and a
side-by-side with the biased naive heuristic.

Run:  python examples/quickstart.py [n_peers]
"""

from __future__ import annotations

import random
import sys
from collections import Counter

from repro import IdealDHT, RandomPeerSampler, estimate_n
from repro.analysis.stats import chi_square_uniform, max_min_ratio
from repro.baselines.naive import NaiveSampler


def main(n: int = 2000) -> None:
    rng = random.Random(7)
    print(f"building a DHT ring with n={n} peers (ideal oracle substrate)")
    dht = IdealDHT.random(n, rng)

    # --- Estimate n from a single peer (Section 2) ----------------------
    estimate = estimate_n(dht)
    print(
        f"Estimate-n: n_hat = {estimate.n_hat:.1f} "
        f"(true {n}, ratio {estimate.n_hat / n:.2f}, "
        f"{estimate.hops} next-calls)"
    )

    # --- Sample uniformly (Figure 1) -------------------------------------
    sampler = RandomPeerSampler(dht, n_hat=estimate.n_hat, rng=rng)
    print(
        f"sampler parameters: lambda = {sampler.params.lam:.3e}, "
        f"walk budget = {sampler.params.walk_budget} hops"
    )

    stats = sampler.sample_with_stats()
    print(
        f"one sample -> peer {stats.peer.peer_id} at point {stats.peer.point:.6f} "
        f"({stats.trials} trials, {stats.cost.messages} messages, "
        f"latency {stats.cost.latency:.0f})"
    )

    # --- Uniformity, head to head with the naive heuristic --------------
    draws = 20 * n
    print(f"\ndrawing {draws} samples from each sampler ...")
    uniform_counts = Counter(sampler.sample().peer_id for _ in range(draws))
    naive_counts = Counter(
        NaiveSampler(dht, rng).sample().peer_id for _ in range(draws)
    )

    u_chi = chi_square_uniform([uniform_counts.get(i, 0) for i in range(n)])
    n_chi = chi_square_uniform([naive_counts.get(i, 0) for i in range(n)])
    print(f"king-saia: chi-square p = {u_chi.p_value:.3f}  (uniform: accepted)")
    print(f"naive h(U): chi-square p = {n_chi.p_value:.2e} (uniform: rejected)")
    print(
        "max/min pick ratio  king-saia: "
        f"{max_min_ratio([uniform_counts.get(i, 0) + 1 for i in range(n)]):.1f}"
        f"   naive: {max_min_ratio([naive_counts.get(i, 0) + 1 for i in range(n)]):.1f}"
    )


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 2000)
