#!/usr/bin/env python
"""Load balancing with random peers (the paper's second motivation, [7]).

Tasks are assigned to peers drawn from a sampler; the maximum load
follows balls-in-bins theory only when the draws are uniform.  The
example compares one uniform choice, two uniform choices ("power of two
choices"), and the naive biased heuristic.

Run:  python examples/load_balancing.py
"""

from __future__ import annotations

import random

from repro import IdealDHT, RandomPeerSampler
from repro.apps.loadbalance import (
    assign_tasks,
    one_choice_max_load_theory,
    two_choice_max_load_theory,
)
from repro.baselines.naive import NaiveSampler

N = 1000


def main() -> None:
    dht = IdealDHT.random(N, random.Random(31))
    print(f"assigning tasks to n={N} peers\n")
    header = (
        f"{'tasks':>7}  {'uniform-1':>9}  {'theory-1':>8}  "
        f"{'uniform-2':>9}  {'theory-2':>8}  {'naive-1':>7}"
    )
    print("maximum load per peer:")
    print(header)
    for mult in (1, 4, 16):
        tasks = mult * N
        u1 = assign_tasks(
            RandomPeerSampler(dht, n_hat=float(N), rng=random.Random(32 + mult)),
            N, tasks, choices=1,
        ).max_load
        u2 = assign_tasks(
            RandomPeerSampler(dht, n_hat=float(N), rng=random.Random(42 + mult)),
            N, tasks, choices=2,
        ).max_load
        n1 = assign_tasks(
            NaiveSampler(dht, random.Random(52 + mult)), N, tasks, choices=1
        ).max_load
        print(
            f"{tasks:>7}  {u1:>9}  {one_choice_max_load_theory(N, tasks):>8.1f}  "
            f"{u2:>9}  {two_choice_max_load_theory(N, tasks):>8.1f}  {n1:>7}"
        )
    print(
        "\nuniform draws track balls-in-bins theory; two choices collapse the"
        "\nmaximum; the naive sampler funnels work onto long-arc peers."
    )


if __name__ == "__main__":
    main()
