#!/usr/bin/env python
"""Maintaining a random-link overlay through heavy churn.

The paper's third motivation, end to end: every Chord node keeps four
links to uniformly sampled peers.  As the membership churns, the
maintainer prunes dead links and tops back up with fresh uniform
samples drawn by an adaptive sampler (which re-runs Estimate-n as the
population drifts).  The overlay stays connected throughout.

Run:  python examples/adaptive_maintenance.py
"""

from __future__ import annotations

import random

import networkx as nx

from repro import ChordNetwork, RandomLinkMaintainer

N = 80
EPOCHS = 8
CHURN_PER_EPOCH = 8


def main() -> None:
    net = ChordNetwork.build(N, m=20, rng=random.Random(91))
    maintainer = RandomLinkMaintainer(net, links_per_node=4, rng=random.Random(92))
    report = maintainer.repair()
    print(f"bootstrap: {report['added']} links created for {N} nodes\n")
    print(f"{'epoch':>5}  {'pop':>4}  {'dropped':>7}  {'added':>5}  "
          f"{'connected':>9}  {'n_hat in use':>12}")

    rng = random.Random(93)
    for epoch in range(EPOCHS):
        for _ in range(CHURN_PER_EPOCH):
            if rng.random() < 0.5:
                net.crash_node(rng.choice(list(net.nodes)))
            else:
                net.join_node()
        net.run_stabilization(6)
        report = maintainer.repair()
        g = maintainer.graph()
        print(
            f"{epoch:>5}  {len(net):>4}  {report['dropped']:>7}  "
            f"{report['added']:>5}  {str(nx.is_connected(g)):>9}  "
            f"{maintainer.sampler.n_hat:>12.1f}"
        )

    print("\nevery epoch: dead links pruned, fresh uniform links added, and")
    print("the overlay stays one connected component -- motivation 3, live.")


if __name__ == "__main__":
    main()
