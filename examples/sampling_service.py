#!/usr/bin/env python
"""Sampling-as-a-service walkthrough: the serving layer end to end.

Builds a sharded sampling service (two ideal-DHT substrates behind
micro-batching queues), drives it with open-loop Poisson traffic on the
deterministic simulation clock, then deliberately overloads it to show
admission control turning excess load into explicit rejections instead
of unbounded queues.

Walkthrough steps:

1. build the service: substrates, router, admission, metrics from one seed;
2. steady-state traffic: latency decomposed into queue vs. service time;
3. micro-batch vs. per-request dispatch on the same workload;
4. overload: bounded queues, counted rejections, tail latency.

Run:  PYTHONPATH=src python examples/sampling_service.py [n_peers]
"""

from __future__ import annotations

import sys

from repro.service import build_load, build_service


def drive(service, rate: float, total: int, seed: int) -> dict:
    """Offer ``total`` Poisson arrivals and drain the service."""
    generator = build_load(service, rate=rate, total=total, seed=seed)
    generator.start()
    service.run()
    return service.summary()


def show_latency(summary: dict) -> None:
    for name in ("queue_latency", "service_latency", "total_latency"):
        lat = summary["latency"][name]
        print(
            f"   {name:>16}: mean {lat['mean']:7.2f}  "
            f"p50 {lat['p50']:7.2f}  p99 {lat['p99']:7.2f}"
        )


def main(n: int = 5000) -> None:
    seed = 7

    # --- 1. build: two substrate shards behind micro-batching queues ----
    print(f"building a 2-shard sampling service (n={n} peers per shard)")
    service = build_service(
        n=n, shards=2, seed=seed, max_batch=32, max_wait=2.0, max_queue=256
    )
    print(f"   router policy: {service.router.policy}, "
          f"admission bound: {service.admission.max_queue_depth}/shard")

    # --- 2. steady state: a rate the service can sustain ----------------
    summary = drive(service, rate=0.5, total=2000, seed=seed)
    print(f"\nsteady state: completed {summary['completed']}, "
          f"rejected {summary['rejected']}, "
          f"throughput {summary['throughput']:.3f} req/unit")
    print(f"   mean micro-batch size {summary['batch_size']['mean']:.1f} "
          f"({summary['batch_size']['count']} dispatches for "
          f"{summary['completed']} requests)")
    show_latency(summary)

    # --- 3. dispatch modes: what batching buys on the same workload -----
    print("\nmicro-batch vs per-request dispatch (same traffic):")
    for dispatch, max_batch in (("batch", 32), ("scalar", 1)):
        svc = build_service(n=n, shards=2, seed=seed,
                            dispatch=dispatch, max_batch=max_batch)
        s = drive(svc, rate=0.5, total=1000, seed=seed)
        batches = sum(sh["batches"] for sh in s["shards"].values())
        print(f"   {dispatch:>6}: {batches:>4} dispatches, "
              f"total p99 {s['latency']['total_latency']['p99']:8.2f}, "
              f"sim throughput {s['throughput']:.3f} req/unit")

    # --- 4. overload: open-loop traffic beyond capacity -----------------
    print("\noverload (10x the sustainable rate):")
    hot = build_service(n=n, shards=2, seed=seed, max_queue=64)
    s = drive(hot, rate=5.0, total=3000, seed=seed)
    accounted = s["completed"] + s["rejected"]
    print(f"   completed {s['completed']}, rejected {s['rejected']} "
          f"(every one of the {accounted} requests accounted for)")
    print(f"   queues stayed bounded: admission caps load at "
          f"{hot.admission.max_queue_depth}/shard; rejection is an explicit, "
          f"counted response")
    show_latency(s)
    print("\nsame seed => same assignments, latencies and counts, every run")


if __name__ == "__main__":
    main(int(sys.argv[1]) if len(sys.argv) > 1 else 5000)
