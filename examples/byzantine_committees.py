#!/usr/bin/env python
"""Committee election for Byzantine agreement (motivation 2, [8]).

Scalable Byzantine agreement elects small committees of random peers and
is safe while every committee's Byzantine share stays below 1/3.  This
example sweeps the global adversary fraction, comparing the exact
binomial analysis (valid under uniform sampling) with committees drawn
by the uniform sampler, and then shows how an adversary who parks its
peers behind the longest arcs corrupts naive-sampled committees.

Run:  python examples/byzantine_committees.py
"""

from __future__ import annotations

import random

from repro import IdealDHT, RandomPeerSampler
from repro.apps.committee import (
    CommitteeSpec,
    committee_failure_probability,
    empirical_committee_failure,
)
from repro.baselines.naive import NaiveSampler

N = 400
SPEC = CommitteeSpec(size=25, threshold=1.0 / 3.0)
ELECTIONS = 2000


def main() -> None:
    dht = IdealDHT.random(N, random.Random(71))
    arcs = dht.circle.arcs()
    by_arc = sorted(range(N), key=lambda i: arcs[i], reverse=True)

    print(f"n={N} peers, committees of {SPEC.size}, tolerance < 1/3 Byzantine")
    print(f"{ELECTIONS} elections per estimate\n")
    print(f"{'byz %':>6}  {'exact (uniform)':>15}  {'uniform sampler':>15}  "
          f"{'naive + adversary':>17}")

    for frac in (0.05, 0.10, 0.20):
        byz = int(frac * N)
        exact = committee_failure_probability(N, byz, SPEC)

        uniform = RandomPeerSampler(dht, n_hat=float(N), rng=random.Random(72))
        random_ids = set(random.Random(73).sample(range(N), byz))
        emp_uniform = empirical_committee_failure(
            uniform, lambda p: p.peer_id in random_ids, SPEC, ELECTIONS
        )

        naive = NaiveSampler(dht, random.Random(74))
        adversarial_ids = set(by_arc[:byz])  # adversary claims longest arcs
        emp_naive = empirical_committee_failure(
            naive, lambda p: p.peer_id in adversarial_ids, SPEC, ELECTIONS
        )
        print(f"{frac:>6.0%}  {exact:>15.5f}  {emp_uniform:>15.5f}  {emp_naive:>17.5f}")

    print("\nuniform committees follow the binomial analysis; under the naive")
    print("sampler an arc-squatting adversary is over-sampled and breaks the")
    print("1/3 bound at fractions the analysis calls safe.")


if __name__ == "__main__":
    main()
