#!/usr/bin/env python
"""Uniform sampling on a live, churning Chord network.

Runs the full message-level stack: a Chord ring on the discrete-event
simulator, Poisson churn (joins, graceful leaves, crashes), periodic
stabilization -- and King-Saia sampling on top, reporting live-sample
rate and measured message costs as the membership changes underneath.

Run:  python examples/churn_chord.py
"""

from __future__ import annotations

import math
import random

from repro import ChordNetwork, RandomPeerSampler, estimate_n
from repro.sim.churn import ChurnProcess
from repro.sim.kernel import Simulator

N = 100
EPOCHS = 12


def main() -> None:
    sim = Simulator()
    net = ChordNetwork.build(N, m=20, rng=random.Random(61), sim=sim)
    net.start_periodic_maintenance(interval=1.0)
    churn = ChurnProcess(net, sim, rate=0.08, rng=random.Random(62), target_size=N)
    churn.start()

    print(f"chord ring: n={N}, m=20-bit ids, stabilization every 1.0 time units")
    print("churn: Poisson joins/leaves/crashes at rate 0.08/unit\n")
    print(f"{'epoch':>5}  {'t':>6}  {'pop':>4}  {'events':>6}  {'n_hat':>7}  "
          f"{'msgs/sample':>11}  {'live?':>5}")

    for epoch in range(EPOCHS):
        sim.run_for(8.0)
        net.run_stabilization(3)  # let repair quiesce before measuring
        dht = net.dht()
        est = estimate_n(dht)
        sampler = RandomPeerSampler(dht, n_hat=est.n_hat, rng=random.Random(63 + epoch))
        stats = sampler.sample_with_stats()
        live = stats.peer.peer_id in net.nodes
        print(
            f"{epoch:>5}  {sim.now:>6.1f}  {len(net):>4}  {len(churn.events):>6}  "
            f"{est.n_hat:>7.1f}  {stats.cost.messages:>11}  {'yes' if live else 'NO':>5}"
        )

    churn.stop()
    net.run_stabilization(10)
    print(f"\nfinal ring correct after churn: {net.ring_is_correct()}")
    print(f"total transport messages: {net.transport.messages_sent}")
    print(f"log2(n) = {math.log2(len(net)):.1f} -> per-sample messages stay "
          f"within a constant multiple, as Theorem 7 predicts")


if __name__ == "__main__":
    main()
