#!/usr/bin/env python
"""Random links for fault tolerance (the paper's third motivation).

Every node adds a few links to randomly chosen peers; per Motwani &
Raghavan such graphs stay connected under massive adversarial deletion.
This example builds two overlays -- one with exact uniform sampling, one
with the biased naive heuristic -- and attacks both by deleting the
highest-degree nodes, printing the surviving giant component.

Run:  python examples/robust_overlay.py
"""

from __future__ import annotations

import random

from repro import IdealDHT, RandomPeerSampler
from repro.apps.randlinks import build_random_link_overlay, deletion_robustness
from repro.baselines.naive import NaiveSampler

N = 400
LINKS = 4
FRACTIONS = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5]


def main() -> None:
    dht = IdealDHT.random(N, random.Random(21))
    uniform = RandomPeerSampler(dht, n_hat=float(N), rng=random.Random(22))
    naive = NaiveSampler(dht, random.Random(23))

    print(f"building overlays: {N} nodes, {LINKS} random links each\n")
    g_uniform = build_random_link_overlay(uniform, N, LINKS)
    g_naive = build_random_link_overlay(naive, N, LINKS)

    deg_u = max(d for _, d in g_uniform.degree())
    deg_n = max(d for _, d in g_naive.degree())
    print(f"max degree: uniform-links {deg_u}, naive-links {deg_n}")
    print("(the naive sampler concentrates links on long-arc peers -> hubs)\n")

    u_points = deletion_robustness(g_uniform, FRACTIONS, targeted=True)
    n_points = deletion_robustness(g_naive, FRACTIONS, targeted=True)

    print("targeted deletion -> largest surviving component (fraction of survivors)")
    print(f"{'deleted':>8}  {'uniform links':>14}  {'naive links':>12}")
    for u, n in zip(u_points, n_points):
        print(
            f"{u.deleted_fraction:>8.0%}  {u.largest_component_fraction:>14.3f}  "
            f"{n.largest_component_fraction:>12.3f}"
        )
    print("\nuniform random links keep the network in one piece; biased links")
    print("create hubs whose removal shatters it -- the paper's robustness case.")


if __name__ == "__main__":
    main()
