"""Tests for Estimate-n (Section 2 / Lemma 3)."""

from __future__ import annotations

import math
import random

import pytest

from repro import IdealDHT, estimate_n
from repro.core.errors import EstimationError
from repro.core.estimate import EstimateResult
from repro.core.sampler import GAMMA1, GAMMA2


class TestEstimateBasics:
    def test_returns_result_type(self, medium_dht):
        assert isinstance(estimate_n(medium_dht), EstimateResult)

    def test_rejects_nonpositive_c1(self, medium_dht):
        with pytest.raises(EstimationError):
            estimate_n(medium_dht, c1=0.0)
        with pytest.raises(EstimationError):
            estimate_n(medium_dht, c1=-1.0)

    def test_single_peer_is_exact(self, rng):
        dht = IdealDHT.random(1, rng)
        result = estimate_n(dht)
        assert result.exact
        assert result.n_hat == 1.0

    def test_tiny_ring_lap_detection(self, rng):
        # With n=3 and default c1 the hop budget usually exceeds n, so the
        # walk laps and the estimate becomes exact.
        dht = IdealDHT.random(3, rng)
        result = estimate_n(dht, c1=8.0)
        assert result.exact
        assert result.n_hat == 3.0

    def test_defaults_to_any_peer(self, medium_dht):
        explicit = estimate_n(medium_dht, medium_dht.any_peer())
        implicit = estimate_n(medium_dht)
        assert explicit.n_hat == implicit.n_hat

    def test_hops_are_logarithmic(self, rng):
        n = 4096
        dht = IdealDHT.random(n, rng)
        result = estimate_n(dht)
        assert not result.exact
        # s = ceil(c1 * ln(n_hat_1)) and n_hat_1 <= n^3 w.h.p. (Lemma 1),
        # so hops stay within a small multiple of c1 * ln n.
        assert result.hops <= 4.0 * 3.0 * math.log(n) + 1

    def test_cost_is_next_only(self, rng):
        dht = IdealDHT.random(1000, rng)
        before = dht.cost.snapshot()
        result = estimate_n(dht)
        delta = dht.cost.snapshot() - before
        assert delta.h_calls == 0
        assert delta.next_calls == result.hops


class TestEstimateAccuracy:
    """Lemma 3: the estimate is a constant-factor approximation w.h.p."""

    @pytest.mark.parametrize("n", [256, 1024, 4096])
    def test_within_lemma3_band_across_seeds(self, n):
        inside = 0
        trials = 40
        for seed in range(trials):
            dht = IdealDHT.random(n, random.Random(seed))
            ratio = estimate_n(dht).n_hat / n
            if GAMMA1 <= ratio <= GAMMA2:
                inside += 1
        # Lemma 3 promises probability >= 1 - 2/n; allow a couple of
        # unlucky vantage points at these finite sizes.
        assert inside >= trials - 2

    def test_larger_c1_tightens_estimate(self):
        n = 2048
        spreads = {}
        for c1 in (1.0, 16.0):
            ratios = [
                estimate_n(IdealDHT.random(n, random.Random(seed)), c1=c1).n_hat / n
                for seed in range(30)
            ]
            spreads[c1] = max(ratios) / min(ratios)
        assert spreads[16.0] < spreads[1.0]

    def test_estimate_scales_with_n(self):
        # The estimate must track n, not hover near a constant.
        small = estimate_n(IdealDHT.random(128, random.Random(5))).n_hat
        large = estimate_n(IdealDHT.random(8192, random.Random(5))).n_hat
        assert large / small > 16
