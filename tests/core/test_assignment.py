"""Tests for the exact interval-assignment analysis (Theorem 6 machinery)."""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SortedCircle
from repro.core.assignment import AssignmentReport, compute_assignment, trial_on_circle
from repro.core.sampler import SamplerParams, TrialOutcome


def params_for(n: int) -> SamplerParams:
    return SamplerParams.from_estimate(float(n))


class TestComputeAssignment:
    def test_rejects_bad_arguments(self, small_circle):
        with pytest.raises(ValueError):
            compute_assignment(small_circle, 0.0, 10)
        with pytest.raises(ValueError):
            compute_assignment(small_circle, 0.01, 0)

    def test_measures_are_nonnegative_and_bounded(self, small_circle):
        p = params_for(64)
        report = compute_assignment(small_circle, p.lam, p.walk_budget)
        assert all(0.0 <= m <= p.lam + 1e-15 for m in report.measures)

    def test_total_measure_at_most_one(self, small_circle):
        p = params_for(64)
        report = compute_assignment(small_circle, p.lam, p.walk_budget)
        assert math.fsum(report.measures) <= 1.0 + 1e-12
        assert report.unassigned >= 0.0

    def test_uniform_on_random_ring(self, small_circle):
        p = params_for(64)
        report = compute_assignment(small_circle, p.lam, p.walk_budget)
        assert report.is_exactly_uniform(1e-12)
        assert report.max_abs_error < 1e-15

    def test_success_probability_equals_n_lambda_when_uniform(self, small_circle):
        p = params_for(64)
        report = compute_assignment(small_circle, p.lam, p.walk_budget)
        assert report.success_probability == pytest.approx(64 * p.lam, abs=1e-12)

    def test_two_peer_extreme_ring(self):
        # One arc nearly the whole circle, one arc almost empty.
        circle = SortedCircle([0.5, 0.5 + 1e-9])
        p = params_for(2)
        report = compute_assignment(circle, p.lam, p.walk_budget)
        assert report.is_exactly_uniform(1e-12)

    def test_insufficient_budget_starves_crowded_peers(self):
        # A tight cluster of many peers after one long arc: with a walk
        # budget of 1 the deep-cluster peers cannot be reached from the
        # long arc and end up under-assigned.
        points = [0.5] + [0.5 + (i + 1) * 1e-6 for i in range(30)]
        circle = SortedCircle(points)
        lam = 1.0 / (7.0 * len(points))
        generous = compute_assignment(circle, lam, walk_budget=200)
        starved = compute_assignment(circle, lam, walk_budget=1)
        assert generous.max_abs_error <= starved.max_abs_error
        assert starved.max_abs_error > 1e-9

    def test_single_peer_gets_lambda(self):
        circle = SortedCircle([0.42])
        report = compute_assignment(circle, 0.01, walk_budget=5)
        # SMALL region plus up to walk_budget lap-steps each worth lambda.
        assert report.measures[0] == pytest.approx(0.01)

    def test_report_fields(self, small_circle):
        p = params_for(64)
        report = compute_assignment(small_circle, p.lam, p.walk_budget)
        assert isinstance(report, AssignmentReport)
        assert report.lam == p.lam
        assert report.walk_budget == p.walk_budget
        assert len(report.measures) == 64


class TestTrialOnCircle:
    def test_small_hit_at_peer_point(self, small_circle):
        p = params_for(64)
        outcome, idx = trial_on_circle(small_circle, p, small_circle[5])
        assert outcome is TrialOutcome.SMALL_HIT
        assert idx == 5

    def test_outcomes_have_consistent_indices(self, small_circle, rng):
        p = params_for(64)
        for _ in range(500):
            outcome, idx = trial_on_circle(small_circle, p, 1.0 - rng.random())
            if outcome is TrialOutcome.EXHAUSTED:
                assert idx is None
            else:
                assert 0 <= idx < 64


class TestMonteCarloAgreement:
    """The closed-form measures must match Monte-Carlo frequencies."""

    def test_frequencies_match_measures(self):
        n = 40
        circle = SortedCircle.random(n, random.Random(77))
        p = params_for(n)
        report = compute_assignment(circle, p.lam, p.walk_budget)
        rng = random.Random(78)
        draws = 200_000
        hits = [0] * n
        misses = 0
        for _ in range(draws):
            outcome, idx = trial_on_circle(circle, p, 1.0 - rng.random())
            if idx is None:
                misses += 1
            else:
                hits[idx] += 1
        # Success mass.
        assert misses / draws == pytest.approx(report.unassigned, abs=0.01)
        # Per-peer mass (each expectation is draws*lam ~ 700).
        for i in range(n):
            assert hits[i] / draws == pytest.approx(report.measures[i], abs=0.005)

    @given(st.integers(min_value=2, max_value=80), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=80, deadline=None)
    def test_uniformity_invariant_over_random_rings(self, n, seed):
        """Property-based Theorem 6: every random ring yields an exactly
        uniform assignment under the paper's default parameters."""
        circle = SortedCircle.random(n, random.Random(seed))
        p = params_for(n)
        report = compute_assignment(circle, p.lam, p.walk_budget)
        assert report.is_exactly_uniform(1e-12)

    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=2**31),
        st.floats(min_value=0.1, max_value=3.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_uniformity_robust_to_estimate_error(self, n, seed, ratio):
        """Theorem 6 only needs n_hat >= gamma1 * n; sweep the ratio."""
        circle = SortedCircle.random(n, random.Random(seed))
        p = SamplerParams.from_estimate(max(1.0, ratio * n))
        report = compute_assignment(circle, p.lam, p.walk_budget)
        if ratio >= 2.0 / 7.0:
            assert report.is_exactly_uniform(1e-12)
