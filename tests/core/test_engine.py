"""Tests for the batch sampling engine (scalar equivalence, uniformity,
bulk rejection rounds, and the distinct-sampling contract)."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro import BulkDHT, ChordNetwork, IdealDHT, RandomPeerSampler
from repro.analysis.stats import chi_square_uniform
from repro.core import engine as engine_mod
from repro.core.engine import BatchSampler
from repro.core.errors import SamplingError


def _pair(dht, n_hat, seed=0):
    """A scalar sampler and a batch engine sharing parameters."""
    sampler = RandomPeerSampler(dht, n_hat=n_hat, rng=random.Random(seed))
    eng = BatchSampler(dht, params=sampler.params, rng=random.Random(seed))
    return sampler, eng


class TestScalarEquivalence:
    """The heart of the tentpole: for the same trial points the batch
    engine and the scalar ``trial()`` must produce *identical* outcomes
    (same peer, same TrialOutcome, same walk length)."""

    @pytest.mark.parametrize("n", [1, 2, 3, 17, 64, 512])
    def test_ideal_numpy_path(self, n):
        rng = random.Random(1000 + n)
        dht = IdealDHT.random(n, rng)
        sampler, eng = _pair(dht, float(n))
        points = [1.0 - rng.random() for _ in range(400)]
        assert eng.trial_many(points) == [sampler.trial(s) for s in points]

    @pytest.mark.parametrize("n", [1, 3, 64, 512])
    def test_ideal_pure_python_kernel(self, n, monkeypatch):
        monkeypatch.setattr(engine_mod, "_np", None)
        rng = random.Random(2000 + n)
        dht = IdealDHT.random(n, rng)
        sampler, eng = _pair(dht, float(n))
        points = [1.0 - rng.random() for _ in range(200)]
        assert eng.trial_many(points) == [sampler.trial(s) for s in points]

    def test_chord_fallback_path(self):
        net = ChordNetwork.build(32, m=16, rng=random.Random(42))
        dht = net.dht()
        sampler, eng = _pair(dht, 32.0)
        rng = random.Random(43)
        points = [1.0 - rng.random() for _ in range(120)]
        assert eng.trial_many(points) == [sampler.trial(s) for s in points]

    def test_trial_points_validated(self, medium_dht):
        _, eng = _pair(medium_dht, 512.0)
        for bad in (0.0, -0.25, 1.5, float("nan")):
            with pytest.raises(ValueError):
                eng.trial_many([0.5] * 100 + [bad])  # numpy kernel
            with pytest.raises(ValueError):
                eng.trial_many([0.5, bad])  # pure-python kernel

    def test_small_batches_use_python_kernel_identically(self, medium_dht):
        sampler, eng = _pair(medium_dht, 512.0)
        rng = random.Random(9)
        points = [1.0 - rng.random() for _ in range(5)]  # below _NUMPY_MIN_BATCH
        assert eng.trial_many(points) == [sampler.trial(s) for s in points]


class TestCostParity:
    def test_batch_meter_totals_match_scalar(self):
        """charge_bulk amortizes metering without changing the totals."""
        rng = random.Random(5)
        ring = [1.0 - rng.random() for _ in range(256)]
        scalar_dht = IdealDHT.from_points(ring)
        batch_dht = IdealDHT.from_points(ring)
        sampler, _ = _pair(scalar_dht, 256.0)
        _, eng = _pair(batch_dht, 256.0)
        points = [1.0 - rng.random() for _ in range(300)]
        for s in points:
            sampler.trial(s)
        eng.trial_many(points)
        assert scalar_dht.cost.snapshot() == batch_dht.cost.snapshot()


class TestSampleMany:
    def test_rejects_negative(self, medium_dht):
        _, eng = _pair(medium_dht, 512.0)
        with pytest.raises(ValueError):
            eng.sample_many(-1)

    def test_zero(self, medium_dht):
        _, eng = _pair(medium_dht, 512.0)
        assert eng.sample_many(0) == []

    def test_length_and_validity(self, medium_dht):
        _, eng = _pair(medium_dht, 512.0)
        peers = eng.sample_many(250)
        assert len(peers) == 250
        assert all(p in medium_dht.peers for p in peers)

    def test_sampler_delegates_on_bulk_substrate(self, medium_dht):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=random.Random(3))
        assert isinstance(medium_dht, BulkDHT)
        peers = sampler.sample_many(40)
        assert len(peers) == 40
        assert isinstance(sampler._engine, BatchSampler)

    def test_chord_is_not_bulk_capable(self):
        net = ChordNetwork.build(8, m=16, rng=random.Random(6))
        dht = net.dht()
        assert not isinstance(dht, BulkDHT)
        sampler = RandomPeerSampler(dht, n_hat=8.0, rng=random.Random(7))
        assert sampler.sample_many(3) and sampler._engine is None

    def test_trial_budget_enforced(self):
        dht = IdealDHT.random(10, random.Random(8))
        eng = BatchSampler(dht, n_hat=1e9, rng=random.Random(9), max_trials=1)
        with pytest.raises(SamplingError):
            eng.sample_many(1)

    def test_uniformity_chi_square(self):
        n, draws = 64, 6400
        dht = IdealDHT.random(n, random.Random(21))
        eng = BatchSampler(dht, n_hat=float(n), rng=random.Random(22))
        counts = Counter(p.peer_id for p in eng.sample_many(draws))
        observed = [counts.get(i, 0) for i in range(n)]
        assert not chi_square_uniform(observed).rejects_uniformity(alpha=0.001)


class TestSampleManyAttributed:
    """The serving-layer hook: draws plus trial/round/cost attribution."""

    def test_matches_sample_many_given_same_rng(self, medium_dht):
        _, eng_a = _pair(medium_dht, 512.0, seed=4)
        _, eng_b = _pair(medium_dht, 512.0, seed=4)
        assert list(eng_a.sample_many_attributed(60).peers) == eng_b.sample_many(60)

    def test_cost_delta_is_this_calls_share(self, medium_dht):
        _, eng = _pair(medium_dht, 512.0, seed=5)
        before = medium_dht.cost.snapshot()
        result = eng.sample_many_attributed(30)
        delta = medium_dht.cost.snapshot() - before
        assert result.cost == delta
        assert result.cost.h_calls == result.trials  # one h per trial point
        assert result.cost.latency > 0

    def test_round_and_trial_counts(self, medium_dht):
        _, eng = _pair(medium_dht, 512.0, seed=6)
        result = eng.sample_many_attributed(100)
        assert len(result.peers) == 100
        assert result.rounds >= 1
        assert result.trials >= 100  # at least one trial per draw

    def test_zero_request_batch(self, medium_dht):
        _, eng = _pair(medium_dht, 512.0)
        result = eng.sample_many_attributed(0)
        assert result.peers == () and result.trials == 0 and result.rounds == 0


class TestSampleDistinctBatched:
    def test_distinct_and_valid(self):
        n = 64
        dht = IdealDHT.random(n, random.Random(30))
        _, eng = _pair(dht, float(n), seed=31)
        peers = eng.sample_distinct(20)
        ids = [p.peer_id for p in peers]
        assert len(ids) == 20 and len(set(ids)) == 20

    def test_zero_is_empty(self, medium_dht):
        _, eng = _pair(medium_dht, 512.0)
        assert eng.sample_distinct(0) == []

    def test_k_beyond_n_raises(self):
        n = 8
        dht = IdealDHT.random(n, random.Random(32))
        _, eng = _pair(dht, float(n), seed=33)
        with pytest.raises(SamplingError):
            eng.sample_distinct(n + 1, max_draws=400)

    def test_sampler_routes_distinct_through_engine(self, medium_dht):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=random.Random(34))
        peers = sampler.sample_distinct(15)
        assert len({p.peer_id for p in peers}) == 15
        assert isinstance(sampler._engine, BatchSampler)

    def test_subset_inclusion_is_uniform(self):
        """Each peer lands in a random k-subset with probability k/n."""
        n, k, rounds = 16, 4, 800
        dht = IdealDHT.random(n, random.Random(35))
        _, eng = _pair(dht, float(n), seed=36)
        counts = {i: 0 for i in range(n)}
        for _ in range(rounds):
            for peer in eng.sample_distinct(k):
                counts[peer.peer_id] += 1
        expected = rounds * k / n
        for c in counts.values():
            assert c == pytest.approx(expected, rel=0.3)
