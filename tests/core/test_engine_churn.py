"""Batch-engine behaviour when the substrate churns under it.

``sample_many`` must treat transient peer unreachability as failed
trials (redraw and move on) and escalate only trial-budget exhaustion,
so serving layers see exactly two outcomes: samples, or a clean
:class:`~repro.core.errors.SamplingError`.
"""

from __future__ import annotations

import random

import pytest

from repro.core.engine import BatchSampler
from repro.core.errors import SamplingError
from repro.dht.api import CostMeter, PeerRef, PeerUnreachableError
from repro.dht.chord.network import ChordNetwork


class FlakyDHT:
    """Non-bulk substrate whose first ``failures`` h-calls die."""

    def __init__(self, n: int = 32, failures: int = 0, seed: int = 0):
        self.cost = CostMeter()
        self.failures = failures
        rng = random.Random(seed)
        points = sorted(rng.random() for _ in range(n))
        self._points = points
        self._n = n

    def _ref(self, i: int) -> PeerRef:
        return PeerRef(peer_id=i, point=self._points[i])

    def h(self, x: float) -> PeerRef:
        if self.failures > 0:
            self.failures -= 1
            raise PeerUnreachableError("entry peer crashed mid-walk")
        self.cost.charge_h(1, 1.0)
        from bisect import bisect_left

        i = bisect_left(self._points, x)
        return self._ref(i % self._n)

    def next(self, peer: PeerRef) -> PeerRef:
        self.cost.charge_next()
        from bisect import bisect_right

        i = bisect_right(self._points, peer.point)
        return self._ref(i % self._n)

    def any_peer(self) -> PeerRef:
        return self._ref(0)


class TestStaleTrialRetry:
    def test_transient_unreachability_is_retried_not_raised(self):
        dht = FlakyDHT(n=32, failures=5)
        engine = BatchSampler(dht, n_hat=32.0, rng=random.Random(1))
        peers = engine.sample_many(8)
        assert len(peers) == 8
        assert engine.stale_trials >= 5  # the dead trials were redrawn

    def test_permanent_unreachability_escalates_cleanly(self):
        dht = FlakyDHT(n=32, failures=10**9)
        engine = BatchSampler(dht, n_hat=32.0, rng=random.Random(1), max_trials=5)
        with pytest.raises(SamplingError):
            engine.sample_many(3)

    def test_trial_many_reports_dead_trials_as_exhausted(self):
        dht = FlakyDHT(n=32, failures=2)
        engine = BatchSampler(dht, n_hat=32.0, rng=random.Random(1))
        winner = dht._points[5] - 1e-12  # a hair before a peer: small hit
        results = engine.trial_many([0.1, 0.2, winner])
        assert results[0].peer is None and results[1].peer is None
        assert results[2].peer is not None


class TestEntryCrashOnChord:
    def test_sample_many_survives_entry_peer_crash(self):
        net = ChordNetwork.build(32, m=12, rng=random.Random(3))
        dht = net.dht()
        engine = BatchSampler(dht, rng=random.Random(4))
        entry = dht.entry_id
        net.crash_node(entry)  # the adapter's vantage peer fail-stops
        peers = engine.sample_many(5)
        assert len(peers) == 5
        assert all(p.peer_id in net.nodes for p in peers)
        assert dht.entry_id != entry  # failover re-rooted the adapter

    def test_sample_many_survives_crashes_mid_batch(self):
        net = ChordNetwork.build(48, m=12, rng=random.Random(5))
        dht = net.dht()
        engine = BatchSampler(dht, rng=random.Random(6))
        rng = random.Random(7)
        for _ in range(4):
            victim = rng.choice(sorted(net.nodes))
            net.crash_node(victim)
            assert len(engine.sample_many(3)) == 3

    def test_refresh_tracks_population_change(self):
        net = ChordNetwork.build(24, m=12, rng=random.Random(8))
        dht = net.dht()
        engine = BatchSampler(dht, rng=random.Random(9))
        before = engine.params
        for _ in range(24):
            net.join_node()
            net.run_stabilization(2)
        after = engine.refresh()
        assert after.n_hat != before.n_hat
        assert engine.params is after
