"""Tests for the Lemma 1/2/4 and Theorem 8 property checkers."""

from __future__ import annotations

import math
import random

import pytest

from repro import SortedCircle
from repro.core.properties import (
    arc_extremes,
    check_lemma1,
    check_lemma2,
    check_lemma4,
)


class TestLemma1:
    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            check_lemma1(SortedCircle([0.5]))

    def test_holds_on_random_rings(self):
        # Lemma 1 holds with probability >= 1 - 1/n; check many rings.
        failures = sum(
            0 if check_lemma1(SortedCircle.random(512, random.Random(seed))).holds else 1
            for seed in range(30)
        )
        assert failures <= 1

    def test_bounds_are_correct_formulas(self):
        circle = SortedCircle.random(256, random.Random(1))
        report = check_lemma1(circle)
        assert report.lower_bound == pytest.approx(
            math.log(256) - math.log(math.log(256)) - 2.0
        )
        assert report.upper_bound == pytest.approx(3.0 * math.log(256))

    def test_detects_violating_ring(self):
        # Two peers separated by ~1/n^4: ln(1/d) >> 3 ln n.
        n = 16
        base = [i / n + 1e-9 for i in range(n)]
        base[1] = base[0] + 1e-12  # pathologically tight arc
        report = check_lemma1(SortedCircle(base))
        assert not report.holds
        assert report.violations >= 1

    def test_collision_counts_as_violation(self):
        points = [0.1, 0.1] + [0.2 + 0.01 * i for i in range(10)]
        report = check_lemma1(SortedCircle(points))
        assert not report.holds


class TestLemma2:
    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            check_lemma2(SortedCircle([0.5]))

    def test_rejects_bad_alphas(self, small_circle):
        with pytest.raises(ValueError):
            check_lemma2(small_circle, alpha1=2.0, alpha2=1.0)

    def test_holds_with_generous_constants(self):
        # With a wide (alpha1, alpha2, eps) envelope the property holds
        # comfortably on uniform rings.
        failures = 0
        for seed in range(10):
            circle = SortedCircle.random(1024, random.Random(seed))
            report = check_lemma2(circle, alpha1=0.5, alpha2=8.0, eps=0.9, big_c=4.0)
            if not report.holds:
                failures += 1
        assert failures == 0

    def test_detects_clustered_ring(self):
        # Hundreds of peers crammed into a tiny interval: an anchored
        # interval with Theta(log n) peers is far shorter than the bound.
        n = 512
        points = [0.5 + (i + 1) * 1e-9 for i in range(n)]
        report = check_lemma2(SortedCircle(points), alpha1=0.5, alpha2=4.0, eps=0.5)
        assert not report.holds

    def test_vacuous_when_count_band_is_empty(self):
        # For tiny n the count band (C a1 log n, C a2 log n) may contain no
        # integers; the property is then vacuously true.
        circle = SortedCircle([0.1, 0.6])
        report = check_lemma2(circle, alpha1=1.0, alpha2=1.1, eps=0.5, big_c=1.0)
        assert report.holds


class TestLemma4:
    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            check_lemma4(SortedCircle([0.5]))

    def test_window_and_bound_formulas(self):
        circle = SortedCircle.random(256, random.Random(2))
        report = check_lemma4(circle)
        assert report.window == math.ceil(6.0 * math.log(256))
        assert report.bound == pytest.approx(math.log(256) / 256)

    def test_holds_on_random_rings(self):
        failures = sum(
            0 if check_lemma4(SortedCircle.random(1024, random.Random(seed))).holds else 1
            for seed in range(30)
        )
        assert failures <= 1

    def test_vacuous_when_window_spans_ring(self):
        # n small enough that 6 ln n >= n: any window wraps the circle.
        circle = SortedCircle.random(8, random.Random(3))
        report = check_lemma4(circle)
        assert report.window >= 8
        assert report.holds
        assert report.min_window_sum == 1.0

    def test_detects_dense_cluster(self):
        # 6 ln n consecutive arcs inside a cluster of width 1e-9 sum far
        # below (ln n)/n.
        n = 600
        cluster = [0.5 + (i + 1) * 1e-12 for i in range(n - 1)]
        report = check_lemma4(SortedCircle([0.5] + cluster))
        assert not report.holds
        assert report.min_window_sum < report.bound

    def test_min_window_sum_is_a_true_minimum(self):
        circle = SortedCircle.random(128, random.Random(5))
        report = check_lemma4(circle)
        arcs = circle.arcs()
        w = report.window
        brute = min(
            math.fsum(arcs[(s + j) % 128] for j in range(w)) for s in range(128)
        )
        assert report.min_window_sum == pytest.approx(brute)


class TestArcExtremes:
    def test_needs_two_peers(self):
        with pytest.raises(ValueError):
            arc_extremes(SortedCircle([0.5]))

    def test_extremes_are_true_extremes(self, small_circle):
        report = arc_extremes(small_circle)
        arcs = small_circle.arcs()
        assert report.shortest == min(arcs)
        assert report.longest == max(arcs)

    def test_scales(self):
        report = arc_extremes(SortedCircle.random(100, random.Random(9)))
        assert report.shortest_scale == pytest.approx(1e-4)
        assert report.longest_scale == pytest.approx(math.log(100) / 100)

    def test_theorem8_ratios_are_order_one(self):
        """Across sizes, shortest/(1/n^2) and longest/(ln n/n) stay O(1)."""
        for n in (256, 1024, 4096):
            ratios_short = []
            ratios_long = []
            for seed in range(10):
                rep = arc_extremes(SortedCircle.random(n, random.Random(seed)))
                ratios_short.append(rep.shortest_ratio)
                ratios_long.append(rep.longest_ratio)
            mean_short = sum(ratios_short) / len(ratios_short)
            mean_long = sum(ratios_long) / len(ratios_long)
            assert 0.05 < mean_short < 20.0
            assert 0.3 < mean_long < 3.0

    def test_naive_bias_ratio_grows_superlinearly(self):
        # The shortest arc is ~1/n^2 with a heavy-tailed reciprocal, so the
        # bias ratio's mean is outlier-dominated; medians show the trend.
        import statistics

        medians = {}
        for n in (128, 2048):
            vals = [
                arc_extremes(SortedCircle.random(n, random.Random(seed))).naive_bias_ratio
                for seed in range(30)
            ]
            medians[n] = statistics.median(vals)
        # Theory: Theta(n log n) bias => 2048/128 alone is a 16x factor.
        assert medians[2048] > 6.0 * medians[128]
