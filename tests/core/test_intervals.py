"""Unit and property tests for the unit-circle geometry."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.intervals import (
    Interval,
    SortedCircle,
    clockwise_distance,
    normalize,
)

points = st.floats(min_value=1e-12, max_value=1.0, allow_nan=False, allow_infinity=False)


class TestNormalize:
    def test_identity_inside_circle(self):
        assert normalize(0.25) == 0.25

    def test_zero_maps_to_one(self):
        assert normalize(0.0) == 1.0

    def test_integers_map_to_one(self):
        assert normalize(3.0) == 1.0
        assert normalize(-2.0) == 1.0

    def test_wraps_above_one(self):
        assert normalize(1.25) == pytest.approx(0.25)

    def test_wraps_negative(self):
        assert normalize(-0.25) == pytest.approx(0.75)

    @given(st.floats(min_value=-100, max_value=100, allow_nan=False))
    def test_always_lands_on_circle(self, x):
        assert 0.0 < normalize(x) <= 1.0


class TestClockwiseDistance:
    def test_paper_definition_forward(self):
        assert clockwise_distance(0.2, 0.5) == pytest.approx(0.3)

    def test_paper_definition_wrapping(self):
        assert clockwise_distance(0.8, 0.1) == pytest.approx(0.3)

    def test_self_distance_is_zero(self):
        assert clockwise_distance(0.4, 0.4) == 0.0

    def test_rejects_points_outside_circle(self):
        with pytest.raises(ValueError):
            clockwise_distance(0.0, 0.5)
        with pytest.raises(ValueError):
            clockwise_distance(0.5, 1.5)

    def test_asymmetric(self):
        assert clockwise_distance(0.1, 0.9) == pytest.approx(0.8)
        assert clockwise_distance(0.9, 0.1) == pytest.approx(0.2)

    @given(points, points)
    def test_range(self, x, y):
        d = clockwise_distance(x, y)
        assert 0.0 <= d < 1.0

    @given(points, points)
    def test_round_trip_sums_to_circle(self, x, y):
        if x == y:
            return
        assert clockwise_distance(x, y) + clockwise_distance(y, x) == pytest.approx(1.0)

    @given(points, points, points)
    def test_triangle_path_additivity(self, x, y, z):
        """Going x->y->z either equals direct distance or adds a full lap."""
        total = clockwise_distance(x, y) + clockwise_distance(y, z)
        direct = clockwise_distance(x, z)
        assert math.isclose(total, direct, abs_tol=1e-9) or math.isclose(
            total, direct + 1.0, abs_tol=1e-9
        )


class TestInterval:
    def test_length(self):
        assert Interval(0.2, 0.7).length == pytest.approx(0.5)

    def test_wrapping_length(self):
        assert Interval(0.7, 0.2).length == pytest.approx(0.5)

    def test_empty_interval(self):
        empty = Interval(0.5, 0.5)
        assert empty.length == 0.0
        assert not empty.contains(0.5)

    def test_contains_endpoint_semantics(self):
        # I(a, b] excludes a, includes b.
        interval = Interval(0.2, 0.7)
        assert not interval.contains(0.2)
        assert interval.contains(0.7)
        assert interval.contains(0.5)
        assert not interval.contains(0.8)

    def test_contains_wrapping(self):
        interval = Interval(0.8, 0.3)
        assert interval.contains(0.9)
        assert interval.contains(0.1)
        assert interval.contains(0.3)
        assert not interval.contains(0.8)
        assert not interval.contains(0.5)

    def test_is_small_strict(self):
        assert Interval(0.25, 0.375).is_small(0.25)
        assert not Interval(0.25, 0.5).is_small(0.25)  # equality is big

    def test_rejects_bad_endpoints(self):
        with pytest.raises(ValueError):
            Interval(0.0, 0.5)

    @given(points, points, points)
    def test_contains_matches_distance_definition(self, a, b, x):
        # Ground truth computed in exact rational arithmetic: membership
        # is 0 < d(a, x) <= d(a, b) with the paper's clockwise distance.
        from fractions import Fraction

        fa, fb, fx = Fraction(a), Fraction(b), Fraction(x)
        d_ax = fx - fa if fx >= fa else (1 - fa) + fx
        d_ab = fb - fa if fb >= fa else (1 - fa) + fb
        expected = 0 < d_ax <= d_ab
        assert Interval(a, b).contains(x) == expected


class TestSortedCircle:
    def test_sorts_points(self):
        c = SortedCircle([0.9, 0.1, 0.5])
        assert list(c.points) == [0.1, 0.5, 0.9]

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            SortedCircle([])

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SortedCircle([0.5, 1.2])

    def test_random_respects_n(self, rng):
        assert len(SortedCircle.random(17, rng)) == 17

    def test_random_points_in_circle(self, rng):
        assert all(0.0 < p <= 1.0 for p in SortedCircle.random(100, rng))

    def test_successor_basic(self):
        c = SortedCircle([0.2, 0.5, 0.8])
        assert c.successor(0.3) == 0.5
        assert c.successor(0.5) == 0.5  # a peer is its own successor
        assert c.successor(0.9) == 0.2  # wraps

    def test_successor_index_wraps(self):
        c = SortedCircle([0.2, 0.5, 0.8])
        assert c.successor_index(0.85) == 0

    def test_getitem_wraps(self):
        c = SortedCircle([0.2, 0.5, 0.8])
        assert c[3] == 0.2
        assert c[-1] == 0.8

    def test_next_index_cycles(self):
        c = SortedCircle([0.2, 0.5, 0.8])
        assert c.next_index(2) == 0

    def test_arcs_sum_to_one(self, small_circle):
        assert math.fsum(small_circle.arcs()) == pytest.approx(1.0)

    def test_arc_matches_pairwise_distance(self):
        c = SortedCircle([0.2, 0.5, 0.8])
        assert c.arc(0) == pytest.approx(clockwise_distance(0.8, 0.2))
        assert c.arc(1) == pytest.approx(0.3)

    def test_single_peer_arc_is_full_circle(self):
        assert SortedCircle([0.4]).arc(0) == 1.0

    def test_forward_distance_within_ring(self):
        c = SortedCircle([0.2, 0.5, 0.8])
        assert c.forward_distance(0, 1) == pytest.approx(0.3)
        assert c.forward_distance(0, 2) == pytest.approx(0.6)

    def test_forward_distance_counts_laps(self):
        c = SortedCircle([0.2, 0.5, 0.8])
        assert c.forward_distance(0, 3) == pytest.approx(1.0)
        assert c.forward_distance(0, 4) == pytest.approx(1.3)

    def test_count_in_simple(self):
        c = SortedCircle([0.2, 0.5, 0.8])
        assert c.count_in(Interval(0.1, 0.6)) == 2
        assert c.count_in(Interval(0.2, 0.5)) == 1  # excludes 0.2, includes 0.5

    def test_count_in_wrapping(self):
        c = SortedCircle([0.2, 0.5, 0.8])
        assert c.count_in(Interval(0.7, 0.3)) == 2  # 0.8 and 0.2

    def test_count_in_empty_interval(self):
        c = SortedCircle([0.2, 0.5, 0.8])
        assert c.count_in(Interval(0.4, 0.4)) == 0

    def test_duplicates_allowed(self):
        c = SortedCircle([0.5, 0.5, 0.2])
        assert len(c) == 3
        assert c.arc(2) == 0.0  # duplicate has zero-length arc

    def test_equality_and_hash(self):
        a = SortedCircle([0.1, 0.9])
        b = SortedCircle([0.9, 0.1])
        assert a == b
        assert hash(a) == hash(b)

    @given(st.lists(points, min_size=1, max_size=40), points)
    @settings(max_examples=200)
    def test_successor_minimizes_clockwise_distance(self, pts, x):
        c = SortedCircle(pts)
        best = min(clockwise_distance(x, p) for p in c)
        assert clockwise_distance(x, c.successor(x)) == pytest.approx(best)

    @given(st.lists(points, min_size=2, max_size=40, unique=True))
    @settings(max_examples=200)
    def test_arcs_partition_circle(self, pts):
        # Distinct points (the paper's model almost surely): predecessor
        # arcs tile the circle.  Full-collision rings degenerate to 0.
        c = SortedCircle(pts)
        assert math.fsum(c.arcs()) == pytest.approx(1.0, abs=1e-9)

    @given(st.lists(points, min_size=1, max_size=30), points, points)
    @settings(max_examples=200)
    def test_count_in_matches_bruteforce(self, pts, a, b):
        c = SortedCircle(pts)
        interval = Interval(a, b)
        brute = sum(1 for p in c if interval.contains(p))
        assert c.count_in(interval) == brute
