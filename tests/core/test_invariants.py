"""Symmetry and scaling invariants of the assignment map.

These are properties the paper's construction must satisfy by symmetry;
violating any of them would indicate an implementation artifact (e.g. a
hidden dependence on coordinates rather than arc structure).
"""

from __future__ import annotations

import math
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import SortedCircle, compute_assignment, normalize
from repro.core.sampler import SamplerParams


def rotate(circle: SortedCircle, delta: float) -> tuple[SortedCircle, list[int]]:
    """Rotate every point by ``delta``; return the new circle and the
    permutation mapping old peer index -> new peer index."""
    moved = [(normalize(p + delta), i) for i, p in enumerate(circle)]
    moved.sort()
    new_circle = SortedCircle(p for p, _ in moved)
    permutation = [0] * len(circle)
    for new_index, (_, old_index) in enumerate(moved):
        permutation[old_index] = new_index
    return new_circle, permutation


class TestRotationInvariance:
    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=2**31),
        st.floats(min_value=0.01, max_value=0.99),
    )
    @settings(max_examples=40, deadline=None)
    def test_measures_commute_with_rotation(self, n, seed, delta):
        """Rotating the ring permutes the per-peer measures exactly."""
        circle = SortedCircle.random(n, random.Random(seed))
        params = SamplerParams.from_estimate(float(n))
        base = compute_assignment(circle, params.lam, params.walk_budget)
        rotated, perm = rotate(circle, delta)
        rotated_report = compute_assignment(rotated, params.lam, params.walk_budget)
        for old_index, measure in enumerate(base.measures):
            assert rotated_report.measures[perm[old_index]] == pytest.approx(
                measure, abs=1e-12
            )

    @given(
        st.integers(min_value=2, max_value=30),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_unassigned_mass_rotation_invariant(self, n, seed):
        circle = SortedCircle.random(n, random.Random(seed))
        params = SamplerParams.from_estimate(float(n))
        base = compute_assignment(circle, params.lam, params.walk_budget)
        rotated, _ = rotate(circle, 0.37)
        other = compute_assignment(rotated, params.lam, params.walk_budget)
        assert other.unassigned == pytest.approx(base.unassigned, abs=1e-12)


class TestParameterScaling:
    @given(st.floats(min_value=2.0, max_value=1e6))
    @settings(max_examples=60)
    def test_lambda_inverse_in_estimate(self, n_hat):
        """lambda scales as 1/n_hat with fixed constants."""
        a = SamplerParams.from_estimate(n_hat)
        b = SamplerParams.from_estimate(2.0 * n_hat)
        assert b.lam == pytest.approx(a.lam / 2.0)

    @given(st.floats(min_value=2.0, max_value=1e6))
    @settings(max_examples=60)
    def test_budget_monotone_in_estimate(self, n_hat):
        a = SamplerParams.from_estimate(n_hat)
        b = SamplerParams.from_estimate(4.0 * n_hat)
        assert b.walk_budget >= a.walk_budget

    @given(
        st.integers(min_value=2, max_value=40),
        st.integers(min_value=0, max_value=2**31),
    )
    @settings(max_examples=30, deadline=None)
    def test_success_probability_is_n_lambda_when_uniform(self, n, seed):
        circle = SortedCircle.random(n, random.Random(seed))
        params = SamplerParams.from_estimate(float(n))
        report = compute_assignment(circle, params.lam, params.walk_budget)
        if report.is_exactly_uniform(1e-12):
            assert report.success_probability == pytest.approx(
                n * params.lam, abs=1e-9
            )

    def test_budget_formula_exact(self):
        params = SamplerParams.from_estimate(100.0)
        assert params.walk_budget == math.ceil(6.0 * math.log(100.0 / (2.0 / 7.0)))
