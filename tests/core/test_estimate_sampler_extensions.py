"""Tests for the estimator/sampler extensions: median-of-vantages
estimation, distinct sampling, and CSV export."""

from __future__ import annotations

import random

import pytest

from repro import IdealDHT, RandomPeerSampler
from repro.bench.harness import Table
from repro.core.errors import EstimationError, SamplingError
from repro.core.estimate import estimate_n, estimate_n_median


class TestEstimateMedian:
    def test_validation(self, medium_dht):
        with pytest.raises(EstimationError):
            estimate_n_median(medium_dht, vantages=0)

    def test_returns_constant_factor_estimate(self):
        n = 1024
        dht = IdealDHT.random(n, random.Random(180))
        result = estimate_n_median(dht, vantages=5, rng=random.Random(181))
        assert 2.0 / 7.0 <= result.n_hat / n <= 6.0

    def test_tightens_spread_over_single_vantage(self):
        n = 1024
        singles = []
        medians = []
        for seed in range(25):
            dht = IdealDHT.random(n, random.Random(seed))
            singles.append(estimate_n(dht).n_hat / n)
            medians.append(
                estimate_n_median(dht, vantages=5, rng=random.Random(seed + 500)).n_hat
                / n
            )
        spread_single = max(singles) / min(singles)
        spread_median = max(medians) / min(medians)
        assert spread_median <= spread_single

    def test_exact_lap_short_circuits(self, rng):
        dht = IdealDHT.random(3, rng)
        result = estimate_n_median(dht, vantages=3, c1=8.0, rng=rng)
        assert result.exact
        assert result.n_hat == 3.0

    def test_costs_scale_with_vantages(self):
        n = 512
        dht = IdealDHT.random(n, random.Random(182))
        before = dht.cost.snapshot()
        estimate_n_median(dht, vantages=4, rng=random.Random(183))
        delta = dht.cost.snapshot() - before
        assert delta.h_calls == 4  # one vantage lookup each


class TestSampleDistinct:
    def test_validation(self, medium_dht, rng):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=rng)
        with pytest.raises(ValueError):
            sampler.sample_distinct(-1)

    def test_returns_distinct_peers(self, rng):
        n = 64
        dht = IdealDHT.random(n, rng)
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=rng)
        peers = sampler.sample_distinct(20)
        ids = [p.peer_id for p in peers]
        assert len(ids) == 20
        assert len(set(ids)) == 20

    def test_zero_is_empty(self, medium_dht, rng):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=rng)
        assert sampler.sample_distinct(0) == []

    def test_k_equal_n_collects_everyone(self):
        n = 12
        dht = IdealDHT.random(n, random.Random(184))
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(185))
        peers = sampler.sample_distinct(n, max_draws=5000)
        assert {p.peer_id for p in peers} == set(range(n))

    def test_k_beyond_n_raises(self):
        n = 8
        dht = IdealDHT.random(n, random.Random(186))
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(187))
        with pytest.raises(SamplingError):
            sampler.sample_distinct(n + 1, max_draws=400)

    def test_subsets_are_uniform(self):
        """Each peer appears in a random k-subset with probability k/n."""
        n, k, rounds = 16, 4, 1500
        dht = IdealDHT.random(n, random.Random(188))
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(189))
        counts = {i: 0 for i in range(n)}
        for _ in range(rounds):
            for peer in sampler.sample_distinct(k):
                counts[peer.peer_id] += 1
        expected = rounds * k / n
        for c in counts.values():
            assert c == pytest.approx(expected, rel=0.25)


class TestTableCsv:
    def test_csv_round_trip(self):
        t = Table("t", ["n", "value"])
        t.add_row(10, 0.5)
        t.add_row(20, 0.25)
        csv = t.to_csv()
        lines = csv.strip().splitlines()
        assert lines[0] == "n,value"
        assert lines[1] == "10,0.5"
        assert len(lines) == 3

    def test_csv_ends_with_newline(self):
        t = Table("t", ["a"])
        t.add_row(1)
        assert t.to_csv().endswith("\n")
