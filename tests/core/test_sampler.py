"""Tests for Choose-Random-Peer (Figure 1, Theorems 6-7)."""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import IdealDHT, RandomPeerSampler, SortedCircle, choose_random_peer
from repro.core.assignment import compute_assignment, trial_on_circle
from repro.core.errors import SamplingError
from repro.core.sampler import SamplerParams, TrialOutcome


class TestSamplerParams:
    def test_lambda_definition(self):
        params = SamplerParams.from_estimate(700.0, gamma1=2.0 / 7.0)
        assert params.n_prime == pytest.approx(2450.0)
        assert params.lam == pytest.approx(1.0 / (7.0 * 2450.0))

    def test_walk_budget_is_6_ln_nprime(self):
        params = SamplerParams.from_estimate(700.0, gamma1=2.0 / 7.0)
        assert params.walk_budget == math.ceil(6.0 * math.log(2450.0))

    def test_lambda_upper_bound_claim(self):
        """The paper's claim lambda <= 1/(7n) holds whenever n_hat >= gamma1*n."""
        n = 1000
        for ratio in (2.0 / 7.0, 1.0, 6.0):
            params = SamplerParams.from_estimate(ratio * n)
            assert params.lam <= 1.0 / (7.0 * n) + 1e-15

    def test_rejects_bad_inputs(self):
        with pytest.raises(ValueError):
            SamplerParams.from_estimate(0.5)
        with pytest.raises(ValueError):
            SamplerParams.from_estimate(10.0, gamma1=0.0)
        with pytest.raises(ValueError):
            SamplerParams.from_estimate(10.0, lambda_slack=1.0)


class TestTrialMechanics:
    def test_small_hit_returns_h_of_s(self, rng):
        dht = IdealDHT.random(100, rng)
        sampler = RandomPeerSampler(dht, n_hat=100.0, rng=rng)
        # A point immediately counterclockwise of a peer point lands SMALL.
        # Use the peer with the longest arc so no other peer intervenes.
        arcs = dht.circle.arcs()
        idx = arcs.index(max(arcs))
        peer_point = dht.circle[idx]
        s = peer_point - sampler.params.lam / 2.0
        if s <= 0.0:
            s += 1.0
        result = sampler.trial(s)
        assert result.outcome is TrialOutcome.SMALL_HIT
        assert result.peer.point == peer_point
        assert result.walk_hops == 0

    def test_exact_peer_point_is_small_hit(self, rng):
        dht = IdealDHT.random(50, rng)
        sampler = RandomPeerSampler(dht, n_hat=50.0, rng=rng)
        s = dht.circle[7]
        result = sampler.trial(s)
        assert result.outcome is TrialOutcome.SMALL_HIT
        assert result.peer.point == s

    def test_walk_hit_walks_clockwise(self, rng):
        # Construct a ring with one huge arc followed by tight clusters, so
        # a point deep in the huge arc must walk to be assigned.
        points = [0.5] + [0.5 + (i + 1) * 1e-4 for i in range(50)]
        dht = IdealDHT.from_points(points)
        sampler = RandomPeerSampler(dht, n_hat=float(len(points)))
        result = sampler.trial(0.4)  # 0.1 before the cluster: a big interval
        assert result.outcome in (TrialOutcome.WALK_HIT, TrialOutcome.EXHAUSTED)
        if result.outcome is TrialOutcome.WALK_HIT:
            assert result.walk_hops >= 1

    def test_trial_is_deterministic(self, rng):
        dht = IdealDHT.random(200, rng)
        sampler = RandomPeerSampler(dht, n_hat=200.0, rng=rng)
        s = 0.37
        first = sampler.trial(s)
        second = sampler.trial(s)
        assert first == second

    def test_walk_budget_respected(self, rng):
        dht = IdealDHT.random(300, rng)
        sampler = RandomPeerSampler(dht, n_hat=300.0, rng=rng)
        for _ in range(200):
            result = sampler.trial(1.0 - rng.random())
            assert result.walk_hops <= sampler.params.walk_budget


class TestSampling:
    def test_sample_returns_live_peer(self, medium_dht, rng):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=rng)
        peer = sampler.sample()
        assert peer in medium_dht.peers

    def test_sample_many_length_and_validity(self, medium_dht, rng):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=rng)
        peers = sampler.sample_many(25)
        assert len(peers) == 25
        assert all(p in medium_dht.peers for p in peers)

    def test_sample_many_rejects_negative(self, medium_dht, rng):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=rng)
        with pytest.raises(ValueError):
            sampler.sample_many(-1)

    def test_auto_estimate_when_n_hat_omitted(self, medium_dht, rng):
        sampler = RandomPeerSampler(medium_dht, rng=rng)
        assert sampler.params.n_hat > 1.0
        assert sampler.sample() in medium_dht.peers

    def test_stats_account_trials_and_cost(self, medium_dht, rng):
        sampler = RandomPeerSampler(medium_dht, n_hat=512.0, rng=rng)
        stats = sampler.sample_with_stats()
        assert stats.trials >= 1
        assert stats.cost.h_calls == stats.trials
        assert stats.cost.next_calls == stats.walk_hops_total
        assert stats.outcome in (TrialOutcome.SMALL_HIT, TrialOutcome.WALK_HIT)

    def test_max_trials_enforced(self, rng):
        # An absurd overestimate makes lambda tiny; with max_trials=1 the
        # first miss must raise.
        dht = IdealDHT.random(10, rng)
        sampler = RandomPeerSampler(dht, n_hat=1e9, rng=random.Random(3), max_trials=1)
        with pytest.raises(SamplingError):
            for _ in range(200):
                sampler.sample()

    def test_one_shot_wrapper(self, medium_dht, rng):
        peer = choose_random_peer(medium_dht, n_hat=512.0, rng=rng)
        assert peer in medium_dht.peers

    def test_single_peer_ring(self, rng):
        dht = IdealDHT.random(1, rng)
        sampler = RandomPeerSampler(dht, rng=rng)
        assert sampler.sample().peer_id == dht.any_peer().peer_id


class TestTheorem7Costs:
    def test_expected_trials_bounded(self, rng):
        """E[trials] <= 1/(n*lambda); with n_hat == n that is 7/gamma1."""
        n = 1024
        dht = IdealDHT.random(n, rng)
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=rng)
        bound = 1.0 / (n * sampler.params.lam)
        trials = [sampler.sample_with_stats().trials for _ in range(300)]
        mean_trials = sum(trials) / len(trials)
        assert mean_trials <= 1.5 * bound  # generous Monte-Carlo headroom

    def test_message_cost_scales_logarithmically(self):
        means = {}
        for n in (256, 4096):
            dht = IdealDHT.random(n, random.Random(11))
            sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(12))
            msgs = [sampler.sample_with_stats().cost.messages for _ in range(200)]
            means[n] = sum(msgs) / len(msgs)
        # 16x more peers should cost ~log-factor more, far less than 4x.
        assert means[4096] < 4.0 * means[256]
        assert means[4096] > means[256]  # but it does grow


class TestUniformityStatistical:
    def test_empirical_counts_pass_chi_square(self):
        from repro.analysis.stats import chi_square_uniform

        n = 64
        draws = 6400
        dht = IdealDHT.random(n, random.Random(21))
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(22))
        counts = Counter(sampler.sample().peer_id for _ in range(draws))
        observed = [counts.get(i, 0) for i in range(n)]
        result = chi_square_uniform(observed)
        assert not result.rejects_uniformity(alpha=0.001)

    def test_every_peer_reachable(self):
        n = 32
        dht = IdealDHT.random(n, random.Random(31))
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=random.Random(32))
        seen = {sampler.sample().peer_id for _ in range(4000)}
        assert seen == set(range(n))


class TestSamplerMatchesExactAssignment:
    """The sampler's deterministic trial must agree with the closed-form
    assignment map everywhere -- this is the heart of Theorem 6."""

    @given(st.integers(min_value=2, max_value=60), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=60, deadline=None)
    def test_trial_agrees_with_reference(self, n, seed):
        rng = random.Random(seed)
        dht = IdealDHT.random(n, rng)
        sampler = RandomPeerSampler(dht, n_hat=float(n), rng=rng)
        for _ in range(20):
            s = 1.0 - rng.random()
            trial = sampler.trial(s)
            outcome, idx = trial_on_circle(dht.circle, sampler.params, s)
            assert trial.outcome is outcome
            if idx is None:
                assert trial.peer is None
            else:
                assert trial.peer.point == dht.circle[idx]

    @given(st.integers(min_value=2, max_value=50), st.integers(min_value=0, max_value=2**31))
    @settings(max_examples=40, deadline=None)
    def test_assigned_measure_is_lambda_for_every_peer(self, n, seed):
        circle = SortedCircle.random(n, random.Random(seed))
        params = SamplerParams.from_estimate(float(n))
        report = compute_assignment(circle, params.lam, params.walk_budget)
        assert report.is_exactly_uniform(tol=1e-12)
