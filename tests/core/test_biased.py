"""Tests for biased peer sampling (the paper's open problem 3)."""

from __future__ import annotations

import random
from collections import Counter

import pytest

from repro import IdealDHT
from repro.core.biased import (
    BiasedPeerSampler,
    inverse_distance_weight,
)
from repro.core.errors import SamplingError
from repro.core.intervals import clockwise_distance


class TestValidation:
    def test_rejects_bad_bound(self, medium_dht, rng):
        with pytest.raises(ValueError):
            BiasedPeerSampler(medium_dht, lambda p: 1.0, 0.0, rng=rng)

    def test_rejects_bad_max_rejections(self, medium_dht, rng):
        with pytest.raises(ValueError):
            BiasedPeerSampler(
                medium_dht, lambda p: 1.0, 1.0, rng=rng, max_rejections=0
            )

    def test_negative_weight_raises(self, medium_dht, rng):
        sampler = BiasedPeerSampler(
            medium_dht, lambda p: -1.0, 1.0, n_hat=512.0, rng=rng
        )
        with pytest.raises(ValueError):
            sampler.sample()

    def test_weight_above_bound_raises(self, medium_dht, rng):
        sampler = BiasedPeerSampler(
            medium_dht, lambda p: 5.0, 1.0, n_hat=512.0, rng=rng
        )
        with pytest.raises(ValueError):
            sampler.sample()

    def test_sample_many_negative(self, medium_dht, rng):
        sampler = BiasedPeerSampler(
            medium_dht, lambda p: 1.0, 1.0, n_hat=512.0, rng=rng
        )
        with pytest.raises(ValueError):
            sampler.sample_many(-1)


class TestDistribution:
    def test_constant_weight_reduces_to_uniform(self, rng):
        n = 64
        dht = IdealDHT.random(n, rng)
        sampler = BiasedPeerSampler(dht, lambda p: 1.0, 1.0, n_hat=float(n), rng=rng)
        stats = sampler.sample_with_stats()
        assert stats.uniform_draws == 1  # weight == bound: always accept
        assert stats.acceptance_probability == 1.0

    def test_two_to_one_bias(self):
        n = 40
        dht = IdealDHT.random(n, random.Random(7))
        # Even-indexed peers weigh 2, odd-indexed weigh 1.
        sampler = BiasedPeerSampler(
            dht,
            lambda p: 2.0 if p.peer_id % 2 == 0 else 1.0,
            2.0,
            n_hat=float(n),
            rng=random.Random(8),
        )
        counts = Counter(p.peer_id % 2 for p in sampler.sample_many(6000))
        ratio = counts[0] / counts[1]
        assert ratio == pytest.approx(2.0, rel=0.15)

    def test_zero_weight_peers_never_sampled(self):
        n = 30
        dht = IdealDHT.random(n, random.Random(9))
        forbidden = set(range(0, n, 3))
        sampler = BiasedPeerSampler(
            dht,
            lambda p: 0.0 if p.peer_id in forbidden else 1.0,
            1.0,
            n_hat=float(n),
            rng=random.Random(10),
        )
        drawn = {p.peer_id for p in sampler.sample_many(1500)}
        assert drawn.isdisjoint(forbidden)
        assert drawn == set(range(n)) - forbidden

    def test_inverse_distance_bias(self):
        """The paper's example: probability inversely proportional to
        clockwise distance from the caller."""
        n = 64
        dht = IdealDHT.random(n, random.Random(11))
        origin = dht.any_peer().point
        weight, bound = inverse_distance_weight(origin, floor=0.01)
        sampler = BiasedPeerSampler(
            dht, weight, bound, n_hat=float(n), rng=random.Random(12)
        )
        draws = sampler.sample_many(4000)
        near = sum(1 for p in draws if clockwise_distance(origin, p.point) < 0.1)
        far = sum(1 for p in draws if clockwise_distance(origin, p.point) > 0.9)
        assert near > 3 * max(far, 1)

    def test_expected_draws_matches_theory(self):
        n = 50
        dht = IdealDHT.random(n, random.Random(13))
        # Half the peers weigh 1, half weigh 0: acceptance rate ~ 1/2.
        sampler = BiasedPeerSampler(
            dht,
            lambda p: 1.0 if p.peer_id < n // 2 else 0.0,
            1.0,
            n_hat=float(n),
            rng=random.Random(14),
        )
        draws = [sampler.sample_with_stats().uniform_draws for _ in range(400)]
        assert sum(draws) / len(draws) == pytest.approx(2.0, rel=0.25)

    def test_max_rejections_enforced(self, rng):
        dht = IdealDHT.random(16, rng)
        sampler = BiasedPeerSampler(
            dht, lambda p: 0.0, 1.0, n_hat=16.0, rng=rng, max_rejections=10
        )
        with pytest.raises(SamplingError):
            sampler.sample()


class TestInverseDistanceWeight:
    def test_validation(self):
        with pytest.raises(ValueError):
            inverse_distance_weight(0.5, floor=0.0)
        with pytest.raises(ValueError):
            inverse_distance_weight(0.5, floor=1.0)

    def test_bound_is_respected(self, medium_dht):
        weight, bound = inverse_distance_weight(0.25, floor=0.05)
        assert bound == pytest.approx(20.0)
        for peer in list(medium_dht.peers)[:50]:
            assert 0.0 < weight(peer) <= bound + 1e-12

    def test_closer_means_heavier(self):
        from repro.dht.api import PeerRef

        weight, _ = inverse_distance_weight(0.5, floor=1e-4)
        close = PeerRef(0, 0.51)
        distant = PeerRef(1, 0.9)
        assert weight(close) > weight(distant)
