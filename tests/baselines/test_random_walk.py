"""Tests for the random-walk baseline samplers."""

from __future__ import annotations

import math
import random

import networkx as nx
import pytest

from repro.analysis.stats import total_variation, total_variation_from_uniform
from repro.baselines.random_walk import (
    RandomWalkSampler,
    stationary_distribution,
    walk_distribution,
)


@pytest.fixture
def ring_with_chords() -> nx.Graph:
    # Even-offset chords create odd cycles, keeping the simple walk
    # aperiodic (the bare even cycle is bipartite, hence periodic).
    g = nx.cycle_graph(40)
    for i in range(0, 40, 4):
        g.add_edge(i, (i + 10) % 40)
    return g


class TestValidation:
    def test_rejects_unknown_kind(self, ring_with_chords):
        with pytest.raises(ValueError):
            RandomWalkSampler(ring_with_chords, 5, kind="levy")

    def test_rejects_negative_steps(self, ring_with_chords):
        with pytest.raises(ValueError):
            RandomWalkSampler(ring_with_chords, -1)

    def test_rejects_isolated_nodes(self):
        g = nx.Graph()
        g.add_nodes_from([1, 2])
        g.add_edge(1, 2)
        g.add_node(3)
        with pytest.raises(ValueError):
            RandomWalkSampler(g, 5)

    def test_rejects_empty_graph(self):
        with pytest.raises(ValueError):
            RandomWalkSampler(nx.Graph(), 5)


class TestWalkMechanics:
    def test_zero_steps_returns_start(self, ring_with_chords):
        sampler = RandomWalkSampler(ring_with_chords, 0, rng=random.Random(0))
        assert sampler.sample(7) == 7

    def test_simple_walk_moves_to_neighbors(self, ring_with_chords):
        sampler = RandomWalkSampler(ring_with_chords, 1, kind="simple", rng=random.Random(1))
        for _ in range(50):
            end = sampler.sample(0)
            assert end in set(ring_with_chords.neighbors(0))

    def test_metropolis_can_stay_put(self):
        # A star graph: from a leaf, MH proposes the hub but accepts with
        # prob deg(leaf)/deg(hub) = 1/k, so staying is common.
        g = nx.star_graph(10)
        sampler = RandomWalkSampler(g, 1, kind="metropolis", rng=random.Random(2))
        stays = sum(1 for _ in range(300) if sampler.sample(1) == 1)
        assert stays > 150

    def test_sample_many(self, ring_with_chords):
        sampler = RandomWalkSampler(ring_with_chords, 3, rng=random.Random(3))
        assert len(sampler.sample_many(0, 9)) == 9


class TestExactDistributions:
    def test_walk_distribution_is_probability(self, ring_with_chords):
        dist = walk_distribution(ring_with_chords, "simple", 10, start=0)
        assert math.fsum(dist.values()) == pytest.approx(1.0)
        assert all(v >= 0 for v in dist.values())

    def test_simple_walk_converges_to_degree_bias(self, ring_with_chords):
        dist = walk_distribution(ring_with_chords, "simple", 400, start=0)
        target = stationary_distribution(ring_with_chords, "simple")
        assert total_variation(dist, target) < 0.02

    def test_metropolis_converges_to_uniform(self, ring_with_chords):
        dist = walk_distribution(ring_with_chords, "metropolis", 600, start=0)
        assert total_variation_from_uniform(dist) < 0.02

    def test_max_degree_converges_to_uniform(self, ring_with_chords):
        dist = walk_distribution(ring_with_chords, "max-degree", 600, start=0)
        assert total_variation_from_uniform(dist) < 0.02

    def test_simple_walk_is_biased_on_irregular_graph(self, ring_with_chords):
        """The paper's point: without correction, endpoints are not uniform
        even after long walks."""
        dist = walk_distribution(ring_with_chords, "simple", 2000, start=0)
        assert total_variation_from_uniform(dist) > 0.03

    def test_short_walks_are_far_from_uniform(self, ring_with_chords):
        near = walk_distribution(ring_with_chords, "metropolis", 2, start=0)
        far = walk_distribution(ring_with_chords, "metropolis", 200, start=0)
        assert total_variation_from_uniform(near) > 5 * total_variation_from_uniform(far)

    def test_empirical_matches_exact(self, ring_with_chords):
        steps = 12
        sampler = RandomWalkSampler(ring_with_chords, steps, kind="metropolis",
                                    rng=random.Random(5))
        counts = {u: 0 for u in ring_with_chords.nodes}
        draws = 30_000
        for _ in range(draws):
            counts[sampler.sample(0)] += 1
        empirical = {u: c / draws for u, c in counts.items()}
        exact = walk_distribution(ring_with_chords, "metropolis", steps, start=0)
        assert total_variation(empirical, exact) < 0.03

    def test_stationary_distributions_normalized(self, ring_with_chords):
        for kind in ("simple", "metropolis", "max-degree"):
            dist = stationary_distribution(ring_with_chords, kind)
            assert math.fsum(dist.values()) == pytest.approx(1.0)
