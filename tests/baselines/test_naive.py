"""Tests for the naive biased heuristic."""

from __future__ import annotations

import math
import random
from collections import Counter

import pytest

from repro import IdealDHT, SortedCircle
from repro.analysis.stats import max_min_ratio
from repro.baselines.naive import NaiveSampler, naive_selection_probabilities


class TestNaiveSampler:
    def test_returns_peers(self, medium_dht, rng):
        sampler = NaiveSampler(medium_dht, rng)
        assert sampler.sample() in medium_dht.peers

    def test_sample_many(self, medium_dht, rng):
        sampler = NaiveSampler(medium_dht, rng)
        assert len(sampler.sample_many(10)) == 10
        with pytest.raises(ValueError):
            sampler.sample_many(-1)

    def test_one_h_call_per_sample(self, medium_dht, rng):
        sampler = NaiveSampler(medium_dht, rng)
        before = medium_dht.cost.snapshot()
        sampler.sample_many(7)
        delta = medium_dht.cost.snapshot() - before
        assert delta.h_calls == 7
        assert delta.next_calls == 0

    def test_empirical_frequencies_track_arcs(self):
        # The defining property: selection frequency ~ predecessor arc.
        dht = IdealDHT.from_points([0.5, 0.6, 1.0])  # arcs 0.5, 0.1, 0.4
        sampler = NaiveSampler(dht, random.Random(3))
        counts = Counter(p.peer_id for p in sampler.sample_many(30_000))
        assert counts[0] / 30_000 == pytest.approx(0.5, abs=0.02)
        assert counts[1] / 30_000 == pytest.approx(0.1, abs=0.02)
        assert counts[2] / 30_000 == pytest.approx(0.4, abs=0.02)


class TestExactDistribution:
    def test_probabilities_are_arcs(self, small_circle):
        assert naive_selection_probabilities(small_circle) == small_circle.arcs()

    def test_sums_to_one(self, small_circle):
        assert math.fsum(naive_selection_probabilities(small_circle)) == pytest.approx(1.0)

    def test_bias_matches_theorem8_scale(self):
        """max/min pick ratio grows roughly like n log n (intro claim)."""
        import statistics

        medians = {}
        for n in (128, 2048):
            ratios = [
                max_min_ratio(
                    naive_selection_probabilities(
                        SortedCircle.random(n, random.Random(seed))
                    )
                )
                for seed in range(20)
            ]
            medians[n] = statistics.median(ratios)
        expected_growth = (2048 * math.log(2048)) / (128 * math.log(128))
        observed_growth = medians[2048] / medians[128]
        assert observed_growth > expected_growth / 4.0
